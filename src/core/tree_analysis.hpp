// Request-path tree analysis (paper Figs. 2 and 4, Sec. III).
//
// For a hot-spot node (the root), the union of every other node's route
// to it forms a tree: flat (depth 1) for FCG, depth 2 for MFCG, a
// k-nomial tree of depth 3 for CFCG, and a binomial tree of depth
// log2(N) for the hypercube. The root's fanout is the number of nodes
// whose requests arrive at the hot spot *directly* — the paper's measure
// of contention pressure.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"

namespace vtopo::core {

/// The tree of request paths from all nodes toward `root`.
struct RequestTree {
  NodeId root = 0;
  /// parent[v] = next hop of v toward the root (parent[root] = root).
  std::vector<NodeId> parent;
  /// depth[v] = hops from v to the root.
  std::vector<int> depth;

  [[nodiscard]] int height() const;
  /// Children counts; fanout of the root = children[root].
  [[nodiscard]] std::vector<std::int64_t> children_counts() const;
  [[nodiscard]] std::int64_t root_fanout() const;
  /// Histogram of depths: result[d] = number of nodes at distance d.
  [[nodiscard]] std::vector<std::int64_t> depth_histogram() const;
  /// Total forwarding work: sum over nodes of (depth - 1), i.e. the
  /// number of intermediate-CHT handlings a full all-to-root burst costs.
  [[nodiscard]] std::int64_t total_forwards() const;
};

/// Build the request tree of `topo` rooted at `root`.
[[nodiscard]] RequestTree build_request_tree(const VirtualTopology& topo,
                                             NodeId root);

}  // namespace vtopo::core
