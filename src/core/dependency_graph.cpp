#include "core/dependency_graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace vtopo::core {

namespace {

/// Dense interning of (receiver, sender) buffer edges, with the reverse
/// index -> edge map for diagnostics.
class EdgeInterner {
 public:
  explicit EdgeInterner(std::int64_t n) : n_(n) {}
  std::uint32_t intern(NodeId receiver, NodeId sender) {
    const std::int64_t key = static_cast<std::int64_t>(receiver) * n_ +
                             static_cast<std::int64_t>(sender);
    auto [it, inserted] =
        ids_.emplace(key, static_cast<std::uint32_t>(ids_.size()));
    if (inserted) edges_.push_back({receiver, sender});
    return it->second;
  }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }
  [[nodiscard]] std::vector<DependencyGraph::Resource> take_edges() {
    return std::move(edges_);
  }

 private:
  std::int64_t n_;
  std::unordered_map<std::int64_t, std::uint32_t> ids_;
  std::vector<DependencyGraph::Resource> edges_;
};

}  // namespace

DependencyGraph::DependencyGraph(const VirtualTopology& topo) {
  const std::int64_t n = topo.num_nodes();
  EdgeInterner interner(n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deps;

  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const std::vector<NodeId> hops = topo.route(src, dst);
      NodeId prev = src;
      std::uint32_t prev_res = 0;
      bool have_prev = false;
      for (const NodeId hop : hops) {
        const std::uint32_t res = interner.intern(hop, prev);
        if (have_prev) deps.emplace_back(prev_res, res);
        prev_res = res;
        have_prev = true;
        prev = hop;
      }
    }
  }

  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  num_deps_ = deps.size();
  adjacency_.assign(interner.size(), {});
  for (const auto& [from, to] : deps) adjacency_[from].push_back(to);
  resources_ = interner.take_edges();
}

bool DependencyGraph::has_dependency(std::size_t from,
                                     std::size_t to) const {
  const auto& adj = adjacency_[from];
  return std::binary_search(adj.begin(), adj.end(),
                            static_cast<std::uint32_t>(to));
}

bool DependencyGraph::acyclic() const { return find_cycle().empty(); }

std::vector<std::size_t> DependencyGraph::find_cycle() const {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  const std::size_t n = adjacency_.size();
  std::vector<std::uint8_t> color(n, kWhite);
  // Iterative DFS; frame = (vertex, next child index).
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;

  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) continue;
    stack.clear();
    stack.emplace_back(static_cast<std::uint32_t>(start), 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [v, child] = stack.back();
      if (child < adjacency_[v].size()) {
        const std::uint32_t w = adjacency_[v][child++];
        if (color[w] == kGray) {
          // Back edge: the gray path from w to v on the stack is a cycle.
          std::vector<std::size_t> cycle;
          bool collecting = false;
          for (const auto& [sv, sc] : stack) {
            if (sv == w) collecting = true;
            if (collecting) cycle.push_back(sv);
          }
          cycle.push_back(w);
          return cycle;
        }
        if (color[w] == kWhite) {
          color[w] = kGray;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace vtopo::core
