// Topology selection heuristic — the paper's conclusions as a library.
//
// Sec. VI's findings: MFCG is the best general choice (near-FCG latency,
// O(sqrt N) memory, strong hot-spot attenuation); FCG still wins for
// evenly-spread latency-critical traffic when its O(N) buffers fit;
// CFCG buys more memory headroom for one more forwarding hop; Hypercube
// minimizes memory but pays log-N forwarding on every operation. This
// module turns those trade-offs into an explainable recommendation.
#pragma once

#include <string>

#include "core/memory_model.hpp"
#include "core/topology.hpp"

namespace vtopo::core {

/// What the application looks like, in the dimensions the paper shows
/// matter.
struct WorkloadProfile {
  std::int64_t num_nodes = 1024;
  /// Per-node memory the runtime may spend on request buffers (MB).
  double buffer_budget_mb = 256.0;
  /// Fraction of CHT-mediated traffic aimed at a single process
  /// (0 = uniform like CCSD(T), ~0.5+ = counter-bound like DFT).
  double hotspot_fraction = 0.0;
  /// How much a single operation's latency matters (0 = fully
  /// overlapped/bandwidth-bound, 1 = blocking fine-grained ops).
  double latency_sensitivity = 0.5;
  /// Buffer accounting parameters (defaults = the paper's).
  MemoryParams mem{};
};

struct Recommendation {
  TopologyKind kind = TopologyKind::kMfcg;
  /// Buffer MB per node for each topology kind, in
  /// all_topology_kinds() order (Hypercube entry is NaN when the node
  /// count is not a power of two).
  double buffer_mb[4] = {0, 0, 0, 0};
  /// Human-readable reasoning chain.
  std::string rationale;
};

/// Recommend a virtual topology for the given workload profile.
[[nodiscard]] Recommendation recommend_topology(const WorkloadProfile& p);

}  // namespace vtopo::core
