#include "core/coords.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace vtopo::core {

Shape::Shape(std::vector<std::int32_t> dims) : dims_(std::move(dims)) {
  if (dims_.empty()) throw std::invalid_argument("Shape: empty dims");
  capacity_ = 1;
  for (auto d : dims_) {
    if (d <= 0) throw std::invalid_argument("Shape: non-positive extent");
    capacity_ *= d;
  }
}

void Shape::to_coords(NodeId node, std::span<std::int32_t> out) const {
  assert(out.size() == dims_.size());
  auto rest = static_cast<std::int64_t>(node);
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    out[i] = static_cast<std::int32_t>(rest % dims_[i]);
    rest /= dims_[i];
  }
  assert(rest == 0 && "node id beyond shape capacity");
}

NodeId Shape::to_node(std::span<const std::int32_t> coords) const {
  assert(coords.size() == dims_.size());
  std::int64_t node = 0;
  for (std::size_t i = dims_.size(); i-- > 0;) {
    assert(coords[i] >= 0 && coords[i] < dims_[i]);
    node = node * dims_[i] + coords[i];
  }
  return static_cast<NodeId>(node);
}

std::string Shape::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << "x";
    os << dims_[i];
  }
  return os.str();
}

std::int64_t isqrt(std::int64_t n) {
  assert(n >= 0);
  if (n < 2) return n;
  std::int64_t r = static_cast<std::int64_t>(__builtin_sqrt(
      static_cast<double>(n)));
  while (r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

std::int64_t icbrt(std::int64_t n) {
  assert(n >= 0);
  if (n < 2) return n;
  auto r = static_cast<std::int64_t>(__builtin_cbrt(static_cast<double>(n)));
  while (r > 0 && r * r * r > n) --r;
  while ((r + 1) * (r + 1) * (r + 1) <= n) ++r;
  return r;
}

Shape mesh_shape_for(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("mesh_shape_for: n <= 0");
  // Lowest dimension X = ceil(sqrt(n)) gives the most-square mesh whose
  // rows (dimension 0) are full except possibly the last.
  const std::int64_t root = isqrt(n);
  const std::int64_t x = (root * root == n) ? root : root + 1;
  const std::int64_t y = (n + x - 1) / x;
  return Shape({static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)});
}

Shape cube_shape_for(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("cube_shape_for: n <= 0");
  const std::int64_t root = icbrt(n);
  const std::int64_t x = (root * root * root == n) ? root : root + 1;
  // Remaining slots are filled with the most-square Y x Z plane count.
  const std::int64_t planes = (n + x - 1) / x;  // number of X-rows needed
  const std::int64_t yroot = isqrt(planes);
  const std::int64_t y = (yroot * yroot == planes) ? yroot : yroot + 1;
  const std::int64_t z = (planes + y - 1) / y;
  return Shape({static_cast<std::int32_t>(x), static_cast<std::int32_t>(y),
                static_cast<std::int32_t>(z)});
}

Shape hypercube_shape_for(std::int64_t n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(
        "hypercube_shape_for: node count must be a power of two");
  }
  int k = 0;
  while ((std::int64_t{1} << k) < n) ++k;
  if (k == 0) k = 1;  // a single node still needs one dimension
  return Shape(std::vector<std::int32_t>(static_cast<std::size_t>(k), 2));
}

}  // namespace vtopo::core
