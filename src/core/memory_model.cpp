#include "core/memory_model.hpp"

#include <algorithm>

namespace vtopo::core {

std::int64_t cht_buffer_bytes(const VirtualTopology& topo, NodeId node,
                              const MemoryParams& p) {
  // One buffer set (M buffers of B bytes) per remote process on every
  // directly connected node; optionally doubled for the sender-side
  // resources of the symmetric out-edges.
  // FCG never forwards, so its CHT keeps no per-edge send-side state —
  // only the forwarding topologies pay for both directions.
  const std::int64_t direction_factor =
      (p.count_both_directions && topo.max_forwards() > 0) ? 2 : 1;
  const std::int64_t remote_procs = topo.degree(node) * p.procs_per_node;
  return direction_factor * remote_procs * p.buffers_per_process *
         p.buffer_bytes;
}

double master_process_rss_mb(const VirtualTopology& topo, NodeId node,
                             const MemoryParams& p) {
  const double buffers_mb =
      static_cast<double>(cht_buffer_bytes(topo, node, p)) /
      (1024.0 * 1024.0);
  return p.base_mb + buffers_mb;
}

double max_master_process_rss_mb(const VirtualTopology& topo,
                                 const MemoryParams& p) {
  // Degree only depends on a node's coordinates relative to the partial
  // top dimension; scanning all nodes is O(N * k * max_extent), cheap for
  // the sizes Fig. 5 sweeps. For very large N we exploit that node 0 has
  // the maximum degree (its row/column/... are the fully populated ones).
  if (topo.num_nodes() > 65536) {
    return master_process_rss_mb(topo, 0, p);
  }
  double best = 0.0;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    best = std::max(best, master_process_rss_mb(topo, v, p));
  }
  return best;
}

}  // namespace vtopo::core
