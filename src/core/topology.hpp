// Virtual topologies over the resource-dedication graph (Sec. III).
//
// A vertex is one physical node (its application processes plus its CHT).
// A directed edge E(i, j) means node i dedicates a set of request buffers
// to senders on node j; in all four topologies edges come in symmetric
// pairs, so we expose an undirected `neighbors()` view and let the memory
// model count the per-edge buffer sets.
//
// All four paper topologies are instances of one construction: place the
// N nodes in a k-dimensional grid (lowest dimension fastest, highest
// dimension possibly partial) and fully connect nodes that differ in
// exactly one coordinate.
//
//   FCG        k=1, shape {N}        — every pair connected, 0 forwards
//   MFCG       k=2, near-square mesh — O(sqrt N) edges, <=1 forward
//   CFCG       k=3, near-cube        — O(cbrt N) edges, <=2 forwards
//   Hypercube  k=log2 N, extent 2    — O(log N) edges, <=log2(N)-1 fwd
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/coords.hpp"
#include "core/forwarding.hpp"

namespace vtopo::core {

enum class TopologyKind { kFcg, kMfcg, kCfcg, kHypercube };

[[nodiscard]] const char* to_string(TopologyKind k);

/// All four kinds, in the order the paper's figures list them.
[[nodiscard]] const std::vector<TopologyKind>& all_topology_kinds();

/// A virtual topology instance: grid placement plus a forwarding router.
class VirtualTopology {
 public:
  /// Build a topology of the given kind over `num_nodes` nodes.
  /// Hypercube requires a power-of-two node count (paper Sec. IV);
  /// MFCG/CFCG support any count via partial population.
  static VirtualTopology make(
      TopologyKind kind, std::int64_t num_nodes,
      ForwardingPolicy policy = ForwardingPolicy::kLowestDimFirst);

  /// Build a topology with an explicit grid shape (e.g. a skewed MFCG
  /// mesh for aspect-ratio studies). `num_nodes` may be smaller than
  /// the shape capacity (partial population of the highest dimension).
  static VirtualTopology custom(
      TopologyKind kind, Shape shape, std::int64_t num_nodes,
      ForwardingPolicy policy = ForwardingPolicy::kLowestDimFirst);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] const Shape& shape() const { return router_.shape(); }
  [[nodiscard]] const Router& router() const { return router_; }

  /// Nodes sharing a direct buffer edge with `node`, ascending order.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;
  /// Number of direct buffer edges at `node` (== neighbors().size(),
  /// computed without materializing the list).
  [[nodiscard]] std::int64_t degree(NodeId node) const;
  /// True if a and b are directly connected (differ in exactly one
  /// grid dimension). connected(v, v) is false.
  [[nodiscard]] bool connected(NodeId a, NodeId b) const;

  /// Forwarding interface (delegates to the Router).
  [[nodiscard]] NodeId next_hop(NodeId src, NodeId dst) const {
    return router_.next_hop(src, dst);
  }
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const {
    return router_.route(src, dst);
  }
  /// Upper bound on forwarding steps between any two nodes.
  [[nodiscard]] int max_forwards() const { return router_.max_forwards(); }

 private:
  VirtualTopology(TopologyKind kind, Shape shape, std::int64_t num_nodes,
                  ForwardingPolicy policy)
      : kind_(kind),
        num_nodes_(num_nodes),
        router_(std::move(shape), num_nodes, policy) {}

  TopologyKind kind_;
  std::int64_t num_nodes_;
  Router router_;
};

}  // namespace vtopo::core
