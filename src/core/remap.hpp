// Topology reconfiguration deltas (paper Sec. IV-B: "a virtual topology
// is very dynamic and often partially populated. For this reason, each
// node frequently changes its position from one topology to another").
//
// When the populated node count changes (processes join/leave a Global
// Arrays group), every node must reconcile its buffer dedication: tear
// down buffer sets for edges that disappeared and allocate sets for new
// edges. This module computes that per-node delta and its byte cost, so
// a runtime can budget reconfiguration instead of rebuilding from
// scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_model.hpp"
#include "core/topology.hpp"

namespace vtopo::core {

/// Edge changes at one node when moving from topology `before` to
/// `after` (the node must exist in both).
struct NodeRemap {
  NodeId node = 0;
  std::vector<NodeId> added_edges;    ///< neighbors gained
  std::vector<NodeId> removed_edges;  ///< neighbors lost
  std::vector<NodeId> kept_edges;     ///< neighbors unchanged
};

/// Whole-system reconfiguration summary.
struct RemapPlan {
  std::vector<NodeRemap> nodes;  ///< one entry per surviving node
  std::int64_t edges_added = 0;
  std::int64_t edges_removed = 0;
  std::int64_t edges_kept = 0;

  /// Buffer bytes that must be newly allocated across all nodes
  /// (per-edge cost follows the Fig.-5 accounting).
  [[nodiscard]] std::int64_t bytes_to_allocate(const MemoryParams& p) const;
  /// Buffer bytes released across all nodes.
  [[nodiscard]] std::int64_t bytes_to_release(const MemoryParams& p) const;
  /// Fraction of surviving edges that had to change, in [0, 1].
  [[nodiscard]] double churn() const;
};

/// Compute the reconfiguration plan between two topologies. Nodes with
/// ids >= min(num_nodes) are treated as departed (all their edges count
/// as removed on the surviving side).
[[nodiscard]] RemapPlan plan_remap(const VirtualTopology& before,
                                   const VirtualTopology& after);

}  // namespace vtopo::core
