// Topology reconfiguration deltas (paper Sec. IV-B: "a virtual topology
// is very dynamic and often partially populated. For this reason, each
// node frequently changes its position from one topology to another").
//
// When the populated node count changes (processes join/leave a Global
// Arrays group) or the topology kind is switched online, every node must
// reconcile its buffer dedication: tear down buffer sets for edges that
// disappeared and allocate sets for new edges. This module computes that
// per-node delta and its byte cost, orders the delta into an executable
// teardown/build schedule, and verifies that the transition is
// deadlock-free at every intermediate state — so a runtime can execute
// reconfiguration live instead of rebuilding from scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_model.hpp"
#include "core/topology.hpp"

namespace vtopo::core {

/// Edge changes at one node when moving from topology `before` to
/// `after`. Nodes present only in `after` (arriving) list their whole
/// edge set as added; nodes present only in `before` (departing) list
/// their whole edge set as removed.
struct NodeRemap {
  NodeId node = 0;
  std::vector<NodeId> added_edges;    ///< neighbors gained
  std::vector<NodeId> removed_edges;  ///< neighbors lost
  std::vector<NodeId> kept_edges;     ///< neighbors unchanged
};

/// Whole-system reconfiguration summary.
struct RemapPlan {
  std::vector<NodeRemap> nodes;  ///< one entry per node in either topology
  std::int64_t edges_added = 0;
  std::int64_t edges_removed = 0;
  std::int64_t edges_kept = 0;

  /// Buffer bytes that must be newly allocated across all nodes
  /// (per-edge cost follows the Fig.-5 accounting).
  [[nodiscard]] std::int64_t bytes_to_allocate(const MemoryParams& p) const;
  /// Buffer bytes released across all nodes.
  [[nodiscard]] std::int64_t bytes_to_release(const MemoryParams& p) const;
  /// Fraction of edges that had to change, in [0, 1].
  [[nodiscard]] double churn() const;
};

/// Compute the reconfiguration plan between two topologies. Every node
/// of the larger topology gets a NodeRemap entry: survivors diff their
/// neighbor lists, arriving nodes (id >= before.num_nodes()) count all
/// their edges as added, departing nodes (id >= after.num_nodes()) count
/// all their edges as removed.
[[nodiscard]] RemapPlan plan_remap(const VirtualTopology& before,
                                   const VirtualTopology& after);

// --------------------------------------------------------------------
// Executable transition schedule.
// --------------------------------------------------------------------

/// One step of a live reconfiguration at one node.
enum class RemapStepKind : std::uint8_t {
  kBuild,          ///< allocate the buffer set node dedicates to peer
  kSwitchRouting,  ///< atomically swap the routing function old -> new
  kTeardown,       ///< release the buffer set node dedicated to peer
};

struct RemapStep {
  RemapStepKind kind = RemapStepKind::kBuild;
  NodeId node = 0;  ///< the node whose buffer dedication changes
  NodeId peer = 0;  ///< the sender the buffer set serves (unused for switch)
};

/// Ordered teardown/build schedule executing a RemapPlan. The order is
/// the transition-safety argument: all builds happen first (the edge set
/// grows toward old ∪ new while routing still follows `before`), then
/// routing switches atomically (a quiesced runtime has no request in
/// flight at the switch), then teardowns shrink the edge set to exactly
/// `after`'s. At every instant the edges required by the active routing
/// function are present, so every intermediate buffer-dependency graph
/// equals either DependencyGraph(before) or DependencyGraph(after) —
/// the two graphs verify_transition() checks for cycles.
struct RemapSchedule {
  std::vector<RemapStep> steps;
  std::int64_t build_steps = 0;
  std::int64_t teardown_steps = 0;
};

/// Order a plan into the build -> switch -> teardown schedule. Steps are
/// sorted by (node, peer) within each stage, so execution is
/// deterministic.
[[nodiscard]] RemapSchedule plan_schedule(const RemapPlan& plan);

/// Result of checking a transition for deadlock-freedom at every
/// intermediate state.
struct TransitionCheck {
  bool before_acyclic = false;  ///< DependencyGraph(before) has no cycle
  bool after_acyclic = false;   ///< DependencyGraph(after) has no cycle
  bool ordered = false;     ///< builds precede the switch, teardowns follow
  bool covers_after = false;  ///< at the switch, every `after` edge exists
  bool lands_on_after = false;  ///< final edge set == `after`'s edge set

  [[nodiscard]] bool ok() const {
    return before_acyclic && after_acyclic && ordered && covers_after &&
           lands_on_after;
  }
};

/// Replay `sched` over `before`'s edge set and verify the transition is
/// deadlock-free in every intermediate state: the schedule is staged
/// build -> switch -> teardown, the active routing function always has
/// its full edge set available, the walk lands exactly on `after`'s
/// edges, and both endpoint dependency graphs are acyclic (which, per
/// the staging argument above, covers every intermediate state).
/// O(N^2 * k) — verification cost, not hot-path cost.
[[nodiscard]] TransitionCheck verify_transition(
    const VirtualTopology& before, const VirtualTopology& after,
    const RemapSchedule& sched);

}  // namespace vtopo::core
