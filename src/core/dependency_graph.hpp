// Static deadlock-freedom verification for forwarding policies.
//
// A request that is being forwarded occupies a request buffer at its
// current intermediate node (dedicated to the previous hop's node) while
// it waits for a buffer at the next hop. With finite buffer pools this is
// hold-and-wait; a deadlock is possible iff the "waits-for" relation over
// buffer resources contains a cycle (classic channel-dependency argument
// of Dally & Seitz, applied here to buffer edges instead of links).
//
// Resource = directed buffer edge (receiver node, sender node).
// Dependency = for consecutive hops u -> v -> w of any route, the buffer
// (v, from u) may be held while waiting for the buffer (w, from v).
//
// The paper argues LDF plus the D<=M guard is deadlock-free; this module
// lets tests *check* that claim for every node count, and the ablation
// bench show that scrambled dimension orders do create cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"

namespace vtopo::core {

/// Buffer-dependency graph built from all-pairs routes of a topology.
class DependencyGraph {
 public:
  /// Builds the graph by tracing route(src, dst) for every ordered pair.
  /// O(N^2 * k); intended for verification, not the hot path.
  explicit DependencyGraph(const VirtualTopology& topo);

  /// One buffer-edge resource: the pool node `receiver` dedicates to
  /// requests arriving from `sender`.
  struct Resource {
    NodeId receiver = 0;
    NodeId sender = 0;
  };

  /// Number of distinct buffer-edge resources encountered.
  [[nodiscard]] std::size_t num_resources() const {
    return adjacency_.size();
  }
  /// The buffer edge behind resource index `i` (as returned by
  /// find_cycle); `i` must be < num_resources().
  [[nodiscard]] Resource resource(std::size_t i) const {
    return resources_[i];
  }
  /// True if holding resource `from` can block on resource `to`
  /// (a dependency arc exists). Binary search over the sorted
  /// adjacency list.
  [[nodiscard]] bool has_dependency(std::size_t from, std::size_t to) const;
  /// Number of dependency arcs.
  [[nodiscard]] std::size_t num_dependencies() const { return num_deps_; }

  /// True if the dependency relation is acyclic (=> deadlock-free
  /// forwarding with any positive buffer pool size).
  [[nodiscard]] bool acyclic() const;

  /// Nodes of one cycle (resource indices), empty when acyclic.
  /// Useful for diagnostics in the ablation bench.
  [[nodiscard]] std::vector<std::size_t> find_cycle() const;

 private:
  // Resources are densely indexed; adjacency lists are sorted and
  // deduplicated.
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<Resource> resources_;  ///< index -> buffer edge
  std::size_t num_deps_ = 0;
};

}  // namespace vtopo::core
