// Request-buffer memory accounting (paper Sec. II & V-A, Figure 5).
//
// ARMCI's CHT pre-allocates, for every remote process that may send it a
// one-sided request, a set of M buffers of B bytes. Under a virtual
// topology only processes on *directly connected* nodes get dedicated
// buffers, so the per-node requirement drops from
//   (N_procs - ppn) * M * B                       (FCG)
// to
//   degree(node) * ppn * M * B                    (MFCG/CFCG/Hypercube).
//
// Figure 5 reports the resident set (VmRSS) of a node's master process,
// which is the base footprint plus this buffer pool.
#pragma once

#include <cstdint>

#include "core/topology.hpp"

namespace vtopo::core {

/// Parameters matching the paper's measurement setup (Sec. V-A).
struct MemoryParams {
  std::int64_t procs_per_node = 12;      ///< Jaguar XT5: 12 cores/node.
  std::int64_t buffer_bytes = 16 * 1024; ///< "The size of each buffer in
                                         ///< CHT is 16KB".
  std::int64_t buffers_per_process = 4;  ///< "the number of buffers per
                                         ///< process is 4".
  double base_mb = 612.0;  ///< Footprint before CHT buffer allocation.
  /// Count communication resources for both edge directions on
  /// forwarding topologies: receive buffers for every in-edge plus
  /// equal-sized sender-side forwarding resources for every out-edge
  /// (FCG never forwards, so it only keeps receive buffers). With this
  /// on, the model reproduces the paper's measured reduction factors
  /// (7.5x / 16.6x / 45x for MFCG / CFCG / Hypercube at 12,288
  /// processes) to within ~13%.
  bool count_both_directions = true;
};

/// Buffer-pool bytes the CHT on `node` must pre-allocate under `topo`.
[[nodiscard]] std::int64_t cht_buffer_bytes(const VirtualTopology& topo,
                                            NodeId node,
                                            const MemoryParams& p);

/// Estimated VmRSS (MB) of the master process on `node`: base + buffers.
[[nodiscard]] double master_process_rss_mb(const VirtualTopology& topo,
                                           NodeId node,
                                           const MemoryParams& p);

/// Maximum estimated VmRSS across all nodes (partial population makes
/// degrees non-uniform; Fig. 5 reports the master process, which we take
/// as the worst case).
[[nodiscard]] double max_master_process_rss_mb(const VirtualTopology& topo,
                                               const MemoryParams& p);

}  // namespace vtopo::core
