#include "core/dot_export.hpp"

#include <sstream>

namespace vtopo::core {

std::string to_dot(const VirtualTopology& topo) {
  std::ostringstream os;
  os << "graph \"" << topo.name() << "\" {\n";
  os << "  layout=neato; node [shape=circle fontsize=10];\n";
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << v << "\"];\n";
  }
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    for (const NodeId w : topo.neighbors(v)) {
      if (w > v) os << "  n" << v << " -- n" << w << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string tree_to_dot(const VirtualTopology& topo, NodeId root) {
  const RequestTree tree = build_request_tree(topo, root);
  std::ostringstream os;
  os << "digraph \"requests to " << root << " on " << topo.name()
     << "\" {\n";
  os << "  rankdir=BT; node [shape=circle fontsize=10];\n";
  os << "  n" << root << " [style=filled fillcolor=lightgray];\n";
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (v == root) continue;
    os << "  n" << v << " -> n"
       << tree.parent[static_cast<std::size_t>(v)] << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace vtopo::core
