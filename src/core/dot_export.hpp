// Graphviz DOT export of virtual topologies and request trees —
// regenerates the paper's schematic figures (Figs. 1, 3, 4) as
// renderable artifacts for any N.
#pragma once

#include <string>

#include "core/tree_analysis.hpp"

namespace vtopo::core {

/// The buffer-dedication graph (paper Fig. 1 / Fig. 3): one node per
/// vertex, one undirected edge per symmetric buffer-edge pair.
[[nodiscard]] std::string to_dot(const VirtualTopology& topo);

/// The request-path tree toward `root` (paper Figs. 2 and 4).
[[nodiscard]] std::string tree_to_dot(const VirtualTopology& topo,
                                      NodeId root);

}  // namespace vtopo::core
