// Mixed-radix coordinate math for virtual topologies.
//
// A virtual topology places node ids 0..N-1 into a k-dimensional grid.
// Dimension 0 is the *lowest* (fastest-varying) dimension:
//   node = c0 + X0*(c1 + X1*(c2 + ...))
// which is exactly the paper's "lower order dimensions are first populated
// with available nodes; only the highest dimension may be partially
// populated" packing (Sec. IV-B).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vtopo::core {

/// Identifier of a virtual-topology vertex (one physical node: its
/// processes plus its communication helper thread).
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Extents of a k-dimensional grid, dimension 0 fastest-varying.
class Shape {
 public:
  Shape() = default;
  explicit Shape(std::vector<std::int32_t> dims);

  [[nodiscard]] int rank() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] std::int32_t dim(int i) const {
    return dims_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& dims() const {
    return dims_;
  }
  /// Product of all extents: number of slots (>= populated node count).
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }

  /// Decompose node id into coordinates; out.size() must equal rank().
  void to_coords(NodeId node, std::span<std::int32_t> out) const;
  /// Compose a node id from coordinates (caller guarantees in-range
  /// coordinates; the id may exceed the populated node count).
  [[nodiscard]] NodeId to_node(std::span<const std::int32_t> coords) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::int32_t> dims_;
  std::int64_t capacity_ = 0;
};

/// Shape of a Meshed-FCG for `n` nodes: the most-square X x Y mesh with
/// X >= Y, lower dimension full, highest possibly partial (X*Y >= n and
/// X*(Y-1) < n).
[[nodiscard]] Shape mesh_shape_for(std::int64_t n);

/// Shape of a Cubic-FCG for `n` nodes: near-cubic X x Y x Z.
[[nodiscard]] Shape cube_shape_for(std::int64_t n);

/// Shape of a hypercube for `n` nodes (n must be a power of two):
/// log2(n) dimensions of extent 2.
[[nodiscard]] Shape hypercube_shape_for(std::int64_t n);

/// True if v is a power of two (v > 0).
[[nodiscard]] constexpr bool is_power_of_two(std::int64_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

/// Integer floor(sqrt(n)) without floating-point rounding hazards.
[[nodiscard]] std::int64_t isqrt(std::int64_t n);
/// Integer floor(cbrt(n)).
[[nodiscard]] std::int64_t icbrt(std::int64_t n);

}  // namespace vtopo::core
