#include "core/topology.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vtopo::core {

const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kFcg:
      return "FCG";
    case TopologyKind::kMfcg:
      return "MFCG";
    case TopologyKind::kCfcg:
      return "CFCG";
    case TopologyKind::kHypercube:
      return "Hypercube";
  }
  return "?";
}

const std::vector<TopologyKind>& all_topology_kinds() {
  static const std::vector<TopologyKind> kinds = {
      TopologyKind::kFcg, TopologyKind::kMfcg, TopologyKind::kCfcg,
      TopologyKind::kHypercube};
  return kinds;
}

VirtualTopology VirtualTopology::make(TopologyKind kind,
                                      std::int64_t num_nodes,
                                      ForwardingPolicy policy) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("VirtualTopology: num_nodes <= 0");
  }
  switch (kind) {
    case TopologyKind::kFcg:
      return VirtualTopology(
          kind, Shape({static_cast<std::int32_t>(num_nodes)}), num_nodes,
          policy);
    case TopologyKind::kMfcg:
      return VirtualTopology(kind, mesh_shape_for(num_nodes), num_nodes,
                             policy);
    case TopologyKind::kCfcg:
      return VirtualTopology(kind, cube_shape_for(num_nodes), num_nodes,
                             policy);
    case TopologyKind::kHypercube:
      return VirtualTopology(kind, hypercube_shape_for(num_nodes),
                             num_nodes, policy);
  }
  throw std::invalid_argument("VirtualTopology: unknown kind");
}

VirtualTopology VirtualTopology::custom(TopologyKind kind, Shape shape,
                                        std::int64_t num_nodes,
                                        ForwardingPolicy policy) {
  if (num_nodes <= 0 || num_nodes > shape.capacity()) {
    throw std::invalid_argument(
        "VirtualTopology::custom: num_nodes out of range for shape");
  }
  return VirtualTopology(kind, std::move(shape), num_nodes, policy);
}

std::string VirtualTopology::name() const {
  return std::string(to_string(kind_)) + "(" + shape().to_string() + ")";
}

std::vector<NodeId> VirtualTopology::neighbors(NodeId node) const {
  assert(node >= 0 && node < num_nodes_);
  const Shape& sh = shape();
  const int k = sh.rank();
  std::vector<std::int32_t> c(static_cast<std::size_t>(k));
  sh.to_coords(node, c);
  std::vector<NodeId> out;
  for (int i = 0; i < k; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::int32_t saved = c[ui];
    for (std::int32_t v = 0; v < sh.dim(i); ++v) {
      if (v == saved) continue;
      c[ui] = v;
      const NodeId cand = sh.to_node(c);
      if (cand < num_nodes_) out.push_back(cand);
    }
    c[ui] = saved;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t VirtualTopology::degree(NodeId node) const {
  assert(node >= 0 && node < num_nodes_);
  const Shape& sh = shape();
  const int k = sh.rank();
  std::vector<std::int32_t> c(static_cast<std::size_t>(k));
  sh.to_coords(node, c);
  std::int64_t deg = 0;
  for (int i = 0; i < k; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::int32_t saved = c[ui];
    for (std::int32_t v = 0; v < sh.dim(i); ++v) {
      if (v == saved) continue;
      c[ui] = v;
      if (sh.to_node(c) < num_nodes_) ++deg;
    }
    c[ui] = saved;
  }
  return deg;
}

bool VirtualTopology::connected(NodeId a, NodeId b) const {
  assert(a >= 0 && a < num_nodes_ && b >= 0 && b < num_nodes_);
  if (a == b) return false;
  const Shape& sh = shape();
  const int k = sh.rank();
  std::vector<std::int32_t> ca(static_cast<std::size_t>(k));
  std::vector<std::int32_t> cb(static_cast<std::size_t>(k));
  sh.to_coords(a, ca);
  sh.to_coords(b, cb);
  int diff = 0;
  for (int i = 0; i < k; ++i) {
    if (ca[static_cast<std::size_t>(i)] != cb[static_cast<std::size_t>(i)]) {
      ++diff;
    }
  }
  return diff == 1;
}

}  // namespace vtopo::core
