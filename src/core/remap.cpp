#include "core/remap.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <utility>

#include "core/dependency_graph.hpp"

namespace vtopo::core {

std::int64_t RemapPlan::bytes_to_allocate(const MemoryParams& p) const {
  return edges_added * p.procs_per_node * p.buffers_per_process *
         p.buffer_bytes;
}

std::int64_t RemapPlan::bytes_to_release(const MemoryParams& p) const {
  return edges_removed * p.procs_per_node * p.buffers_per_process *
         p.buffer_bytes;
}

double RemapPlan::churn() const {
  const std::int64_t total = edges_added + edges_removed + edges_kept;
  if (total == 0) return 0.0;
  return static_cast<double>(edges_added + edges_removed) /
         static_cast<double>(total);
}

RemapPlan plan_remap(const VirtualTopology& before,
                     const VirtualTopology& after) {
  RemapPlan plan;
  const std::int64_t survivors =
      std::min(before.num_nodes(), after.num_nodes());
  const std::int64_t all =
      std::max(before.num_nodes(), after.num_nodes());
  plan.nodes.reserve(static_cast<std::size_t>(all));

  for (NodeId v = 0; v < all; ++v) {
    NodeRemap nr;
    nr.node = v;
    if (v >= survivors) {
      // Node exists in only one topology: an arriving node (only in
      // `after`) builds its entire edge set, a departing node (only in
      // `before`) tears its entire edge set down. Without these entries
      // a growth plan undercounts edges_added by every arriving node's
      // edge set — and bytes_to_allocate() with it.
      if (after.num_nodes() > before.num_nodes()) {
        nr.added_edges = after.neighbors(v);
      } else {
        nr.removed_edges = before.neighbors(v);
      }
    } else {
      // neighbors() returns sorted lists: set-difference directly. Edges
      // to departed nodes (id >= survivors) count as removed; edges to
      // newly arrived nodes appear only in `after`.
      const std::vector<NodeId> old_nbrs = before.neighbors(v);
      const std::vector<NodeId> new_nbrs = after.neighbors(v);
      std::set_difference(new_nbrs.begin(), new_nbrs.end(),
                          old_nbrs.begin(), old_nbrs.end(),
                          std::back_inserter(nr.added_edges));
      std::set_difference(old_nbrs.begin(), old_nbrs.end(),
                          new_nbrs.begin(), new_nbrs.end(),
                          std::back_inserter(nr.removed_edges));
      std::set_intersection(old_nbrs.begin(), old_nbrs.end(),
                            new_nbrs.begin(), new_nbrs.end(),
                            std::back_inserter(nr.kept_edges));
    }
    plan.edges_added += static_cast<std::int64_t>(nr.added_edges.size());
    plan.edges_removed +=
        static_cast<std::int64_t>(nr.removed_edges.size());
    plan.edges_kept += static_cast<std::int64_t>(nr.kept_edges.size());
    plan.nodes.push_back(std::move(nr));
  }
  return plan;
}

RemapSchedule plan_schedule(const RemapPlan& plan) {
  RemapSchedule sched;
  sched.steps.reserve(
      static_cast<std::size_t>(plan.edges_added + plan.edges_removed) + 1);
  // plan.nodes is ordered by node id and each edge list is sorted, so
  // emitting in plan order already yields (node, peer) order per stage.
  for (const NodeRemap& nr : plan.nodes) {
    for (const NodeId peer : nr.added_edges) {
      sched.steps.push_back(
          RemapStep{RemapStepKind::kBuild, nr.node, peer});
    }
  }
  sched.build_steps = static_cast<std::int64_t>(sched.steps.size());
  sched.steps.push_back(RemapStep{RemapStepKind::kSwitchRouting, 0, 0});
  for (const NodeRemap& nr : plan.nodes) {
    for (const NodeId peer : nr.removed_edges) {
      sched.steps.push_back(
          RemapStep{RemapStepKind::kTeardown, nr.node, peer});
    }
  }
  sched.teardown_steps = static_cast<std::int64_t>(sched.steps.size()) -
                         sched.build_steps - 1;
  return sched;
}

namespace {

/// All (node, peer) buffer dedications of a topology, as a sorted set.
std::set<std::pair<NodeId, NodeId>> edge_set(const VirtualTopology& t) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    for (const NodeId w : t.neighbors(v)) edges.insert({v, w});
  }
  return edges;
}

}  // namespace

TransitionCheck verify_transition(const VirtualTopology& before,
                                  const VirtualTopology& after,
                                  const RemapSchedule& sched) {
  TransitionCheck check;
  check.before_acyclic = DependencyGraph(before).acyclic();
  check.after_acyclic = DependencyGraph(after).acyclic();

  // Replay the schedule over `before`'s edge set, enforcing the staging
  // that makes the intermediate states safe: builds only before the
  // (single) switch, teardowns only after it.
  std::set<std::pair<NodeId, NodeId>> edges = edge_set(before);
  const std::set<std::pair<NodeId, NodeId>> target = edge_set(after);
  int switches_seen = 0;
  bool ordered = true;
  bool covers_after = false;
  for (const RemapStep& step : sched.steps) {
    switch (step.kind) {
      case RemapStepKind::kBuild:
        if (switches_seen != 0) ordered = false;
        edges.insert({step.node, step.peer});
        break;
      case RemapStepKind::kSwitchRouting:
        ++switches_seen;
        // The new routing function becomes active here: every edge it
        // may route over must already exist.
        covers_after = std::includes(edges.begin(), edges.end(),
                                     target.begin(), target.end());
        break;
      case RemapStepKind::kTeardown:
        if (switches_seen != 1) ordered = false;
        edges.erase({step.node, step.peer});
        break;
    }
  }
  check.ordered = ordered && switches_seen == 1;
  check.covers_after = covers_after;
  check.lands_on_after = edges == target;
  return check;
}

}  // namespace vtopo::core
