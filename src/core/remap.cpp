#include "core/remap.hpp"

#include <algorithm>

namespace vtopo::core {

std::int64_t RemapPlan::bytes_to_allocate(const MemoryParams& p) const {
  return edges_added * p.procs_per_node * p.buffers_per_process *
         p.buffer_bytes;
}

std::int64_t RemapPlan::bytes_to_release(const MemoryParams& p) const {
  return edges_removed * p.procs_per_node * p.buffers_per_process *
         p.buffer_bytes;
}

double RemapPlan::churn() const {
  const std::int64_t total = edges_added + edges_removed + edges_kept;
  if (total == 0) return 0.0;
  return static_cast<double>(edges_added + edges_removed) /
         static_cast<double>(total);
}

RemapPlan plan_remap(const VirtualTopology& before,
                     const VirtualTopology& after) {
  RemapPlan plan;
  const std::int64_t survivors =
      std::min(before.num_nodes(), after.num_nodes());
  plan.nodes.reserve(static_cast<std::size_t>(survivors));

  for (NodeId v = 0; v < survivors; ++v) {
    NodeRemap nr;
    nr.node = v;
    // neighbors() returns sorted lists: set-difference directly. Edges
    // to departed nodes (id >= survivors) count as removed; edges to
    // newly arrived nodes appear only in `after`.
    const std::vector<NodeId> old_nbrs = before.neighbors(v);
    const std::vector<NodeId> new_nbrs = after.neighbors(v);
    std::set_difference(new_nbrs.begin(), new_nbrs.end(),
                        old_nbrs.begin(), old_nbrs.end(),
                        std::back_inserter(nr.added_edges));
    std::set_difference(old_nbrs.begin(), old_nbrs.end(),
                        new_nbrs.begin(), new_nbrs.end(),
                        std::back_inserter(nr.removed_edges));
    std::set_intersection(old_nbrs.begin(), old_nbrs.end(),
                          new_nbrs.begin(), new_nbrs.end(),
                          std::back_inserter(nr.kept_edges));
    plan.edges_added += static_cast<std::int64_t>(nr.added_edges.size());
    plan.edges_removed +=
        static_cast<std::int64_t>(nr.removed_edges.size());
    plan.edges_kept += static_cast<std::int64_t>(nr.kept_edges.size());
    plan.nodes.push_back(std::move(nr));
  }
  return plan;
}

}  // namespace vtopo::core
