#include "core/forwarding.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "sim/rng.hpp"

namespace vtopo::core {

const char* to_string(ForwardingPolicy p) {
  switch (p) {
    case ForwardingPolicy::kLowestDimFirst:
      return "ldf";
    case ForwardingPolicy::kHighestDimFirst:
      return "hdf";
    case ForwardingPolicy::kScrambled:
      return "scrambled";
  }
  return "?";
}

Router::Router(Shape shape, std::int64_t populated, ForwardingPolicy policy)
    : shape_(std::move(shape)),
      max_node_(static_cast<NodeId>(populated - 1)),
      policy_(policy) {
  if (populated <= 0 || populated > shape_.capacity()) {
    throw std::invalid_argument("Router: populated out of range");
  }
}

void Router::dim_order(NodeId src, std::vector<int>& out) const {
  const int k = shape_.rank();
  out.resize(static_cast<std::size_t>(k));
  std::iota(out.begin(), out.end(), 0);
  switch (policy_) {
    case ForwardingPolicy::kLowestDimFirst:
      break;
    case ForwardingPolicy::kHighestDimFirst:
      std::reverse(out.begin(), out.end());
      break;
    case ForwardingPolicy::kScrambled: {
      // Deterministic per-source Fisher-Yates driven by a hash of src,
      // modelling "arbitrary" forwarding order (Sec. IV-A's failure mode).
      std::uint64_t h = 0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(src);
      for (int i = k - 1; i > 0; --i) {
        const auto j = static_cast<int>(
            sim::splitmix64(h) % static_cast<std::uint64_t>(i + 1));
        std::swap(out[static_cast<std::size_t>(i)],
                  out[static_cast<std::size_t>(j)]);
      }
      break;
    }
  }
}

NodeId Router::next_hop(NodeId src, NodeId dst) const {
  assert(src >= 0 && src <= max_node_);
  assert(dst >= 0 && dst <= max_node_);
  if (src == dst) return dst;

  const int k = shape_.rank();
  std::int32_t cs[16];
  std::int32_t ct[16];
  assert(k <= 16 && "grid rank beyond supported bound");
  shape_.to_coords(src, {cs, static_cast<std::size_t>(k)});
  shape_.to_coords(dst, {ct, static_cast<std::size_t>(k)});

  std::vector<int> order;
  dim_order(src, order);
  for (const int i : order) {
    const auto ui = static_cast<std::size_t>(i);
    if (cs[ui] == ct[ui]) continue;
    // Candidate D: replace dimension i of S with T's coordinate.
    const std::int32_t saved = cs[ui];
    cs[ui] = ct[ui];
    const NodeId d =
        shape_.to_node({cs, static_cast<std::size_t>(k)});
    cs[ui] = saved;
    // Partial-population guard (Sec. IV-B): only forward to nodes that
    // exist. A valid candidate always exists when src, dst <= M because
    // replacing the highest differing dimension with the destination's
    // coordinate can only lower the id's most significant digit.
    if (d <= max_node_) return d;
  }
  assert(false && "LDF found no valid candidate; invariant violated");
  return kInvalidNode;
}

std::vector<NodeId> Router::route(NodeId src, NodeId dst) const {
  std::vector<NodeId> hops;
  NodeId cur = src;
  const int k = shape_.rank();
  while (cur != dst) {
    cur = next_hop(cur, dst);
    hops.push_back(cur);
    // Every hop fixes at least one coordinate to the destination's value
    // and never unfixes one, so the route length is bounded by the rank.
    if (static_cast<int>(hops.size()) > k) {
      throw std::logic_error("Router::route: hop bound exceeded");
    }
  }
  return hops;
}

}  // namespace vtopo::core
