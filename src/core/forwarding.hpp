// Request-forwarding route computation for virtual topologies.
//
// Implements the paper's Lowest-Dimension-First (LDF) algorithm
// (Algorithm 1) together with the partial-population extension of
// Sec. IV-B: a hop is taken only when the candidate next node D exists,
// i.e. D <= M where M is the highest populated node id. Two alternative
// dimension orders are provided for ablation studies: highest-first
// (also monotone, hence also deadlock-free) and a per-node scrambled
// order (NOT deadlock-free; see core/dependency_graph.hpp).
#pragma once

#include <vector>

#include "core/coords.hpp"

namespace vtopo::core {

/// Order in which dimensions are considered when choosing the next hop.
enum class ForwardingPolicy {
  kLowestDimFirst,   ///< The paper's LDF (Algorithm 1 + D<=M guard).
  kHighestDimFirst,  ///< Monotone decreasing order; deadlock-free too.
  kScrambled,        ///< Per-source pseudo-random order; may deadlock.
};

[[nodiscard]] const char* to_string(ForwardingPolicy p);

/// Computes next hops and full routes on a (possibly partially populated)
/// k-dimensional fully-connected-per-dimension grid.
class Router {
 public:
  /// `populated` is the number of nodes actually present (ids 0..M with
  /// M = populated-1); must satisfy 0 < populated <= shape.capacity().
  Router(Shape shape, std::int64_t populated,
         ForwardingPolicy policy = ForwardingPolicy::kLowestDimFirst);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t populated() const { return max_node_ + 1; }
  [[nodiscard]] ForwardingPolicy policy() const { return policy_; }

  /// Next node a request at `src` is sent to on its way to `dst`.
  /// Returns dst itself when the two are directly connected (or equal).
  [[nodiscard]] NodeId next_hop(NodeId src, NodeId dst) const;

  /// Full hop list from src to dst, excluding src and including dst.
  /// route(v, v) is empty. Length is bounded by shape().rank().
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Upper bound on the number of *forwarding* steps (hops minus the
  /// final delivery) between any two nodes: rank-1 for full grids.
  [[nodiscard]] int max_forwards() const { return shape_.rank() - 1; }

 private:
  void dim_order(NodeId src, std::vector<int>& out) const;

  Shape shape_;
  NodeId max_node_;
  ForwardingPolicy policy_;
};

}  // namespace vtopo::core
