#include "core/tree_analysis.hpp"

#include <algorithm>
#include <cassert>

namespace vtopo::core {

int RequestTree::height() const {
  return depth.empty() ? 0 : *std::max_element(depth.begin(), depth.end());
}

std::vector<std::int64_t> RequestTree::children_counts() const {
  std::vector<std::int64_t> counts(parent.size(), 0);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (static_cast<NodeId>(v) == root) continue;
    counts[static_cast<std::size_t>(parent[v])]++;
  }
  return counts;
}

std::int64_t RequestTree::root_fanout() const {
  std::int64_t fanout = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (static_cast<NodeId>(v) != root &&
        parent[v] == root) {
      ++fanout;
    }
  }
  return fanout;
}

std::vector<std::int64_t> RequestTree::depth_histogram() const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(height()) + 1, 0);
  for (const int d : depth) hist[static_cast<std::size_t>(d)]++;
  return hist;
}

std::int64_t RequestTree::total_forwards() const {
  std::int64_t total = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (static_cast<NodeId>(v) == root) continue;
    total += depth[v] - 1;
  }
  return total;
}

RequestTree build_request_tree(const VirtualTopology& topo, NodeId root) {
  const auto n = static_cast<std::size_t>(topo.num_nodes());
  RequestTree tree;
  tree.root = root;
  tree.parent.assign(n, kInvalidNode);
  tree.depth.assign(n, 0);
  tree.parent[static_cast<std::size_t>(root)] = root;

  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (v == root) continue;
    const std::vector<NodeId> hops = topo.route(v, root);
    assert(!hops.empty() && hops.back() == root);
    tree.parent[static_cast<std::size_t>(v)] = hops.front();
    tree.depth[static_cast<std::size_t>(v)] =
        static_cast<int>(hops.size());
  }
  return tree;
}

}  // namespace vtopo::core
