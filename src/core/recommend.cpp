#include "core/recommend.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace vtopo::core {

namespace {

/// Threshold above which hot-spot attenuation dominates the decision.
/// Calibrated against the simulator (bench/recommender_validation): at
/// scale, FCG's flat tree already loses with ~3% of operations aimed at
/// one process.
constexpr double kHotspotThreshold = 0.03;

}  // namespace

Recommendation recommend_topology(const WorkloadProfile& p) {
  Recommendation rec;
  std::ostringstream why;

  const bool hc_possible = is_power_of_two(p.num_nodes);
  double fcg_mb = 0;
  double mfcg_mb = 0;
  double cfcg_mb = 0;
  double hc_mb = std::numeric_limits<double>::quiet_NaN();
  {
    const auto& kinds = all_topology_kinds();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      if (kinds[k] == TopologyKind::kHypercube && !hc_possible) {
        rec.buffer_mb[k] = std::numeric_limits<double>::quiet_NaN();
        continue;
      }
      const auto topo = VirtualTopology::make(kinds[k], p.num_nodes);
      rec.buffer_mb[k] =
          static_cast<double>(cht_buffer_bytes(topo, 0, p.mem)) /
          (1024.0 * 1024.0);
    }
    fcg_mb = rec.buffer_mb[0];
    mfcg_mb = rec.buffer_mb[1];
    cfcg_mb = rec.buffer_mb[2];
    hc_mb = rec.buffer_mb[3];
  }

  const bool fcg_fits = fcg_mb <= p.buffer_budget_mb;
  const bool mfcg_fits = mfcg_mb <= p.buffer_budget_mb;
  const bool cfcg_fits = cfcg_mb <= p.buffer_budget_mb;
  const bool hotspot = p.hotspot_fraction >= kHotspotThreshold;

  why << "nodes=" << p.num_nodes << ", buffer MB: FCG=" << fcg_mb
      << " MFCG=" << mfcg_mb << " CFCG=" << cfcg_mb;
  if (hc_possible) why << " HC=" << hc_mb;
  why << "; ";

  if (hotspot) {
    // Paper Sec. VI-B (DFT): hot-spot traffic -> MFCG attenuates at one
    // forwarding hop; fall back to CFCG only if MFCG's buffers do not
    // fit; Hypercube's log-N forwarding is never worth it (Fig. 9a).
    if (mfcg_fits) {
      rec.kind = TopologyKind::kMfcg;
      why << "hot-spot traffic (" << p.hotspot_fraction
          << ") -> MFCG: one-hop forwarding attenuates the flat tree "
             "(paper: up to 48% faster for DFT)";
    } else if (cfcg_fits) {
      rec.kind = TopologyKind::kCfcg;
      why << "hot-spot traffic but MFCG buffers over budget -> CFCG";
    } else if (hc_possible) {
      rec.kind = TopologyKind::kHypercube;
      why << "hot-spot traffic and very tight memory -> Hypercube "
             "(accepting log-N forwarding latency)";
    } else {
      rec.kind = TopologyKind::kCfcg;
      why << "hot-spot traffic, nothing fits the stated budget -> CFCG "
             "as the smallest partially-populatable option";
    }
  } else if (fcg_fits && p.latency_sensitivity >= 0.5) {
    // Paper Sec. VI-B (CCSD(T)): evenly spread latency-bound traffic
    // keeps FCG ahead when its buffers are affordable.
    rec.kind = TopologyKind::kFcg;
    why << "uniform latency-sensitive traffic and FCG buffers fit -> "
           "FCG (paper: FCG generally beats MFCG for CCSD(T))";
  } else if (mfcg_fits) {
    rec.kind = TopologyKind::kMfcg;
    why << (fcg_fits ? "uniform but bandwidth-bound traffic"
                     : "FCG buffers over budget")
        << " -> MFCG: near-FCG performance at O(sqrt N) memory "
           "(the paper's overall recommendation)";
  } else if (cfcg_fits) {
    rec.kind = TopologyKind::kCfcg;
    why << "tight memory -> CFCG";
  } else if (hc_possible) {
    rec.kind = TopologyKind::kHypercube;
    why << "minimal memory -> Hypercube";
  } else {
    rec.kind = TopologyKind::kCfcg;
    why << "nothing fits the stated budget -> CFCG as the smallest "
           "partially-populatable option";
  }

  rec.rationale = why.str();
  return rec;
}

}  // namespace vtopo::core
