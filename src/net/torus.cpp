#include "net/torus.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace vtopo::net {

TorusGeometry::TorusGeometry(std::int64_t num_nodes) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("TorusGeometry: num_nodes <= 0");
  }
  const core::Shape cube = core::cube_shape_for(num_nodes);
  dims_ = {cube.dim(0), cube.dim(1), cube.dim(2)};
}

TorusGeometry::TorusGeometry(std::int32_t x, std::int32_t y,
                             std::int32_t z)
    : dims_{x, y, z} {
  if (x <= 0 || y <= 0 || z <= 0) {
    throw std::invalid_argument("TorusGeometry: non-positive extent");
  }
}

void TorusGeometry::slot_coords(std::int64_t slot,
                                std::array<std::int32_t, 3>& c) const {
  assert(slot >= 0 && slot < num_slots());
  c[0] = static_cast<std::int32_t>(slot % dims_[0]);
  c[1] = static_cast<std::int32_t>((slot / dims_[0]) % dims_[1]);
  c[2] = static_cast<std::int32_t>(slot / (static_cast<std::int64_t>(
                                              dims_[0]) *
                                          dims_[1]));
}

std::int64_t TorusGeometry::slot_of(
    const std::array<std::int32_t, 3>& c) const {
  return c[0] +
         static_cast<std::int64_t>(dims_[0]) *
             (c[1] + static_cast<std::int64_t>(dims_[1]) * c[2]);
}

int TorusGeometry::hop_distance(std::int64_t a, std::int64_t b) const {
  std::array<std::int32_t, 3> ca{};
  std::array<std::int32_t, 3> cb{};
  slot_coords(a, ca);
  slot_coords(b, cb);
  int hops = 0;
  for (int i = 0; i < 3; ++i) {
    hops += std::abs(detail::ring_delta(ca[static_cast<std::size_t>(i)],
                                        cb[static_cast<std::size_t>(i)],
                                        dims_[static_cast<std::size_t>(i)]));
  }
  return hops;
}

std::vector<LinkId> TorusGeometry::route_links(std::int64_t a,
                                               std::int64_t b) const {
  std::vector<LinkId> links;
  for_each_route_link(a, b, [&links](LinkId link) { links.push_back(link); });
  return links;
}

}  // namespace vtopo::net
