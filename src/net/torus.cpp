#include "net/torus.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace vtopo::net {

TorusGeometry::TorusGeometry(std::int64_t num_nodes) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("TorusGeometry: num_nodes <= 0");
  }
  const core::Shape cube = core::cube_shape_for(num_nodes);
  dims_ = {cube.dim(0), cube.dim(1), cube.dim(2)};
}

TorusGeometry::TorusGeometry(std::int32_t x, std::int32_t y,
                             std::int32_t z)
    : dims_{x, y, z} {
  if (x <= 0 || y <= 0 || z <= 0) {
    throw std::invalid_argument("TorusGeometry: non-positive extent");
  }
}

void TorusGeometry::slot_coords(std::int64_t slot,
                                std::array<std::int32_t, 3>& c) const {
  assert(slot >= 0 && slot < num_slots());
  c[0] = static_cast<std::int32_t>(slot % dims_[0]);
  c[1] = static_cast<std::int32_t>((slot / dims_[0]) % dims_[1]);
  c[2] = static_cast<std::int32_t>(slot / (static_cast<std::int64_t>(
                                              dims_[0]) *
                                          dims_[1]));
}

std::int64_t TorusGeometry::slot_of(
    const std::array<std::int32_t, 3>& c) const {
  return c[0] +
         static_cast<std::int64_t>(dims_[0]) *
             (c[1] + static_cast<std::int64_t>(dims_[1]) * c[2]);
}

namespace {

/// Signed shortest displacement from a to b on a ring of size n:
/// result in (-n/2, n/2].
std::int32_t ring_delta(std::int32_t a, std::int32_t b, std::int32_t n) {
  std::int32_t d = (b - a) % n;
  if (d < 0) d += n;
  if (d > n / 2) d -= n;
  return d;
}

}  // namespace

int TorusGeometry::hop_distance(std::int64_t a, std::int64_t b) const {
  std::array<std::int32_t, 3> ca{};
  std::array<std::int32_t, 3> cb{};
  slot_coords(a, ca);
  slot_coords(b, cb);
  int hops = 0;
  for (int i = 0; i < 3; ++i) {
    hops += std::abs(ring_delta(ca[static_cast<std::size_t>(i)],
                                cb[static_cast<std::size_t>(i)],
                                dims_[static_cast<std::size_t>(i)]));
  }
  return hops;
}

std::vector<LinkId> TorusGeometry::route_links(std::int64_t a,
                                               std::int64_t b) const {
  std::vector<LinkId> links;
  if (a == b) return links;
  std::array<std::int32_t, 3> cur{};
  std::array<std::int32_t, 3> dst{};
  slot_coords(a, cur);
  slot_coords(b, dst);
  // Dimension-order: fully correct X, then Y, then Z, stepping one hop
  // at a time in the shorter wraparound direction.
  for (int dim = 0; dim < 3; ++dim) {
    const auto ud = static_cast<std::size_t>(dim);
    const std::int32_t n = dims_[ud];
    std::int32_t delta = ring_delta(cur[ud], dst[ud], n);
    while (delta != 0) {
      const int step = delta > 0 ? 1 : -1;
      const int dir = 2 * dim + (step > 0 ? 0 : 1);
      links.push_back(directional_link(slot_of(cur), dir));
      cur[ud] = (cur[ud] + step + n) % n;
      delta -= step;
    }
  }
  assert(slot_of(cur) == b);
  return links;
}

}  // namespace vtopo::net
