// Machine profiles: parameter presets for the simulated interconnect.
//
// The paper's future work asks about "other petascale platforms with
// different physical topologies, e.g., BlueGene/P". These presets let
// every experiment in this repository run against either machine model;
// bench/future_bgp.cpp does exactly that for the contention figures.
#pragma once

#include "net/params.hpp"

namespace vtopo::net {

/// Cray XT5 / SeaStar2+ (the paper's testbed): few fat links, a modest
/// hardware message-stream table with BEER flow control past it.
[[nodiscard]] constexpr NetworkParams xt5_params() {
  return NetworkParams{};  // the defaults model the XT5
}

/// IBM Blue Gene/P: a denser 3-D torus of slower links (425 MB/s per
/// direction), lower per-hop latency, slower cores (850 MHz PowerPC =>
/// higher software overheads), and NO hardware stream limit — the
/// messaging stack keeps per-connection state in main memory, so the
/// BEER-style cliff does not exist; hot spots degrade by queueing only.
[[nodiscard]] constexpr NetworkParams bgp_params() {
  NetworkParams p;
  p.send_overhead = sim::us(1.2);     // slower cores, deeper stack
  p.recv_overhead = sim::us(1.2);
  p.hop_latency = sim::us(0.1);       // ~100 ns/hop on the BG/P torus
  p.link_bandwidth = 4.25e8;          // 425 MB/s per link direction
  p.nic_bandwidth = 1.2e9;            // aggregate injection ~ 6 links
  p.shmem_bandwidth = 3.0e9;
  p.nic_message_overhead = sim::us(0.5);
  p.stream_table_size = 1 << 20;      // effectively unlimited
  p.stream_miss_penalty = 0;
  return p;
}

}  // namespace vtopo::net
