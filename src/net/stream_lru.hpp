// Flat-array LRU for the NIC message-stream table.
//
// The previous implementation kept recency order in a std::list with an
// unordered_map of iterators, paying one node allocation per stream
// insert on the send hot path. This version stores entries in fixed
// flat arrays (intrusive doubly-linked recency list over entry indices)
// with an open-addressing index, so a table at steady state performs no
// allocations at all. Storage is allocated lazily on first touch, so
// idle NICs in a large cluster cost only the empty struct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vtopo::net {

class StreamLru {
 public:
  using Key = std::int64_t;

  /// Set the capacity (SeaStar stream-table size). Resets the table.
  void set_capacity(int capacity) {
    cap_ = capacity;
    keys_.clear();
    prev_.clear();
    next_.clear();
    table_.clear();
    head_ = tail_ = -1;
    size_ = 0;
  }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int capacity() const { return cap_; }

  /// Touch `key`, making it the most-recent stream. Returns true when
  /// the key was absent and the table was full, i.e. an old stream had
  /// to be torn down to make room (the BEER-penalty case).
  bool touch(Key key) {
    if (cap_ <= 0) return true;  // degenerate table: every access misses
    if (table_.empty()) allocate();
    const std::size_t mask = table_.size() - 1;
    for (std::size_t h = hash(key) & mask; table_[h] != -1;
         h = (h + 1) & mask) {
      const std::int32_t e = table_[h];
      if (keys_[static_cast<std::size_t>(e)] == key) {
        move_to_front(e);
        return false;
      }
    }
    bool evicted = false;
    std::int32_t e;
    if (size_ < cap_) {
      e = size_++;
    } else {
      // Tear down the coldest stream to make room.
      e = tail_;
      erase_index(e);
      tail_ = prev_[static_cast<std::size_t>(e)];
      if (tail_ != -1) {
        next_[static_cast<std::size_t>(tail_)] = -1;
      } else {
        head_ = -1;
      }
      evicted = true;
    }
    keys_[static_cast<std::size_t>(e)] = key;
    link_front(e);
    insert_index(e);
    return evicted;
  }

 private:
  void allocate() {
    const auto ucap = static_cast<std::size_t>(cap_);
    keys_.assign(ucap, 0);
    prev_.assign(ucap, -1);
    next_.assign(ucap, -1);
    // Power-of-two index sized for load factor <= 0.5, so linear-probe
    // chains stay short and backward-shift deletion stays cheap.
    std::size_t buckets = 4;
    while (buckets < ucap * 2) buckets <<= 1;
    table_.assign(buckets, -1);
  }

  static std::size_t hash(Key key) {
    // splitmix64 finalizer: cheap and well-mixed for sequential ids.
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  void link_front(std::int32_t e) {
    prev_[static_cast<std::size_t>(e)] = -1;
    next_[static_cast<std::size_t>(e)] = head_;
    if (head_ != -1) prev_[static_cast<std::size_t>(head_)] = e;
    head_ = e;
    if (tail_ == -1) tail_ = e;
  }

  void move_to_front(std::int32_t e) {
    if (head_ == e) return;
    const auto ue = static_cast<std::size_t>(e);
    const std::int32_t p = prev_[ue];
    const std::int32_t n = next_[ue];
    next_[static_cast<std::size_t>(p)] = n;
    if (n != -1) {
      prev_[static_cast<std::size_t>(n)] = p;
    } else {
      tail_ = p;
    }
    link_front(e);
  }

  void insert_index(std::int32_t e) {
    const std::size_t mask = table_.size() - 1;
    std::size_t h = hash(keys_[static_cast<std::size_t>(e)]) & mask;
    while (table_[h] != -1) h = (h + 1) & mask;
    table_[h] = e;
  }

  /// Remove entry `e` from the open-addressing index with backward-shift
  /// deletion (no tombstones, so probe chains never degrade).
  void erase_index(std::int32_t e) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(keys_[static_cast<std::size_t>(e)]) & mask;
    while (table_[i] != e) i = (i + 1) & mask;
    for (;;) {
      table_[i] = -1;
      std::size_t j = i;
      for (;;) {
        j = (j + 1) & mask;
        if (table_[j] == -1) return;
        const std::size_t home =
            hash(keys_[static_cast<std::size_t>(table_[j])]) & mask;
        // Shift table_[j] into the hole unless its home position lies in
        // the cyclic interval (i, j] (in which case the hole does not
        // break its probe chain).
        const bool keep = (i < j) ? (home > i && home <= j)
                                  : (home > i || home <= j);
        if (!keep) {
          table_[i] = table_[j];
          i = j;
          break;
        }
      }
    }
  }

  int cap_ = 0;
  int size_ = 0;
  std::int32_t head_ = -1;
  std::int32_t tail_ = -1;
  std::vector<Key> keys_;
  std::vector<std::int32_t> prev_;
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> table_;  // open-addressing: entry index or -1
};

}  // namespace vtopo::net
