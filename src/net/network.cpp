#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <numeric>
#include <utility>

#include "sim/rng.hpp"

namespace vtopo::net {

Network::Network(sim::Engine& eng, std::int64_t num_nodes,
                 NetworkParams params, Placement placement,
                 std::uint64_t placement_seed)
    : eng_(&eng),
      params_(params),
      fabric_(std::make_shared<Fabric>(num_nodes)) {
  slot_of_node_.resize(static_cast<std::size_t>(num_nodes));
  std::iota(slot_of_node_.begin(), slot_of_node_.end(), 0);
  if (placement == Placement::kRandom) {
    // Choose num_nodes distinct slots out of the torus via a seeded
    // Fisher-Yates over all slots.
    std::vector<std::int64_t> slots(
        static_cast<std::size_t>(fabric_->torus.num_slots()));
    std::iota(slots.begin(), slots.end(), 0);
    sim::Rng rng(placement_seed);
    for (std::size_t i = slots.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.uniform(i));
      std::swap(slots[i - 1], slots[j]);
    }
    for (std::size_t v = 0; v < slot_of_node_.size(); ++v) {
      slot_of_node_[v] = slots[v];
    }
  }
  init_tables();
}

Network::Network(sim::Engine& eng, std::shared_ptr<Fabric> fabric,
                 std::vector<std::int64_t> slots, NetworkParams params)
    : eng_(&eng),
      params_(params),
      fabric_(std::move(fabric)),
      slot_of_node_(std::move(slots)) {
  assert(fabric_ != nullptr);
  for (const std::int64_t s : slot_of_node_) {
    assert(s >= 0 && s < fabric_->torus.num_slots() &&
           "tenant slot outside the machine torus");
    (void)s;
  }
  init_tables();
}

void Network::init_tables() {
  const std::int64_t num_nodes = this->num_nodes();
  streams_.resize(static_cast<std::size_t>(num_nodes));
  for (auto& table : streams_) table.set_capacity(params_.stream_table_size);
  // ~4 slots per node, rounded up to a power of two, hard-capped: the
  // cache covers every pair a small run can form and stays a few MB on
  // a 262k-node run where a dense table could not exist.
  std::size_t slots = kRouteCacheMinSlots;
  while (slots < static_cast<std::size_t>(num_nodes) * 4 &&
         slots < kRouteCacheMaxSlots) {
    slots *= 2;
  }
  route_cache_.resize(slots);
}

const Network::RouteSlot& Network::cache_route(core::NodeId src,
                                               core::NodeId dst) {
  const std::uint64_t tag =
      ((static_cast<std::uint64_t>(src) << 32) |
       static_cast<std::uint64_t>(dst)) + 1;
  // Fibonacci hash of the pair; table size is a power of two.
  const std::size_t idx = static_cast<std::size_t>(
      (tag * 0x9e3779b97f4a7c15ULL) >> 32) & (route_cache_.size() - 1);
  RouteSlot& e = route_cache_[idx];
  if (e.tag != tag) {
    e.links.clear();  // keeps capacity: collision rebuilds stay cheap
    fabric_->torus.for_each_route_link(
        slot_of_node_[static_cast<std::size_t>(src)],
        slot_of_node_[static_cast<std::size_t>(dst)], [&](LinkId link) {
          e.links.push_back(static_cast<std::int32_t>(link));
        });
    e.tag = tag;
    ++routes_cached_;
  }
  return e;
}

bool Network::stream_miss(core::NodeId dst, StreamKey stream) {
  // A miss on a full table tears down the coldest stream (BEER flow
  // control) and pays the penalty at the ejection port.
  const bool miss = streams_[static_cast<std::size_t>(dst)].touch(stream);
  if (miss) ++stream_misses_;
  return miss;
}

const Network::EdgeFault* Network::find_fault(core::NodeId src,
                                              core::NodeId dst) const {
  for (const EdgeFault& f : edge_faults_) {
    if (f.src == src && f.dst == dst) return &f;
  }
  return nullptr;
}

void Network::fault_edge(core::NodeId src, core::NodeId dst, bool severed,
                         double degrade) {
  for (EdgeFault& f : edge_faults_) {
    if (f.src == src && f.dst == dst) {
      f.severed = f.severed || severed;
      f.degrade = std::max(f.degrade, degrade);
      return;
    }
  }
  edge_faults_.push_back(EdgeFault{src, dst, severed, degrade});
}

void Network::clear_edge_fault(core::NodeId src, core::NodeId dst) {
  for (std::size_t i = 0; i < edge_faults_.size(); ++i) {
    if (edge_faults_[i].src == src && edge_faults_[i].dst == dst) {
      edge_faults_.erase(edge_faults_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool Network::edge_severed(core::NodeId src, core::NodeId dst) const {
  const EdgeFault* f = find_fault(src, dst);
  return f != nullptr && f->severed;
}

double Network::edge_degrade(core::NodeId src, core::NodeId dst) const {
  const EdgeFault* f = find_fault(src, dst);
  return f == nullptr ? 1.0 : f->degrade;
}

sim::TimeNs Network::send(core::NodeId src, core::NodeId dst,
                          std::int64_t bytes, StreamKey stream) {
  return send_at(eng_->now(), src, dst, bytes, stream);
}

sim::TimeNs Network::send_at(sim::TimeNs start, core::NodeId src,
                             core::NodeId dst, std::int64_t bytes,
                             StreamKey stream) {
  assert(bytes >= 0);
  ++messages_;
  bytes_total_ += static_cast<std::uint64_t>(bytes);

  sim::TimeNs t = start + params_.send_overhead;
  if (src == dst) {
    // Intra-node: shared-memory copy, no NIC involvement.
    return t + params_.shmem_latency +
           serialize_ns(bytes, params_.shmem_bandwidth);
  }

  const std::int64_t sslot = slot_of_node_[static_cast<std::size_t>(src)];
  const std::int64_t dslot = slot_of_node_[static_cast<std::size_t>(dst)];
  sim::TimeNs nic_ser = serialize_ns(bytes, params_.nic_bandwidth);
  sim::TimeNs link_ser = serialize_ns(bytes, params_.link_bandwidth);
  if (!edge_faults_.empty()) {
    const double slow = edge_degrade(src, dst);
    if (slow > 1.0) {
      nic_ser = static_cast<sim::TimeNs>(
          static_cast<double>(nic_ser) * slow);
      link_ser = static_cast<sim::TimeNs>(
          static_cast<double>(link_ser) * slow);
    }
  }

  auto& link_free = fabric_->link_free;
  auto cross = [&](LinkId link, sim::TimeNs ser) {
    auto& free_at = link_free[static_cast<std::size_t>(link)];
    t = std::max(t, free_at);
    free_at = t + ser;
    t += params_.hop_latency;
    if (!census_.empty()) ++census_[static_cast<std::size_t>(link)];
  };

  cross(fabric_->torus.injection_link(sslot), nic_ser);
  {
    const RouteSlot& e = cache_route(src, dst);
    for (const std::int32_t link : e.links) cross(link, link_ser);
  }
  // Ejection: the message has fully arrived only after it serializes
  // through the destination NIC. A stream-table miss adds the BEER
  // flow-control penalty to the NIC's occupancy.
  sim::TimeNs eject = nic_ser + params_.nic_message_overhead;
  if (stream_miss(dst, stream)) eject += params_.stream_miss_penalty;
  const LinkId eject_link = fabric_->torus.ejection_link(dslot);
  auto& ej = link_free[static_cast<std::size_t>(eject_link)];
  t = std::max(t, ej);
  ej = t + eject;
  if (!census_.empty()) ++census_[static_cast<std::size_t>(eject_link)];
  return t + eject + params_.recv_overhead;
}

void Network::deliver(core::NodeId src, core::NodeId dst,
                      std::int64_t bytes, StreamKey stream,
                      sim::InlineFn on_arrival) {
  deliver_delayed(src, dst, bytes, stream, 0, std::move(on_arrival));
}

void Network::deliver_delayed(core::NodeId src, core::NodeId dst,
                              std::int64_t bytes, StreamKey stream,
                              sim::TimeNs extra_delay,
                              sim::InlineFn on_arrival) {
  if (sharded_ != nullptr) {
    // Record the send; reserve link capacity in the serial phase, where
    // posts from all shards merge in (time, stamp) order, then land the
    // arrival on the destination node's shard. Arrival times are >= the
    // send time + min_remote_latency >= the window boundary, so the
    // serial-phase insert is exact (never clamped).
    const sim::TimeNs tc = sharded_->context_now();
    sim::ShardedEngine* sh = sharded_;
    sh->post_serial([this, sh, tc, src, dst, bytes, stream, extra_delay,
                     fn = std::move(on_arrival)]() mutable {
      const sim::TimeNs arrival = send_at(tc, src, dst, bytes, stream);
      sh->schedule_on_node(static_cast<int>(dst), arrival + extra_delay,
                           std::move(fn));
    });
    return;
  }
  const sim::TimeNs arrival = send(src, dst, bytes, stream);
  eng_->schedule_at(arrival + extra_delay, std::move(on_arrival));
}

void Network::deliver_notify(core::NodeId src, core::NodeId dst,
                             std::int64_t bytes, StreamKey stream,
                             sim::InlineFn at_dst, sim::InlineFn at_src) {
  if (sharded_ != nullptr) {
    const sim::TimeNs tc = sharded_->context_now();
    const int home = sim::current_node();
    sim::ShardedEngine* sh = sharded_;
    sh->post_serial([this, sh, tc, home, src, dst, bytes, stream,
                     fn_dst = std::move(at_dst),
                     fn_src = std::move(at_src)]() mutable {
      const sim::TimeNs arrival = send_at(tc, src, dst, bytes, stream);
      sh->schedule_on_node(static_cast<int>(dst), arrival,
                           std::move(fn_dst));
      sh->schedule_on_node(home, arrival, std::move(fn_src));
    });
    return;
  }
  const sim::TimeNs arrival = send(src, dst, bytes, stream);
  eng_->schedule_at(arrival, std::move(at_dst));
  eng_->schedule_at(arrival, std::move(at_src));
}

Network::Transfer::Transfer(Network& net, core::NodeId src, core::NodeId dst,
                            std::int64_t bytes, StreamKey stream)
    : net_(&net), src_(src), dst_(dst), bytes_(bytes), stream_(stream) {
  if (net_->sharded_ == nullptr) {
    // Legacy: reserve capacity at construction, exactly like the
    // historical Sleep-returning transfer().
    legacy_delay_ =
        net_->send(src, dst, bytes, stream) - net_->eng_->now();
  }
}

void Network::Transfer::await_suspend(std::coroutine_handle<> h) {
  if (net_->sharded_ == nullptr) {
    net_->eng_->schedule_after(legacy_delay_, [h] { h.resume(); });
    return;
  }
  sim::ShardedEngine* sh = net_->sharded_;
  const int home = sim::current_node();
  const sim::TimeNs tc = sh->context_now();
  Network* net = net_;
  const core::NodeId src = src_;
  const core::NodeId dst = dst_;
  const std::int64_t bytes = bytes_;
  const StreamKey stream = stream_;
  sh->post_serial([net, sh, home, tc, src, dst, bytes, stream, h] {
    const sim::TimeNs arrival = net->send_at(tc, src, dst, bytes, stream);
    sh->schedule_on_node(home, arrival, [h] { h.resume(); });
  });
}

Network::Transfer Network::transfer(core::NodeId src, core::NodeId dst,
                                    std::int64_t bytes, StreamKey stream) {
  return Transfer(*this, src, dst, bytes, stream);
}

int Network::hop_count(core::NodeId src, core::NodeId dst) const {
  return fabric_->torus.hop_distance(
      slot_of_node_[static_cast<std::size_t>(src)],
      slot_of_node_[static_cast<std::size_t>(dst)]);
}

}  // namespace vtopo::net
