// 3-D torus geometry with dimension-order (X then Y then Z) routing.
//
// Link identifiers are dense so the network can keep occupancy state in
// one flat array: per torus slot, six directional links (+x,-x,+y,-y,+z,
// -z) plus a NIC injection and a NIC ejection port.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/coords.hpp"

namespace vtopo::net {

/// Index of a directed physical link.
using LinkId = std::int64_t;

namespace detail {

/// Signed shortest displacement from a to b on a ring of size n:
/// result in (-n/2, n/2].
inline std::int32_t ring_delta(std::int32_t a, std::int32_t b,
                               std::int32_t n) {
  std::int32_t d = (b - a) % n;
  if (d < 0) d += n;
  if (d > n / 2) d -= n;
  return d;
}

}  // namespace detail

class TorusGeometry {
 public:
  /// Builds the smallest near-cubic torus holding `num_nodes` slots.
  explicit TorusGeometry(std::int64_t num_nodes);
  /// Builds a torus with explicit extents.
  TorusGeometry(std::int32_t x, std::int32_t y, std::int32_t z);

  [[nodiscard]] std::int64_t num_slots() const {
    return static_cast<std::int64_t>(dims_[0]) * dims_[1] * dims_[2];
  }
  [[nodiscard]] const std::array<std::int32_t, 3>& dims() const {
    return dims_;
  }
  /// Total number of directed links (6 torus directions + injection +
  /// ejection per slot).
  [[nodiscard]] std::int64_t num_links() const {
    return num_slots() * kLinksPerSlot;
  }

  void slot_coords(std::int64_t slot, std::array<std::int32_t, 3>& c) const;
  [[nodiscard]] std::int64_t slot_of(
      const std::array<std::int32_t, 3>& c) const;

  /// Minimal hop distance with wraparound.
  [[nodiscard]] int hop_distance(std::int64_t a, std::int64_t b) const;

  /// Directed torus links crossed by a dimension-order route a -> b
  /// (excludes NIC ports). Empty when a == b.
  ///
  /// Allocates a vector per call; the hot path (Network::send) uses
  /// for_each_route_link instead. Kept as the convenient/testable form
  /// and delegates to the callback walker so both stay equivalent.
  [[nodiscard]] std::vector<LinkId> route_links(std::int64_t a,
                                                std::int64_t b) const;

  /// Invoke `fn(LinkId)` for every directed torus link crossed by the
  /// dimension-order route a -> b, in route order, without allocating.
  /// The slot index is maintained incrementally (one add plus a wrap
  /// fix-up per hop) instead of re-linearizing coordinates every hop.
  template <class Fn>
  void for_each_route_link(std::int64_t a, std::int64_t b, Fn&& fn) const {
    if (a == b) return;
    std::array<std::int32_t, 3> cur{};
    std::array<std::int32_t, 3> dst{};
    slot_coords(a, cur);
    slot_coords(b, dst);
    const std::int64_t stride[3] = {
        1, dims_[0], static_cast<std::int64_t>(dims_[0]) * dims_[1]};
    std::int64_t slot = a;
    // Dimension-order: fully correct X, then Y, then Z, stepping one hop
    // at a time in the shorter wraparound direction.
    for (int dim = 0; dim < 3; ++dim) {
      const auto ud = static_cast<std::size_t>(dim);
      const std::int32_t n = dims_[ud];
      std::int32_t delta = detail::ring_delta(cur[ud], dst[ud], n);
      while (delta != 0) {
        const int step = delta > 0 ? 1 : -1;
        const int dir = 2 * dim + (step > 0 ? 0 : 1);
        fn(directional_link(slot, dir));
        std::int32_t c = cur[ud] + step;
        slot += step * stride[ud];
        if (c == n) {
          c = 0;
          slot -= static_cast<std::int64_t>(n) * stride[ud];
        } else if (c < 0) {
          c = n - 1;
          slot += static_cast<std::int64_t>(n) * stride[ud];
        }
        cur[ud] = c;
        delta -= step;
      }
    }
    assert(slot == b && "dimension-order walk must land on destination");
  }

  [[nodiscard]] LinkId injection_link(std::int64_t slot) const {
    return slot * kLinksPerSlot + 6;
  }
  [[nodiscard]] LinkId ejection_link(std::int64_t slot) const {
    return slot * kLinksPerSlot + 7;
  }

  static constexpr int kLinksPerSlot = 8;

 private:
  /// Directed link leaving `slot` in direction dir (0..5 = +x,-x,+y,-y,
  /// +z,-z).
  [[nodiscard]] LinkId directional_link(std::int64_t slot, int dir) const {
    return slot * kLinksPerSlot + dir;
  }

  std::array<std::int32_t, 3> dims_{};
};

}  // namespace vtopo::net
