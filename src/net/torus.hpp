// 3-D torus geometry with dimension-order (X then Y then Z) routing.
//
// Link identifiers are dense so the network can keep occupancy state in
// one flat array: per torus slot, six directional links (+x,-x,+y,-y,+z,
// -z) plus a NIC injection and a NIC ejection port.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/coords.hpp"

namespace vtopo::net {

/// Index of a directed physical link.
using LinkId = std::int64_t;

class TorusGeometry {
 public:
  /// Builds the smallest near-cubic torus holding `num_nodes` slots.
  explicit TorusGeometry(std::int64_t num_nodes);
  /// Builds a torus with explicit extents.
  TorusGeometry(std::int32_t x, std::int32_t y, std::int32_t z);

  [[nodiscard]] std::int64_t num_slots() const {
    return static_cast<std::int64_t>(dims_[0]) * dims_[1] * dims_[2];
  }
  [[nodiscard]] const std::array<std::int32_t, 3>& dims() const {
    return dims_;
  }
  /// Total number of directed links (6 torus directions + injection +
  /// ejection per slot).
  [[nodiscard]] std::int64_t num_links() const {
    return num_slots() * kLinksPerSlot;
  }

  void slot_coords(std::int64_t slot, std::array<std::int32_t, 3>& c) const;
  [[nodiscard]] std::int64_t slot_of(
      const std::array<std::int32_t, 3>& c) const;

  /// Minimal hop distance with wraparound.
  [[nodiscard]] int hop_distance(std::int64_t a, std::int64_t b) const;

  /// Directed torus links crossed by a dimension-order route a -> b
  /// (excludes NIC ports). Empty when a == b.
  [[nodiscard]] std::vector<LinkId> route_links(std::int64_t a,
                                                std::int64_t b) const;

  [[nodiscard]] LinkId injection_link(std::int64_t slot) const {
    return slot * kLinksPerSlot + 6;
  }
  [[nodiscard]] LinkId ejection_link(std::int64_t slot) const {
    return slot * kLinksPerSlot + 7;
  }

  static constexpr int kLinksPerSlot = 8;

 private:
  /// Directed link leaving `slot` in direction dir (0..5 = +x,-x,+y,-y,
  /// +z,-z).
  [[nodiscard]] LinkId directional_link(std::int64_t slot, int dir) const {
    return slot * kLinksPerSlot + dir;
  }

  std::array<std::int32_t, 3> dims_{};
};

}  // namespace vtopo::net
