// Tunable parameters of the simulated physical interconnect.
//
// Defaults approximate the Cray XT5 / SeaStar2+ generation: a 3-D torus,
// sub-microsecond per-hop latency, a few GB/s per link, and software
// (Portals) overheads that dominate small-message latency. Absolute
// values are calibration knobs — the reproduced figures depend on the
// *relative* costs (queueing at a hot ejection port vs. per-hop latency
// vs. serialization), which these defaults preserve.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vtopo::net {

struct NetworkParams {
  /// Sender-side software overhead per message (Portals descriptor
  /// build, doorbell).
  sim::TimeNs send_overhead = sim::us(0.5);
  /// Receiver-side software overhead per message (event handling).
  sim::TimeNs recv_overhead = sim::us(0.5);
  /// Router latency per torus hop.
  sim::TimeNs hop_latency = sim::us(0.2);
  /// Per-direction torus link bandwidth (bytes/second).
  double link_bandwidth = 3.0e9;
  /// NIC injection/ejection bandwidth (bytes/second); the ejection port
  /// of a hot-spot node is the first physical queueing point.
  double nic_bandwidth = 2.0e9;
  /// Intra-node transfer bandwidth (shared-memory copy).
  double shmem_bandwidth = 8.0e9;
  /// Intra-node fixed latency.
  sim::TimeNs shmem_latency = sim::us(0.2);

  /// Fixed NIC ejection cost per message (event processing).
  sim::TimeNs nic_message_overhead = sim::us(0.3);
  /// SeaStar2+-style simultaneous message-stream limit per NIC. Each
  /// distinct sender entity (process or CHT) owns one stream slot at a
  /// destination NIC; when a message arrives from a sender not in the
  /// table and the table is full, the oldest stream is torn down and the
  /// message pays the BEER (Basic End to End Reliability) flow-control
  /// penalty. This is the paper's Sec.-II mechanism that punishes a
  /// hot-spot receiving from thousands of distinct processes (FCG) but
  /// not from a handful of neighbor CHTs (MFCG/CFCG).
  int stream_table_size = 128;
  sim::TimeNs stream_miss_penalty = sim::us(6.0);

  /// Minimum latency of any inter-node message under these parameters:
  /// fixed software overheads plus one injection and one route hop, with
  /// serialization, queueing, ejection cost, and faults only ever adding
  /// time. This is the sharded engine's lookahead — no event executed in
  /// a window [T, T + L) can make another node observable before T + L.
  [[nodiscard]] sim::TimeNs min_remote_latency() const {
    return send_overhead + 2 * hop_latency + nic_message_overhead +
           recv_overhead;
  }
};

/// How simulated nodes are laid out on the physical torus.
enum class Placement {
  kLinear,  ///< node id -> torus coordinates in row-major order
            ///< (contiguous allocation; ranks far apart sit far apart).
  kRandom,  ///< deterministic pseudo-random permutation (fragmented
            ///< allocation, as on a busy machine).
};

}  // namespace vtopo::net
