// Simulated physical network: torus geometry + link occupancy.
//
// The model is a virtual cut-through approximation. A message's head
// advances one hop_latency per link after waiting for the link to be
// free; each crossed link is then occupied for the message's
// serialization time. Queueing therefore appears exactly where it does
// on the real machine under hot-spot traffic: at the victim node's NIC
// ejection port and on the torus links feeding it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coords.hpp"
#include "net/params.hpp"
#include "net/stream_lru.hpp"
#include "net/torus.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/task.hpp"

namespace vtopo::net {

class Network {
 public:
  Network(sim::Engine& eng, std::int64_t num_nodes,
          NetworkParams params = {}, Placement placement = Placement::kLinear,
          std::uint64_t placement_seed = 0x9a17);

  [[nodiscard]] sim::Engine& engine() const { return *eng_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] const TorusGeometry& torus() const { return torus_; }
  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(slot_of_node_.size());
  }

  /// Identity of the sending entity (process or CHT) for the purposes
  /// of the destination NIC's message-stream table.
  using StreamKey = std::int64_t;

  /// Reserve link capacity for one `bytes`-long message src -> dst
  /// starting now; returns the absolute simulated arrival time.
  /// `stream` identifies the sender entity at the destination NIC.
  sim::TimeNs send(core::NodeId src, core::NodeId dst, std::int64_t bytes,
                   StreamKey stream);

  /// send() plus scheduling `on_arrival` at the arrival time.
  void deliver(core::NodeId src, core::NodeId dst, std::int64_t bytes,
               StreamKey stream, sim::InlineFn on_arrival);

  /// Awaitable form: suspends the calling coroutine until arrival.
  [[nodiscard]] sim::Sleep transfer(core::NodeId src, core::NodeId dst,
                                    std::int64_t bytes, StreamKey stream);

  /// Stream-table misses that paid the BEER penalty so far.
  [[nodiscard]] std::uint64_t stream_misses() const {
    return stream_misses_;
  }

  /// (src,dst) pairs whose dimension-order link list has been memoized
  /// (0 when the network is too large for the route cache).
  [[nodiscard]] std::uint64_t routes_cached() const {
    return routes_cached_;
  }

  /// Torus hop distance between the slots hosting two nodes.
  [[nodiscard]] int hop_count(core::NodeId src, core::NodeId dst) const;

  // ---- Fault state (sim/fault.hpp events, applied by the runtime) ----
  //
  // Faults are tracked per directed node pair: the routes of a fixed
  // placement never change, so degrading or severing the (src, dst)
  // pair is equivalent to faulting the torus links its dimension-order
  // route crosses — without perturbing unrelated pairs that share a
  // physical link (which keeps fault blast radius deterministic and
  // byte-identical under replay). With no fault installed the send hot
  // path is untouched beyond one empty-vector test.

  /// Install (or update) a fault on the directed pair src -> dst.
  /// `degrade` > 1 multiplies serialization time; `severed` marks the
  /// pair lossy (the protocol layer queries and drops — the network
  /// itself never destroys messages).
  void fault_edge(core::NodeId src, core::NodeId dst, bool severed,
                  double degrade);
  /// Remove any fault on the directed pair.
  void clear_edge_fault(core::NodeId src, core::NodeId dst);
  /// True while src -> dst traffic is severed.
  [[nodiscard]] bool edge_severed(core::NodeId src, core::NodeId dst) const;
  /// Serialization multiplier for src -> dst (1.0 when unfaulted).
  [[nodiscard]] double edge_degrade(core::NodeId src,
                                    core::NodeId dst) const;
  /// Number of faulted pairs right now.
  [[nodiscard]] std::size_t faulted_edges() const {
    return edge_faults_.size();
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_total_; }

 private:
  [[nodiscard]] sim::TimeNs serialize_ns(std::int64_t bytes,
                                         double bandwidth) const {
    return static_cast<sim::TimeNs>(static_cast<double>(bytes) * 1e9 /
                                    bandwidth);
  }

  /// Touch `stream` at destination `dst`; true when the access missed a
  /// full table (BEER penalty applies).
  bool stream_miss(core::NodeId dst, StreamKey stream);

  // Memoized dimension-order routes. Placement is fixed at construction,
  // so the link list of a (src,dst) node pair never changes; caching it
  // replaces the per-send coordinate walk (two slot_coords
  // de-linearizations plus per-dim ring deltas) with a flat array scan
  // in the exact same link order. Enabled only while the N^2 entry table
  // stays small (kRouteCacheMaxNodes).
  struct RouteEntry {
    std::uint32_t off = 0;   ///< start index into route_links_
    std::uint16_t len = 0;   ///< links on the route
    bool built = false;
  };
  static constexpr std::int64_t kRouteCacheMaxNodes = 512;

  /// Memoize src->dst (inter-node pairs only) and return its entry.
  const RouteEntry& cache_route(core::NodeId src, core::NodeId dst);

  struct EdgeFault {
    core::NodeId src = 0;
    core::NodeId dst = 0;
    bool severed = false;
    double degrade = 1.0;
  };
  [[nodiscard]] const EdgeFault* find_fault(core::NodeId src,
                                            core::NodeId dst) const;

  sim::Engine* eng_;
  NetworkParams params_;
  TorusGeometry torus_;
  std::vector<EdgeFault> edge_faults_;  ///< tiny; linear scan
  std::vector<std::int64_t> slot_of_node_;
  std::vector<sim::TimeNs> link_free_;
  std::vector<StreamLru> streams_;
  std::vector<RouteEntry> route_cache_;   ///< N^2; empty => disabled
  std::vector<std::int32_t> route_links_; ///< concatenated cached links
  std::uint64_t routes_cached_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t stream_misses_ = 0;
};

}  // namespace vtopo::net
