// Simulated physical network: torus geometry + link occupancy.
//
// The model is a virtual cut-through approximation. A message's head
// advances one hop_latency per link after waiting for the link to be
// free; each crossed link is then occupied for the message's
// serialization time. Queueing therefore appears exactly where it does
// on the real machine under hot-spot traffic: at the victim node's NIC
// ejection port and on the torus links feeding it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coords.hpp"
#include "net/params.hpp"
#include "net/stream_lru.hpp"
#include "net/torus.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/task.hpp"

namespace vtopo::net {

/// The physical machine a Network routes over: torus geometry plus the
/// per-link occupancy horizon. A standalone Network owns a private
/// Fabric (the historical single-tenant behavior, byte for byte); the
/// multi-tenant cluster service builds one Fabric per machine and
/// attaches every tenant's Network to it, so co-resident tenants
/// contend for the same physical links while all per-tenant state
/// (stream tables, route cache, edge faults, counters) stays private.
struct Fabric {
  /// Smallest near-cubic torus holding `min_slots` slots.
  explicit Fabric(std::int64_t min_slots) : torus(min_slots) {
    link_free.assign(static_cast<std::size_t>(torus.num_links()), 0);
  }

  TorusGeometry torus;
  /// Absolute time each directed link is next free (shared occupancy).
  std::vector<sim::TimeNs> link_free;
};

class Network {
 public:
  Network(sim::Engine& eng, std::int64_t num_nodes,
          NetworkParams params = {}, Placement placement = Placement::kLinear,
          std::uint64_t placement_seed = 0x9a17);

  /// Tenant attachment: route this Network's `slots.size()` nodes over
  /// the shared `fabric`, with local node v living on machine torus
  /// slot slots[v]. Link occupancy is shared with every other Network
  /// on the fabric; everything else stays per-tenant.
  Network(sim::Engine& eng, std::shared_ptr<Fabric> fabric,
          std::vector<std::int64_t> slots, NetworkParams params = {});

  [[nodiscard]] sim::Engine& engine() const { return *eng_; }
  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] const TorusGeometry& torus() const { return fabric_->torus; }
  [[nodiscard]] const std::shared_ptr<Fabric>& fabric() const {
    return fabric_;
  }
  /// Machine torus slot hosting local node `n`.
  [[nodiscard]] std::int64_t slot_of(core::NodeId n) const {
    return slot_of_node_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(slot_of_node_.size());
  }

  /// Identity of the sending entity (process or CHT) for the purposes
  /// of the destination NIC's message-stream table.
  using StreamKey = std::int64_t;

  /// Reserve link capacity for one `bytes`-long message src -> dst
  /// starting now; returns the absolute simulated arrival time.
  /// `stream` identifies the sender entity at the destination NIC.
  sim::TimeNs send(core::NodeId src, core::NodeId dst, std::int64_t bytes,
                   StreamKey stream);

  /// send() with an explicit start time instead of engine().now(). The
  /// sharded delivery path records sends during the parallel phase and
  /// replays them against the shared link state between windows, using
  /// the sender's timestamp at the moment of the call.
  sim::TimeNs send_at(sim::TimeNs start, core::NodeId src, core::NodeId dst,
                      std::int64_t bytes, StreamKey stream);

  /// send() plus scheduling `on_arrival` at the arrival time (on the
  /// destination node's shard when sharding is enabled).
  void deliver(core::NodeId src, core::NodeId dst, std::int64_t bytes,
               StreamKey stream, sim::InlineFn on_arrival);

  /// deliver() with `extra_delay` added on top of the network arrival
  /// time (fault-injected delivery delay).
  void deliver_delayed(core::NodeId src, core::NodeId dst,
                       std::int64_t bytes, StreamKey stream,
                       sim::TimeNs extra_delay, sim::InlineFn on_arrival);

  /// deliver() plus a sender-side completion: `at_src` runs on the
  /// *calling* node at the same arrival time (one-sided put semantics —
  /// the sender learns local completion without a round trip). Both
  /// callbacks land at the exact arrival time on their own nodes.
  void deliver_notify(core::NodeId src, core::NodeId dst,
                      std::int64_t bytes, StreamKey stream,
                      sim::InlineFn at_dst, sim::InlineFn at_src);

  /// Awaitable message transfer: suspends the calling coroutine until
  /// arrival, resuming it on the node that awaited (its home shard).
  /// In legacy mode link capacity is reserved at construction, exactly
  /// like the historical `sim::Sleep`-returning transfer(); in sharded
  /// mode reservation happens in the serial phase in (time, stamp)
  /// order.
  class [[nodiscard]] Transfer {
   public:
    Transfer(Network& net, core::NodeId src, core::NodeId dst,
             std::int64_t bytes, StreamKey stream);
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

   private:
    Network* net_;
    core::NodeId src_;
    core::NodeId dst_;
    std::int64_t bytes_;
    StreamKey stream_;
    sim::TimeNs legacy_delay_ = 0;
  };
  [[nodiscard]] Transfer transfer(core::NodeId src, core::NodeId dst,
                                  std::int64_t bytes, StreamKey stream);

  /// Route cross-shard deliveries through `sharded`'s serial phase and
  /// destination-node scheduling. Must be set before any traffic flows.
  void enable_sharding(sim::ShardedEngine* sharded) { sharded_ = sharded; }
  [[nodiscard]] sim::ShardedEngine* sharded() const { return sharded_; }

  /// Stream-table misses that paid the BEER penalty so far.
  [[nodiscard]] std::uint64_t stream_misses() const {
    return stream_misses_;
  }

  /// Route memoizations performed (direct-mapped slot fills, including
  /// collision rebuilds).
  [[nodiscard]] std::uint64_t routes_cached() const {
    return routes_cached_;
  }

  /// Slots in the direct-mapped route cache (bounded; see RouteSlot).
  [[nodiscard]] std::size_t route_cache_slots() const {
    return route_cache_.size();
  }

  /// Torus hop distance between the slots hosting two nodes.
  [[nodiscard]] int hop_count(core::NodeId src, core::NodeId dst) const;

  // ---- Fault state (sim/fault.hpp events, applied by the runtime) ----
  //
  // Faults are tracked per directed node pair: the routes of a fixed
  // placement never change, so degrading or severing the (src, dst)
  // pair is equivalent to faulting the torus links its dimension-order
  // route crosses — without perturbing unrelated pairs that share a
  // physical link (which keeps fault blast radius deterministic and
  // byte-identical under replay). With no fault installed the send hot
  // path is untouched beyond one empty-vector test.

  /// Install (or update) a fault on the directed pair src -> dst.
  /// `degrade` > 1 multiplies serialization time; `severed` marks the
  /// pair lossy (the protocol layer queries and drops — the network
  /// itself never destroys messages).
  void fault_edge(core::NodeId src, core::NodeId dst, bool severed,
                  double degrade);
  /// Remove any fault on the directed pair.
  void clear_edge_fault(core::NodeId src, core::NodeId dst);
  /// True while src -> dst traffic is severed.
  [[nodiscard]] bool edge_severed(core::NodeId src, core::NodeId dst) const;
  /// Serialization multiplier for src -> dst (1.0 when unfaulted).
  [[nodiscard]] double edge_degrade(core::NodeId src,
                                    core::NodeId dst) const;
  /// Number of faulted pairs right now.
  [[nodiscard]] std::size_t faulted_edges() const {
    return edge_faults_.size();
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_total_; }

  // ---- Per-link census (tenant-isolation oracle; off by default) ----
  //
  // When enabled, every link this Network's traffic crosses (injection,
  // torus hops, ejection) increments a per-link counter, indexed by
  // fabric LinkId. The counters are host-side observation only — no
  // simulated timestamp depends on them — and they are per-Network, so
  // a tenant's census attributes exactly its own messages. The
  // isolation tests assert that a compact partition's census touches
  // only links owned by the partition's own slots (LinkId / 8).

  void enable_link_census() {
    census_.assign(static_cast<std::size_t>(fabric_->torus.num_links()), 0);
  }
  [[nodiscard]] bool link_census_enabled() const { return !census_.empty(); }
  /// Crossing counts per fabric LinkId (empty unless enabled).
  [[nodiscard]] const std::vector<std::uint64_t>& link_census() const {
    return census_;
  }

 private:
  [[nodiscard]] sim::TimeNs serialize_ns(std::int64_t bytes,
                                         double bandwidth) const {
    return static_cast<sim::TimeNs>(static_cast<double>(bytes) * 1e9 /
                                    bandwidth);
  }

  /// Touch `stream` at destination `dst`; true when the access missed a
  /// full table (BEER penalty applies).
  bool stream_miss(core::NodeId dst, StreamKey stream);

  // Memoized dimension-order routes. Placement is fixed at construction,
  // so the link list of a (src,dst) node pair never changes; caching it
  // replaces the per-send coordinate walk (two slot_coords
  // de-linearizations plus per-dim ring deltas) with a flat array scan
  // in the exact same link order.
  //
  // The cache is a direct-mapped, bounded table rather than a dense N^2
  // array: at 262k nodes a dense table would need 64G entries, while
  // real traffic touches a tiny, heavily skewed subset of pairs
  // (hot-spot figures concentrate on one victim; neighbor exchanges on
  // O(N) pairs). Slots scale with the node count but are hard-capped;
  // a colliding pair simply recomputes the route and overwrites the
  // slot, reusing the slot's link storage, so memory stays bounded at
  // every scale and hits stay allocation-free.
  struct RouteSlot {
    std::uint64_t tag = 0;  ///< 0 = empty, else ((src << 32) | dst) + 1
    std::vector<std::int32_t> links;
  };
  static constexpr std::size_t kRouteCacheMinSlots = 1024;
  static constexpr std::size_t kRouteCacheMaxSlots = 131072;

  /// Memoize src->dst (inter-node pairs only) and return its slot.
  const RouteSlot& cache_route(core::NodeId src, core::NodeId dst);

  struct EdgeFault {
    core::NodeId src = 0;
    core::NodeId dst = 0;
    bool severed = false;
    double degrade = 1.0;
  };
  [[nodiscard]] const EdgeFault* find_fault(core::NodeId src,
                                            core::NodeId dst) const;

  /// Shared construction tail: sized off slot_of_node_ and fabric_.
  void init_tables();

  sim::Engine* eng_;
  sim::ShardedEngine* sharded_ = nullptr;
  NetworkParams params_;
  std::shared_ptr<Fabric> fabric_;      ///< private unless attached
  std::vector<EdgeFault> edge_faults_;  ///< tiny; linear scan
  std::vector<std::int64_t> slot_of_node_;
  std::vector<std::uint64_t> census_;   ///< per-link crossings (opt-in)
  std::vector<StreamLru> streams_;
  std::vector<RouteSlot> route_cache_;  ///< direct-mapped, power-of-two
  std::uint64_t routes_cached_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t stream_misses_ = 0;
};

}  // namespace vtopo::net
