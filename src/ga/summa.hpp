// SUMMA distributed matrix multiply over GlobalArray2D — the ga_dgemm
// pattern: panel-wise one-sided gets of A and B blocks, local GEMM,
// no hot spot (every process pulls from row/column peers).
#pragma once

#include <cstdint>

#include "armci/proc.hpp"
#include "ga/global_array.hpp"

namespace vtopo::ga {

/// C = alpha * A x B + beta * C for square rows x rows arrays, panel
/// width `panel`. Collective: every process must call it (with its own
/// Proc); returns when this process's C block is complete. Callers
/// barrier before reading C.
[[nodiscard]] sim::Co<void> summa_multiply(
    armci::Proc& p, GlobalArray2D& a, GlobalArray2D& b, GlobalArray2D& c,
    double alpha = 1.0, double beta = 0.0, std::int64_t panel = 16,
    double compute_us_per_flop = 0.0);

}  // namespace vtopo::ga
