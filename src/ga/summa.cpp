#include "ga/summa.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace vtopo::ga {

namespace {

sim::Co<void> summa_body(armci::Proc& p, GlobalArray2D& a,
                         GlobalArray2D& b, GlobalArray2D& c, double alpha,
                         double beta, std::int64_t panel,
                         double compute_us_per_flop) {
  const std::int64_t n = a.rows();

  // This process owns C's block [row0, row0+rows) x [col0, col0+cols).
  const GlobalArray2D::Block blk = c.block_of(p.id());
  if (blk.empty()) {
    co_await p.barrier();
    co_return;
  }

  std::vector<double> acc(
      static_cast<std::size_t>(blk.rows * blk.cols), 0.0);
  std::vector<double> a_panel(
      static_cast<std::size_t>(blk.rows * panel));
  std::vector<double> b_panel(
      static_cast<std::size_t>(panel * blk.cols));

  // Everyone must see the input arrays complete before pulling panels.
  co_await p.barrier();

  for (std::int64_t k0 = 0; k0 < n; k0 += panel) {
    const std::int64_t kw = std::min(panel, n - k0);
    // One-sided pulls of the A row-panel and B column-panel this block
    // needs — SUMMA without broadcasts, as GA implements it.
    co_await a.get(p, blk.row0, blk.row0 + blk.rows, k0, k0 + kw,
                   a_panel.data(), kw);
    co_await b.get(p, k0, k0 + kw, blk.col0, blk.col0 + blk.cols,
                   b_panel.data(), blk.cols);
    for (std::int64_t i = 0; i < blk.rows; ++i) {
      for (std::int64_t k = 0; k < kw; ++k) {
        const double av = a_panel[static_cast<std::size_t>(i * kw + k)];
        for (std::int64_t j = 0; j < blk.cols; ++j) {
          acc[static_cast<std::size_t>(i * blk.cols + j)] +=
              av * b_panel[static_cast<std::size_t>(k * blk.cols + j)];
        }
      }
    }
    if (compute_us_per_flop > 0.0) {
      co_await p.compute(sim::us(compute_us_per_flop * 2.0 *
                                 static_cast<double>(blk.rows) *
                                 static_cast<double>(blk.cols) *
                                 static_cast<double>(kw)));
    }
  }

  // C_block = alpha * acc + beta * C_block, written with one local put.
  std::vector<double> result(acc.size());
  for (std::int64_t i = 0; i < blk.rows; ++i) {
    for (std::int64_t j = 0; j < blk.cols; ++j) {
      const auto idx = static_cast<std::size_t>(i * blk.cols + j);
      const double old =
          beta == 0.0 ? 0.0
                      : c.read_element(blk.row0 + i, blk.col0 + j);
      result[idx] = alpha * acc[idx] + beta * old;
    }
  }
  co_await c.put(p, blk.row0, blk.row0 + blk.rows, blk.col0,
                 blk.col0 + blk.cols, result.data(), blk.cols);
  co_await p.barrier();
}

}  // namespace

sim::Co<void> summa_multiply(armci::Proc& p, GlobalArray2D& a,
                             GlobalArray2D& b, GlobalArray2D& c,
                             double alpha, double beta,
                             std::int64_t panel,
                             double compute_us_per_flop) {
  // Validate eagerly, outside the (lazy) coroutine: an exception thrown
  // inside a simulated actor would terminate the run instead of
  // propagating to the caller.
  const std::int64_t n = a.rows();
  if (a.cols() != n || b.rows() != n || b.cols() != n || c.rows() != n ||
      c.cols() != n) {
    throw std::invalid_argument("summa_multiply: square equal extents");
  }
  if (panel <= 0) {
    throw std::invalid_argument("summa_multiply: panel must be positive");
  }
  return summa_body(p, a, b, c, alpha, beta, panel, compute_us_per_flop);
}

}  // namespace vtopo::ga
