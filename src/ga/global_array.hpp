// A Global Arrays–style distributed 2-D array over the ARMCI runtime.
//
// This is the abstraction the paper's applications actually program
// against: NWChem and the ARMCI-ported NAS benchmarks use the GA
// Toolkit, whose every patch access turns into the ARMCI one-sided
// operations this repository models (noncontiguous strided transfers
// through the CHT + virtual topology, atomic counters for NXTVAL).
//
// Distribution: dense row-major blocks on a near-square process grid.
// Patch coordinates use half-open ranges [ilo, ihi) x [jlo, jhi).
// Elements are doubles.
#pragma once

#include <cstdint>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "core/coords.hpp"

namespace vtopo::ga {

/// Dense block-distributed rows x cols array of doubles.
class GlobalArray2D {
 public:
  /// Collective creation: every process reserves its block in the
  /// global address space. Call once, before spawning programs (or
  /// uniformly from all of them).
  GlobalArray2D(armci::Runtime& rt, std::int64_t rows, std::int64_t cols);

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  /// Process grid extents.
  [[nodiscard]] std::int32_t pgrid_rows() const { return py_; }
  [[nodiscard]] std::int32_t pgrid_cols() const { return px_; }

  /// The block owned by `owner`: global [row0, row0+rows) x
  /// [col0, col0+cols). Edge blocks may be smaller (or empty).
  struct Block {
    std::int64_t row0 = 0;
    std::int64_t col0 = 0;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }
  };
  [[nodiscard]] Block block_of(armci::ProcId owner) const;
  /// Owner of element (i, j) (GA_Locate).
  [[nodiscard]] armci::ProcId owner_of(std::int64_t i,
                                       std::int64_t j) const;

  // --- One-sided patch operations (GA_Put / GA_Get / GA_Acc) ---------
  // `buf` is row-major with leading dimension `ld` (elements per row).
  // A patch may span any number of owner blocks; one strided ARMCI op
  // is issued per intersected owner.
  [[nodiscard]] sim::Co<void> put(armci::Proc& p, std::int64_t ilo,
                                  std::int64_t ihi, std::int64_t jlo,
                                  std::int64_t jhi, const double* buf,
                                  std::int64_t ld);
  [[nodiscard]] sim::Co<void> get(armci::Proc& p, std::int64_t ilo,
                                  std::int64_t ihi, std::int64_t jlo,
                                  std::int64_t jhi, double* buf,
                                  std::int64_t ld);
  [[nodiscard]] sim::Co<void> acc(armci::Proc& p, std::int64_t ilo,
                                  std::int64_t ihi, std::int64_t jlo,
                                  std::int64_t jhi, const double* buf,
                                  std::int64_t ld, double alpha = 1.0);

  /// Collective fill (GA_Zero / GA_Fill): every process fills its own
  /// block host-side; callers must barrier afterwards.
  void fill_local(armci::ProcId owner, double value);

  // --- Whole-array collectives (each process handles its own block;
  // --- bracket with barriers, as in GA) -------------------------------
  /// GA_Scale: this(block of owner) *= alpha.
  void scale_local(armci::ProcId owner, double alpha);
  /// GA_Add: this(block) = alpha*a(block) + beta*b(block). The three
  /// arrays must share extents (and therefore distribution).
  void add_local(armci::ProcId owner, double alpha,
                 const GlobalArray2D& a, double beta,
                 const GlobalArray2D& b);
  /// GA_Copy via communication: pull the patch [ilo,ihi)x[jlo,jhi) from
  /// `src` (same extents) into this array, through one-sided transfers
  /// issued by the calling process.
  [[nodiscard]] sim::Co<void> copy_patch_from(armci::Proc& p,
                                              GlobalArray2D& src,
                                              std::int64_t ilo,
                                              std::int64_t ihi,
                                              std::int64_t jlo,
                                              std::int64_t jhi);
  /// Sum of the owner's local block (combine with allreduce for a
  /// global GA_Dot-style reduction).
  [[nodiscard]] double local_sum(armci::ProcId owner) const;

  // --- Host-side element access (tests / verification only) ----------
  [[nodiscard]] double read_element(std::int64_t i, std::int64_t j) const;
  void write_element(std::int64_t i, std::int64_t j, double value);

 private:
  struct Piece {
    armci::ProcId owner;
    Block inter;  ///< the intersection, in global coordinates
  };
  /// Owner blocks intersecting a patch.
  [[nodiscard]] std::vector<Piece> intersect(std::int64_t ilo,
                                             std::int64_t ihi,
                                             std::int64_t jlo,
                                             std::int64_t jhi) const;
  /// Address of element (i, j) inside its owner's block.
  [[nodiscard]] armci::GAddr element_addr(std::int64_t i,
                                          std::int64_t j) const;

  armci::Runtime* rt_;
  std::int64_t rows_;
  std::int64_t cols_;
  std::int32_t px_;  ///< process-grid columns (j direction)
  std::int32_t py_;  ///< process-grid rows (i direction)
  std::int64_t block_rows_;  ///< nominal block extents (edges smaller)
  std::int64_t block_cols_;
  std::int64_t base_off_;    ///< block storage offset in every segment
};

/// GA NXTVAL: a shared task counter hosted by one process.
class SharedCounter {
 public:
  /// Collective creation; `host` owns the cell.
  SharedCounter(armci::Runtime& rt, armci::ProcId host = 0);

  /// Atomically claim `chunk` tickets; returns the first.
  [[nodiscard]] sim::Co<std::int64_t> next(armci::Proc& p,
                                           std::int64_t chunk = 1);
  /// Host-side reset (between phases; publish with a barrier).
  void reset(std::int64_t value = 0);
  [[nodiscard]] std::int64_t value() const;

 private:
  armci::Runtime* rt_;
  armci::GAddr cell_;
};

}  // namespace vtopo::ga
