#include "ga/global_array.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vtopo::ga {

namespace {

/// Exact-cover process grid: the most-square factorization px * py == P
/// (GA's default block distribution; degenerates to 1 x P for primes).
std::pair<std::int32_t, std::int32_t> pgrid_for(std::int64_t procs) {
  std::int64_t py = core::isqrt(procs);
  while (py > 1 && procs % py != 0) --py;
  const std::int64_t px = procs / py;
  return {static_cast<std::int32_t>(px), static_cast<std::int32_t>(py)};
}

}  // namespace

GlobalArray2D::GlobalArray2D(armci::Runtime& rt, std::int64_t rows,
                             std::int64_t cols)
    : rt_(&rt), rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("GlobalArray2D: non-positive extent");
  }
  const auto [px, py] = pgrid_for(rt.num_procs());
  px_ = px;
  py_ = py;
  block_rows_ = (rows + py_ - 1) / py_;
  block_cols_ = (cols + px_ - 1) / px_;
  base_off_ = rt.memory().alloc_all(block_rows_ * block_cols_ * 8);
}

GlobalArray2D::Block GlobalArray2D::block_of(armci::ProcId owner) const {
  const std::int64_t bi = owner / px_;
  const std::int64_t bj = owner % px_;
  Block b;
  b.row0 = std::min(bi * block_rows_, rows_);
  b.col0 = std::min(bj * block_cols_, cols_);
  b.rows = std::min(block_rows_, rows_ - b.row0);
  b.cols = std::min(block_cols_, cols_ - b.col0);
  b.rows = std::max<std::int64_t>(b.rows, 0);
  b.cols = std::max<std::int64_t>(b.cols, 0);
  return b;
}

armci::ProcId GlobalArray2D::owner_of(std::int64_t i,
                                      std::int64_t j) const {
  assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const std::int64_t bi = i / block_rows_;
  const std::int64_t bj = j / block_cols_;
  return static_cast<armci::ProcId>(bi * px_ + bj);
}

armci::GAddr GlobalArray2D::element_addr(std::int64_t i,
                                         std::int64_t j) const {
  const armci::ProcId owner = owner_of(i, j);
  const Block b = block_of(owner);
  const std::int64_t local =
      (i - b.row0) * block_cols_ + (j - b.col0);
  return armci::GAddr{owner, base_off_ + local * 8};
}

std::vector<GlobalArray2D::Piece> GlobalArray2D::intersect(
    std::int64_t ilo, std::int64_t ihi, std::int64_t jlo,
    std::int64_t jhi) const {
  assert(0 <= ilo && ilo <= ihi && ihi <= rows_);
  assert(0 <= jlo && jlo <= jhi && jhi <= cols_);
  std::vector<Piece> pieces;
  if (ilo == ihi || jlo == jhi) return pieces;
  const std::int64_t bi_lo = ilo / block_rows_;
  const std::int64_t bi_hi = (ihi - 1) / block_rows_;
  const std::int64_t bj_lo = jlo / block_cols_;
  const std::int64_t bj_hi = (jhi - 1) / block_cols_;
  for (std::int64_t bi = bi_lo; bi <= bi_hi; ++bi) {
    for (std::int64_t bj = bj_lo; bj <= bj_hi; ++bj) {
      const auto owner = static_cast<armci::ProcId>(bi * px_ + bj);
      const Block b = block_of(owner);
      Piece piece;
      piece.owner = owner;
      piece.inter.row0 = std::max(ilo, b.row0);
      piece.inter.col0 = std::max(jlo, b.col0);
      piece.inter.rows =
          std::min(ihi, b.row0 + b.rows) - piece.inter.row0;
      piece.inter.cols =
          std::min(jhi, b.col0 + b.cols) - piece.inter.col0;
      if (piece.inter.rows > 0 && piece.inter.cols > 0) {
        pieces.push_back(piece);
      }
    }
  }
  return pieces;
}

sim::Co<void> GlobalArray2D::put(armci::Proc& p, std::int64_t ilo,
                                 std::int64_t ihi, std::int64_t jlo,
                                 std::int64_t jhi, const double* buf,
                                 std::int64_t ld) {
  for (const Piece& piece : intersect(ilo, ihi, jlo, jhi)) {
    const armci::GAddr dst =
        element_addr(piece.inter.row0, piece.inter.col0);
    const double* src =
        buf + (piece.inter.row0 - ilo) * ld + (piece.inter.col0 - jlo);
    const std::int64_t dst_stride[] = {block_cols_ * 8};
    const std::int64_t src_stride[] = {ld * 8};
    const std::int64_t counts[] = {piece.inter.cols * 8,
                                   piece.inter.rows};
    co_await p.put_strided_n(
        dst, dst_stride, reinterpret_cast<const std::uint8_t*>(src),
        src_stride, counts);
  }
}

sim::Co<void> GlobalArray2D::get(armci::Proc& p, std::int64_t ilo,
                                 std::int64_t ihi, std::int64_t jlo,
                                 std::int64_t jhi, double* buf,
                                 std::int64_t ld) {
  for (const Piece& piece : intersect(ilo, ihi, jlo, jhi)) {
    const armci::GAddr src =
        element_addr(piece.inter.row0, piece.inter.col0);
    double* dst =
        buf + (piece.inter.row0 - ilo) * ld + (piece.inter.col0 - jlo);
    const std::int64_t src_stride[] = {block_cols_ * 8};
    const std::int64_t dst_stride[] = {ld * 8};
    const std::int64_t counts[] = {piece.inter.cols * 8,
                                   piece.inter.rows};
    co_await p.get_strided_n(reinterpret_cast<std::uint8_t*>(dst),
                             dst_stride, src, src_stride, counts);
  }
}

sim::Co<void> GlobalArray2D::acc(armci::Proc& p, std::int64_t ilo,
                                 std::int64_t ihi, std::int64_t jlo,
                                 std::int64_t jhi, const double* buf,
                                 std::int64_t ld, double alpha) {
  for (const Piece& piece : intersect(ilo, ihi, jlo, jhi)) {
    const armci::GAddr dst =
        element_addr(piece.inter.row0, piece.inter.col0);
    const double* src =
        buf + (piece.inter.row0 - ilo) * ld + (piece.inter.col0 - jlo);
    const std::int64_t dst_stride[] = {block_cols_ * 8};
    const std::int64_t src_stride[] = {ld * 8};
    const std::int64_t counts[] = {piece.inter.cols * 8,
                                   piece.inter.rows};
    co_await p.acc_strided_f64(dst, dst_stride, src, src_stride, counts,
                               alpha);
  }
}

void GlobalArray2D::fill_local(armci::ProcId owner, double value) {
  const Block b = block_of(owner);
  for (std::int64_t r = 0; r < b.rows; ++r) {
    for (std::int64_t c = 0; c < b.cols; ++c) {
      rt_->memory().write_f64(
          armci::GAddr{owner,
                       base_off_ + (r * block_cols_ + c) * 8},
          value);
    }
  }
}

void GlobalArray2D::scale_local(armci::ProcId owner, double alpha) {
  const Block b = block_of(owner);
  for (std::int64_t r = 0; r < b.rows; ++r) {
    for (std::int64_t c = 0; c < b.cols; ++c) {
      const armci::GAddr addr{owner,
                              base_off_ + (r * block_cols_ + c) * 8};
      rt_->memory().write_f64(addr, alpha * rt_->memory().read_f64(addr));
    }
  }
}

void GlobalArray2D::add_local(armci::ProcId owner, double alpha,
                              const GlobalArray2D& a, double beta,
                              const GlobalArray2D& b) {
  if (a.rows_ != rows_ || a.cols_ != cols_ || b.rows_ != rows_ ||
      b.cols_ != cols_) {
    throw std::invalid_argument("GlobalArray2D::add_local: extent mismatch");
  }
  const Block blk = block_of(owner);
  for (std::int64_t r = 0; r < blk.rows; ++r) {
    for (std::int64_t c = 0; c < blk.cols; ++c) {
      const std::int64_t i = blk.row0 + r;
      const std::int64_t j = blk.col0 + c;
      write_element(i, j, alpha * a.read_element(i, j) +
                              beta * b.read_element(i, j));
    }
  }
}

sim::Co<void> GlobalArray2D::copy_patch_from(armci::Proc& p,
                                             GlobalArray2D& src,
                                             std::int64_t ilo,
                                             std::int64_t ihi,
                                             std::int64_t jlo,
                                             std::int64_t jhi) {
  const std::int64_t rows = ihi - ilo;
  const std::int64_t cols = jhi - jlo;
  if (rows <= 0 || cols <= 0) co_return;
  std::vector<double> staging(
      static_cast<std::size_t>(rows * cols));
  co_await src.get(p, ilo, ihi, jlo, jhi, staging.data(), cols);
  co_await put(p, ilo, ihi, jlo, jhi, staging.data(), cols);
}

double GlobalArray2D::local_sum(armci::ProcId owner) const {
  const Block b = block_of(owner);
  double sum = 0.0;
  for (std::int64_t r = 0; r < b.rows; ++r) {
    for (std::int64_t c = 0; c < b.cols; ++c) {
      sum += rt_->memory().read_f64(
          armci::GAddr{owner, base_off_ + (r * block_cols_ + c) * 8});
    }
  }
  return sum;
}

double GlobalArray2D::read_element(std::int64_t i, std::int64_t j) const {
  return rt_->memory().read_f64(element_addr(i, j));
}

void GlobalArray2D::write_element(std::int64_t i, std::int64_t j,
                                  double value) {
  rt_->memory().write_f64(element_addr(i, j), value);
}

SharedCounter::SharedCounter(armci::Runtime& rt, armci::ProcId host)
    : rt_(&rt), cell_{host, rt.memory().alloc_all(8)} {}

sim::Co<std::int64_t> SharedCounter::next(armci::Proc& p,
                                          std::int64_t chunk) {
  const std::int64_t first = co_await p.fetch_add(cell_, chunk);
  co_return first;
}

void SharedCounter::reset(std::int64_t value) {
  rt_->memory().write_i64(cell_, value);
}

std::int64_t SharedCounter::value() const {
  return rt_->memory().read_i64(cell_);
}

}  // namespace vtopo::ga
