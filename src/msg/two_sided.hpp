// Two-sided (MPI-style) message passing over the same simulated
// network — a control substrate.
//
// The paper's background contrasts the GAS model with message passing.
// Two-sided sends go process-to-process over the NIC and never touch a
// CHT or a request buffer, so virtual topologies must have NO effect on
// them. Workloads ported to this layer (workloads/nas_lu.cpp has a
// two-sided mode) serve as a negative control for every topology
// experiment: if a "virtual topology effect" shows up here, the model
// is broken.
//
// Semantics: ordered per (sender, receiver) pair; matching by (source,
// tag) with wildcards; eager payload delivery below a threshold and a
// rendezvous round-trip above it, as in real MPI implementations.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "sim/task.hpp"

namespace vtopo::msg {

inline constexpr std::int32_t kAnySource = -1;
inline constexpr std::int32_t kAnyTag = -1;

/// A received message.
struct Message {
  armci::ProcId source = 0;
  std::int32_t tag = 0;
  std::vector<std::uint8_t> payload;
};

class TwoSided {
 public:
  struct Params {
    /// Payloads up to this size travel with the envelope (eager); larger
    /// ones pay a rendezvous round-trip before the data moves.
    std::int64_t eager_threshold = 16 * 1024;
    std::int64_t envelope_bytes = 48;
    /// Receiver-side matching cost per message.
    sim::TimeNs match_overhead = sim::us(0.3);
  };

  explicit TwoSided(armci::Runtime& rt);
  TwoSided(armci::Runtime& rt, Params params);

  /// Blocking-complete send (returns when the payload has left and, for
  /// rendezvous, when the receiver has matched).
  [[nodiscard]] sim::Co<void> send(armci::Proc& from, armci::ProcId to,
                                   std::int32_t tag,
                                   std::span<const std::uint8_t> data);

  /// Receive the oldest message matching (src, tag); wildcards allowed.
  /// One outstanding recv per (process, match) is supported — enough for
  /// SPMD codes.
  [[nodiscard]] sim::Co<Message> recv(armci::Proc& self,
                                      std::int32_t src = kAnySource,
                                      std::int32_t tag = kAnyTag);

  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  struct Envelope {
    armci::ProcId source;
    armci::ProcId dest;
    std::int32_t tag;
    std::shared_ptr<std::vector<std::uint8_t>> payload;
    bool rendezvous;
    /// Set when the payload has fully arrived (eager: at envelope
    /// arrival; rendezvous: after the data transfer).
    sim::Future<int> arrived;
    /// Fulfilled when the receiver matched (releases rendezvous sends).
    sim::Future<int> matched;

    Envelope(sim::Engine& eng)
        : arrived(eng), matched(eng) {}
  };
  using EnvelopePtr = std::shared_ptr<Envelope>;

  struct PostedRecv {
    std::int32_t src;
    std::int32_t tag;
    sim::Future<EnvelopePtr> fut;
  };

  static bool matches(const Envelope& e, std::int32_t src,
                      std::int32_t tag) {
    return (src == kAnySource || e.source == src) &&
           (tag == kAnyTag || e.tag == tag);
  }

  void on_envelope(const EnvelopePtr& env);

  armci::Runtime* rt_;
  Params params_;
  /// Per destination process: unexpected messages and posted receives.
  std::vector<std::deque<EnvelopePtr>> unexpected_;
  std::vector<std::deque<PostedRecv>> posted_;
  std::uint64_t messages_ = 0;
};

}  // namespace vtopo::msg
