#include "msg/two_sided.hpp"

#include <cassert>

namespace vtopo::msg {

TwoSided::TwoSided(armci::Runtime& rt) : TwoSided(rt, Params{}) {}

TwoSided::TwoSided(armci::Runtime& rt, Params params)
    : rt_(&rt),
      params_(params),
      unexpected_(static_cast<std::size_t>(rt.num_procs())),
      posted_(static_cast<std::size_t>(rt.num_procs())) {}

sim::Co<void> TwoSided::send(armci::Proc& from, armci::ProcId to,
                             std::int32_t tag,
                             std::span<const std::uint8_t> data) {
  sim::Engine& eng = rt_->engine();
  ++messages_;

  auto env = std::make_shared<Envelope>(eng);
  env->source = from.id();
  env->dest = to;
  env->tag = tag;
  env->payload = std::make_shared<std::vector<std::uint8_t>>(
      data.begin(), data.end());
  env->rendezvous =
      static_cast<std::int64_t>(data.size()) > params_.eager_threshold;

  const core::NodeId src_node = from.node();
  const core::NodeId dst_node = rt_->node_of(to);
  const std::int64_t envelope_wire =
      params_.envelope_bytes +
      (env->rendezvous ? 0 : static_cast<std::int64_t>(data.size()));

  // Envelope (plus payload when eager) travels immediately.
  TwoSided* self = this;
  rt_->network().deliver(src_node, dst_node, envelope_wire,
                         rt_->proc_stream(from.id()),
                         [self, env] { self->on_envelope(env); });

  if (!env->rendezvous) {
    env->arrived.set(0);
    co_return;  // eager: locally complete once the wire send is issued
  }

  // Rendezvous: wait for the receiver's match (clear-to-send), then
  // stream the payload; the send completes at payload arrival.
  co_await env->matched;
  // CTS travels back to us...
  co_await rt_->network().transfer(dst_node, src_node,
                                   params_.envelope_bytes,
                                   rt_->proc_stream(to));
  // ...then the payload goes out.
  const auto bytes = static_cast<std::int64_t>(env->payload->size());
  const sim::TimeNs arrival = rt_->network().send(
      src_node, dst_node, params_.envelope_bytes + bytes,
      rt_->proc_stream(from.id()));
  sim::Future<int> done = env->arrived;
  eng.schedule_at(arrival, [done]() mutable { done.set(0); });
  co_await sim::Sleep(eng, arrival - eng.now());
}

void TwoSided::on_envelope(const EnvelopePtr& env) {
  auto& queue = posted_[static_cast<std::size_t>(env->dest)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (matches(*env, it->src, it->tag)) {
      sim::Future<EnvelopePtr> fut = it->fut;
      queue.erase(it);
      fut.set(env);
      return;
    }
  }
  unexpected_[static_cast<std::size_t>(env->dest)].push_back(env);
}

sim::Co<Message> TwoSided::recv(armci::Proc& self, std::int32_t src,
                                std::int32_t tag) {
  sim::Engine& eng = rt_->engine();
  co_await sim::Sleep(eng, params_.match_overhead);

  EnvelopePtr env;
  auto& pending = unexpected_[static_cast<std::size_t>(self.id())];
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (matches(**it, src, tag)) {
      env = *it;
      pending.erase(it);
      break;
    }
  }
  if (!env) {
    sim::Future<EnvelopePtr> fut(eng);
    posted_[static_cast<std::size_t>(self.id())].push_back(
        PostedRecv{src, tag, fut});
    env = co_await fut;
  }

  env->matched.set(0);
  co_await env->arrived;  // eager: already set; rendezvous: data transfer

  Message msg;
  msg.source = env->source;
  msg.tag = env->tag;
  msg.payload = std::move(*env->payload);
  co_return msg;
}

}  // namespace vtopo::msg
