// Protocol-level collective algorithms over two-sided messages.
//
// Runtime::barrier()/allreduce_sum() are idealized (host-side state,
// modeled latency) — right for microbenchmark drivers that should not
// perturb the traffic under study. This library provides the real
// thing for applications: textbook algorithms whose every hop is an
// actual simulated message paying real network costs:
//
//   barrier    — dissemination (Hensgen et al.): ceil(log2 P) rounds,
//                round k partner = (rank +- 2^k) mod P
//   broadcast  — binomial tree from a root
//   allreduce  — recursive doubling (power-of-two participant counts;
//                general counts fold the remainder onto a power-of-two
//                core first, as MPICH does)
//
// All operations take a distinct `tag_base`; concurrent collectives on
// disjoint tags do not interfere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "armci/proc.hpp"
#include "msg/two_sided.hpp"

namespace vtopo::coll {

class Collectives {
 public:
  /// Uses (and shares) a two-sided channel; tags at or above
  /// `tag_base` must be reserved for this object.
  Collectives(armci::Runtime& rt, msg::TwoSided& channel,
              std::int32_t tag_base = 1 << 20);

  /// Dissemination barrier over all processes.
  [[nodiscard]] sim::Co<void> barrier(armci::Proc& p);

  /// Binomial-tree broadcast of `value` from `root`; every caller
  /// returns the root's value.
  [[nodiscard]] sim::Co<double> broadcast(armci::Proc& p,
                                          armci::ProcId root,
                                          double value);

  /// Recursive-doubling sum-allreduce; every caller returns the total.
  [[nodiscard]] sim::Co<double> allreduce_sum(armci::Proc& p,
                                              double value);

 private:
  /// Tag block for (collective kind, epoch): 128 tags per epoch, 512
  /// epochs per kind before wrap (far beyond any in-flight overlap).
  [[nodiscard]] std::int32_t tag(std::int32_t phase,
                                 std::int32_t epoch) const {
    return tag_base_ + phase * (512 * 128) + (epoch % 512) * 128;
  }
  static std::vector<std::uint8_t> pack(double v);
  static double unpack(std::span<const std::uint8_t> bytes);

  armci::Runtime* rt_;
  msg::TwoSided* channel_;
  std::int32_t tag_base_;
  /// Per-process collective epochs (each kind); members advance in
  /// lock-step because every process joins every collective.
  std::vector<std::int32_t> barrier_epochs_;
  std::vector<std::int32_t> bcast_epochs_;
  std::vector<std::int32_t> reduce_epochs_;
};

}  // namespace vtopo::coll
