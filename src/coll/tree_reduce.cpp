#include "coll/tree_reduce.hpp"

#include <cstring>

namespace vtopo::coll {

namespace {

std::vector<std::uint8_t> pack(double v) {
  std::vector<std::uint8_t> bytes(sizeof(double));
  std::memcpy(bytes.data(), &v, sizeof(double));
  return bytes;
}

double unpack(const std::vector<std::uint8_t>& bytes) {
  double v;
  std::memcpy(&v, bytes.data(), sizeof(double));
  return v;
}

}  // namespace

TreeReduce::TreeReduce(armci::Runtime& rt, msg::TwoSided& channel,
                       core::RequestTree tree, std::int32_t tag_base)
    : rt_(&rt),
      channel_(&channel),
      tree_(std::move(tree)),
      tag_base_(tag_base) {
  children_.resize(tree_.parent.size());
  for (std::size_t v = 0; v < tree_.parent.size(); ++v) {
    if (static_cast<core::NodeId>(v) == tree_.root) continue;
    children_[static_cast<std::size_t>(tree_.parent[v])].push_back(
        static_cast<core::NodeId>(v));
  }
  epochs_.assign(static_cast<std::size_t>(rt.num_procs()), 0);
}

sim::Co<double> TreeReduce::allreduce_sum(armci::Proc& p, double value) {
  const int ppn = rt_->procs_per_node();
  const core::NodeId my_node = p.node();
  const auto master =
      static_cast<armci::ProcId>(my_node * ppn);
  const auto master_of = [ppn](core::NodeId n) {
    return static_cast<armci::ProcId>(n * ppn);
  };
  const std::int32_t epoch =
      epochs_[static_cast<std::size_t>(p.id())]++;
  // Tag plan per epoch (window 1024): +0 intra-node up, +1 tree up,
  // +2 tree down, +3 intra-node down.
  const std::int32_t base = tag_base_ + (epoch % 1024) * 4;

  if (p.id() != master) {
    // Leaf process: contribute up, wait for the result down.
    co_await channel_->send(p, master, base + 0, pack(value));
    const msg::Message m = co_await channel_->recv(p, master, base + 3);
    co_return unpack(m.payload);
  }

  // Node master: gather local processes...
  double sum = value;
  for (int i = 1; i < ppn; ++i) {
    const msg::Message m =
        co_await channel_->recv(p, master + i, base + 0);
    sum += unpack(m.payload);
  }
  // ...and child nodes along the topology tree.
  // vtopo-lint: allow(suspension-lifetime) -- children_ is built once at construction and never mutated during a reduce
  const auto& kids = children_[static_cast<std::size_t>(my_node)];
  for (const core::NodeId child : kids) {
    const msg::Message m =
        co_await channel_->recv(p, master_of(child), base + 1);
    sum += unpack(m.payload);
  }
  if (my_node == tree_.root) {
    root_in_messages_ =
        static_cast<std::int64_t>(kids.size()) + (ppn - 1);
  } else {
    // Send the partial up; receive the total back.
    const auto parent = master_of(
        tree_.parent[static_cast<std::size_t>(my_node)]);
    co_await channel_->send(p, parent, base + 1, pack(sum));
    const msg::Message m = co_await channel_->recv(p, parent, base + 2);
    sum = unpack(m.payload);
  }
  // Fan the total out: to child masters, then to local processes.
  for (const core::NodeId child : kids) {
    co_await channel_->send(p, master_of(child), base + 2, pack(sum));
  }
  for (int i = 1; i < ppn; ++i) {
    co_await channel_->send(p, master + i, base + 3, pack(sum));
  }
  co_return sum;
}

}  // namespace vtopo::coll
