#include "coll/collectives.hpp"

#include <cassert>
#include <cstring>

namespace vtopo::coll {

namespace {

/// Largest power of two <= v (v > 0).
std::int64_t pow2_floor(std::int64_t v) {
  std::int64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

Collectives::Collectives(armci::Runtime& rt, msg::TwoSided& channel,
                         std::int32_t tag_base)
    : rt_(&rt), channel_(&channel), tag_base_(tag_base) {
  barrier_epochs_.assign(static_cast<std::size_t>(rt.num_procs()), 0);
  bcast_epochs_.assign(static_cast<std::size_t>(rt.num_procs()), 0);
  reduce_epochs_.assign(static_cast<std::size_t>(rt.num_procs()), 0);
}

std::vector<std::uint8_t> Collectives::pack(double v) {
  std::vector<std::uint8_t> bytes(sizeof(double));
  std::memcpy(bytes.data(), &v, sizeof(double));
  return bytes;
}

double Collectives::unpack(std::span<const std::uint8_t> bytes) {
  assert(bytes.size() >= sizeof(double));
  double v;
  std::memcpy(&v, bytes.data(), sizeof(double));
  return v;
}

sim::Co<void> Collectives::barrier(armci::Proc& p) {
  const std::int64_t n = rt_->num_procs();
  const std::int32_t epoch =
      barrier_epochs_[static_cast<std::size_t>(p.id())]++;
  const std::int32_t base = tag(0, epoch);
  if (n == 1) co_return;
  // Dissemination: after round k every process has (transitively) heard
  // from 2^(k+1) predecessors; ceil(log2 n) rounds synchronize all.
  std::vector<std::uint8_t> token{1};
  std::int32_t round = 0;
  for (std::int64_t dist = 1; dist < n; dist *= 2, ++round) {
    const auto to = static_cast<armci::ProcId>((p.id() + dist) % n);
    const auto from =
        static_cast<armci::ProcId>((p.id() - dist + n) % n);
    co_await channel_->send(p, to, base + round, token);
    co_await channel_->recv(p, from, base + round);
  }
}

sim::Co<double> Collectives::broadcast(armci::Proc& p,
                                       armci::ProcId root, double value) {
  const std::int64_t n = rt_->num_procs();
  const std::int32_t epoch =
      bcast_epochs_[static_cast<std::size_t>(p.id())]++;
  const std::int32_t base = tag(1, epoch);
  const std::int64_t r = (p.id() - root + n) % n;  // relative rank
  double payload = value;

  // Tag per tree level: bit index of the mask (agreed by both ends).
  auto level_tag = [&](std::int64_t mask) {
    std::int32_t bit = 0;
    while ((std::int64_t{1} << bit) < mask) ++bit;
    return base + bit;
  };
  // Receive from the binomial parent (non-roots).
  std::int64_t mask = 1;
  while (mask < n) {
    if ((r & mask) != 0) {
      const auto parent =
          static_cast<armci::ProcId>(((r - mask) + root) % n);
      const msg::Message m =
          co_await channel_->recv(p, parent, level_tag(mask));
      payload = unpack(m.payload);
      break;
    }
    mask <<= 1;
  }
  // Forward to binomial children.
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < n) {
      const auto child =
          static_cast<armci::ProcId>(((r + mask) + root) % n);
      co_await channel_->send(p, child, level_tag(mask), pack(payload));
    }
    mask >>= 1;
  }
  co_return payload;
}

sim::Co<double> Collectives::allreduce_sum(armci::Proc& p, double value) {
  const std::int64_t n = rt_->num_procs();
  const std::int32_t epoch =
      reduce_epochs_[static_cast<std::size_t>(p.id())]++;
  const std::int32_t base = tag(2, epoch);
  if (n == 1) co_return value;

  const std::int64_t core = pow2_floor(n);
  double sum = value;

  // Fold the remainder onto the power-of-two core (MPICH-style).
  if (p.id() >= core) {
    co_await channel_->send(p, static_cast<armci::ProcId>(p.id() - core),
                            base + 40, pack(sum));
    const msg::Message m =
        co_await channel_->recv(p,
                                static_cast<armci::ProcId>(p.id() - core),
                                base + 41);
    co_return unpack(m.payload);
  }
  if (p.id() + core < n) {
    const msg::Message m = co_await channel_->recv(
        p, static_cast<armci::ProcId>(p.id() + core), base + 40);
    sum += unpack(m.payload);
  }

  // Recursive doubling within the core.
  std::int32_t round = 0;
  for (std::int64_t mask = 1; mask < core; mask *= 2, ++round) {
    const auto partner = static_cast<armci::ProcId>(p.id() ^ mask);
    co_await channel_->send(p, partner, base + round, pack(sum));
    const msg::Message m = co_await channel_->recv(p, partner, base + round);
    sum += unpack(m.payload);
  }

  // Hand the result back to the folded remainder.
  if (p.id() + core < n) {
    co_await channel_->send(p, static_cast<armci::ProcId>(p.id() + core),
                            base + 41, pack(sum));
  }
  co_return sum;
}

}  // namespace vtopo::coll
