// Topology-tree collectives: the paper's request-path tree, used as an
// aggregation tree.
//
// Sec. III shows that a virtual topology turns the flat all-to-root
// request tree into a k-nomial tree of depth 2 (MFCG) or 3 (CFCG).
// The same tree works in reverse as a reduction/broadcast tree: the hot
// root then receives O(sqrt N) messages instead of N-1 — contention
// attenuation for collectives, a direct corollary the paper leaves on
// the table. tree_allreduce_sum() implements it over two-sided
// messages: processes combine on their node master, masters combine
// along the request-tree edges toward the root node, and the total
// flows back down the same tree.
#pragma once

#include "armci/proc.hpp"
#include "core/tree_analysis.hpp"
#include "msg/two_sided.hpp"

namespace vtopo::coll {

class TreeReduce {
 public:
  /// `tree` must be built over the runtime's own topology with the
  /// desired root node; tags at or above `tag_base` are reserved.
  TreeReduce(armci::Runtime& rt, msg::TwoSided& channel,
             core::RequestTree tree, std::int32_t tag_base = 1 << 24);

  /// Sum-allreduce along the topology tree; every caller returns the
  /// global total. All processes must participate.
  [[nodiscard]] sim::Co<double> allreduce_sum(armci::Proc& p,
                                              double value);

  /// Messages the root node's master received in the last collective —
  /// the contention-attenuation measure (= root fanout + local procs).
  [[nodiscard]] std::int64_t root_in_messages() const {
    return root_in_messages_;
  }

 private:
  armci::Runtime* rt_;
  msg::TwoSided* channel_;
  core::RequestTree tree_;
  std::int32_t tag_base_;
  std::vector<std::vector<core::NodeId>> children_;  ///< per node
  std::vector<std::int32_t> epochs_;                 ///< per process
  std::int64_t root_in_messages_ = 0;
};

}  // namespace vtopo::coll
