// svc::ClusterService — a long-lived multi-tenant job service over one
// simulated machine.
//
// The service multiplexes queued jobs (JobSpec) onto a shared torus:
// admission through a bounded priority+aging queue (AdmissionQueue),
// placement through core::TorusPartitioner under a pluggable policy,
// and execution on a dedicated per-tenant armci::Runtime — its own
// TopologyManager epoch, CreditBank budget, QoS config, fault plan and
// stats — so reconfigurations, fault injection, and QoS retunes are
// tenant-local events by construction.
//
// Two execution modes, selected by ServiceConfig::shards:
//
//   Coupled (shards == 0): every co-resident tenant runtime shares ONE
//   legacy sim::Engine and ONE net::Fabric, so tenants contend for the
//   same physical links with exact event-level interleaving. This is
//   the mode the isolation oracles run in: a compact partition's routes
//   never leave its own box, so a victim's event stream is bit-identical
//   solo vs co-resident, while striped partitions show true link
//   contention. Scheduling is event-driven on the machine engine;
//   tenant teardown (CHT poison + quiescence validation) is deferred
//   until the machine drains, then performed in start order.
//
//   Uncoupled (shards >= 1): each job runs on a private self-hosted
//   sharded runtime (durations shard-invariant, PR 6) and the service
//   advances a host-side deterministic timeline (completions before
//   arrivals at equal times, FIFO within each). No cross-tenant link
//   coupling — this mode trades interference fidelity for host
//   parallelism: host_jobs > 1 simulates co-resident jobs on parallel
//   host threads with byte-identical output.
//
// With one tenant submitted at t=0 on a machine sized to the job, the
// coupled path is byte-identical to the standalone workload drivers
// (the fig-family goldens lock this).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "svc/admission.hpp"
#include "svc/job.hpp"

namespace vtopo::svc {

struct ServiceConfig {
  /// Machine torus size: the smallest near-cubic torus holding this
  /// many slots (same shaping rule as a standalone Network).
  std::int64_t machine_slots = 64;
  core::PartitionPolicy policy = core::PartitionPolicy::kCompactBlock;
  /// Admission bound; arrivals beyond it are rejected (backpressure).
  std::size_t queue_capacity = 256;
  /// One effective-priority level per this much queue wait (starvation
  /// freedom; see AdmissionQueue).
  sim::TimeNs aging_quantum = 1000000;
  /// 0 = coupled single-engine mode; >= 1 = uncoupled per-job sharded
  /// runtimes with this shard count.
  int shards = 0;
  /// Uncoupled mode: > 1 simulates co-resident jobs on parallel host
  /// threads (one per running job); output is byte-identical to 1.
  int host_jobs = 1;
  sim::ThreadMode thread_mode = sim::ThreadMode::kAuto;
  /// Coupled mode: record each tenant's per-fabric-link crossings
  /// (JobResult::link_census) for the isolation tests.
  bool link_census = false;
};

struct ServiceReport {
  /// One entry per submitted spec, submission order.
  std::vector<JobResult> results;
  std::array<std::int32_t, 3> machine_dims{};
  sim::TimeNs total_sim_ns = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;

  /// Deterministic textual render: the byte-diff surface for the
  /// `--jobs`/`--shards` invariance gates (and the golden input for the
  /// single-tenant identity lock).
  [[nodiscard]] std::string canonical() const;
};

class ClusterService {
 public:
  explicit ClusterService(ServiceConfig cfg) : cfg_(cfg) {}
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

  /// Run a job mix to completion and report per-job results. The same
  /// config + specs always produce the same report, byte for byte
  /// (within one mode; coupled and uncoupled are distinct families).
  [[nodiscard]] ServiceReport run(const std::vector<JobSpec>& specs);

 private:
  ServiceConfig cfg_;
};

}  // namespace vtopo::svc
