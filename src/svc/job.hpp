// Schedulable jobs for the multi-tenant cluster service.
//
// A JobSpec names a tenant, a workload kind, a node count, and the
// per-tenant runtime knobs (topology, QoS, faults, reconfiguration).
// The service carves a torus partition for it, builds a dedicated
// armci::Runtime over that partition, and runs the workload's
// JobProgram on it; the JobResult carries the queueing timeline plus
// the tenant's own checksum/stats/census, which is what the isolation
// oracles compare solo vs co-resident.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workloads/common.hpp"

namespace vtopo::svc {

enum class JobKind {
  kDft,        ///< NXTVAL-counter-bound SCF proxy (hot-spot victim)
  kCcsd,       ///< bandwidth-bound strided tiles
  kLu,         ///< neighbor wavefront
  kPhased,     ///< alternating hot/bandwidth phases
  kSynthetic,  ///< tunable hot-spot mix (chaos filler)
  kStorm,      ///< fetch-add storm on the tenant's own rank 0 (aggressor)
  kProbe,      ///< per-rank-latency contention probe (interference victim)
};

[[nodiscard]] std::string to_string(JobKind k);
[[nodiscard]] std::optional<JobKind> parse_job_kind(const std::string& s);

struct JobSpec {
  std::string name;  ///< tenant label (report key; need not be unique)
  JobKind kind = JobKind::kDft;
  std::int64_t nodes = 8;
  int procs_per_node = 2;
  /// Admission priority; higher pops sooner (aging closes the gap — see
  /// AdmissionQueue).
  int priority = 0;
  /// Arrival time on the machine timeline.
  sim::TimeNs submit_at = 0;
  /// Workload size knob, kind-specific units (tasks/tiles/iterations/
  /// ops per proc); 0 picks a service-scaled default.
  std::int64_t ops = 0;
  core::TopologyKind topology = core::TopologyKind::kFcg;
  core::ForwardingPolicy policy = core::ForwardingPolicy::kLowestDimFirst;
  std::uint64_t seed = 42;
  std::int64_t segment_bytes = std::int64_t{8} << 20;
  /// Per-tenant runtime knobs: QoS lives in armci.qos, so a retune is a
  /// tenant-local event by construction.
  armci::ArmciParams armci{};
  net::NetworkParams net{};
  /// Per-tenant seeded chaos; outages act on the tenant's own Network
  /// overlay and CHTs only.
  std::optional<sim::FaultPlan> faults;
  /// Per-tenant mid-run topology reconfiguration.
  std::optional<work::ReconfigSpec> reconfigure;
};

struct JobResult {
  std::string name;
  JobKind kind = JobKind::kDft;
  std::int64_t job_id = -1;  ///< submission index
  bool rejected = false;     ///< admission backpressure (queue full)
  sim::TimeNs submit_time = 0;
  sim::TimeNs start_time = 0;   ///< partition carved, runtime built
  sim::TimeNs finish_time = 0;  ///< last proc body completed
  /// Workload checksum (bit-exact under co-residency for order-
  /// independent workloads like dft — see make_nwchem_dft_job).
  double checksum = 0.0;
  armci::RuntimeStats stats{};
  /// Per-rank op latencies in us for kProbe/kStorm (-1 = unmeasured).
  std::vector<double> latencies;
  /// The machine slots the tenant ran on (local node v -> slots[v]).
  std::vector<std::int64_t> slots;
  /// Per-fabric-link crossing counts for this tenant's own traffic
  /// (coupled mode with ServiceConfig::link_census only).
  std::vector<std::uint64_t> link_census;

  [[nodiscard]] sim::TimeNs queue_wait() const {
    return start_time - submit_time;
  }
};

/// Allocate the spec's workload on a tenant runtime and return it as a
/// ready-to-spawn program (the service-scaled configs live here).
[[nodiscard]] work::JobProgram make_program(armci::Runtime& rt,
                                            const JobSpec& spec);

}  // namespace vtopo::svc
