#include "svc/job.hpp"

#include "workloads/contention.hpp"
#include "workloads/nas_lu.hpp"
#include "workloads/nwchem_ccsd.hpp"
#include "workloads/nwchem_dft.hpp"
#include "workloads/phased.hpp"
#include "workloads/synthetic.hpp"

namespace vtopo::svc {

std::string to_string(JobKind k) {
  switch (k) {
    case JobKind::kDft:
      return "dft";
    case JobKind::kCcsd:
      return "ccsd";
    case JobKind::kLu:
      return "lu";
    case JobKind::kPhased:
      return "phased";
    case JobKind::kSynthetic:
      return "synthetic";
    case JobKind::kStorm:
      return "storm";
    case JobKind::kProbe:
      return "probe";
  }
  return "?";
}

std::optional<JobKind> parse_job_kind(const std::string& s) {
  if (s == "dft") return JobKind::kDft;
  if (s == "ccsd") return JobKind::kCcsd;
  if (s == "lu") return JobKind::kLu;
  if (s == "phased") return JobKind::kPhased;
  if (s == "synthetic") return JobKind::kSynthetic;
  if (s == "storm") return JobKind::kStorm;
  if (s == "probe") return JobKind::kProbe;
  return std::nullopt;
}

work::JobProgram make_program(armci::Runtime& rt, const JobSpec& spec) {
  // Service-scaled workload configs: the standalone drivers default to
  // paper-sized problems (tens of thousands of tasks); a scheduled job
  // is one of many on a shared machine, so the defaults here are two to
  // three orders smaller. spec.ops overrides the kind's size knob.
  switch (spec.kind) {
    case JobKind::kDft: {
      work::DftConfig cfg;
      cfg.scf_iterations = 1;
      cfg.total_tasks = spec.ops > 0 ? spec.ops : 192;
      cfg.block_doubles = 48;
      cfg.compute_us_per_task = 150.0;
      cfg.chunk = 2;
      return work::make_nwchem_dft_job(rt, cfg);
    }
    case JobKind::kCcsd: {
      work::CcsdConfig cfg;
      cfg.sweeps = 1;
      cfg.total_tiles = spec.ops > 0 ? spec.ops : 128;
      cfg.tile_rows = 8;
      cfg.row_bytes = 256;
      cfg.compute_us_per_tile = 40.0;
      return work::make_nwchem_ccsd_job(rt, cfg);
    }
    case JobKind::kLu: {
      work::LuConfig cfg;
      cfg.iterations = spec.ops > 0 ? static_cast<int>(spec.ops) : 4;
      cfg.nx_global = 96;
      cfg.compute_us_per_cell = 0.4;
      return work::make_nas_lu_job(rt, cfg);
    }
    case JobKind::kPhased: {
      work::PhasedConfig cfg;
      cfg.cycles = spec.ops > 0 ? static_cast<int>(spec.ops) : 1;
      cfg.hot_ops_per_proc = 8;
      cfg.bw_tiles_per_proc = 3;
      return work::make_phased_job(rt, cfg);
    }
    case JobKind::kSynthetic: {
      work::SyntheticConfig cfg;
      cfg.ops_per_proc = spec.ops > 0 ? spec.ops : 16;
      cfg.hotspot_fraction = 0.3;
      cfg.op_bytes = 1024;
      cfg.compute_us_per_op = 20.0;
      return work::make_synthetic_job(rt, cfg);
    }
    case JobKind::kStorm: {
      // Aggressor: every proc outside the tenant's node 0 spams its own
      // rank 0 with fetch-add tickets + puts, saturating the tenant's
      // injection/ejection links and — on interleaved partitions — the
      // torus links it shares with neighbors.
      work::SyntheticConfig cfg;
      cfg.ops_per_proc = spec.ops > 0 ? spec.ops : 64;
      cfg.hotspot_fraction = 1.0;
      cfg.op_bytes = 32768;  // long link occupancy per transfer
      cfg.compute_us_per_op = 0.5;
      return work::make_synthetic_job(rt, cfg);
    }
    case JobKind::kProbe: {
      // Victim: the fig-7 measurement protocol — each off-node rank
      // takes a turn timing fetch-adds against rank 0. The per-rank
      // latencies are the interference index's raw signal.
      work::ContentionConfig cfg;
      cfg.op = work::ContentionConfig::Op::kFetchAdd;
      cfg.iterations = spec.ops > 0 ? static_cast<int>(spec.ops) : 10;
      cfg.contender_stride = 0;
      cfg.vec_segments = 4;
      cfg.seg_bytes = 256;
      return work::make_contention_job(rt, cfg);
    }
  }
  return {};
}

}  // namespace vtopo::svc
