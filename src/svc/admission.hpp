// Bounded admission queue: FIFO + priority + backpressure rejection.
//
// Pop order is max *effective* priority — the spec priority plus one
// level per aging_quantum waited — with FIFO (lowest submission seq)
// breaking ties. Aging makes starvation impossible: any queued job's
// effective priority eventually exceeds every fixed spec priority, and
// the service's strict head-of-line start rule (no backfill past a job
// the machine cannot fit yet) means nothing overtakes it at the carve
// stage either.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace vtopo::svc {

struct QueuedJob {
  std::int64_t seq = 0;  ///< submission order (unique)
  std::size_t spec_index = 0;
  int priority = 0;
  sim::TimeNs enqueued_at = 0;
};

class AdmissionQueue {
 public:
  AdmissionQueue(std::size_t capacity, sim::TimeNs aging_quantum)
      : capacity_(capacity),
        aging_quantum_(aging_quantum > 0 ? aging_quantum : 1) {}

  /// False = rejected (queue at capacity): admission backpressure.
  bool push(const QueuedJob& job) {
    if (q_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    q_.push_back(job);
    return true;
  }

  /// Best candidate at `now` under priority + aging, FIFO tiebreak.
  [[nodiscard]] std::optional<QueuedJob> peek(sim::TimeNs now) const {
    const QueuedJob* best = nullptr;
    std::int64_t best_eff = 0;
    for (const QueuedJob& j : q_) {
      const std::int64_t eff =
          j.priority + (now - j.enqueued_at) / aging_quantum_;
      if (best == nullptr || eff > best_eff ||
          (eff == best_eff && j.seq < best->seq)) {
        best = &j;
        best_eff = eff;
      }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  /// Remove the entry with submission seq `seq` (must be present).
  void pop(std::int64_t seq) {
    for (std::size_t i = 0; i < q_.size(); ++i) {
      if (q_[i].seq == seq) {
        q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  std::size_t capacity_;
  sim::TimeNs aging_quantum_;
  std::vector<QueuedJob> q_;  ///< small; linear scans
  std::uint64_t rejected_ = 0;
};

}  // namespace vtopo::svc
