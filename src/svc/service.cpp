#include "svc/service.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "armci/proc.hpp"
#include "net/network.hpp"
#include "net/torus.hpp"
#include "sim/engine.hpp"

namespace vtopo::svc {

namespace {

/// Tenant runtime config from a spec. A null `fabric` means a private
/// network (uncoupled mode).
armci::Runtime::Config tenant_config(const JobSpec& spec,
                                     std::shared_ptr<net::Fabric> fabric,
                                     std::vector<std::int64_t> slots) {
  armci::Runtime::Config rc;
  rc.num_nodes = spec.nodes;
  rc.procs_per_node = spec.procs_per_node;
  rc.topology = spec.topology;
  rc.policy = spec.policy;
  rc.armci = spec.armci;
  rc.net = spec.net;
  rc.segment_bytes = spec.segment_bytes;
  rc.seed = spec.seed;
  rc.faults = spec.faults;
  rc.fabric = std::move(fabric);
  rc.fabric_slots = std::move(slots);
  return rc;
}

void seed_results(const std::vector<JobSpec>& specs,
                  std::vector<JobResult>& results) {
  results.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    JobResult& r = results[i];
    r.name = specs[i].name;
    r.kind = specs[i].kind;
    r.job_id = static_cast<std::int64_t>(i);
    r.submit_time = specs[i].submit_at;
  }
}

void finish_report(ServiceReport& rep) {
  for (const JobResult& r : rep.results) {
    if (r.rejected) {
      ++rep.rejected;
    } else if (r.finish_time > 0 || r.start_time > 0) {
      ++rep.completed;
    }
  }
}

// ---------------------------------------------------------------------
// Coupled mode: one machine engine + one shared fabric, event-driven.
// ---------------------------------------------------------------------

struct Tenant {
  std::size_t spec_index = 0;
  core::Partition part;
  std::unique_ptr<armci::Runtime> rt;
  work::JobProgram prog;
  std::int64_t live = 0;  ///< proc bodies still running
};

struct CoupledRun {
  CoupledRun(const ServiceConfig& config,
             const std::vector<JobSpec>& job_specs)
      : cfg(&config),
        specs(&job_specs),
        fabric(std::make_shared<net::Fabric>(config.machine_slots)),
        parts(fabric->torus.dims()),
        queue(config.queue_capacity, config.aging_quantum) {}

  const ServiceConfig* cfg;
  const std::vector<JobSpec>* specs;
  // vtopo-lint: allow(backend-seam) -- the coupled machine engine IS the service's legacy-engine seam
  sim::Engine eng;
  std::shared_ptr<net::Fabric> fabric;
  core::TorusPartitioner parts;
  AdmissionQueue queue;
  std::vector<JobResult> results;
  std::vector<std::unique_ptr<Tenant>> started;  ///< start order
  std::int64_t next_seq = 0;

  void on_arrival(std::size_t i);
  void try_start();
  void start_tenant(Tenant& t, const JobSpec& spec);
  void on_tenant_done(Tenant* t);
};

/// Per-proc wrapper: run the job body, then count down the tenant's
/// live-proc counter; the last one out reports completion at the exact
/// simulated finish time, from inside the machine's event stream.
sim::Co<void> tenant_proc(CoupledRun* run, Tenant* t,
                          std::function<sim::Co<void>(armci::Proc&)> body,
                          armci::Proc& p) {
  co_await body(p);
  if (--t->live == 0) run->on_tenant_done(t);
}

void CoupledRun::on_arrival(std::size_t i) {
  const JobSpec& spec = (*specs)[i];
  JobResult& r = results[i];
  r.submit_time = eng.now();
  if (!parts.feasible(spec.nodes, cfg->policy) ||
      !queue.push(QueuedJob{next_seq++, i, spec.priority, eng.now()})) {
    r.rejected = true;
    return;
  }
  try_start();
}

void CoupledRun::try_start() {
  // Strict head-of-line: if the best-ranked queued job does not fit the
  // current free set, nothing behind it may overtake it (backfill would
  // starve wide jobs behind a stream of narrow ones).
  while (auto cand = queue.peek(eng.now())) {
    const JobSpec& spec = (*specs)[cand->spec_index];
    auto part = parts.carve(spec.nodes, cfg->policy);
    if (!part) break;
    queue.pop(cand->seq);
    auto t = std::make_unique<Tenant>();
    t->spec_index = cand->spec_index;
    t->part = std::move(*part);
    start_tenant(*t, spec);
    started.push_back(std::move(t));
  }
}

void CoupledRun::start_tenant(Tenant& t, const JobSpec& spec) {
  // Construction order mirrors the standalone drivers exactly (runtime,
  // reconfig monitor, allocations, spawn), so a 1-tenant service run is
  // byte-identical to them.
  t.rt = std::make_unique<armci::Runtime>(
      eng, tenant_config(spec, fabric, t.part.slots));
  if (cfg->link_census) t.rt->network().enable_link_census();
  if (spec.reconfigure) {
    t.rt->spawn_task(
        work::detail::reconfig_monitor(t.rt.get(), *spec.reconfigure));
  }
  t.prog = make_program(*t.rt, spec);
  t.live = t.rt->num_procs();

  JobResult& r = results[t.spec_index];
  r.start_time = eng.now();
  r.slots = t.part.slots;

  CoupledRun* rp = this;
  Tenant* tp = &t;
  auto body = t.prog.body;
  t.rt->spawn_all([rp, tp, body](armci::Proc& p) {
    return tenant_proc(rp, tp, body, p);
  });
}

void CoupledRun::on_tenant_done(Tenant* t) {
  results[t->spec_index].finish_time = eng.now();
  parts.release(t->part);
  // The freed partition may admit queued work right now; the tenant's
  // runtime itself is torn down only after the machine drains (poison
  // injection mid-run would reentrantly drive the shared engine).
  try_start();
}

ServiceReport run_coupled(const ServiceConfig& cfg,
                          const std::vector<JobSpec>& specs) {
  CoupledRun run(cfg, specs);
  seed_results(specs, run.results);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    run.eng.schedule_at(specs[i].submit_at, [&run, i] { run.on_arrival(i); });
  }
  run.eng.run();

  // Deferred teardown, start order: a no-op run plus CHT poison drain
  // per tenant (run_all), quiescence-validated under VTOPO_VALIDATE,
  // then result collection and destruction.
  for (auto& t : run.started) {
    t->rt->run_all();
    JobResult& r = run.results[t->spec_index];
    r.checksum = t->prog.checksum ? t->prog.checksum() : 0.0;
    r.stats = t->rt->stats();
    if (t->prog.op_latencies_us) r.latencies = t->prog.op_latencies_us();
    if (cfg.link_census) r.link_census = t->rt->network().link_census();
    t->rt.reset();
  }

  ServiceReport rep;
  rep.results = std::move(run.results);
  rep.machine_dims = run.fabric->torus.dims();
  rep.total_sim_ns = run.eng.now();
  finish_report(rep);
  return rep;
}

// ---------------------------------------------------------------------
// Uncoupled mode: per-job self-hosted sharded runtimes on a host-side
// deterministic timeline.
// ---------------------------------------------------------------------

struct SimOutcome {
  sim::TimeNs duration = 0;
  double checksum = 0.0;
  armci::RuntimeStats stats{};
  std::vector<double> latencies;
};

SimOutcome simulate_job(const JobSpec& spec, int shards,
                        sim::ThreadMode thread_mode) {
  armci::Runtime::Config rc = tenant_config(spec, nullptr, {});
  rc.shards = std::max(shards, 1);
  rc.thread_mode = thread_mode;
  armci::Runtime rt(rc);
  if (spec.reconfigure) {
    rt.spawn_task(work::detail::reconfig_monitor(&rt, *spec.reconfigure));
  }
  work::JobProgram prog = make_program(rt, spec);
  rt.spawn_all(prog.body);
  rt.run_all();

  SimOutcome out;
  out.duration = rt.now();
  out.checksum = prog.checksum ? prog.checksum() : 0.0;
  out.stats = rt.stats();
  if (prog.op_latencies_us) out.latencies = prog.op_latencies_us();
  return out;
}

struct RunningJob {
  std::size_t spec_index = 0;
  std::int64_t start_order = 0;
  core::Partition part;
  sim::TimeNs start = 0;
  SimOutcome outcome;
  bool simulated = false;
  std::thread worker;
};

ServiceReport run_uncoupled(const ServiceConfig& cfg,
                            const std::vector<JobSpec>& specs) {
  const net::TorusGeometry torus(cfg.machine_slots);
  core::TorusPartitioner parts(torus.dims());
  AdmissionQueue queue(cfg.queue_capacity, cfg.aging_quantum);

  ServiceReport rep;
  seed_results(specs, rep.results);

  // Arrivals in (submit_at, submission index) order.
  std::vector<std::size_t> order(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return specs[a].submit_at < specs[b].submit_at;
                   });

  std::vector<std::unique_ptr<RunningJob>> running;
  std::int64_t next_seq = 0;
  std::int64_t start_counter = 0;
  sim::TimeNs now = 0;
  sim::TimeNs last_finish = 0;

  auto join_all = [&] {
    for (auto& j : running) {
      if (j->worker.joinable()) j->worker.join();
      j->simulated = true;
    }
  };

  auto try_start = [&] {
    while (auto cand = queue.peek(now)) {
      const JobSpec& spec = specs[cand->spec_index];
      auto part = parts.carve(spec.nodes, cfg.policy);
      if (!part) break;  // strict head-of-line, as in coupled mode
      queue.pop(cand->seq);
      auto j = std::make_unique<RunningJob>();
      j->spec_index = cand->spec_index;
      j->start_order = start_counter++;
      j->part = std::move(*part);
      j->start = now;
      JobResult& r = rep.results[cand->spec_index];
      r.start_time = now;
      r.slots = j->part.slots;
      RunningJob* jp = j.get();
      const JobSpec* sp = &spec;
      if (cfg.host_jobs > 1) {
        // One host thread per co-resident job: each simulation is a
        // private deterministic runtime, so parallel execution cannot
        // change any byte of the report.
        jp->worker = std::thread([jp, sp, &cfg] {
          jp->outcome = simulate_job(*sp, cfg.shards, cfg.thread_mode);
        });
      } else {
        jp->outcome = simulate_job(*sp, cfg.shards, cfg.thread_mode);
        jp->simulated = true;
      }
      running.push_back(std::move(j));
    }
  };

  std::size_t ai = 0;
  while (ai < order.size() || !running.empty()) {
    // Completions need every running job's duration: join the pool.
    join_all();
    const RunningJob* next_done = nullptr;
    for (const auto& j : running) {
      const sim::TimeNs fin = j->start + j->outcome.duration;
      if (next_done == nullptr ||
          fin < next_done->start + next_done->outcome.duration ||
          (fin == next_done->start + next_done->outcome.duration &&
           j->start_order < next_done->start_order)) {
        next_done = j.get();
      }
    }
    const bool have_arrival = ai < order.size();
    const sim::TimeNs arrival_t =
        have_arrival ? specs[order[ai]].submit_at : 0;
    if (next_done != nullptr &&
        (!have_arrival ||
         next_done->start + next_done->outcome.duration <= arrival_t)) {
      // Completion first (ties: completions before arrivals, matching
      // the coupled engine where the finish event was scheduled first).
      now = next_done->start + next_done->outcome.duration;
      last_finish = std::max(last_finish, now);
      JobResult& r = rep.results[next_done->spec_index];
      r.finish_time = now;
      r.checksum = next_done->outcome.checksum;
      r.stats = next_done->outcome.stats;
      r.latencies = next_done->outcome.latencies;
      parts.release(next_done->part);
      for (std::size_t k = 0; k < running.size(); ++k) {
        if (running[k].get() == next_done) {
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
      try_start();
    } else if (have_arrival) {
      now = arrival_t;
      const std::size_t i = order[ai++];
      const JobSpec& spec = specs[i];
      JobResult& r = rep.results[i];
      r.submit_time = now;
      if (!parts.feasible(spec.nodes, cfg.policy) ||
          !queue.push(QueuedJob{next_seq++, i, spec.priority, now})) {
        r.rejected = true;
        continue;
      }
      try_start();
    }
  }

  rep.machine_dims = torus.dims();
  rep.total_sim_ns = last_finish;
  finish_report(rep);
  return rep;
}

}  // namespace

std::string ServiceReport::canonical() const {
  std::string out;
  char buf[512];
  auto append = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  append("service dims=%dx%dx%d\n", machine_dims[0], machine_dims[1],
         machine_dims[2]);
  for (const JobResult& r : results) {
    append(
        "job id=%" PRId64 " name=%s kind=%s rejected=%d submit_ns=%" PRId64
        " start_ns=%" PRId64 " finish_ns=%" PRId64 " wait_ns=%" PRId64
        " checksum=%.17g req=%" PRIu64 " fwd=%" PRIu64 " ack=%" PRIu64
        " resp=%" PRIu64 " direct=%" PRIu64 " retries=%" PRIu64
        " heals=%" PRIu64 "\n",
        r.job_id, r.name.c_str(), to_string(r.kind).c_str(),
        r.rejected ? 1 : 0, r.submit_time, r.start_time, r.finish_time,
        r.rejected ? 0 : r.queue_wait(), r.checksum, r.stats.requests,
        r.stats.forwards, r.stats.acks, r.stats.responses,
        r.stats.direct_ops, r.stats.retries, r.stats.heals);
    if (!r.slots.empty()) {
      out += "  slots=";
      for (std::size_t i = 0; i < r.slots.size(); ++i) {
        append(i == 0 ? "%" PRId64 : ",%" PRId64, r.slots[i]);
      }
      out += "\n";
    }
    if (!r.latencies.empty()) {
      out += "  lat_ns=";
      bool first = true;
      for (const double us : r.latencies) {
        if (us < 0) continue;  // unmeasured ranks
        append(first ? "%lld" : ",%lld",
               static_cast<long long>(std::llround(us * 1e3)));
        first = false;
      }
      out += "\n";
    }
  }
  append("total_sim_ns=%" PRId64 " completed=%" PRId64 " rejected=%" PRId64
         "\n",
         total_sim_ns, completed, rejected);
  return out;
}

ServiceReport ClusterService::run(const std::vector<JobSpec>& specs) {
  if (cfg_.shards <= 0) return run_coupled(cfg_, specs);
  return run_uncoupled(cfg_, specs);
}

}  // namespace vtopo::svc
