// Phase-switching workload: alternating DFT-like hot-counter phases and
// CCSD-like bandwidth phases.
//
// The two phases prefer opposite topologies (the paper's Sec. VI
// trade-off): the hot phase hammers a rank-0 NXTVAL counter and a rank-0
// accumulate cell, the regime where MFCG's forwarding attenuates the hot
// spot; the bandwidth phase moves uniform strided tiles, the regime
// where FCG's direct buffers win on latency. That makes it the natural
// testbed for the adaptive controller: at every phase boundary rank 0
// may sample the window and reconfigure the live topology.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "armci/adaptive.hpp"
#include "workloads/common.hpp"

namespace vtopo::work {

struct PhasedConfig {
  int cycles = 2;  ///< hot+bandwidth phase pairs (2*cycles phases total)

  // Hot-counter phase (DFT-like): fetch-&-add on rank 0's counter, then
  // a small accumulate on rank 0's cell.
  std::int64_t hot_ops_per_proc = 24;
  std::int64_t hot_block_doubles = 16;
  double hot_compute_us = 4.0;

  // Bandwidth phase (CCSD-like): uniform strided tile gets + spread
  // accumulates, with computation to overlap.
  std::int64_t bw_tiles_per_proc = 6;
  std::int64_t bw_tile_rows = 16;
  std::int64_t bw_row_bytes = 512;
  double bw_compute_us = 30.0;

  /// Run the adaptive controller at phase boundaries.
  bool adaptive = false;
  armci::AdaptiveConfig adaptive_cfg{};
};

struct PhasedResult {
  AppResult app;
  std::vector<double> phase_sec;  ///< simulated duration of each phase
                                  ///< (reconfiguration stalls excluded;
                                  ///< they land in app.exec_time_sec)
  std::vector<std::string> phase_topology;  ///< kind active per phase
  std::vector<std::string> decisions;  ///< controller log, one/boundary
  int reconfigurations = 0;
};

[[nodiscard]] PhasedResult run_phased(const ClusterConfig& cluster,
                                      const PhasedConfig& cfg);

/// Allocate the phased workload on an existing runtime as a schedulable
/// job (checksum = ticket counter + hot accumulate cell). Per-phase
/// timing/decision extraction stays with run_phased; a service job
/// reports the checksum and runtime stats only.
[[nodiscard]] JobProgram make_phased_job(armci::Runtime& rt,
                                         const PhasedConfig& cfg);

}  // namespace vtopo::work
