// Hot-spot contention microbenchmark driver (paper Sec. V-B).
//
// Reproduces the measurement protocol behind Figs. 6 and 7: every
// process (except those sharing Rank 0's node) takes a turn performing
// `iterations` one-sided operations against Rank 0 while a fixed subset
// of processes ("one in every nine" = 11%, "one in every five" = 20%)
// hammers Rank 0 with the same operation concurrently. The per-rank
// average operation time is the figure's y-value.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/common.hpp"

namespace vtopo::work {

struct ContentionConfig {
  enum class Op {
    kVectorPut,  ///< ARMCI_PutV: noncontiguous data transfer (Fig. 6)
    kVectorGet,  ///< ARMCI_GetV
    kFetchAdd,   ///< atomic fetch-&-add (Fig. 7)
  };
  Op op = Op::kVectorPut;
  /// Iterations averaged per measured process (paper: 20).
  int iterations = 20;
  /// Contender stride: 0 = no contention, 9 = 11%, 5 = 20%.
  int contender_stride = 0;
  /// Vectored op: segments per op and bytes per segment.
  int vec_segments = 16;
  std::int64_t seg_bytes = 512;
  /// Enable the OpTracer and export per-priority-class latency series
  /// in the result (QoS benches; off for the golden-locked figures).
  bool trace_classes = false;
};

struct ContentionResult {
  /// Mean op time in us per process rank; < 0 for unmeasured ranks
  /// (Rank 0's node).
  std::vector<double> op_time_us;
  armci::RuntimeStats stats{};
  double total_sim_sec = 0.0;
  /// Per-class samples (us), indexed by armci::Priority; filled only
  /// when ContentionConfig::trace_classes. Origin-observed op latency
  /// and CHT queue wait respectively.
  std::array<std::vector<double>, armci::kNumPriorities> class_lat_us{};
  std::array<std::vector<double>, armci::kNumPriorities> queue_wait_us{};
};

/// Run the Sec. V-B experiment on a fresh simulated cluster.
[[nodiscard]] ContentionResult run_contention(const ClusterConfig& cluster,
                                              const ContentionConfig& cfg);

/// Allocate the experiment on an existing runtime and return it as a
/// schedulable job. checksum() reads the fetch-add counter;
/// op_latencies_us() returns the per-rank mean op time (-1 for
/// unmeasured ranks), exactly ContentionResult::op_time_us.
[[nodiscard]] JobProgram make_contention_job(armci::Runtime& rt,
                                             const ContentionConfig& cfg);

}  // namespace vtopo::work
