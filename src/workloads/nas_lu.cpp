#include "workloads/nas_lu.hpp"

#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "core/coords.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::Proc;
using armci::PutSeg;

struct Shared {
  LuConfig cfg;
  std::int32_t px = 0;             ///< process grid extents
  std::int32_t py = 0;
  std::int64_t boundary_off = 0;   ///< two inbound pencil strips
  std::int64_t residual_off = 0;   ///< 8-double partial residual on rank 0
  std::int64_t local_off = 0;      ///< per-node partial on each master
  std::int64_t strip_bytes = 0;
  /// Host-side arrival notifications: [iter][proc][dir] (0=from west,
  /// 1=from north). The 8-byte flag word written after the data models
  /// the real notify; the future replaces the receiver's poll loop.
  std::vector<sim::Future<int>> arrivals;
  std::int64_t nprocs = 0;
  std::size_t idx(int iter, armci::ProcId p, int dir) const {
    return (static_cast<std::size_t>(iter) *
                static_cast<std::size_t>(nprocs) +
            static_cast<std::size_t>(p)) *
               2 +
           static_cast<std::size_t>(dir);
  }
};

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const LuConfig& cfg = st->cfg;
  const std::int32_t px = st->px;
  const armci::ProcId me = p.id();
  const std::int32_t ix = me % px;
  const std::int32_t iy = me / px;
  const bool has_west = ix > 0;
  const bool has_north = iy > 0;
  const bool has_east =
      ix + 1 < px && me + 1 < p.runtime().num_procs();
  const bool has_south = me + px < p.runtime().num_procs();
  // Strong scaling: the fixed global grid is split over the process grid.
  const std::int64_t sub_nx =
      (cfg.nx_global + px - 1) / px;
  const std::int64_t sub_ny =
      (cfg.nx_global + st->py - 1) / st->py;

  std::vector<std::uint8_t> strip(static_cast<std::size_t>(st->strip_bytes));
  for (std::size_t i = 0; i < strip.size(); ++i) {
    strip[i] = static_cast<std::uint8_t>(me + i);
  }
  const std::vector<double> partial(8, 1.0 / (me + 1.0));

  co_await p.barrier();
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Wavefront dependencies: wait for west and north pencils.
    if (has_west) co_await st->arrivals[st->idx(iter, me, 0)];
    if (has_north) co_await st->arrivals[st->idx(iter, me, 1)];

    co_await p.compute(sim::us(cfg.compute_us_per_cell *
                               static_cast<double>(sub_nx * sub_ny)));

    // Push boundary pencils east and south as noncontiguous puts (one
    // segment per pencil variable), then notify.
    // vtopo-lint: allow(coro-ref) -- co_awaited inline below; the closure outlives each frame
    auto send_to = [&](armci::ProcId dest, int dir) -> sim::Co<void> {
      std::vector<PutSeg> segs(
          static_cast<std::size_t>(cfg.pencil_doubles));
      const std::int64_t seg_bytes =
          st->strip_bytes / cfg.pencil_doubles;
      for (int s = 0; s < cfg.pencil_doubles; ++s) {
        segs[static_cast<std::size_t>(s)] = PutSeg{
            std::span<const std::uint8_t>(
                strip.data() + s * seg_bytes,
                static_cast<std::size_t>(seg_bytes)),
            st->boundary_off + dir * st->strip_bytes + s * seg_bytes};
      }
      co_await p.put_v(dest, segs);
      st->arrivals[st->idx(iter, dest, dir)].set(iter);
    };
    if (has_east) co_await send_to(me + 1, 0);
    if (has_south) co_await send_to(me + px, 1);

    // Per-sweep residual (the L2-norm check of the SSOR loop),
    // hierarchical as in GA's group reductions: contribute to the node
    // master through shared memory, masters accumulate on rank 0 — a
    // mild periodic hot-spot of one request per node.
    if (p.is_master()) {
      co_await p.acc_f64(GAddr{0, st->residual_off}, partial, 1.0);
    } else {
      const armci::ProcId master =
          p.id() - p.id() % p.runtime().procs_per_node();
      co_await p.acc_f64(GAddr{master, st->local_off}, partial, 1.0);
    }
  }
  co_await p.barrier();
}

}  // namespace

JobProgram make_nas_lu_job(armci::Runtime& rt, const LuConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  const core::Shape grid = core::mesh_shape_for(rt.num_procs());
  st->px = grid.dim(0);
  st->py = grid.dim(1);
  st->nprocs = rt.num_procs();
  // Boundary pencil strip: one subdomain edge worth of grid points.
  const std::int64_t sub_edge =
      (cfg.nx_global + st->px - 1) / st->px;
  st->strip_bytes = sub_edge * 8 * cfg.pencil_doubles;
  // Round the strip so it divides evenly into pencil segments.
  st->strip_bytes -= st->strip_bytes % cfg.pencil_doubles;
  st->boundary_off = rt.memory().alloc_all(2 * st->strip_bytes);
  st->residual_off = rt.memory().alloc_all(64);
  st->local_off = rt.memory().alloc_all(64);
  st->arrivals.reserve(static_cast<std::size_t>(cfg.iterations) *
                       static_cast<std::size_t>(rt.num_procs()) * 2);
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(cfg.iterations) *
               static_cast<std::size_t>(rt.num_procs()) * 2;
       ++i) {
    st->arrivals.emplace_back(rt.engine());
  }

  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return rtp->memory().read_f64(GAddr{0, st->residual_off});
  };
  return prog;
}

AppResult run_nas_lu(const ClusterConfig& cluster, const LuConfig& cfg) {
  ClusterHandle handle(cluster);
  armci::Runtime& rt = handle.rt();
  arm_reconfigure(rt, cluster);

  JobProgram prog = make_nas_lu_job(rt, cfg);
  rt.spawn_all(prog.body);
  rt.run_all();

  AppResult out;
  out.exec_time_sec = handle.elapsed_sec();
  out.checksum = prog.checksum();
  out.stats = rt.stats();
  return out;
}

}  // namespace vtopo::work
