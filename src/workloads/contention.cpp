#include "workloads/contention.hpp"

#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::GetSeg;
using armci::Proc;
using armci::PutSeg;

/// One operation against rank 0, as configured. `cfg` is a small value
/// copy so the frame never references a caller-owned temporary.
sim::Co<void> do_op(Proc& p, ContentionConfig cfg,
                    std::int64_t counter_off, std::int64_t region_off,
                    std::vector<std::uint8_t>& scratch) {
  switch (cfg.op) {
    case ContentionConfig::Op::kVectorPut: {
      std::vector<PutSeg> segs(static_cast<std::size_t>(cfg.vec_segments));
      for (int s = 0; s < cfg.vec_segments; ++s) {
        // Disjoint per-process strips so concurrent puts do not race.
        const std::int64_t off =
            region_off +
            (static_cast<std::int64_t>(p.id()) % 64) * cfg.seg_bytes *
                cfg.vec_segments +
            s * cfg.seg_bytes;
        segs[static_cast<std::size_t>(s)] = PutSeg{
            std::span<const std::uint8_t>(
                scratch.data() + s * cfg.seg_bytes,
                static_cast<std::size_t>(cfg.seg_bytes)),
            off};
      }
      co_await p.put_v(0, segs);
      break;
    }
    case ContentionConfig::Op::kVectorGet: {
      std::vector<GetSeg> segs(static_cast<std::size_t>(cfg.vec_segments));
      for (int s = 0; s < cfg.vec_segments; ++s) {
        const std::int64_t off = region_off + s * cfg.seg_bytes;
        segs[static_cast<std::size_t>(s)] = GetSeg{
            std::span<std::uint8_t>(scratch.data() + s * cfg.seg_bytes,
                                    static_cast<std::size_t>(cfg.seg_bytes)),
            off};
      }
      co_await p.get_v(0, segs);
      break;
    }
    case ContentionConfig::Op::kFetchAdd: {
      co_await p.fetch_add(GAddr{0, counter_off}, 1);
      break;
    }
  }
}

struct Shared {
  ContentionConfig cfg;
  std::int64_t counter_off = 0;
  std::int64_t region_off = 0;
  std::vector<armci::ProcId> measured;
  std::vector<char> turn_done;
  std::vector<double> result_us;
};

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const ContentionConfig& cfg = st->cfg;
  const bool on_node0 = p.node() == 0;
  const bool contender =
      cfg.contender_stride > 0 && !on_node0 &&
      p.id() % cfg.contender_stride == 0;

  std::vector<std::uint8_t> scratch(static_cast<std::size_t>(
      cfg.vec_segments * cfg.seg_bytes));
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = static_cast<std::uint8_t>(p.id() + i);
  }

  sim::Engine& eng = p.runtime().engine();
  for (std::size_t turn = 0; turn < st->measured.size(); ++turn) {
    co_await p.barrier();
    const armci::ProcId who = st->measured[turn];
    if (p.id() == who) {
      const sim::TimeNs t0 = eng.now();
      for (int it = 0; it < cfg.iterations; ++it) {
        co_await do_op(p, cfg, st->counter_off, st->region_off, scratch);
      }
      st->result_us[static_cast<std::size_t>(p.id())] =
          sim::to_us(eng.now() - t0) / cfg.iterations;
      // Contenders on other shards poll this flag; under the sharded
      // engine the write must land in the serial phase (workers
      // quiescent) so the poll is race-free and the flip is pinned to
      // the window grid — identical at every shard count.
      if (sim::ShardedEngine* sh = p.runtime().sharded()) {
        sh->post_serial([st, turn] { st->turn_done[turn] = 1; });
      } else {
        st->turn_done[turn] = 1;
      }
    } else if (contender) {
      while (!st->turn_done[turn]) {
        co_await do_op(p, cfg, st->counter_off, st->region_off, scratch);
      }
    }
  }
  co_await p.barrier();
}

}  // namespace

JobProgram make_contention_job(armci::Runtime& rt,
                               const ContentionConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->counter_off = rt.memory().alloc_all(64);
  // Disjoint strips for up to 64 concurrent writers.
  st->region_off = rt.memory().alloc_all(
      static_cast<std::int64_t>(cfg.vec_segments) * cfg.seg_bytes * 64);
  for (armci::ProcId p = 0; p < rt.num_procs(); ++p) {
    if (rt.node_of(p) != 0) st->measured.push_back(p);
  }
  st->turn_done.assign(st->measured.size(), 0);
  st->result_us.assign(static_cast<std::size_t>(rt.num_procs()), -1.0);

  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return static_cast<double>(
        rtp->memory().read_i64(GAddr{0, st->counter_off}));
  };
  prog.op_latencies_us = [st] { return st->result_us; };
  return prog;
}

ContentionResult run_contention(const ClusterConfig& cluster,
                                const ContentionConfig& cfg) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- legacy-engine golden family
  std::unique_ptr<armci::Runtime> rt_owner = make_runtime(eng, cluster);
  armci::Runtime& rt = *rt_owner;
  arm_reconfigure(rt, cluster);
  if (cfg.trace_classes) rt.tracer().enable();

  JobProgram prog = make_contention_job(rt, cfg);
  rt.spawn_all(prog.body);
  rt.run_all();

  ContentionResult out;
  out.op_time_us = prog.op_latencies_us();
  out.stats = rt.stats();
  out.total_sim_sec = sim::to_sec(rt.engine().now());
  if (cfg.trace_classes) {
    for (std::size_t c = 0; c < armci::kNumPriorities; ++c) {
      const auto cls = static_cast<armci::Priority>(c);
      out.class_lat_us[c] =
          rt.tracer().series(armci::class_latency_kind(cls)).samples();
      out.queue_wait_us[c] =
          rt.tracer().series(armci::queue_wait_kind(cls)).samples();
    }
  }
  return out;
}

}  // namespace vtopo::work
