// Shared configuration and result types for the workload drivers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "armci/runtime.hpp"
#include "core/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/task.hpp"

namespace vtopo::work {

/// Optional mid-run topology reconfiguration, armed by every workload
/// driver (arm_reconfigure): at `at_ms` of simulated time a monitor task
/// calls Runtime::reconfigure(to, mode) concurrently with the running
/// application.
struct ReconfigSpec {
  core::TopologyKind to = core::TopologyKind::kMfcg;
  double at_ms = 1.0;
  armci::ReconfigMode mode = armci::ReconfigMode::kIncremental;
};

/// Cluster-level knobs shared by every experiment.
struct ClusterConfig {
  std::int64_t num_nodes = 16;
  int procs_per_node = 4;
  core::TopologyKind topology = core::TopologyKind::kFcg;
  core::ForwardingPolicy policy = core::ForwardingPolicy::kLowestDimFirst;
  /// Optional explicit grid shape (see Runtime::Config::custom_shape).
  std::optional<core::Shape> custom_shape;
  std::uint64_t seed = 42;
  armci::ArmciParams armci{};
  net::NetworkParams net{};
  net::Placement placement = net::Placement::kLinear;
  std::int64_t segment_bytes = std::int64_t{8} << 20;
  /// When set, the workload reconfigures the live topology mid-run.
  std::optional<ReconfigSpec> reconfigure;
  /// Seeded chaos plan (see Runtime::Config::faults): injected faults
  /// plus the self-healing request path. Disarmed/unset plans change
  /// nothing (byte-identical runs).
  std::optional<sim::FaultPlan> faults;
  /// 0 = legacy single-threaded engine (byte-compatible with the
  /// original goldens). >= 1 = sharded engine with that many shards;
  /// sharded output is byte-identical across shard counts (including 1)
  /// but quantizes cross-node timing to the conservative window grid,
  /// so it is a distinct golden family from shards == 0.
  int shards = 0;
  sim::ThreadMode thread_mode = sim::ThreadMode::kAuto;
  /// Executor backend. kSim keeps the deterministic engines above;
  /// kThreads runs every node on a real std::thread with wall-clock
  /// latency and real shared-memory copies (nondeterministic timing —
  /// validated by invariants, not goldens; `shards` is ignored).
  armci::Backend backend = armci::Backend::kSim;

  [[nodiscard]] std::int64_t num_procs() const {
    return num_nodes * procs_per_node;
  }
  [[nodiscard]] armci::Runtime::Config runtime_config() const {
    armci::Runtime::Config cfg;
    cfg.num_nodes = num_nodes;
    cfg.procs_per_node = procs_per_node;
    cfg.topology = topology;
    cfg.policy = policy;
    cfg.custom_shape = custom_shape;
    cfg.armci = armci;
    cfg.net = net;
    cfg.placement = placement;
    cfg.segment_bytes = segment_bytes;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.shards = shards > 0 ? shards : 1;
    cfg.thread_mode = thread_mode;
    cfg.backend = backend;
    return cfg;
  }
};

/// Build the runtime this cluster asks for: the caller-owned legacy
/// engine when shards == 0 (sim backend only), the self-hosted sharded
/// or threads runtime otherwise. `eng` is ignored in the self-hosted
/// cases; read time via rt->now().
inline std::unique_ptr<armci::Runtime> make_runtime(
    sim::Engine& eng, const ClusterConfig& cl) {
  if (cl.shards > 0 || cl.backend != armci::Backend::kSim) {
    return std::make_unique<armci::Runtime>(cl.runtime_config());
  }
  return std::make_unique<armci::Runtime>(eng, cl.runtime_config());
}

/// Owns whatever engine/runtime pair a ClusterConfig asks for, so the
/// workload drivers are backend-agnostic: construct one of these, talk
/// to rt() through the Proc/Runtime API, read elapsed time through the
/// transport seam.
class ClusterHandle {
 public:
  explicit ClusterHandle(const ClusterConfig& cl) {
    if (cl.shards > 0 || cl.backend != armci::Backend::kSim) {
      rt_ = std::make_unique<armci::Runtime>(cl.runtime_config());
      return;
    }
    // The one place workload code still builds the legacy engine; its
    // event stream is the original golden family, byte for byte.
    // vtopo-lint: allow(backend-seam) -- legacy-engine golden family lives here
    eng_ = std::make_unique<sim::Engine>();
    rt_ = std::make_unique<armci::Runtime>(*eng_, cl.runtime_config());
  }
  [[nodiscard]] armci::Runtime& rt() { return *rt_; }
  /// Elapsed app time: simulated seconds on the sim backend (identical
  /// to the engine clock the drivers used to read), wall-clock seconds
  /// since runtime construction on the threads backend.
  [[nodiscard]] double elapsed_sec() { return sim::to_sec(rt_->now()); }

 private:
  std::unique_ptr<sim::Engine> eng_;  ///< legacy backend only
  std::unique_ptr<armci::Runtime> rt_;
};

/// A fully allocated workload instance bound to a runtime, ready to
/// spawn — the schedulable unit of the multi-tenant cluster service.
/// Each workload's make_*_job factory performs exactly the allocations
/// and shared-state setup its run_* driver performs before spawn_all,
/// so driving a program by hand (spawn_all(body) + run_all + checksum)
/// is byte-identical to the standalone driver.
struct JobProgram {
  /// Per-proc coroutine body; pass to Runtime::spawn_all.
  std::function<sim::Co<void>(armci::Proc&)> body;
  /// Reads the workload checksum out of runtime memory (valid at
  /// quiescence).
  std::function<double()> checksum;
  /// Per-measured-rank op latencies in microseconds (null unless the
  /// workload measures per-op timing; -1 entries mark unmeasured ranks).
  std::function<std::vector<double>()> op_latencies_us;
};

/// Result of one application run.
struct AppResult {
  double exec_time_sec = 0.0;       ///< simulated wall time of the app
  double checksum = 0.0;            ///< numeric check for correctness
  armci::RuntimeStats stats{};      ///< protocol counters
};

namespace detail {
inline sim::Co<void> reconfig_monitor(armci::Runtime* rt,
                                      ReconfigSpec spec) {
  co_await sim::Sleep(rt->engine(), sim::ms(spec.at_ms));
  const bool switched = co_await rt->reconfigure(spec.to, spec.mode);
  (void)switched;  // no-op when the app already runs on `spec.to`
}
}  // namespace detail

/// Arm the cluster's optional mid-run reconfiguration on `rt`. Every
/// workload driver calls this right after constructing its Runtime, so
/// `reconfigure=` works uniformly across experiments. The monitor is a
/// detached task: if the application finishes first, the remap executes
/// against an already-quiescent runtime (and still bumps the epoch).
inline void arm_reconfigure(armci::Runtime& rt, const ClusterConfig& cl) {
  if (!cl.reconfigure) return;
  rt.spawn_task(detail::reconfig_monitor(&rt, *cl.reconfigure));
}

}  // namespace vtopo::work
