// Shared configuration and result types for the workload drivers.
#pragma once

#include <cstdint>
#include <optional>

#include "armci/runtime.hpp"
#include "core/topology.hpp"

namespace vtopo::work {

/// Cluster-level knobs shared by every experiment.
struct ClusterConfig {
  std::int64_t num_nodes = 16;
  int procs_per_node = 4;
  core::TopologyKind topology = core::TopologyKind::kFcg;
  core::ForwardingPolicy policy = core::ForwardingPolicy::kLowestDimFirst;
  /// Optional explicit grid shape (see Runtime::Config::custom_shape).
  std::optional<core::Shape> custom_shape;
  std::uint64_t seed = 42;
  armci::ArmciParams armci{};
  net::NetworkParams net{};
  net::Placement placement = net::Placement::kLinear;
  std::int64_t segment_bytes = std::int64_t{8} << 20;

  [[nodiscard]] std::int64_t num_procs() const {
    return num_nodes * procs_per_node;
  }
  [[nodiscard]] armci::Runtime::Config runtime_config() const {
    armci::Runtime::Config cfg;
    cfg.num_nodes = num_nodes;
    cfg.procs_per_node = procs_per_node;
    cfg.topology = topology;
    cfg.policy = policy;
    cfg.custom_shape = custom_shape;
    cfg.armci = armci;
    cfg.net = net;
    cfg.placement = placement;
    cfg.segment_bytes = segment_bytes;
    cfg.seed = seed;
    return cfg;
  }
};

/// Result of one application run.
struct AppResult {
  double exec_time_sec = 0.0;       ///< simulated wall time of the app
  double checksum = 0.0;            ///< numeric check for correctness
  armci::RuntimeStats stats{};      ///< protocol counters
};

}  // namespace vtopo::work
