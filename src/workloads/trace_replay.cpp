#include "workloads/trace_replay.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "armci/proc.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::GetSeg;
using armci::Proc;
using armci::PutSeg;

TraceOp::Kind parse_kind(const std::string& word, int line) {
  if (word == "put") return TraceOp::Kind::kPut;
  if (word == "get") return TraceOp::Kind::kGet;
  if (word == "putv") return TraceOp::Kind::kPutV;
  if (word == "getv") return TraceOp::Kind::kGetV;
  if (word == "acc") return TraceOp::Kind::kAcc;
  if (word == "fetchadd") return TraceOp::Kind::kFetchAdd;
  if (word == "lock") return TraceOp::Kind::kLock;
  if (word == "unlock") return TraceOp::Kind::kUnlock;
  if (word == "compute") return TraceOp::Kind::kCompute;
  if (word == "barrier") return TraceOp::Kind::kBarrier;
  throw std::invalid_argument("trace line " + std::to_string(line) +
                              ": unknown op '" + word + "'");
}

bool needs_target(TraceOp::Kind k) {
  return k != TraceOp::Kind::kCompute && k != TraceOp::Kind::kBarrier;
}

}  // namespace

std::vector<TraceOp> parse_trace(const std::string& text,
                                 std::int64_t num_procs) {
  std::vector<TraceOp> ops;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::int64_t proc;
    if (!(ls >> proc)) continue;  // blank / comment-only line
    std::string word;
    if (!(ls >> word)) {
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": missing op");
    }
    TraceOp op;
    op.kind = parse_kind(word, lineno);
    if (proc < 0 || proc >= num_procs) {
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": proc out of range");
    }
    op.proc = static_cast<armci::ProcId>(proc);
    if (needs_target(op.kind)) {
      std::int64_t target;
      if (!(ls >> target) || target < 0 || target >= num_procs) {
        throw std::invalid_argument("trace line " +
                                    std::to_string(lineno) +
                                    ": bad target");
      }
      op.target = static_cast<armci::ProcId>(target);
    }
    if (op.kind != TraceOp::Kind::kBarrier) {
      if (!(ls >> op.arg) || op.arg < 0) {
        throw std::invalid_argument("trace line " +
                                    std::to_string(lineno) +
                                    ": bad argument");
      }
    }
    ops.push_back(op);
  }
  return ops;
}

namespace {

struct Shared {
  std::vector<std::vector<TraceOp>> per_proc;
  std::int64_t region_off = 0;
  std::int64_t region_bytes = 0;
};

sim::Co<void> replay_body(Proc& p, std::shared_ptr<Shared> st) {
  std::vector<std::uint8_t> buf;
  std::vector<double> dbuf;
  for (const TraceOp& op :
       st->per_proc[static_cast<std::size_t>(p.id())]) {
    switch (op.kind) {
      case TraceOp::Kind::kPut:
        buf.assign(static_cast<std::size_t>(op.arg), 1);
        co_await p.put(GAddr{op.target, st->region_off}, buf);
        break;
      case TraceOp::Kind::kGet:
        buf.resize(static_cast<std::size_t>(op.arg));
        co_await p.get(buf, GAddr{op.target, st->region_off});
        break;
      case TraceOp::Kind::kPutV: {
        buf.assign(static_cast<std::size_t>(op.arg), 2);
        const PutSeg seg{buf, st->region_off};
        co_await p.put_v(op.target, {&seg, 1});
        break;
      }
      case TraceOp::Kind::kGetV: {
        buf.resize(static_cast<std::size_t>(op.arg));
        const GetSeg seg{buf, st->region_off};
        co_await p.get_v(op.target, {&seg, 1});
        break;
      }
      case TraceOp::Kind::kAcc:
        dbuf.assign(static_cast<std::size_t>(op.arg), 1.0);
        co_await p.acc_f64(GAddr{op.target, st->region_off}, dbuf, 1.0);
        break;
      case TraceOp::Kind::kFetchAdd:
        co_await p.fetch_add(
            GAddr{op.target, st->region_off + st->region_bytes - 8},
            op.arg);
        break;
      case TraceOp::Kind::kLock:
        co_await p.lock(op.target,
                        static_cast<std::int32_t>(op.arg));
        break;
      case TraceOp::Kind::kUnlock:
        co_await p.unlock(op.target,
                          static_cast<std::int32_t>(op.arg));
        break;
      case TraceOp::Kind::kCompute:
        co_await p.compute(sim::us(static_cast<double>(op.arg)));
        break;
      case TraceOp::Kind::kBarrier:
        co_await p.barrier();
        break;
    }
  }
}

}  // namespace

TraceResult replay_trace(const ClusterConfig& cluster,
                         const std::vector<TraceOp>& ops) {
  // Every process must hit the same number of barriers or the run
  // deadlocks (barriers are full-membership); validate up front.
  std::vector<std::int64_t> barriers(
      static_cast<std::size_t>(cluster.num_procs()), 0);
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kBarrier) {
      barriers[static_cast<std::size_t>(op.proc)]++;
    }
  }
  for (const auto b : barriers) {
    if (b != barriers[0]) {
      throw std::invalid_argument(
          "trace: unequal barrier counts across processes");
    }
  }

  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- legacy-engine golden family
  armci::Runtime rt(eng, cluster.runtime_config());
  arm_reconfigure(rt, cluster);
  auto st = std::make_shared<Shared>();
  st->per_proc.resize(static_cast<std::size_t>(rt.num_procs()));
  std::int64_t max_bytes = 4096;
  for (const TraceOp& op : ops) {
    st->per_proc[static_cast<std::size_t>(op.proc)].push_back(op);
    if (op.kind != TraceOp::Kind::kCompute &&
        op.kind != TraceOp::Kind::kBarrier) {
      max_bytes = std::max(max_bytes, op.arg * 8 + 64);
    }
  }
  st->region_bytes = max_bytes;
  st->region_off = rt.memory().alloc_all(max_bytes);

  rt.spawn_all([st](Proc& p) { return replay_body(p, st); });
  rt.run_all();

  TraceResult out;
  out.exec_time_sec = sim::to_sec(eng.now());
  out.stats = rt.stats();
  out.ops_executed = static_cast<std::int64_t>(ops.size());
  return out;
}

}  // namespace vtopo::work
