// Trace-driven workload: replay a textual operation trace through the
// runtime. Lets users run custom communication patterns against any
// topology/machine configuration without writing C++.
//
// Trace grammar — one op per line, '#' comments, blank lines ignored:
//
//   <proc> put      <target> <bytes>
//   <proc> get      <target> <bytes>
//   <proc> putv     <target> <bytes>          # vectored (CHT-mediated)
//   <proc> getv     <target> <bytes>
//   <proc> acc      <target> <doubles>
//   <proc> fetchadd <target> <delta>
//   <proc> lock     <target> <mutex>
//   <proc> unlock   <target> <mutex>
//   <proc> compute  <microseconds>
//   <proc> barrier                             # all procs must barrier
//
// Each process executes its own lines in file order.
#pragma once

#include <string>
#include <vector>

#include "workloads/common.hpp"

namespace vtopo::work {

struct TraceOp {
  enum class Kind {
    kPut,
    kGet,
    kPutV,
    kGetV,
    kAcc,
    kFetchAdd,
    kLock,
    kUnlock,
    kCompute,
    kBarrier,
  };
  Kind kind = Kind::kBarrier;
  armci::ProcId proc = 0;
  armci::ProcId target = 0;
  std::int64_t arg = 0;  // bytes / doubles / delta / mutex / us
};

/// Parse a trace; throws std::invalid_argument with a line number on
/// malformed input or out-of-range ranks (checked against num_procs).
[[nodiscard]] std::vector<TraceOp> parse_trace(const std::string& text,
                                               std::int64_t num_procs);

struct TraceResult {
  double exec_time_sec = 0.0;
  armci::RuntimeStats stats{};
  std::int64_t ops_executed = 0;
};

/// Replay a parsed trace on a fresh cluster.
[[nodiscard]] TraceResult replay_trace(const ClusterConfig& cluster,
                                       const std::vector<TraceOp>& ops);

}  // namespace vtopo::work
