#include "workloads/nwchem_ccsd.hpp"

#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::Proc;

struct Shared {
  CcsdConfig cfg;
  std::int64_t tile_off = 0;  ///< tile region on every process
  std::int64_t nprocs = 0;
};

armci::ProcId owner_of(std::int64_t t, std::int64_t salt,
                       std::int64_t nprocs) {
  std::uint64_t h =
      static_cast<std::uint64_t>(t * 2 + salt) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<armci::ProcId>(h % static_cast<std::uint64_t>(nprocs));
}

sim::Co<void> one_tile(Proc& p, std::shared_ptr<Shared> st,
                       std::int64_t tile) {
  const CcsdConfig& cfg = st->cfg;
  const std::int64_t tile_bytes = cfg.tile_rows * cfg.row_bytes;

  // Strided read of an amplitude tile (every other row of a 2x-strided
  // panel) from its owner.
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(tile_bytes));
  const armci::ProcId src = owner_of(tile, 1, st->nprocs);
  co_await p.get_strided(buf.data(), cfg.row_bytes,
                         GAddr{src, st->tile_off}, 2 * cfg.row_bytes,
                         cfg.row_bytes, cfg.tile_rows);

  co_await p.compute(sim::us(cfg.compute_us_per_tile));

  // Accumulate the result tile to a different owner.
  std::vector<double> out(static_cast<std::size_t>(tile_bytes / 8),
                          1.0 / (tile + 2.0));
  const armci::ProcId dst = owner_of(tile, 2, st->nprocs);
  co_await p.acc_f64(GAddr{dst, st->tile_off}, out, 1.0);
}

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const CcsdConfig& cfg = st->cfg;
  for (int sweep = 0; sweep < cfg.sweeps; ++sweep) {
    co_await p.barrier();
    // Coupled-cluster tile loops are statically blocked over processes
    // (coarse tiles, negligible imbalance): tile t belongs to process
    // t mod P.
    for (std::int64_t t = p.id(); t < cfg.total_tiles; t += st->nprocs) {
      co_await one_tile(p, st, t);
    }
    co_await p.barrier();
  }
}

}  // namespace

JobProgram make_nwchem_ccsd_job(armci::Runtime& rt, const CcsdConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->nprocs = rt.num_procs();
  // The source panel is 2x-strided, so reserve twice the tile size.
  st->tile_off =
      rt.memory().alloc_all(2 * cfg.tile_rows * cfg.row_bytes + 64);

  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return rtp->memory().read_f64(GAddr{0, st->tile_off});
  };
  return prog;
}

AppResult run_nwchem_ccsd(const ClusterConfig& cluster,
                          const CcsdConfig& cfg) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- legacy-engine golden family
  armci::Runtime rt(eng, cluster.runtime_config());
  arm_reconfigure(rt, cluster);

  JobProgram prog = make_nwchem_ccsd_job(rt, cfg);
  rt.spawn_all(prog.body);
  rt.run_all();

  AppResult out;
  out.exec_time_sec = sim::to_sec(eng.now());
  out.checksum = prog.checksum();
  out.stats = rt.stats();
  return out;
}

}  // namespace vtopo::work
