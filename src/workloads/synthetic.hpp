// Synthetic workload with a tunable hot-spot fraction — the knob the
// paper's two NWChem methods sit at opposite ends of (DFT ~ counter-
// bound, CCSD(T) ~ uniform). Sweeping it maps out where each virtual
// topology wins and cross-validates core::recommend_topology against
// the simulator.
#pragma once

#include "workloads/common.hpp"

namespace vtopo::work {

struct SyntheticConfig {
  /// Operations per process.
  std::int64_t ops_per_proc = 24;
  /// Probability that an operation targets the hot process (rank 0)
  /// instead of a uniformly random peer.
  double hotspot_fraction = 0.0;
  /// Payload of each vectored operation.
  std::int64_t op_bytes = 2048;
  /// Local compute between operations.
  double compute_us_per_op = 50.0;
};

[[nodiscard]] AppResult run_synthetic(const ClusterConfig& cluster,
                                      const SyntheticConfig& cfg);

/// Allocate the synthetic workload on an existing runtime as a
/// schedulable job (checksum = the hot-spot ticket counter).
[[nodiscard]] JobProgram make_synthetic_job(armci::Runtime& rt,
                                            const SyntheticConfig& cfg);

}  // namespace vtopo::work
