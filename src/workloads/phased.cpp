#include "workloads/phased.hpp"

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "armci/proc.hpp"
#include "core/topology.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::Proc;

struct Shared {
  PhasedConfig cfg;
  std::int64_t nprocs = 0;
  std::int64_t counter_off = 0;  ///< NXTVAL cell, rank 0
  std::int64_t acc_off = 0;      ///< hot accumulate cell, rank 0
  std::int64_t tile_off = 0;     ///< strided tile region, all ranks
  std::unique_ptr<armci::AdaptiveController> ctrl;
  // Phase bookkeeping, written by rank 0 only (inside barrier pairs).
  sim::TimeNs phase_start = -1;
  std::vector<sim::TimeNs> phase_ns;
  std::vector<std::string> phase_topology;
  // Phase-profile memory: measured hotspot fraction of the last phase of
  // each parity, seeded with the app's static expectation. Feeding the
  // *upcoming* phase's profile to the controller as a hint is what keeps
  // the adaptation in phase — the just-closed window is exactly the
  // wrong predictor when phases strictly alternate.
  double hot_hotspot = 0.5;
  double bw_hotspot = 0.0;
  int next_phase_index = 0;
};

armci::ProcId owner_of(std::int64_t k, std::int64_t nprocs) {
  std::uint64_t h = static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return static_cast<armci::ProcId>(h % static_cast<std::uint64_t>(nprocs));
}

/// Phase boundary: close the previous phase's timing, let the adaptive
/// controller sample-and-switch while everyone else is parked in the
/// second barrier, and stamp the topology the next phase runs on.
sim::Co<void> boundary(Proc& p, std::shared_ptr<Shared> st,
                       bool opens_phase) {
  co_await p.barrier();
  if (p.id() == 0) {
    armci::Runtime& rt = p.runtime();
    const sim::TimeNs now = rt.now();
    if (st->phase_start >= 0) {
      st->phase_ns.push_back(now - st->phase_start);
    }
    if (st->ctrl) {
      // Hint: the announced skew of the phase about to open, from the
      // last same-parity phase's measurement (hot phases are even).
      std::optional<double> hint;
      if (opens_phase) {
        hint = (st->next_phase_index % 2 == 0) ? st->hot_hotspot
                                               : st->bw_hotspot;
      }
      (void)co_await st->ctrl->maybe_reconfigure(hint);
      // Fold the just-closed phase's measured skew back into memory.
      const int closed = st->next_phase_index - 1;
      const auto& s = st->ctrl->last_sample();
      if (closed >= 0 && s.window_requests > 0) {
        (closed % 2 == 0 ? st->hot_hotspot : st->bw_hotspot) =
            s.hotspot_fraction;
      }
    }
    if (opens_phase) {
      st->phase_topology.emplace_back(
          core::to_string(rt.topology().kind()));
      ++st->next_phase_index;
    }
    st->phase_start = rt.now();
  }
  co_await p.barrier();
}

sim::Co<void> hot_phase(Proc& p, std::shared_ptr<Shared> st) {
  const PhasedConfig& cfg = st->cfg;
  const std::vector<double> contrib(
      static_cast<std::size_t>(cfg.hot_block_doubles), 0.5);
  for (std::int64_t i = 0; i < cfg.hot_ops_per_proc; ++i) {
    const std::int64_t t =
        co_await p.fetch_add(GAddr{0, st->counter_off}, 1);
    (void)t;
    co_await p.compute(sim::us(cfg.hot_compute_us));
    co_await p.acc_f64(GAddr{0, st->acc_off}, contrib, 1.0);
  }
}

sim::Co<void> bw_phase(Proc& p, std::shared_ptr<Shared> st) {
  const PhasedConfig& cfg = st->cfg;
  const std::int64_t row = cfg.bw_row_bytes;
  std::vector<std::uint8_t> tile(
      static_cast<std::size_t>(row * cfg.bw_tile_rows));
  const std::vector<double> upd(static_cast<std::size_t>(row / 8), 0.25);
  for (std::int64_t t = 0; t < cfg.bw_tiles_per_proc; ++t) {
    const std::int64_t key = p.id() * 4096 + t * 2;
    const armci::ProcId src = owner_of(key, st->nprocs);
    co_await p.get_strided(tile.data(), row, GAddr{src, st->tile_off},
                           2 * row, row, cfg.bw_tile_rows);
    co_await p.compute(sim::us(cfg.bw_compute_us));
    const armci::ProcId dst = owner_of(key + 1, st->nprocs);
    co_await p.acc_f64(GAddr{dst, st->tile_off}, upd, 0.25);
  }
}

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const int total = st->cfg.cycles * 2;
  for (int ph = 0; ph < total; ++ph) {
    co_await boundary(p, st, /*opens_phase=*/true);
    if (ph % 2 == 0) {
      co_await hot_phase(p, st);
    } else {
      co_await bw_phase(p, st);
    }
  }
  // Final boundary closes the last phase's timing (no adaptation use,
  // but it keeps the controller's decision log symmetric).
  co_await boundary(p, st, /*opens_phase=*/false);
}

std::shared_ptr<Shared> detail_make_phased_shared(armci::Runtime& rt,
                                                  const PhasedConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->nprocs = rt.num_procs();
  st->counter_off = rt.memory().alloc_all(64);
  st->acc_off = rt.memory().alloc_all(cfg.hot_block_doubles * 8);
  st->tile_off =
      rt.memory().alloc_all(2 * cfg.bw_row_bytes * cfg.bw_tile_rows + 64);
  if (cfg.adaptive) {
    st->ctrl =
        std::make_unique<armci::AdaptiveController>(rt, cfg.adaptive_cfg);
  }
  return st;
}

}  // namespace

JobProgram make_phased_job(armci::Runtime& rt, const PhasedConfig& cfg) {
  auto st = detail_make_phased_shared(rt, cfg);
  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return static_cast<double>(
               rtp->memory().read_i64(GAddr{0, st->counter_off})) +
           rtp->memory().read_f64(GAddr{0, st->acc_off});
  };
  return prog;
}

PhasedResult run_phased(const ClusterConfig& cluster,
                        const PhasedConfig& cfg) {
  ClusterHandle handle(cluster);
  armci::Runtime& rt = handle.rt();
  arm_reconfigure(rt, cluster);

  auto st = detail_make_phased_shared(rt, cfg);

  rt.spawn_all([st](Proc& p) { return body(p, st); });
  rt.run_all();

  PhasedResult out;
  out.app.exec_time_sec = handle.elapsed_sec();
  out.app.checksum =
      static_cast<double>(
          rt.memory().read_i64(GAddr{0, st->counter_off})) +
      rt.memory().read_f64(GAddr{0, st->acc_off});
  out.app.stats = rt.stats();
  out.phase_sec.reserve(st->phase_ns.size());
  for (const sim::TimeNs d : st->phase_ns) {
    out.phase_sec.push_back(sim::to_sec(d));
  }
  out.phase_topology = std::move(st->phase_topology);
  if (st->ctrl) out.decisions = st->ctrl->decisions();
  out.reconfigurations = static_cast<int>(rt.stats().reconfigurations);
  return out;
}

}  // namespace vtopo::work
