// NAS LU application proxy (paper Sec. VI-A, Fig. 8).
//
// Reproduces the communication signature of the ARMCI port of NAS LU:
// an SSOR wavefront over a 2-D process grid. Each sweep, every process
// waits for boundary pencils from its north and west neighbors
// (noncontiguous vectored puts + an 8-byte notify), computes its
// subdomain update, and pushes boundaries east and south; a small
// accumulate-based global residual reduction closes each iteration.
// Neighbor-dominated traffic means virtual topologies should neither
// help nor hurt much — the paper's Fig. 8 result.
#pragma once

#include "workloads/common.hpp"

namespace vtopo::work {

struct LuConfig {
  int iterations = 8;               ///< SSOR time steps
  int nx_global = 408;              ///< global grid edge (class-C-like);
                                    ///< fixed => strong scaling as in Fig. 8
  int pencil_doubles = 5;           ///< doubles per boundary point (LU: 5)
  double compute_us_per_cell = 1.5; ///< per-subdomain-cell update cost
};

[[nodiscard]] AppResult run_nas_lu(const ClusterConfig& cluster,
                                   const LuConfig& cfg);

/// Allocate the LU proxy on an existing runtime as a schedulable job
/// (checksum = rank 0's residual cell).
[[nodiscard]] JobProgram make_nas_lu_job(armci::Runtime& rt,
                                         const LuConfig& cfg);

}  // namespace vtopo::work
