// NWChem CCSD(T) water proxy (paper Sec. VI-B, Fig. 9b).
//
// Communication signature of the coupled-cluster triples kernels: large
// strided (noncontiguous) reads of integral/amplitude tiles from evenly
// distributed owners, heavy local contractions, accumulates of result
// tiles — and only coarse-grained task acquisition (large chunks), so no
// single process becomes a hot spot. Bandwidth-dominated and evenly
// spread: the workload where FCG's zero-forwarding generally beats MFCG
// (Fig. 9b), and MFCG's value is the memory it frees instead.
#pragma once

#include "workloads/common.hpp"

namespace vtopo::work {

struct CcsdConfig {
  int sweeps = 1;
  std::int64_t total_tiles = 196608;  ///< fixed problem => strong scaling
  std::int64_t tile_rows = 24;        ///< strided read: rows per tile
  std::int64_t row_bytes = 512;       ///< contiguous bytes per row
  double compute_us_per_tile = 300.0;
};

[[nodiscard]] AppResult run_nwchem_ccsd(const ClusterConfig& cluster,
                                        const CcsdConfig& cfg);

/// Allocate the CCSD(T) proxy on an existing runtime as a schedulable
/// job (checksum = rank 0's result-tile cell).
[[nodiscard]] JobProgram make_nwchem_ccsd_job(armci::Runtime& rt,
                                              const CcsdConfig& cfg);

}  // namespace vtopo::work
