#include "workloads/task_pool.hpp"

namespace vtopo::work {

sim::Co<void> drain_task_pool(
    armci::Proc& p, TaskPool pool,
    std::function<sim::Co<void>(std::int64_t)> task) {
  for (;;) {
    const std::int64_t first =
        co_await p.fetch_add(pool.counter, pool.chunk);
    if (first >= pool.num_tasks) break;
    const std::int64_t last =
        std::min(first + pool.chunk, pool.num_tasks);
    for (std::int64_t t = first; t < last; ++t) {
      co_await task(t);
    }
  }
}

}  // namespace vtopo::work
