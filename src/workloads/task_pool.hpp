// Dynamic load balancing off a single global counter — the Global
// Arrays idiom (GA NXTVAL) behind NWChem's task distribution, and the
// paper's canonical hot-spot generator: every task acquisition is an
// atomic fetch-&-add on one cell owned by rank 0.
#pragma once

#include <cstdint>
#include <functional>

#include "armci/proc.hpp"
#include "sim/task.hpp"

namespace vtopo::work {

struct TaskPool {
  armci::GAddr counter;     ///< shared next-task cell (host: rank 0)
  std::int64_t num_tasks = 0;
  std::int64_t chunk = 1;   ///< tasks claimed per counter access
};

/// Repeatedly claim chunks from the pool and run `task(task_id)` until
/// the pool drains. `task` is a coroutine (communication + compute).
/// `pool` and `task` are taken by value: callers routinely pass
/// temporaries, and a reference parameter would dangle if the returned
/// Co<> were stored and awaited after the full-expression ends.
[[nodiscard]] sim::Co<void> drain_task_pool(
    armci::Proc& p, TaskPool pool,
    std::function<sim::Co<void>(std::int64_t)> task);

}  // namespace vtopo::work
