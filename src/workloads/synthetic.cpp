#include "workloads/synthetic.hpp"

#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "sim/time.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::Proc;
using armci::PutSeg;

struct Shared {
  SyntheticConfig cfg;
  std::int64_t region_off = 0;
  std::int64_t counter_off = 0;
};

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const SyntheticConfig& cfg = st->cfg;
  const std::int64_t n = p.runtime().num_procs();
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(cfg.op_bytes),
                                static_cast<std::uint8_t>(p.id()));
  co_await p.barrier();
  for (std::int64_t op = 0; op < cfg.ops_per_proc; ++op) {
    const bool hot = p.rng().chance(cfg.hotspot_fraction);
    if (hot && p.node() != 0) {
      // Hot-spot access: a ticket plus a vectored put to rank 0, the
      // Sec. V-B pattern.
      co_await p.fetch_add(GAddr{0, st->counter_off}, 1);
      const PutSeg seg{buf,
                       st->region_off + (p.id() % 32) * cfg.op_bytes};
      co_await p.put_v(0, {&seg, 1});
    } else {
      // Uniform access: a vectored put to a random peer.
      const auto peer = static_cast<armci::ProcId>(
          p.rng().uniform(static_cast<std::uint64_t>(n)));
      const PutSeg seg{buf,
                       st->region_off + (p.id() % 32) * cfg.op_bytes};
      co_await p.put_v(peer, {&seg, 1});
    }
    co_await p.compute(sim::us(cfg.compute_us_per_op));
  }
  co_await p.barrier();
}

}  // namespace

JobProgram make_synthetic_job(armci::Runtime& rt,
                              const SyntheticConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->counter_off = rt.memory().alloc_all(64);
  st->region_off = rt.memory().alloc_all(cfg.op_bytes * 32);

  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return static_cast<double>(
        rtp->memory().read_i64(GAddr{0, st->counter_off}));
  };
  return prog;
}

AppResult run_synthetic(const ClusterConfig& cluster,
                        const SyntheticConfig& cfg) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- legacy-engine golden family
  armci::Runtime rt(eng, cluster.runtime_config());
  arm_reconfigure(rt, cluster);
  JobProgram prog = make_synthetic_job(rt, cfg);
  rt.spawn_all(prog.body);
  rt.run_all();

  AppResult out;
  out.exec_time_sec = sim::to_sec(eng.now());
  out.checksum = prog.checksum();
  out.stats = rt.stats();
  return out;
}

}  // namespace vtopo::work
