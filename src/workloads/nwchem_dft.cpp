#include "workloads/nwchem_dft.hpp"

#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workloads/task_pool.hpp"

namespace vtopo::work {

namespace {

using armci::GAddr;
using armci::GetSeg;
using armci::Proc;

struct Shared {
  DftConfig cfg;
  std::int64_t counter_off = 0;   ///< NXTVAL cell, rank 0
  std::int64_t matrix_off = 0;    ///< distributed density/Fock blocks
  std::int64_t energy_off = 0;    ///< energy reduction cell, rank 0
  std::int64_t nprocs = 0;
};

/// Owner of matrix block `b`: uniform hash over all processes.
armci::ProcId owner_of(std::int64_t b, std::int64_t nprocs) {
  std::uint64_t h = static_cast<std::uint64_t>(b) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return static_cast<armci::ProcId>(h % static_cast<std::uint64_t>(nprocs));
}

sim::Co<void> one_task(Proc& p, std::shared_ptr<Shared> st,
                       std::int64_t task) {
  const DftConfig& cfg = st->cfg;
  const std::int64_t block_bytes = cfg.block_doubles * 8;

  // Fetch one density block from its (uniformly distributed) owner.
  std::vector<std::uint8_t> block(static_cast<std::size_t>(block_bytes));
  const armci::ProcId src_owner = owner_of(task * 2 + 1, st->nprocs);
  const GetSeg seg{std::span<std::uint8_t>(block), st->matrix_off};
  co_await p.get_v(src_owner, {&seg, 1});

  co_await p.compute(sim::us(cfg.compute_us_per_task));

  // Accumulate the Fock contribution back to a (different) owner.
  std::vector<double> contrib(static_cast<std::size_t>(cfg.block_doubles),
                              1.0 / (task + 1.0));
  const armci::ProcId dst_owner = owner_of(task * 2 + 2, st->nprocs);
  co_await p.acc_f64(GAddr{dst_owner, st->matrix_off}, contrib, 0.5);
}

sim::Co<void> body(Proc& p, std::shared_ptr<Shared> st) {
  const DftConfig& cfg = st->cfg;
  const std::int64_t total_tasks = cfg.total_tasks;

  for (int iter = 0; iter < cfg.scf_iterations; ++iter) {
    if (p.id() == 0) {
      // Reset the shared counter; the barrier below publishes it.
      p.runtime().memory().write_i64(GAddr{0, st->counter_off}, 0);
    }
    co_await p.barrier();

    TaskPool pool{GAddr{0, st->counter_off}, total_tasks, cfg.chunk};
    // vtopo-lint: allow(suspension-lifetime) -- the closure only runs while this frame is suspended awaiting drain_task_pool
    co_await drain_task_pool(p, pool, [&](std::int64_t t) {
      return one_task(p, st, t);
    });

    // Energy reduction: every process accumulates on rank 0.
    const std::vector<double> e(4, 0.25);
    co_await p.acc_f64(GAddr{0, st->energy_off}, e, 1.0);
    co_await p.barrier();
  }
}

}  // namespace

JobProgram make_nwchem_dft_job(armci::Runtime& rt, const DftConfig& cfg) {
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->nprocs = rt.num_procs();
  st->counter_off = rt.memory().alloc_all(64);
  st->matrix_off = rt.memory().alloc_all(cfg.block_doubles * 8);
  st->energy_off = rt.memory().alloc_all(64);

  JobProgram prog;
  prog.body = [st](Proc& p) { return body(p, st); };
  armci::Runtime* rtp = &rt;
  prog.checksum = [rtp, st] {
    return rtp->memory().read_f64(GAddr{0, st->energy_off});
  };
  return prog;
}

AppResult run_nwchem_dft(const ClusterConfig& cluster,
                         const DftConfig& cfg) {
  ClusterHandle handle(cluster);
  armci::Runtime& rt = handle.rt();
  arm_reconfigure(rt, cluster);

  JobProgram prog = make_nwchem_dft_job(rt, cfg);
  rt.spawn_all(prog.body);
  rt.run_all();

  AppResult out;
  out.exec_time_sec = handle.elapsed_sec();
  out.checksum = prog.checksum();
  out.stats = rt.stats();
  return out;
}

}  // namespace vtopo::work
