// NWChem DFT (SiOSi3) proxy (paper Sec. VI-B, Fig. 9a).
//
// Communication signature of a Fock-matrix construction SCF loop in
// Global Arrays: dynamic load balancing off ONE global counter hosted by
// rank 0 (GA NXTVAL -> ARMCI_Rmw fetch-&-add), per-task block gets from
// uniformly distributed owners, per-task accumulates back, and an
// end-of-iteration energy reduction that accumulates on rank 0. The
// counter and the reduction make rank 0 a hot spot: the workload the
// paper reports MFCG helping by up to 48%.
#pragma once

#include "workloads/common.hpp"

namespace vtopo::work {

struct DftConfig {
  int scf_iterations = 2;
  std::int64_t total_tasks = 24576;  ///< fixed problem => strong scaling
  std::int64_t block_doubles = 96;   ///< matrix block fetched per task
  double compute_us_per_task = 70000.0;
  std::int64_t chunk = 1;            ///< tasks claimed per counter access
};

[[nodiscard]] AppResult run_nwchem_dft(const ClusterConfig& cluster,
                                       const DftConfig& cfg);

/// Allocate the DFT proxy on an existing runtime as a schedulable job.
/// The checksum (the energy cell) accumulates only exactly-representable
/// 0.25-valued contributions, so it is bit-exact regardless of arrival
/// order — the tenant-isolation differential oracle relies on this.
[[nodiscard]] JobProgram make_nwchem_dft_job(armci::Runtime& rt,
                                             const DftConfig& cfg);

}  // namespace vtopo::work
