// vtopo-lint: allow-file(nondeterminism) -- wall-clock backend.
#include "armci/backend_threads.hpp"

#include <algorithm>
#include <cassert>

namespace vtopo::armci {

ThreadsTransport::ThreadsTransport(int num_nodes)
    : num_nodes_(num_nodes), t0_(std::chrono::steady_clock::now()) {
  assert(num_nodes > 0);
  for (int n = 0; n <= num_nodes_; ++n) {
    NodeExec& ex = execs_.emplace_back();
    ex.hook.t = this;
    ex.hook.self = n;
    ex.facade.set_realtime(true);
    ex.facade.install_hook(&ex.hook);
  }
}

ThreadsTransport::~ThreadsTransport() {
  stop_.store(true, std::memory_order_release);
  for (NodeExec& ex : execs_) {
    // The empty critical section pins the worker either inside wait()
    // or before its next stop_ check, so the notify cannot be lost.
    { std::lock_guard<std::mutex> g(ex.mu); }
    ex.cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  // Undrained events (abnormal teardown only) are dropped with their
  // captures when the heaps destruct.
}

sim::TimeNs ThreadsTransport::wall_now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

sim::Engine& ThreadsTransport::context_engine() {
  const int node = sim::current_node();
  if (node >= 0 && node <= num_nodes_) {
    return execs_[static_cast<std::size_t>(node)].facade;
  }
  return execs_[static_cast<std::size_t>(num_nodes_)].facade;
}

sim::Engine& ThreadsTransport::engine_for_node(int node) {
  assert(node >= 0 && node <= num_nodes_);
  return execs_[static_cast<std::size_t>(node)].facade;
}

std::uint64_t ThreadsTransport::events_executed() const {
  std::uint64_t total = 0;
  for (const NodeExec& ex : execs_) total += ex.executed;
  return total;
}

void ThreadsTransport::post_at(int node, sim::TimeNs due, sim::InlineFn fn) {
  if (node < 0 || node > num_nodes_) node = num_nodes_;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  NodeExec& ex = execs_[static_cast<std::size_t>(node)];
  {
    std::lock_guard<std::mutex> g(ex.mu);
    ex.heap.push_back(TimedEv{due, ex.seq++, std::move(fn)});
    std::push_heap(ex.heap.begin(), ex.heap.end(), ev_later);
  }
  ex.cv.notify_one();
}

void ThreadsTransport::worker_main(int node) {
  ScopedNode scope(node);
  NodeExec& ex = execs_[static_cast<std::size_t>(node)];
  std::unique_lock<std::mutex> lk(ex.mu);
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (ex.heap.empty()) {
      ex.cv.wait(lk);
      continue;
    }
    const sim::TimeNs due = ex.heap.front().due;
    if (due > wall_now()) {
      ex.cv.wait_until(lk, t0_ + std::chrono::nanoseconds(due));
      continue;
    }
    std::pop_heap(ex.heap.begin(), ex.heap.end(), ev_later);
    TimedEv ev = std::move(ex.heap.back());
    ex.heap.pop_back();
    lk.unlock();
    // The facade clock never runs backwards and never sits behind an
    // event's due time, so schedule_after arithmetic stays sane.
    ex.facade.set_now(std::max(wall_now(), ev.due));
    ++ex.executed;
    {
      sim::InlineFn fn = std::move(ev.fn);
      fn();
    }  // captures die here, before the event counts as done
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> g(done_mu_);
      done_cv_.notify_all();
    }
    lk.lock();
  }
}

void ThreadsTransport::start_workers() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(num_nodes_) + 1);
  for (int n = 0; n <= num_nodes_; ++n) {
    workers_.emplace_back([this, n] { worker_main(n); });
  }
}

void ThreadsTransport::drive() {
  start_workers();
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace vtopo::armci
