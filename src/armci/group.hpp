// Process groups (GA subgroups / ARMCI domains).
//
// NWChem partitions its processes into groups that run independent
// subcalculations with their own barriers and reductions. A ProcGroup
// is an ordered subset of the runtime's processes providing exactly
// those collectives; one-sided operations need no group (any process
// may target any other).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "armci/memory.hpp"
#include "core/coords.hpp"
#include "sim/task.hpp"

namespace vtopo::armci {

class Runtime;

class ProcGroup {
 public:
  /// Build a group from an explicit member list (deduplicated ids are a
  /// caller bug; ids must be valid ranks).
  ProcGroup(Runtime& rt, std::vector<ProcId> members);

  /// Convenience: the contiguous rank range [first, first+count).
  static ProcGroup range(Runtime& rt, ProcId first, std::int64_t count);
  /// Convenience: every process on the given node.
  static ProcGroup node_group(Runtime& rt, core::NodeId node);

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(members_.size());
  }
  [[nodiscard]] const std::vector<ProcId>& members() const {
    return members_;
  }
  [[nodiscard]] bool contains(ProcId p) const {
    return find_rank(p) >= 0;
  }
  /// Rank of `p` within the group (asserts membership).
  [[nodiscard]] std::int64_t rank_of(ProcId p) const;

  /// Group barrier: releases all members once every member arrived.
  [[nodiscard]] sim::Co<void> barrier(ProcId self);
  /// Group sum-allreduce.
  [[nodiscard]] sim::Co<double> allreduce_sum(ProcId self, double value);

 private:
  /// Group rank of `p`, or -1 for non-members (binary search).
  [[nodiscard]] std::int64_t find_rank(ProcId p) const;

  Runtime* rt_;
  std::vector<ProcId> members_;
  /// (member id, group rank) sorted by id. A sorted vector instead of a
  /// hash map keeps lookups cache-friendly and any future iteration
  /// deterministic (lint rule D2).
  std::vector<std::pair<ProcId, std::int64_t>> rank_of_;

  // Collective state (one outstanding collective of each kind at a
  // time, as with the global barrier).
  std::int64_t barrier_arrived_ = 0;
  std::vector<sim::Future<int>> barrier_futures_;
  std::int64_t reduce_arrived_ = 0;
  double reduce_sum_ = 0.0;
  std::vector<sim::Future<double>> reduce_futures_;
};

}  // namespace vtopo::armci
