#include "armci/proc.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <utility>

#include "armci/arena.hpp"
#include "armci/cht.hpp"
#include "armci/runtime.hpp"

namespace vtopo::armci {

Proc::Proc(Runtime& rt, ProcId id)
    : rt_(&rt),
      id_(id),
      node_(rt.node_of(id)),
      rng_(sim::derive_seed(rt.config().seed,
                            static_cast<std::uint64_t>(id))) {}

bool Proc::is_master() const {
  return id_ % rt_->procs_per_node() == 0;
}

// --------------------------------------------------------------------
// Direct contiguous transfers (bypass the CHT entirely).
// --------------------------------------------------------------------

sim::Co<void> Proc::put(GAddr dst, std::span<const std::uint8_t> src) {
  sim::Engine& eng = rt_->engine();
  const ArmciParams& p = rt_->params();
  const sim::TimeNs t0 = eng.now();
  ++rt_->stats().direct_ops;
  co_await sim::Sleep(eng, p.proc_op_overhead);

  const core::NodeId tnode = rt_->node_of(dst.proc);
  if (rt_->is_threads()) {
    // Real shared-memory transfer: the target's worker copies straight
    // out of the caller's buffer into its own segment (no staging, no
    // modeled wire). The source span stays valid — and unmutated — while
    // this frame is suspended on the completion future.
    GlobalMemory& mem = rt_->memory();
    const std::uint8_t* sp = src.data();
    const std::size_t nbytes = src.size();
    sim::Future<int> done(eng);
    rt_->transport().post(static_cast<int>(tnode),
                          // vtopo-lint: allow(suspension-lifetime) -- mem aliases the runtime-owned GlobalMemory; the frame stays suspended until done.set
                          [&mem, dst, sp, nbytes, done]() mutable {
      mem.write(dst, {sp, nbytes});
      done.set(0);
    });
    co_await done;
    rt_->tracer().record(TraceKind::kPut, id_, t0, eng.now() - t0);
    co_return;
  }
  // Data lands at the simulated arrival instant; the blocking call
  // conservatively returns at remote completion. The staging buffer is a
  // recycled arena chunk moved into the arrival event.
  PayloadArena::Ref data = rt_->payload_arena().acquire(src.size());
  std::memcpy(data.data(), src.data(), src.size());
  const std::int64_t wire =
      p.rdma_header_bytes + static_cast<std::int64_t>(src.size());
  GlobalMemory& mem = rt_->memory();
  if (rt_->is_sharded()) {
    // Sharded: the write must execute on the *target* node's shard (the
    // memory segment belongs to it), and the sender-side completion must
    // resume here at the same arrival instant — exactly what
    // deliver_notify provides.
    sim::Future<int> done(eng);
    rt_->network().deliver_notify(
        node_, tnode, wire, rt_->proc_stream(id_),
        // vtopo-lint: allow(suspension-lifetime) -- mem aliases the runtime-owned GlobalMemory, which outlives this frame
        [&mem, dst, data = std::move(data)]() mutable {
          mem.write(dst, data.view());
        },
        [done]() mutable { done.set(0); });
    co_await done;
  } else {
    const sim::TimeNs arrival =
        rt_->network().send(node_, tnode, wire, rt_->proc_stream(id_));
    eng.schedule_at(arrival,
                    // vtopo-lint: allow(suspension-lifetime) -- mem aliases the runtime-owned GlobalMemory, not a frame local
                    [&mem, dst, data = std::move(data)]() mutable {
      mem.write(dst, data.view());
    });
    co_await sim::Sleep(eng, arrival - eng.now());
  }
  rt_->tracer().record(TraceKind::kPut, id_, t0, eng.now() - t0);
}

sim::Co<void> Proc::get(std::span<std::uint8_t> dst, GAddr src) {
  sim::Engine& eng = rt_->engine();
  const ArmciParams& p = rt_->params();
  const sim::TimeNs t0 = eng.now();
  ++rt_->stats().direct_ops;
  co_await sim::Sleep(eng, p.proc_op_overhead);

  const core::NodeId tnode = rt_->node_of(src.proc);
  if (rt_->is_threads()) {
    // Real shared-memory read: the owner's worker snapshots its segment
    // into the caller's destination buffer, which no one else touches
    // until this frame resumes.
    GlobalMemory& mem = rt_->memory();
    std::uint8_t* out = dst.data();
    const std::size_t nbytes = dst.size();
    sim::Future<int> done(eng);
    rt_->transport().post(static_cast<int>(tnode),
                          // vtopo-lint: allow(suspension-lifetime) -- mem aliases the runtime-owned GlobalMemory; the frame stays suspended until done.set
                          [&mem, out, nbytes, src, done]() mutable {
      mem.read({out, nbytes}, src);
      done.set(0);
    });
    co_await done;
    rt_->tracer().record(TraceKind::kGet, id_, t0, eng.now() - t0);
    co_return;
  }
  if (rt_->is_sharded()) {
    // Sharded RDMA read: the descriptor leg lands on the target node's
    // shard, which snapshots the bytes at the descriptor-arrival
    // instant (the legacy path reads at the same simulated time, just
    // on the origin's stack) and streams them back; the data leg lands
    // here and completes the op. Wire costs match the legacy transfer
    // pair exactly.
    Runtime* rt = rt_;
    const core::NodeId onode = node_;
    const net::Network::StreamKey stream = rt_->proc_stream(id_);
    const std::int64_t nbytes = static_cast<std::int64_t>(dst.size());
    std::uint8_t* out = dst.data();
    const std::int64_t hdr = p.rdma_header_bytes;
    sim::Future<int> done(eng);
    rt->network().deliver(
        onode, tnode, hdr, stream,
        [rt, src, onode, tnode, stream, nbytes, out, hdr, done]() mutable {
          PayloadArena::Ref data =
              rt->payload_arena().acquire(static_cast<std::size_t>(nbytes));
          rt->memory().read(data.mutable_view(), src);
          rt->network().deliver(
              tnode, onode, hdr + nbytes, stream,
              [out, nbytes, data = std::move(data), done]() mutable {
                std::memcpy(out, data.data(),
                            static_cast<std::size_t>(nbytes));
                done.set(0);
              });
        });
    co_await done;
  } else {
    // RDMA read: descriptor travels to the target NIC, data streams
    // back.
    co_await rt_->network().transfer(node_, tnode, p.rdma_header_bytes,
                                     rt_->proc_stream(id_));
    PayloadArena::Ref data = rt_->payload_arena().acquire(dst.size());
    rt_->memory().read(data.mutable_view(), src);
    co_await rt_->network().transfer(
        tnode, node_,
        p.rdma_header_bytes + static_cast<std::int64_t>(dst.size()),
        rt_->proc_stream(id_));
    std::memcpy(dst.data(), data.data(), dst.size());
  }
  rt_->tracer().record(TraceKind::kGet, id_, t0, eng.now() - t0);
}

// --------------------------------------------------------------------
// CHT-mediated request plumbing.
// --------------------------------------------------------------------

RequestPtr Proc::make_request(OpCode op, ProcId target) {
  RequestPtr r = rt_->request_pool().acquire();
  r->id = rt_->next_request_id();
  r->op = op;
  r->origin_proc = id_;
  r->origin_node = node_;
  r->target_proc = target;
  r->target_node = rt_->node_of(target);
  r->cls = cls_override_ ? *cls_override_ : default_priority(op);
  return r;
}

sim::Future<Response> Proc::make_future(const RequestPtr& r) {
  sim::Future<Response> fut(rt_->engine());
  r->response_future = fut;  // copies share the pooled state
  return fut;
}

sim::Co<void> Proc::issue_send(RequestPtr r) {
  // Reconfiguration fence: new CHT-mediated ops park here while a live
  // topology remap quiesces the request path. Unlock must bypass the
  // fence — a parked lock waiter's request can only drain through its
  // holder's unlock. Ready (zero events, zero time) when inactive.
  while (rt_->reconfig_active() && r->op != OpCode::kUnlock) {
    co_await rt_->reconfig_fence();
  }
  rt_->note_request_issued();
  sim::Engine& eng = rt_->engine();
  const ArmciParams& p = rt_->params();
  ++rt_->stats().requests;
  // Endpoint congestion window: gated classes charge one slot toward
  // the target before anything else is paid, so a full window delays
  // the whole issue path (overhead, credits, wire). Intra-node ops
  // never hit a CHT queue remotely and are exempt, like credits.
  if (r->target_node != node_) {
    CongestionControl& cc = rt_->congestion(node_);
    if (cc.gates(r->cls)) {
      r->window_slot_taken = true;
      auto gate = cc.acquire(r->target_node, r->cls);
      const sim::TimeNs w0 = eng.now();
      co_await gate;
      if (gate.suspended) {
        ++rt_->stats().congestion_stalls;
        rt_->stats().congestion_stall_ns += eng.now() - w0;
      }
    }
  }
  // Self-healing request path: arm the per-request timeout/retry
  // watchdog before paying overhead or credits, so the timeout clock
  // covers the whole issue path. Locks are exempt (lock traffic is
  // modeled reliable — a replayed lock would re-queue), as are
  // intra-node ops (shared memory, never on the wire).
  if (rt_->faults_armed() && r->target_node != node_ &&
      r->op != OpCode::kLock && r->op != OpCode::kUnlock &&
      r->response_future.has_value()) {
    rt_->arm_retry_watchdog(r);
  }
  co_await sim::Sleep(eng, p.proc_op_overhead);

  const std::int64_t wire = p.request_header_bytes + r->payload_bytes();
  if (r->target_node == node_) {
    // Intra-node: handed to the local CHT through shared memory; no
    // buffer credit involved.
    r->upstream_node = node_;
    r->upstream_is_cht = false;
    r->hop_credit_taken = false;
    rt_->send_request_msg(std::move(r), node_, node_, wire,
                          rt_->proc_stream(id_));
    co_return;
  }

  const core::NodeId hop = rt_->next_hop_for(node_, r->target_node);
  CreditBank& bank = rt_->credits(node_);
  const sim::TimeNs t0 = eng.now();
  co_await bank.acquire(hop, r->cls);
  const sim::TimeNs blocked = eng.now() - t0;
  bank.add_blocked(blocked);
  rt_->stats().credit_blocked_ns += blocked;

  r->upstream_node = node_;
  r->upstream_is_cht = false;
  r->hop_credit_taken = true;
  rt_->send_request_msg(std::move(r), node_, hop, wire,
                        rt_->proc_stream(id_));
}

sim::Co<Response> Proc::roundtrip(RequestPtr r) {
  const Priority cls = r->cls;
  const sim::TimeNs t0 = rt_->engine().now();
  sim::Future<Response> fut = make_future(r);
  co_await issue_send(std::move(r));
  Response resp = co_await fut;
  rt_->tracer().record(class_latency_kind(cls), id_, t0,
                       rt_->engine().now() - t0);
  co_return resp;
}

// --------------------------------------------------------------------
// Vectored / strided / accumulate operations.
// --------------------------------------------------------------------

namespace {

/// Greatest payload a single request may carry.
std::int64_t max_chunk_payload(const ArmciParams& p) {
  // Leave room for the header and one segment descriptor.
  return p.buffer_bytes - p.request_header_bytes - 16;
}

}  // namespace

std::vector<RequestPtr> Proc::chunk_put(ProcId target, OpCode op,
                                        std::span<const PutSeg> segs,
                                        double scale, AccType acc_type) {
  const std::int64_t limit = max_chunk_payload(rt_->params());
  std::vector<RequestPtr> reqs;
  RequestPtr cur;
  std::int64_t cur_bytes = 0;
  auto flush = [&] {
    if (cur && !cur->segs.empty()) reqs.push_back(std::move(cur));
    cur = nullptr;
    cur_bytes = 0;
  };
  auto ensure = [&] {
    if (!cur) {
      cur = make_request(op, target);
      cur->scale = scale;
      cur->acc_type = acc_type;
    }
  };
  for (const PutSeg& seg : segs) {
    std::int64_t off = 0;
    const auto total = static_cast<std::int64_t>(seg.src.size());
    while (off < total) {
      ensure();
      const std::int64_t room = limit - cur_bytes - 16;
      if (room <= 0) {
        flush();
        continue;
      }
      const std::int64_t take = std::min(total - off, room);
      cur->segs.push_back(VecSeg{seg.target_offset + off, take});
      const auto* base = seg.src.data() + off;
      cur->data.insert(cur->data.end(), base, base + take);
      cur_bytes += take + 16;
      off += take;
    }
  }
  flush();
  return reqs;
}

std::vector<RequestPtr> Proc::chunk_get(ProcId target,
                                        std::span<const GetSeg> segs) {
  const std::int64_t limit = max_chunk_payload(rt_->params());
  std::vector<RequestPtr> reqs;
  RequestPtr cur;
  std::int64_t cur_bytes = 0;
  auto flush = [&] {
    if (cur && !cur->segs.empty()) reqs.push_back(std::move(cur));
    cur = nullptr;
    cur_bytes = 0;
  };
  for (const GetSeg& seg : segs) {
    std::int64_t off = 0;
    const auto total = static_cast<std::int64_t>(seg.dst.size());
    while (off < total) {
      if (!cur) cur = make_request(OpCode::kGetV, target);
      const std::int64_t room = limit - cur_bytes - 16;
      if (room <= 0) {
        flush();
        continue;
      }
      const std::int64_t take = std::min(total - off, room);
      cur->segs.push_back(VecSeg{seg.source_offset + off, take});
      cur_bytes += take + 16;
      off += take;
    }
  }
  flush();
  return reqs;
}

sim::Co<void> Proc::vector_op(OpCode /*op*/, ProcId /*target*/,
                              std::vector<RequestPtr> reqs) {
  // Pipeline: issue every chunk (each taking its own buffer credit),
  // then await all completions. The whole group shares one class, so
  // one class-latency sample covers the call.
  const Priority cls =
      reqs.empty() ? Priority::kNormal : reqs.front()->cls;
  const sim::TimeNs t0 = rt_->engine().now();
  std::vector<sim::Future<Response>> futs;
  futs.reserve(reqs.size());
  for (auto& r : reqs) futs.push_back(make_future(r));
  for (auto& r : reqs) co_await issue_send(std::move(r));
  for (auto& f : futs) co_await f;
  if (!futs.empty()) {
    rt_->tracer().record(class_latency_kind(cls), id_, t0,
                         rt_->engine().now() - t0);
  }
}

sim::Co<void> Proc::put_v(ProcId target, std::span<const PutSeg> segs) {
  const sim::TimeNs t0 = rt_->engine().now();
  co_await vector_op(OpCode::kPutV, target,
                     chunk_put(target, OpCode::kPutV, segs, 1.0));
  rt_->tracer().record(TraceKind::kPutV, id_, t0,
                       rt_->engine().now() - t0);
}

sim::Co<void> Proc::get_v(ProcId target, std::span<const GetSeg> segs) {
  const sim::TimeNs t0 = rt_->engine().now();
  co_await scatter_get(target,
                       std::vector<GetSeg>(segs.begin(), segs.end()));
  rt_->tracer().record(TraceKind::kGetV, id_, t0,
                       rt_->engine().now() - t0);
}

sim::Co<void> Proc::scatter_get(ProcId target, std::vector<GetSeg> segs) {
  std::vector<RequestPtr> reqs = chunk_get(target, segs);
  const Priority cls =
      reqs.empty() ? Priority::kNormal : reqs.front()->cls;
  const sim::TimeNs t0 = rt_->engine().now();
  // Remember local scatter layout: chunks partition the segment list in
  // order, so replay the same walk when responses arrive.
  std::vector<sim::Future<Response>> futs;
  futs.reserve(reqs.size());
  for (auto& r : reqs) futs.push_back(make_future(r));
  for (auto& r : reqs) co_await issue_send(std::move(r));

  // Collect responses, then scatter bytes into the local spans.
  std::vector<Response> resps;
  resps.reserve(futs.size());
  for (auto& f : futs) resps.push_back(co_await f);
  if (!futs.empty()) {
    rt_->tracer().record(class_latency_kind(cls), id_, t0,
                         rt_->engine().now() - t0);
  }

  std::size_t chunk = 0;
  std::size_t within = 0;  // byte offset within current response
  for (const GetSeg& seg : segs) {
    std::size_t off = 0;
    while (off < seg.dst.size()) {
      assert(chunk < resps.size());
      const std::vector<std::uint8_t>& data = resps[chunk].data;
      const std::size_t avail = data.size() - within;
      const std::size_t take = std::min(avail, seg.dst.size() - off);
      std::memcpy(seg.dst.data() + off, data.data() + within, take);
      off += take;
      within += take;
      if (within == data.size()) {
        ++chunk;
        within = 0;
      }
    }
  }
}

sim::Co<void> Proc::acc_bytes(GAddr dst,
                              std::span<const std::uint8_t> raw,
                              double scale, AccType type) {
  const sim::TimeNs t0 = rt_->engine().now();
  const PutSeg seg{raw, dst.offset};
  co_await vector_op(
      OpCode::kAcc, dst.proc,
      chunk_put(dst.proc, OpCode::kAcc, {&seg, 1}, scale, type));
  rt_->tracer().record(TraceKind::kAcc, id_, t0,
                       rt_->engine().now() - t0);
}

sim::Co<void> Proc::acc_f64(GAddr dst, std::span<const double> src,
                            double scale) {
  co_await acc_bytes(
      dst,
      {reinterpret_cast<const std::uint8_t*>(src.data()),
       src.size() * sizeof(double)},
      scale, AccType::kF64);
}

sim::Co<void> Proc::acc_i64(GAddr dst, std::span<const std::int64_t> src,
                            std::int64_t scale) {
  co_await acc_bytes(
      dst,
      {reinterpret_cast<const std::uint8_t*>(src.data()),
       src.size() * sizeof(std::int64_t)},
      static_cast<double>(scale), AccType::kI64);
}

sim::Co<void> Proc::acc_f32(GAddr dst, std::span<const float> src,
                            float scale) {
  co_await acc_bytes(
      dst,
      {reinterpret_cast<const std::uint8_t*>(src.data()),
       src.size() * sizeof(float)},
      static_cast<double>(scale), AccType::kF32);
}

sim::Co<void> Proc::put_strided(GAddr dst, std::int64_t dst_stride,
                                const std::uint8_t* src,
                                std::int64_t src_stride,
                                std::int64_t block_bytes,
                                std::int64_t count) {
  // Sugar over the N-level path (one stride level).
  const std::int64_t dst_strides[] = {dst_stride};
  const std::int64_t src_strides[] = {src_stride};
  const std::int64_t counts[] = {block_bytes, count};
  co_await put_strided_n(dst, dst_strides, src, src_strides, counts);
}

sim::Co<void> Proc::get_strided(std::uint8_t* dst, std::int64_t dst_stride,
                                GAddr src, std::int64_t src_stride,
                                std::int64_t block_bytes,
                                std::int64_t count) {
  const std::int64_t dst_strides[] = {dst_stride};
  const std::int64_t src_strides[] = {src_stride};
  const std::int64_t counts[] = {block_bytes, count};
  co_await get_strided_n(dst, dst_strides, src, src_strides, counts);
}

// --------------------------------------------------------------------
// Atomics and locks.
// --------------------------------------------------------------------

sim::Co<std::int64_t> Proc::fetch_add(GAddr counter, std::int64_t delta) {
  const sim::TimeNs t0 = rt_->engine().now();
  RequestPtr r = make_request(OpCode::kFetchAdd, counter.proc);
  r->addr = counter;
  r->imm = delta;
  Response resp = co_await roundtrip(std::move(r));
  rt_->tracer().record(TraceKind::kFetchAdd, id_, t0,
                       rt_->engine().now() - t0);
  co_return resp.value;
}

sim::Co<std::int64_t> Proc::swap(GAddr cell, std::int64_t value) {
  const sim::TimeNs t0 = rt_->engine().now();
  RequestPtr r = make_request(OpCode::kSwap, cell.proc);
  r->addr = cell;
  r->imm = value;
  Response resp = co_await roundtrip(std::move(r));
  rt_->tracer().record(TraceKind::kSwap, id_, t0,
                       rt_->engine().now() - t0);
  co_return resp.value;
}

sim::Co<void> Proc::lock(ProcId owner, std::int32_t mutex_id) {
  const sim::TimeNs t0 = rt_->engine().now();
  RequestPtr r = make_request(OpCode::kLock, owner);
  r->mutex_id = mutex_id;
  co_await roundtrip(std::move(r));
  rt_->tracer().record(TraceKind::kLock, id_, t0,
                       rt_->engine().now() - t0);
}

sim::Co<void> Proc::unlock(ProcId owner, std::int32_t mutex_id) {
  const sim::TimeNs t0 = rt_->engine().now();
  RequestPtr r = make_request(OpCode::kUnlock, owner);
  r->mutex_id = mutex_id;
  co_await roundtrip(std::move(r));
  rt_->tracer().record(TraceKind::kUnlock, id_, t0,
                       rt_->engine().now() - t0);
}

// --------------------------------------------------------------------
// Non-blocking variants.
// --------------------------------------------------------------------

namespace {

sim::Co<void> drive_requests(Proc* self, std::vector<RequestPtr> reqs,
                             std::vector<sim::Future<Response>> futs,
                             sim::Future<int> done) {
  for (auto& r : reqs) co_await self->nb_issue(std::move(r));
  for (auto& f : futs) co_await f;
  done.set(0);
}

}  // namespace

sim::Future<int> Proc::nb_put_v(ProcId target,
                                std::span<const PutSeg> segs) {
  std::vector<RequestPtr> reqs =
      chunk_put(target, OpCode::kPutV, segs, 1.0);
  std::vector<sim::Future<Response>> futs;
  futs.reserve(reqs.size());
  for (auto& r : reqs) futs.push_back(make_future(r));
  sim::Future<int> done(rt_->engine());
  rt_->spawn_task(
      drive_requests(this, std::move(reqs), std::move(futs), done));
  return done;
}

sim::Future<int> Proc::nb_acc_f64(GAddr dst, std::span<const double> src,
                                  double scale) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(src.data());
  const PutSeg seg{
      std::span<const std::uint8_t>(bytes, src.size() * sizeof(double)),
      dst.offset};
  std::vector<RequestPtr> reqs =
      chunk_put(dst.proc, OpCode::kAcc, {&seg, 1}, scale);
  std::vector<sim::Future<Response>> futs;
  futs.reserve(reqs.size());
  for (auto& r : reqs) futs.push_back(make_future(r));
  sim::Future<int> done(rt_->engine());
  rt_->spawn_task(
      drive_requests(this, std::move(reqs), std::move(futs), done));
  return done;
}


namespace {

sim::Co<void> drive_get(Proc* self, ProcId target,
                        std::vector<GetSeg> segs, sim::Future<int> done) {
  co_await self->scatter_get(target, std::move(segs));
  done.set(0);
}

}  // namespace

sim::Future<int> Proc::nb_get_v(ProcId target,
                                std::span<const GetSeg> segs) {
  sim::Future<int> done(rt_->engine());
  rt_->spawn_task(drive_get(
      this, target, std::vector<GetSeg>(segs.begin(), segs.end()), done));
  return done;
}

sim::Co<void> Proc::nb_issue(RequestPtr r) {
  co_await issue_send(std::move(r));
}


// --------------------------------------------------------------------
// N-level strided transfers (ARMCI_PutS/GetS/AccS).
// --------------------------------------------------------------------

namespace {

/// Walk the odometer of an N-level strided description, producing the
/// (local offset, remote offset) of each contiguous block.
void expand_strided(std::span<const std::int64_t> dst_strides,
                    std::span<const std::int64_t> src_strides,
                    std::span<const std::int64_t> counts,
                    std::vector<std::pair<std::int64_t, std::int64_t>>&
                        out /* (local, remote) */) {
  const auto levels = static_cast<int>(counts.size()) - 1;
  assert(levels >= 0 && levels <= 7);
  assert(static_cast<int>(dst_strides.size()) == levels &&
         static_cast<int>(src_strides.size()) == levels);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(levels), 0);
  for (;;) {
    std::int64_t local = 0;
    std::int64_t remote = 0;
    for (int l = 0; l < levels; ++l) {
      local += idx[static_cast<std::size_t>(l)] *
               src_strides[static_cast<std::size_t>(l)];
      remote += idx[static_cast<std::size_t>(l)] *
                dst_strides[static_cast<std::size_t>(l)];
    }
    out.emplace_back(local, remote);
    int l = 0;
    for (; l < levels; ++l) {
      if (++idx[static_cast<std::size_t>(l)] <
          counts[static_cast<std::size_t>(l) + 1]) {
        break;
      }
      idx[static_cast<std::size_t>(l)] = 0;
    }
    if (l == levels) break;
  }
}

}  // namespace

namespace {

/// Fill a compact descriptor from strided-op arguments; target-side
/// strides go on the wire.
StridedDesc make_desc(std::int64_t base,
                      std::span<const std::int64_t> target_strides,
                      std::span<const std::int64_t> counts) {
  StridedDesc d;
  d.base_offset = base;
  d.block_bytes = counts[0];
  d.levels = static_cast<int>(counts.size()) - 1;
  for (int l = 0; l < d.levels; ++l) {
    d.strides[static_cast<std::size_t>(l)] =
        target_strides[static_cast<std::size_t>(l)];
    d.counts[static_cast<std::size_t>(l)] =
        counts[static_cast<std::size_t>(l) + 1];
  }
  return d;
}

}  // namespace

sim::Co<void> Proc::put_strided_n(
    GAddr dst, std::span<const std::int64_t> dst_strides,
    const std::uint8_t* src, std::span<const std::int64_t> src_strides,
    std::span<const std::int64_t> counts) {
  const StridedDesc desc = make_desc(dst.offset, dst_strides, counts);
  const std::int64_t fits_limit = rt_->params().buffer_bytes -
                                  rt_->params().request_header_bytes -
                                  StridedDesc::kWireBytes;
  if (desc.levels <= 7 && desc.total_bytes() <= fits_limit) {
    // Fast path: one compact ARMCI_PutS request; the target expands the
    // descriptor. Payload packed in odometer order (level 0 innermost).
    RequestPtr r = make_request(OpCode::kPutS, dst.proc);
    r->strided = desc;
    r->data.reserve(static_cast<std::size_t>(desc.total_bytes()));
    std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
    expand_strided(dst_strides, src_strides, counts, blocks);
    for (const auto& [local, remote] : blocks) {
      r->data.insert(r->data.end(), src + local,
                     src + local + counts[0]);
    }
    co_await roundtrip(std::move(r));
    co_return;
  }
  // Oversized: fall back to buffer-chunked vectored segments.
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
  expand_strided(dst_strides, src_strides, counts, blocks);
  std::vector<PutSeg> segs;
  segs.reserve(blocks.size());
  for (const auto& [local, remote] : blocks) {
    segs.push_back(PutSeg{
        std::span<const std::uint8_t>(src + local,
                                      static_cast<std::size_t>(counts[0])),
        dst.offset + remote});
  }
  co_await put_v(dst.proc, segs);
}

sim::Co<void> Proc::get_strided_n(
    std::uint8_t* dst, std::span<const std::int64_t> dst_strides,
    GAddr src, std::span<const std::int64_t> src_strides,
    std::span<const std::int64_t> counts) {
  // Note the argument roles flip: for a get, the REMOTE side is `src`.
  const StridedDesc desc = make_desc(src.offset, src_strides, counts);
  if (desc.levels <= 7) {
    // Compact ARMCI_GetS: a fixed-size descriptor goes out; the gathered
    // bytes come back in one response (responses are not buffer-bound).
    RequestPtr r = make_request(OpCode::kGetS, src.proc);
    r->strided = desc;
    Response resp = co_await roundtrip(std::move(r));
    // Scatter in the same odometer order the target gathered.
    std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
    expand_strided(src_strides, dst_strides, counts, blocks);
    std::int64_t off = 0;
    for (const auto& [local, remote] : blocks) {
      (void)remote;
      std::memcpy(dst + local, resp.data.data() + off,
                  static_cast<std::size_t>(counts[0]));
      off += counts[0];
    }
    co_return;
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
  expand_strided(src_strides, dst_strides, counts, blocks);
  std::vector<GetSeg> segs;
  segs.reserve(blocks.size());
  for (const auto& [local, remote] : blocks) {
    segs.push_back(GetSeg{
        std::span<std::uint8_t>(dst + local,
                                static_cast<std::size_t>(counts[0])),
        src.offset + remote});
  }
  co_await get_v(src.proc, segs);
}

sim::Co<void> Proc::acc_strided_f64(
    GAddr dst, std::span<const std::int64_t> dst_strides,
    const double* src, std::span<const std::int64_t> src_strides,
    std::span<const std::int64_t> counts, double scale) {
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
  expand_strided(dst_strides, src_strides, counts, blocks);
  std::vector<PutSeg> segs;
  segs.reserve(blocks.size());
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(src);
  for (const auto& [local, remote] : blocks) {
    segs.push_back(PutSeg{
        std::span<const std::uint8_t>(bytes + local,
                                      static_cast<std::size_t>(counts[0])),
        dst.offset + remote});
  }
  co_await vector_op(
      OpCode::kAcc, dst.proc,
      chunk_put(dst.proc, OpCode::kAcc, segs, scale, AccType::kF64));
}

// --------------------------------------------------------------------
// Synchronization.
// --------------------------------------------------------------------

sim::Co<void> Proc::barrier() {
  const sim::TimeNs t0 = rt_->engine().now();
  co_await rt_->barrier_wait();
  rt_->tracer().record(TraceKind::kBarrier, id_, t0,
                       rt_->engine().now() - t0);
}

sim::Co<void> Proc::compute(sim::TimeNs d) {
  co_await sim::Sleep(rt_->engine(), d);
}

sim::Co<void> Proc::fence() {
  co_await sim::Sleep(rt_->engine(), rt_->params().proc_op_overhead);
}

}  // namespace vtopo::armci
