#include "armci/trace.hpp"

#include <sstream>

namespace vtopo::armci {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kPut:
      return "put";
    case TraceKind::kGet:
      return "get";
    case TraceKind::kPutV:
      return "put_v";
    case TraceKind::kGetV:
      return "get_v";
    case TraceKind::kAcc:
      return "acc";
    case TraceKind::kFetchAdd:
      return "fetch_add";
    case TraceKind::kSwap:
      return "swap";
    case TraceKind::kLock:
      return "lock";
    case TraceKind::kUnlock:
      return "unlock";
    case TraceKind::kBarrier:
      return "barrier";
    case TraceKind::kReconfigure:
      return "reconfigure";
    case TraceKind::kRetry:
      return "retry";
    case TraceKind::kQueueWaitBulk:
      return "queue_wait_bulk";
    case TraceKind::kQueueWaitNormal:
      return "queue_wait_normal";
    case TraceKind::kQueueWaitCritical:
      return "queue_wait_critical";
    case TraceKind::kClassLatBulk:
      return "class_lat_bulk";
    case TraceKind::kClassLatNormal:
      return "class_lat_normal";
    case TraceKind::kClassLatCritical:
      return "class_lat_critical";
  }
  return "?";
}

std::string OpTracer::summary() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < kNumTraceKinds; ++k) {
    const sim::Series& s = series_[k];
    if (s.empty()) continue;
    os << to_string(static_cast<TraceKind>(k)) << " count=" << s.size()
       << " mean_us=" << s.mean() << " p50=" << s.median()
       << " p95=" << s.percentile(95) << " max=" << s.max() << "\n";
  }
  return os.str();
}

std::string OpTracer::events_csv() const {
  std::ostringstream os;
  os << "kind,proc,start_ns,latency_ns\n";
  for (const TraceEvent& e : events_) {
    os << to_string(e.kind) << "," << e.proc << "," << e.start << ","
       << e.latency << "\n";
  }
  return os.str();
}

}  // namespace vtopo::armci
