// One-sided request descriptors.
//
// Contiguous put/get are fully one-sided on the (simulated) NIC — they
// never enter a CHT and never consume request buffers, mirroring ARMCI
// on Portals. Everything else — accumulate, vectored/strided transfers,
// read-modify-write atomics, lock/unlock — is a CHT-mediated request
// that travels the *virtual topology* (possibly forwarded) and occupies
// a request buffer at every hop.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/coords.hpp"
#include "armci/memory.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/task.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

/// Element type of an accumulate (ARMCI_ACC_DBL / _LNG / _FLT).
enum class AccType : std::uint8_t { kF64, kI64, kF32 };

enum class OpCode : std::uint8_t {
  kAcc,       ///< dst[i] += scale * src[i] (typed accumulate)
  kPutV,      ///< vectored (noncontiguous) put
  kGetV,      ///< vectored (noncontiguous) get
  kPutS,      ///< strided put (compact descriptor, expanded at target)
  kGetS,      ///< strided get (compact descriptor)
  kFetchAdd,  ///< atomic int64 fetch-&-add
  kSwap,      ///< atomic int64 swap
  kLock,      ///< acquire a remote mutex
  kUnlock,    ///< release a remote mutex
};

[[nodiscard]] const char* to_string(OpCode op);

/// Criticality class of a request. Atomics (fetch-&-add, swap) and lock
/// traffic default to kCritical — they gate a rank's next task — while
/// bulk data movement defaults to kBulk; everything else is kNormal.
/// With QoS disabled (ArmciParams::qos.enabled == false) the class is
/// carried but never consulted, so the default path stays byte-identical
/// to the pre-QoS FIFO.
enum class Priority : std::uint8_t {
  kBulk = 0,
  kNormal = 1,
  kCritical = 2,
};
inline constexpr int kNumPriorities = 3;

[[nodiscard]] const char* to_string(Priority cls);

/// Default class for an op when the caller does not override it.
[[nodiscard]] constexpr Priority default_priority(OpCode op) {
  switch (op) {
    case OpCode::kFetchAdd:
    case OpCode::kSwap:
    case OpCode::kLock:
    case OpCode::kUnlock:
      return Priority::kCritical;
    case OpCode::kPutV:
    case OpCode::kGetV:
    case OpCode::kPutS:
    case OpCode::kGetS:
      return Priority::kBulk;
    case OpCode::kAcc:
      return Priority::kNormal;
  }
  return Priority::kNormal;
}

/// One segment of a vectored transfer, target side. Data for puts rides
/// in Request::data in segment order; data for gets rides back in
/// Response::data.
struct VecSeg {
  std::int64_t target_offset = 0;
  std::int64_t bytes = 0;
};

/// Compact N-level strided descriptor (ARMCI_PutS wire format): the
/// target expands it instead of shipping one VecSeg per block, so the
/// wire overhead is one fixed-size descriptor regardless of block count.
struct StridedDesc {
  std::int64_t base_offset = 0;
  std::int64_t block_bytes = 0;               ///< contiguous bytes
  int levels = 0;                             ///< 0..7
  std::array<std::int64_t, 7> strides{};      ///< target-side strides
  std::array<std::int64_t, 7> counts{};       ///< repetitions per level

  [[nodiscard]] std::int64_t total_blocks() const {
    std::int64_t n = 1;
    for (int l = 0; l < levels; ++l) n *= counts[static_cast<std::size_t>(l)];
    return n;
  }
  [[nodiscard]] std::int64_t total_bytes() const {
    return total_blocks() * block_bytes;
  }
  /// Wire size of the descriptor itself.
  static constexpr std::int64_t kWireBytes = 128;
};

/// What the target sends back to the origin process.
struct Response {
  std::int64_t value = 0;            ///< fetch-&-add / swap result
  /// Servicing CHT's queue depth when the response left — the congestion
  /// feedback the origin's per-target AIMD window shrinks on. Always
  /// populated (pure data, no extra event), only acted on when
  /// ArmciParams::qos.congestion is enabled.
  std::int32_t queue_backlog = 0;
  std::vector<std::uint8_t> data;    ///< gathered data for kGetV
};

class RequestPool;

/// A CHT-mediated request in flight. Intrusively refcounted (RequestPtr)
/// so the origin, the network events, and the servicing CHT can all
/// reference it without a control-block allocation; requests drawn from
/// a RequestPool return there on last release, keeping their vector
/// capacities for the next op. The "wire" cost is modeled separately
/// (wire_bytes).
struct Request {
  std::uint64_t id = 0;
  OpCode op = OpCode::kFetchAdd;

  ProcId origin_proc = 0;
  core::NodeId origin_node = 0;
  ProcId target_proc = 0;
  core::NodeId target_node = 0;

  /// Node the current copy of the request was sent from (the origin node
  /// initially, then each intermediate). The handler acknowledges this
  /// node to release the buffer credit the hop consumed.
  core::NodeId upstream_node = 0;
  /// False for the first hop (ack releases the origin process's credit),
  /// true once an intermediate CHT has forwarded it.
  bool upstream_is_cht = false;
  /// True when the latest hop consumed a buffer credit (always, except
  /// intra-node deliveries which bypass flow control).
  bool hop_credit_taken = false;
  /// Number of CHT forwarding steps taken so far (diagnostics).
  int forwards = 0;
  /// Retry attempt this copy belongs to: 0 for the original issue, n for
  /// the n-th watchdog re-issue. All attempts share `id` — the sequence
  /// number the target CHT dedups on — and the origin's response future.
  int attempt = 0;
  /// Criticality class; see default_priority(). Travels with the request
  /// so every hop's CHT dequeues and every credit acquire lanes by it.
  Priority cls = Priority::kNormal;
  /// Simulated time this copy entered the current CHT queue (per-class
  /// queue-wait accounting + aging). Reset on every submit.
  std::int64_t enqueued_ns = 0;
  /// True when the origin's per-target congestion window charged a slot
  /// for this op; the (dedup-gated) completion returns exactly one slot.
  bool window_slot_taken = false;

  GAddr addr{};                      ///< target address (atomic/acc/lock id base)
  AccType acc_type = AccType::kF64;  ///< accumulate element type
  double scale = 1.0;                ///< accumulate scale factor
  std::int64_t imm = 0;              ///< fetch-&-add delta / swap value
  std::int32_t mutex_id = 0;         ///< lock/unlock mutex index
  std::vector<VecSeg> segs;          ///< vectored segments
  StridedDesc strided;               ///< kPutS/kGetS descriptor
  std::vector<std::uint8_t> data;    ///< put/acc payload (real bytes)

  /// Payload bytes carried by the request on the wire.
  [[nodiscard]] std::int64_t payload_bytes() const {
    std::int64_t desc =
        static_cast<std::int64_t>(segs.size()) * 16;
    if (op == OpCode::kPutS || op == OpCode::kGetS) {
      desc = StridedDesc::kWireBytes;
    }
    return static_cast<std::int64_t>(data.size()) + desc;
  }
  /// Data bytes the response will carry back.
  [[nodiscard]] std::int64_t response_data_bytes() const;

  /// Fulfilled (via the event queue) when the response reaches origin.
  /// Typed future instead of a type-erased callback: attaching a
  /// completion no longer risks a std::function heap allocation, and the
  /// future's shared state itself is pooled (sim::RecycleAlloc).
  std::optional<sim::Future<Response>> response_future;

 private:
  friend class RequestPtr;
  friend class RequestPool;
  /// Atomic: under the sharded engine the origin, an intermediate CHT,
  /// and the target CHT may hold RequestPtr copies on different worker
  /// threads. Contention is nil (a handful of refs per request), so the
  /// relaxed increments cost what the plain ones did.
  std::atomic<std::uint32_t> refs_{0};
  RequestPool* pool_ = nullptr;   ///< owner; null => plain heap object
  Request* free_next_ = nullptr;  ///< freelist link while parked
};

/// Intrusive refcounted handle to a Request. One pointer wide, so event
/// callbacks holding one stay inside InlineFn's inline storage, and
/// copy/release touch only the object's own counter — no control block,
/// no allocator.
class RequestPtr {
 public:
  RequestPtr() noexcept = default;
  RequestPtr(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)
  /// Adopts a reference (the pool hands out refcount-0 objects).
  explicit RequestPtr(Request* r) noexcept : p_(r) {
    if (p_ != nullptr) p_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  RequestPtr(const RequestPtr& other) noexcept : p_(other.p_) {
    if (p_ != nullptr) p_->refs_.fetch_add(1, std::memory_order_relaxed);
  }
  RequestPtr(RequestPtr&& other) noexcept
      : p_(std::exchange(other.p_, nullptr)) {}
  RequestPtr& operator=(const RequestPtr& other) noexcept {
    RequestPtr tmp(other);
    std::swap(p_, tmp.p_);
    return *this;
  }
  RequestPtr& operator=(RequestPtr&& other) noexcept {
    RequestPtr tmp(std::move(other));
    std::swap(p_, tmp.p_);
    return *this;
  }
  ~RequestPtr() { reset(); }

  void reset() noexcept;

  [[nodiscard]] Request* get() const noexcept { return p_; }
  Request& operator*() const noexcept { return *p_; }
  Request* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }
  friend bool operator==(const RequestPtr& a, const RequestPtr& b) {
    return a.p_ == b.p_;
  }

 private:
  Request* p_ = nullptr;
};

/// Recycling pool of Request objects, one per Runtime. acquire() pops a
/// parked request (vector capacities intact) or heap-allocates on a cold
/// start; the last RequestPtr release scrubs the request back to its
/// default-constructed field values and parks it. Steady state issues
/// requests with zero allocator traffic.
class RequestPool {
 public:
  RequestPool() = default;
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// Declare this pool shard-homed: a last release observed on another
  /// shard's worker thread re-routes the recycle through the serial
  /// phase (main thread, shards quiescent) instead of touching the
  /// freelist concurrently — the "remote free" of a per-shard allocator.
  void bind_shard(sim::ShardedEngine* sharded, int home_shard) {
    sharded_ = sharded;
    home_shard_ = home_shard;
  }

  /// Declare this pool node-homed under the threads backend: a last
  /// release observed on another node's worker posts the recycle back to
  /// the home node's queue (at due 0, via the home facade's hook), so
  /// the freelist is only ever touched by its owner. The driver thread
  /// (node -1) recycles directly — it only drops references while every
  /// worker is quiescent.
  void bind_realtime(sim::Engine* home_eng, int home_node) {
    home_eng_ = home_eng;
    home_node_ = home_node;
  }
  ~RequestPool() {
    Request* r = free_;
    while (r != nullptr) {
      Request* next = r->free_next_;
      delete r;
      r = next;
    }
  }

  [[nodiscard]] RequestPtr acquire() {
    Request* r = free_;
    if (r != nullptr) {
      free_ = r->free_next_;
      r->free_next_ = nullptr;
      --parked_;
      ++reused_;
    } else {
      r = new Request();
      r->pool_ = this;
      ++created_;
    }
    return RequestPtr(r);
  }

  /// Requests currently parked on the freelist.
  [[nodiscard]] std::size_t parked() const { return parked_; }
  /// Heap constructions (cold starts) / freelist reuses so far.
  [[nodiscard]] std::uint64_t created() const { return created_; }
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

  /// Requests handed out and not yet recycled. Every created request is
  /// either parked or live, so after a clean run this is zero; a nonzero
  /// value at quiescence means a RequestPtr cycle or a dropped response.
  [[nodiscard]] std::uint64_t live() const {
    return created_ - static_cast<std::uint64_t>(parked_);
  }
  /// Abort (via validate_fail) unless every request returned to the
  /// pool. Compiled into every build; call only at quiescence — a
  /// mid-run call would report in-flight requests as leaks.
  void check_drained(const char* what) const {
    VTOPO_CHECK_ALWAYS(live() == 0, what);
  }

 private:
  friend class RequestPtr;

  void recycle(Request* r) noexcept {
    if (home_eng_ != nullptr) {
      const int node = sim::current_node();
      if (node >= 0 && node != home_node_) {
        home_eng_->schedule_on_node(home_node_, 0,
                                    [this, r] { recycle_local(r); });
        return;
      }
      recycle_local(r);
      return;
    }
    if (sharded_ != nullptr) {
      const sim::ShardContext& ctx = sim::shard_context();
      if (ctx.parallel && ctx.shard != home_shard_) {
        sharded_->post_serial([this, r] { recycle_local(r); });
        return;
      }
    }
    recycle_local(r);
  }

  void recycle_local(Request* r) noexcept {
    assert(r->refs_.load(std::memory_order_relaxed) == 0 &&
           r->pool_ == this);
    r->id = 0;
    r->op = OpCode::kFetchAdd;
    r->origin_proc = 0;
    r->origin_node = 0;
    r->target_proc = 0;
    r->target_node = 0;
    r->upstream_node = 0;
    r->upstream_is_cht = false;
    r->hop_credit_taken = false;
    r->forwards = 0;
    r->attempt = 0;
    r->cls = Priority::kNormal;
    r->enqueued_ns = 0;
    r->window_slot_taken = false;
    r->addr = GAddr{};
    r->acc_type = AccType::kF64;
    r->scale = 1.0;
    r->imm = 0;
    r->mutex_id = 0;
    r->segs.clear();       // keeps capacity
    r->strided = StridedDesc{};
    r->data.clear();       // keeps capacity
    r->response_future.reset();
    r->free_next_ = free_;
    free_ = r;
    ++parked_;
  }

  Request* free_ = nullptr;
  std::size_t parked_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  sim::ShardedEngine* sharded_ = nullptr;
  int home_shard_ = -1;
  sim::Engine* home_eng_ = nullptr;  ///< threads backend: home facade
  int home_node_ = -1;
};

inline void RequestPtr::reset() noexcept {
  if (p_ != nullptr &&
      p_->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (p_->pool_ != nullptr) {
      p_->pool_->recycle(p_);
    } else {
      delete p_;
    }
  }
  p_ = nullptr;
}

}  // namespace vtopo::armci
