// The simulated partitioned global address space.
//
// Every process owns one byte segment; a GAddr names (process, offset).
// Data semantics (put/get/accumulate/fetch-&-add/locks) are executed for
// real on these segments — at the simulated instant the operation is
// serviced — so tests can check both timing AND value correctness
// (atomicity, ordering) of the runtime protocols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vtopo::armci {

/// Application process rank.
using ProcId = std::int32_t;

/// Global address: a byte offset within one process's segment.
struct GAddr {
  ProcId proc = 0;
  std::int64_t offset = 0;

  friend bool operator==(const GAddr&, const GAddr&) = default;
};

class GlobalMemory {
 public:
  GlobalMemory(std::int64_t num_procs, std::int64_t segment_bytes);

  [[nodiscard]] std::int64_t num_procs() const {
    return static_cast<std::int64_t>(segments_.size());
  }
  [[nodiscard]] std::int64_t segment_bytes() const { return segment_bytes_; }

  /// Collective allocation: reserves `bytes` (8-byte aligned) at the same
  /// offset in every segment; returns that offset. Mirrors ARMCI_Malloc.
  std::int64_t alloc_all(std::int64_t bytes);

  /// Raw access for op execution.
  void write(GAddr dst, std::span<const std::uint8_t> src);
  void read(std::span<std::uint8_t> dst, GAddr src) const;

  /// dst[i] += scale * src[i] over doubles (ARMCI_Acc with ARMCI_ACC_DBL).
  void accumulate_f64(GAddr dst, std::span<const double> src, double scale);
  /// Integer accumulate (ARMCI_ACC_LNG).
  void accumulate_i64(GAddr dst, std::span<const std::int64_t> src,
                      std::int64_t scale);
  /// Single-precision accumulate (ARMCI_ACC_FLT).
  void accumulate_f32(GAddr dst, std::span<const float> src, float scale);

  /// Atomic read-modify-write on an int64 cell.
  std::int64_t fetch_add_i64(GAddr addr, std::int64_t delta);
  std::int64_t swap_i64(GAddr addr, std::int64_t value);

  [[nodiscard]] std::int64_t read_i64(GAddr addr) const;
  void write_i64(GAddr addr, std::int64_t value);
  [[nodiscard]] double read_f64(GAddr addr) const;
  void write_f64(GAddr addr, double value);

  /// Direct view of one process's segment (tests, workload setup).
  [[nodiscard]] std::span<std::uint8_t> segment(ProcId proc);

 private:
  void check(GAddr a, std::int64_t bytes) const;
  /// Segments materialize lazily on first touch: simulations with many
  /// thousands of processes typically access only a handful of remote
  /// segments, and eager allocation of nprocs * segment_bytes would
  /// dwarf the host's memory.
  std::vector<std::uint8_t>& ensure(ProcId proc);
  [[nodiscard]] const std::vector<std::uint8_t>& ensure(ProcId proc) const;

  std::int64_t segment_bytes_;
  std::int64_t next_offset_ = 0;
  mutable std::vector<std::vector<std::uint8_t>> segments_;
};

}  // namespace vtopo::armci
