#include "armci/memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace vtopo::armci {

GlobalMemory::GlobalMemory(std::int64_t num_procs,
                           std::int64_t segment_bytes)
    : segment_bytes_(segment_bytes) {
  if (num_procs <= 0 || segment_bytes <= 0) {
    throw std::invalid_argument("GlobalMemory: non-positive size");
  }
  segments_.resize(static_cast<std::size_t>(num_procs));
}

namespace {
/// Physical growth granularity of lazily materialized segments.
constexpr std::int64_t kSegmentGrowth = 4096;
}  // namespace

std::vector<std::uint8_t>& GlobalMemory::ensure(ProcId proc) {
  auto& seg = segments_[static_cast<std::size_t>(proc)];
  // Size to the collective allocation watermark, not the full logical
  // segment: thousands of simulated processes at the default logical
  // size would otherwise exhaust host memory.
  const std::int64_t want =
      std::min(segment_bytes_,
               (next_offset_ + kSegmentGrowth - 1) / kSegmentGrowth *
                   kSegmentGrowth);
  if (static_cast<std::int64_t>(seg.size()) < want) {
    seg.resize(static_cast<std::size_t>(want), 0);
  }
  return seg;
}

const std::vector<std::uint8_t>& GlobalMemory::ensure(ProcId proc) const {
  return const_cast<GlobalMemory*>(this)->ensure(proc);
}

std::int64_t GlobalMemory::alloc_all(std::int64_t bytes) {
  const std::int64_t aligned = (bytes + 7) & ~std::int64_t{7};
  if (next_offset_ + aligned > segment_bytes_) {
    throw std::runtime_error("GlobalMemory: segment exhausted");
  }
  const std::int64_t off = next_offset_;
  next_offset_ += aligned;
  return off;
}

void GlobalMemory::check(GAddr a, std::int64_t bytes) const {
  assert(a.proc >= 0 &&
         a.proc < static_cast<ProcId>(segments_.size()));
  assert(a.offset >= 0 && a.offset + bytes <= segment_bytes_);
  (void)bytes;
}

void GlobalMemory::write(GAddr dst, std::span<const std::uint8_t> src) {
  check(dst, static_cast<std::int64_t>(src.size()));
  std::memcpy(ensure(dst.proc).data() + dst.offset, src.data(),
              src.size());
}

void GlobalMemory::read(std::span<std::uint8_t> dst, GAddr src) const {
  check(src, static_cast<std::int64_t>(dst.size()));
  std::memcpy(dst.data(), ensure(src.proc).data() + src.offset,
              dst.size());
}

void GlobalMemory::accumulate_f64(GAddr dst, std::span<const double> src,
                                  double scale) {
  check(dst, static_cast<std::int64_t>(src.size() * sizeof(double)));
  auto* base = ensure(dst.proc).data() + dst.offset;
  for (std::size_t i = 0; i < src.size(); ++i) {
    double cur;
    std::memcpy(&cur, base + i * sizeof(double), sizeof(double));
    cur += scale * src[i];
    std::memcpy(base + i * sizeof(double), &cur, sizeof(double));
  }
}

void GlobalMemory::accumulate_i64(GAddr dst,
                                  std::span<const std::int64_t> src,
                                  std::int64_t scale) {
  check(dst, static_cast<std::int64_t>(src.size() * sizeof(std::int64_t)));
  auto* base = ensure(dst.proc).data() + dst.offset;
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::int64_t cur;
    std::memcpy(&cur, base + i * sizeof(std::int64_t),
                sizeof(std::int64_t));
    cur += scale * src[i];
    std::memcpy(base + i * sizeof(std::int64_t), &cur,
                sizeof(std::int64_t));
  }
}

void GlobalMemory::accumulate_f32(GAddr dst, std::span<const float> src,
                                  float scale) {
  check(dst, static_cast<std::int64_t>(src.size() * sizeof(float)));
  auto* base = ensure(dst.proc).data() + dst.offset;
  for (std::size_t i = 0; i < src.size(); ++i) {
    float cur;
    std::memcpy(&cur, base + i * sizeof(float), sizeof(float));
    cur += scale * src[i];
    std::memcpy(base + i * sizeof(float), &cur, sizeof(float));
  }
}

std::int64_t GlobalMemory::fetch_add_i64(GAddr addr, std::int64_t delta) {
  const std::int64_t old = read_i64(addr);
  write_i64(addr, old + delta);
  return old;
}

std::int64_t GlobalMemory::swap_i64(GAddr addr, std::int64_t value) {
  const std::int64_t old = read_i64(addr);
  write_i64(addr, value);
  return old;
}

std::int64_t GlobalMemory::read_i64(GAddr addr) const {
  check(addr, 8);
  std::int64_t v;
  std::memcpy(&v, ensure(addr.proc).data() + addr.offset, sizeof(v));
  return v;
}

void GlobalMemory::write_i64(GAddr addr, std::int64_t value) {
  check(addr, 8);
  std::memcpy(ensure(addr.proc).data() + addr.offset, &value,
              sizeof(value));
}

double GlobalMemory::read_f64(GAddr addr) const {
  check(addr, 8);
  double v;
  std::memcpy(&v, ensure(addr.proc).data() + addr.offset, sizeof(v));
  return v;
}

void GlobalMemory::write_f64(GAddr addr, double value) {
  check(addr, 8);
  std::memcpy(ensure(addr.proc).data() + addr.offset, &value,
              sizeof(value));
}

std::span<std::uint8_t> GlobalMemory::segment(ProcId proc) {
  return ensure(proc);
}

}  // namespace vtopo::armci
