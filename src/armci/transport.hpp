// Transport/executor seam between the ARMCI runtime and its backends.
//
// The runtime's protocol machinery (Proc issue paths, CHT actors,
// CreditBank, QoS, congestion control) is written against two
// primitives only:
//
//   * a per-node `sim::Engine` handle — the *executor facade* — that
//     provides schedule_at/schedule_after/schedule_on_node/now for the
//     node currently running, and
//   * this `Transport` interface, which owns cross-node scheduling
//     (post/post_after), the context-to-facade mapping, and the
//     run-to-quiescence loop (drive).
//
// Two backends implement the pair today:
//
//   * SimTransport (this header): the deterministic simulators. The
//     legacy single-threaded `sim::Engine` and the spatially sharded
//     `sim::ShardedEngine` both slot in; every call forwards to the
//     exact engine entry points the runtime used before the seam
//     existed, so simulated output stays byte-identical.
//   * ThreadsTransport (armci/backend_threads.hpp): one std::thread per
//     node, wall-clock time, real shared-memory copies.
//
// Everything above the seam — request wire format, credit accounting,
// retry/dedup, QoS classes — is backend-agnostic by construction.
#pragma once

#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

/// Which executor the runtime schedules on.
enum class Backend {
  kSim,      ///< deterministic simulated clock (legacy or sharded engine)
  kThreads,  ///< one std::thread per node, steady_clock wall time
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual Backend kind() const = 0;

  /// Executor facade for the calling context (TLS node under the sharded
  /// and threads backends; the single global engine otherwise).
  virtual sim::Engine& context_engine() = 0;

  /// Executor facade owning simulated node `node`.
  virtual sim::Engine& engine_for_node(int node) = 0;

  /// Current time of the calling context: simulated ns for the sim
  /// backend, wall-clock ns since transport start for threads.
  virtual sim::TimeNs now() = 0;

  /// Run `fn` on node `node` as soon as possible.
  virtual void post(int node, sim::InlineFn fn) = 0;

  /// Run `fn` on node `node` after `delay` ns (simulated or wall-clock,
  /// per backend).
  virtual void post_after(int node, sim::TimeNs delay, sim::InlineFn fn) = 0;

  /// Run until no work is pending. Blocking; called from the driver
  /// thread only.
  virtual void drive() = 0;
};

/// Deterministic-simulation backend: wraps the legacy single-threaded
/// engine or the sharded engine behind the Transport interface. Each
/// override forwards to the same engine call the runtime made before
/// the seam existed — the simulated event streams are unchanged.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Engine& eng) : eng_(&eng) {}
  explicit SimTransport(sim::ShardedEngine& sharded) : sharded_(&sharded) {}

  [[nodiscard]] Backend kind() const override { return Backend::kSim; }

  sim::Engine& context_engine() override {
    return sharded_ != nullptr ? sharded_->context_engine() : *eng_;
  }

  sim::Engine& engine_for_node(int node) override {
    return sharded_ != nullptr ? sharded_->engine_for_node(node) : *eng_;
  }

  sim::TimeNs now() override {
    return sharded_ != nullptr ? sharded_->context_now() : eng_->now();
  }

  void post(int node, sim::InlineFn fn) override {
    post_after(node, 0, std::move(fn));
  }

  void post_after(int node, sim::TimeNs delay, sim::InlineFn fn) override {
    if (sharded_ != nullptr) {
      sharded_->schedule_on_node(node, sharded_->context_now() + delay,
                                 std::move(fn));
      return;
    }
    eng_->schedule_after(delay, std::move(fn));
  }

  void drive() override {
    if (sharded_ != nullptr) {
      sharded_->run();
      return;
    }
    eng_->run();
  }

 private:
  sim::Engine* eng_ = nullptr;
  sim::ShardedEngine* sharded_ = nullptr;
};

}  // namespace vtopo::armci
