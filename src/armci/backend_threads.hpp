// vtopo-lint: allow-file(nondeterminism) -- wall-clock scheduling is the
// point of this backend: event order is whatever the host threads make it.
//
// Threads backend: one real std::thread per simulated node.
//
// Each node owns a NodeExec — a mutex-guarded MPSC timed queue (any
// thread posts, only the node's worker pops) plus a `sim::Engine`
// *facade* in realtime mode. The facade's ShardHook routes every
// schedule_at/schedule_on_node into the queues, so the whole protocol
// stack (CHT service loops, QosQueue wakeups, CreditBank hand-offs,
// congestion windows) runs unchanged on real threads. "Latency" is
// wall-clock: a due time is nanoseconds since transport start measured
// on steady_clock, and a worker sleeps on its condition variable until
// the earliest due event matures. Payload movement is a real memcpy
// between segments (see Proc::put/get threads branches).
//
// Memory confinement contract (what makes this TSan-clean):
//  * a node's facade, CHT, CreditBank, congestion window, request-pool
//    slot and memory segment are touched only by that node's worker —
//    or by the driver thread while every worker is quiescent (the
//    pending-count handshake in drive() orders the two);
//  * cross-node effects travel exclusively as posted closures;
//  * cross-thread completion (sim::Future) uses the realtime protocol,
//    which posts resumes at due=0 and never reads a foreign clock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "armci/transport.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

class ThreadsTransport final : public Transport {
 public:
  explicit ThreadsTransport(int num_nodes);
  ~ThreadsTransport() override;
  ThreadsTransport(const ThreadsTransport&) = delete;
  ThreadsTransport& operator=(const ThreadsTransport&) = delete;

  [[nodiscard]] Backend kind() const override { return Backend::kThreads; }
  sim::Engine& context_engine() override;
  sim::Engine& engine_for_node(int node) override;
  sim::TimeNs now() override { return wall_now(); }
  void post(int node, sim::InlineFn fn) override {
    post_at(node, 0, std::move(fn));
  }
  void post_after(int node, sim::TimeNs delay, sim::InlineFn fn) override {
    post_at(node, wall_now() + delay, std::move(fn));
  }
  /// Block until no posted work remains (queued or executing). Workers
  /// are started lazily on the first call, so everything the driver
  /// thread did before — component construction, initial coroutine
  /// segments — is ordered before any worker by the std::thread ctor.
  void drive() override;

  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  /// Pseudo-node for driver-context tasks (reconfig monitors etc.);
  /// owns the last facade + worker.
  [[nodiscard]] int global_node() const { return num_nodes_; }
  [[nodiscard]] sim::Engine& global_engine() {
    return engine_for_node(num_nodes_);
  }
  /// Nanoseconds of steady_clock time since transport construction.
  [[nodiscard]] sim::TimeNs wall_now() const;
  /// Rendezvous guard for collective arrivals (Runtime barrier/reduce).
  [[nodiscard]] std::mutex& coll_mu() { return coll_mu_; }
  /// Total events run by all workers. Driver thread, quiescent only.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// RAII: attribute driver-thread work (construction, spawn segments)
  /// to a node so engine()/current_node() resolve to it — the threads
  /// analogue of sim::NodeScope, without a ShardedEngine.
  class ScopedNode {
   public:
    explicit ScopedNode(int node) noexcept {
      sim::ShardContext& c = sim::shard_context();
      saved_ = c;
      c = sim::ShardContext{nullptr, -1, node, false};
    }
    ~ScopedNode() { sim::shard_context() = saved_; }
    ScopedNode(const ScopedNode&) = delete;
    ScopedNode& operator=(const ScopedNode&) = delete;

   private:
    sim::ShardContext saved_;
  };

 private:
  /// Routes facade schedules into the owning node's queue. Absolute
  /// times arriving here were computed against the facade's clock by
  /// its own worker (schedule_after) or are 0 (cross-thread posts).
  struct NodeHook final : sim::ShardHook {
    ThreadsTransport* t = nullptr;
    int self = -1;
    void hook_schedule(sim::TimeNs due, sim::InlineFn fn) override {
      t->post_at(self, due, std::move(fn));
    }
    void hook_schedule_on_node(int node, sim::TimeNs due,
                               sim::InlineFn fn) override {
      t->post_at(node, due, std::move(fn));
    }
  };

  struct TimedEv {
    sim::TimeNs due = 0;
    std::uint64_t seq = 0;
    sim::InlineFn fn;
  };

  /// Later-than comparator: std::push_heap keeps the earliest
  /// (due, seq) at the front.
  static bool ev_later(const TimedEv& a, const TimedEv& b) {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }

  struct alignas(64) NodeExec {
    sim::Engine facade;
    NodeHook hook;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<TimedEv> heap;
    std::uint64_t seq = 0;
    std::uint64_t executed = 0;
  };

  void post_at(int node, sim::TimeNs due, sim::InlineFn fn);
  void worker_main(int node);
  void start_workers();

  const int num_nodes_;
  const std::chrono::steady_clock::time_point t0_;
  std::deque<NodeExec> execs_;  ///< num_nodes_ + 1 (global last)
  std::atomic<std::int64_t> pending_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::mutex coll_mu_;
  std::atomic<bool> stop_{false};
  bool started_ = false;  ///< driver thread only
  std::vector<std::thread> workers_;
};

}  // namespace vtopo::armci
