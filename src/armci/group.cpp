#include "armci/group.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "armci/runtime.hpp"

namespace vtopo::armci {

ProcGroup::ProcGroup(Runtime& rt, std::vector<ProcId> members)
    : rt_(&rt), members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("ProcGroup: empty member list");
  }
  rank_of_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const ProcId p = members_[i];
    if (p < 0 || p >= rt.num_procs()) {
      throw std::invalid_argument("ProcGroup: rank out of range");
    }
    rank_of_.emplace_back(p, static_cast<std::int64_t>(i));
  }
  std::sort(rank_of_.begin(), rank_of_.end());
  const auto dup = std::adjacent_find(
      rank_of_.begin(), rank_of_.end(),
      [](const auto& a, const auto& b) { return a.first == b.first; });
  if (dup != rank_of_.end()) {
    throw std::invalid_argument("ProcGroup: duplicate rank");
  }
}

ProcGroup ProcGroup::range(Runtime& rt, ProcId first, std::int64_t count) {
  std::vector<ProcId> members(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    members[static_cast<std::size_t>(i)] =
        first + static_cast<ProcId>(i);
  }
  return ProcGroup(rt, std::move(members));
}

ProcGroup ProcGroup::node_group(Runtime& rt, core::NodeId node) {
  std::vector<ProcId> members;
  for (int i = 0; i < rt.procs_per_node(); ++i) {
    members.push_back(
        static_cast<ProcId>(node * rt.procs_per_node() + i));
  }
  return ProcGroup(rt, std::move(members));
}

std::int64_t ProcGroup::find_rank(ProcId p) const {
  const auto it = std::lower_bound(
      rank_of_.begin(), rank_of_.end(), p,
      [](const auto& entry, ProcId id) { return entry.first < id; });
  if (it == rank_of_.end() || it->first != p) return -1;
  return it->second;
}

std::int64_t ProcGroup::rank_of(ProcId p) const {
  const std::int64_t r = find_rank(p);
  assert(r >= 0 && "rank_of on non-member");
  return r;
}

sim::Co<void> ProcGroup::barrier(ProcId self) {
  assert(contains(self) && "group barrier from non-member");
  (void)self;
  const ArmciParams& p = rt_->params();
  sim::Engine& eng = rt_->engine();
  barrier_futures_.emplace_back(eng);
  sim::Future<int> fut = barrier_futures_.back();
  if (++barrier_arrived_ == size()) {
    const int levels = std::max(
        1, static_cast<int>(
               std::ceil(std::log2(static_cast<double>(size())))));
    const sim::TimeNs latency =
        p.barrier_base + p.barrier_per_level * levels;
    std::vector<sim::Future<int>> futs = std::move(barrier_futures_);
    barrier_futures_.clear();
    barrier_arrived_ = 0;
    for (auto& f : futs) {
      eng.schedule_after(latency, [f]() mutable { f.set(0); });
    }
  }
  co_await fut;
}

sim::Co<double> ProcGroup::allreduce_sum(ProcId self, double value) {
  assert(contains(self) && "group allreduce from non-member");
  (void)self;
  const ArmciParams& p = rt_->params();
  sim::Engine& eng = rt_->engine();
  reduce_sum_ += value;
  reduce_futures_.emplace_back(eng);
  sim::Future<double> fut = reduce_futures_.back();
  if (++reduce_arrived_ == size()) {
    const int levels = std::max(
        1, static_cast<int>(
               std::ceil(std::log2(static_cast<double>(size())))));
    const sim::TimeNs latency =
        p.barrier_base + 2 * p.barrier_per_level * levels;
    const double total = reduce_sum_;
    std::vector<sim::Future<double>> futs = std::move(reduce_futures_);
    reduce_futures_.clear();
    reduce_arrived_ = 0;
    reduce_sum_ = 0.0;
    for (auto& f : futs) {
      eng.schedule_after(latency, [f, total]() mutable { f.set(total); });
    }
  }
  const double result = co_await fut;
  co_return result;
}

}  // namespace vtopo::armci
