// Epoch-versioned holder of the runtime's virtual topology.
//
// The topology used to be a frozen member of the Runtime; live
// reconfiguration (paper Sec. IV-B) makes it a first-class mutable
// policy instead. Every install() bumps the epoch, so protocol code can
// detect that a remap happened between two observations, and keeps an
// append-only history of (epoch, kind, install time) for diagnostics.
//
// The manager hands out `const VirtualTopology&` only; callers must not
// cache the reference across a suspension point that may include a
// reconfiguration (re-fetch through Runtime::topology() instead, the
// way all protocol code here does).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/topology.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

class TopologyManager {
 public:
  /// One installed topology generation.
  struct Generation {
    std::uint64_t epoch = 0;
    core::TopologyKind kind = core::TopologyKind::kFcg;
    sim::TimeNs installed_at = 0;
    int max_forwards = 0;
  };

  explicit TopologyManager(core::VirtualTopology initial)
      : current_(std::move(initial)) {
    history_.push_back(
        Generation{0, current_.kind(), 0, current_.max_forwards()});
  }

  [[nodiscard]] const core::VirtualTopology& current() const {
    return current_;
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Swap in the next topology; returns the new epoch. The caller (the
  /// Runtime's reconfigure path) is responsible for quiescing the
  /// request path first — install() itself is instantaneous.
  std::uint64_t install(core::VirtualTopology next, sim::TimeNs now) {
    current_ = std::move(next);
    ++epoch_;
    history_.push_back(
        Generation{epoch_, current_.kind(), now, current_.max_forwards()});
    return epoch_;
  }

  /// Every generation installed so far, oldest first (index == epoch).
  [[nodiscard]] const std::vector<Generation>& history() const {
    return history_;
  }

  /// Loosest per-request forwarding bound across every generation
  /// installed so far. Run-cumulative statistics (max_forwards_seen)
  /// must be checked against this, not against the current topology:
  /// a hop that was legal under an earlier, deeper generation stays in
  /// the counter after a reconfiguration to a shallower one.
  [[nodiscard]] int max_forwards_bound() const {
    int bound = 0;
    for (const Generation& g : history_) {
      bound = std::max(bound, g.max_forwards);
    }
    return bound;
  }

 private:
  core::VirtualTopology current_;
  std::uint64_t epoch_ = 0;
  std::vector<Generation> history_;
};

}  // namespace vtopo::armci
