// The ARMCI-like GAS runtime running on the simulated cluster.
//
// A Runtime wires together: the global memory, a virtual topology
// (FCG/MFCG/CFCG/Hypercube) over the nodes, the physical torus network,
// one CHT (communication helper thread) actor per node, and per-node
// credit banks modelling the pre-allocated request buffers.
//
// Application code is written as coroutines against the Proc API
// (armci/proc.hpp) and spawned with spawn()/spawn_all(); run_all()
// drives the simulation to completion and reports stranded tasks
// (i.e., deadlock) by throwing.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "armci/arena.hpp"
#include "armci/buffers.hpp"
#include "armci/congestion.hpp"
#include "armci/memory.hpp"
#include "armci/params.hpp"
#include "armci/request.hpp"
#include "armci/topology_manager.hpp"
#include "armci/trace.hpp"
#include "armci/transport.hpp"
#include "core/topology.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/task.hpp"

namespace vtopo::armci {

class Cht;
class Proc;
class ThreadsTransport;

/// Per-shard memory accounting, snapshotted when a sharded run folds.
/// Deliberately outside any byte-identity golden: freelist hit rates
/// depend on the shard partition (remote frees are deferred to the
/// serial phase) even though the simulation itself does not.
struct ShardMemStats {
  std::size_t heap_slots = 0;     ///< event slot-pool high-water
  std::size_t heap_peak = 0;      ///< max simultaneous heap entries
  std::size_t mailbox_peak = 0;   ///< max cross-shard mail in one drain
  std::size_t pool_parked = 0;    ///< requests parked in the shard pool
  std::uint64_t pool_created = 0; ///< requests heap-built by the shard
  std::size_t arena_chunks = 0;   ///< payload chunks built by the shard
  std::uint64_t events = 0;       ///< events the shard executed
};

/// Aggregate protocol counters for one run.
struct RuntimeStats {
  std::uint64_t requests = 0;        ///< CHT-mediated requests issued
  std::uint64_t forwards = 0;        ///< intermediate-CHT forwardings
  std::uint64_t max_forwards_seen = 0;  ///< deepest forwarding chain of
                                        ///< any single request
  std::uint64_t acks = 0;            ///< buffer-credit acknowledgments
  std::uint64_t responses = 0;       ///< responses delivered to origins
  std::uint64_t direct_ops = 0;      ///< contiguous put/get (no CHT)
  std::uint64_t cht_wakeups = 0;     ///< idle->active CHT transitions
  std::uint64_t lock_queue_max = 0;  ///< deepest lock waiter queue seen
  std::uint64_t max_backlog = 0;     ///< deepest CHT queue seen (high-water
                                     ///< at submit, poison excluded)
  sim::TimeNs credit_blocked_ns = 0; ///< total sender time blocked on
                                     ///< exhausted buffer credits

  // ---- QoS counters (all zero while qos.enabled is false) ----
  std::uint64_t aged_promotions = 0;   ///< dequeues boosted above their
                                       ///< nominal class by aging
  std::uint64_t reserved_grants = 0;   ///< critical credit acquires served
                                       ///< from a reserved lane
  std::uint64_t congestion_stalls = 0; ///< issues parked on a full window
  sim::TimeNs congestion_stall_ns = 0; ///< total origin time so parked
  std::uint64_t window_shrinks = 0;    ///< AIMD multiplicative decreases
  std::uint64_t reconfigurations = 0;   ///< completed reconfigure() calls
  sim::TimeNs reconfig_quiesce_ns = 0;  ///< total time draining the
                                        ///< request path before remaps
  sim::TimeNs reconfig_remap_ns = 0;    ///< total simulated remap stall

  // ---- Fault-path counters (all zero while faults are disarmed) ----
  std::uint64_t retries = 0;           ///< watchdog re-issues
  std::uint64_t msgs_dropped = 0;      ///< protocol messages lost
  std::uint64_t msgs_duplicated = 0;   ///< request messages duplicated
  std::uint64_t msgs_delayed = 0;      ///< protocol messages delayed
  std::uint64_t dup_suppressed = 0;    ///< duplicate completions absorbed
                                       ///< (origin gate + target cache)
  std::uint64_t credits_reclaimed = 0; ///< leases reclaimed after losses
  std::uint64_t heals = 0;             ///< heal-around overlays installed
  std::uint64_t healed_reroutes = 0;   ///< hops redirected by an overlay

  /// One entry per shard on the sharded runtime (empty on the legacy
  /// engine); refreshed every time a run folds.
  std::vector<ShardMemStats> shard_mem;
};

/// How reconfigure() rebuilds the per-node credit banks.
enum class ReconfigMode : std::uint8_t {
  kIncremental,  ///< reuse kept-edge buffer sets, touch only the delta
  kRebuild,      ///< tear everything down and reallocate (bench baseline)
};

/// Accounting of one completed live reconfiguration.
struct ReconfigReport {
  std::uint64_t epoch = 0;  ///< topology epoch after the switch
  core::TopologyKind from = core::TopologyKind::kFcg;
  core::TopologyKind to = core::TopologyKind::kFcg;
  ReconfigMode mode = ReconfigMode::kIncremental;
  std::int64_t pools_kept = 0;     ///< buffer sets reused across the remap
  std::int64_t pools_added = 0;    ///< buffer sets newly allocated
  std::int64_t pools_removed = 0;  ///< buffer sets torn down
  std::int64_t bytes_allocated = 0;  ///< Fig.-5 bytes of pools_added
  std::int64_t bytes_released = 0;   ///< Fig.-5 bytes of pools_removed
  sim::TimeNs quiesce_ns = 0;  ///< time spent draining the request path
  sim::TimeNs remap_ns = 0;    ///< simulated stall executing the remap
  std::int64_t quiesce_polls = 0;    ///< drain-poll iterations
  std::int64_t waiters_resumed = 0;  ///< ops parked at the fence
};

/// Thrown by run_all() when the simulation drained with coroutines still
/// suspended — the runtime signature of a forwarding deadlock.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::int64_t stranded)
      : std::runtime_error("simulation drained with " +
                           std::to_string(stranded) +
                           " task(s) still blocked (deadlock)"),
        stranded_(stranded) {}
  [[nodiscard]] std::int64_t stranded() const { return stranded_; }

 private:
  std::int64_t stranded_;
};

class Runtime {
 public:
  struct Config {
    std::int64_t num_nodes = 16;
    int procs_per_node = 4;
    core::TopologyKind topology = core::TopologyKind::kFcg;
    core::ForwardingPolicy policy = core::ForwardingPolicy::kLowestDimFirst;
    /// Explicit grid shape (e.g. a skewed MFCG mesh); when unset the
    /// canonical near-square/near-cubic shape for num_nodes is used.
    std::optional<core::Shape> custom_shape;
    ArmciParams armci{};
    net::NetworkParams net{};
    net::Placement placement = net::Placement::kLinear;
    std::int64_t segment_bytes = std::int64_t{1} << 20;
    std::uint64_t seed = 42;
    /// Seeded chaos: when set and armed, the runtime schedules the
    /// plan's outages on the event loop, injects its per-message faults
    /// into the CHT protocol, and turns on the self-healing request
    /// path (retry watchdogs, duplicate suppression, credit-lease
    /// reclamation, heal-around overlays). Unset or disarmed, every
    /// fault code path is dormant and runs are byte-identical to a
    /// fault-free build.
    std::optional<sim::FaultPlan> faults;
    /// Spatial shards for the parallel engine (self-hosting constructor
    /// only; the legacy external-engine constructor ignores it). Output
    /// is byte-identical at every shard count by construction.
    int shards = 1;
    /// Host-thread policy for the sharded engine.
    sim::ThreadMode thread_mode = sim::ThreadMode::kAuto;
    /// Multi-tenant attachment (legacy constructor only): when set, the
    /// runtime's Network routes over this shared machine fabric, with
    /// local node v living on machine torus slot fabric_slots[v]
    /// (fabric_slots.size() must equal num_nodes). Link occupancy is
    /// shared with every co-resident tenant on the fabric; all other
    /// runtime state — topology epoch, CreditBank, QoS, stream tables,
    /// route cache, faults, stats — stays per-tenant. `placement` and
    /// the placement seed are ignored when attached.
    std::shared_ptr<net::Fabric> fabric;
    std::vector<std::int64_t> fabric_slots;
    /// Executor backend (self-hosting constructor only). kSim builds the
    /// sharded deterministic engine; kThreads runs each node's CHT on a
    /// real std::thread with wall-clock latency (nondeterministic;
    /// faults and reconfiguration unsupported — see backend_threads.hpp).
    Backend backend = Backend::kSim;
  };

  /// Legacy: run on a caller-owned single-threaded engine.
  Runtime(sim::Engine& eng, Config cfg);
  /// Self-hosting: build a ShardedEngine with cfg.shards spatial shards
  /// (lookahead = the network's minimum cross-node latency) and run the
  /// cluster on it. cfg.shards == 1 still exercises the windowed
  /// schedule, which is what the shard-invariance goldens compare
  /// against.
  explicit Runtime(Config cfg);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The engine of the calling context: on the sharded runtime a worker
  /// gets its shard's facade, on the threads runtime its node's wall-
  /// clock facade, and everything else the global facade, so existing
  /// `rt.engine().now()` call sites stay correct unchanged.
  [[nodiscard]] sim::Engine& engine() {
    if (threads_ != nullptr) return transport_->context_engine();
    return sharded_ != nullptr ? sharded_->context_engine() : *eng_;
  }
  /// Current time of the calling context via the transport seam:
  /// simulated ns on the sim backend (legacy or sharded — identical to
  /// engine().now()), wall-clock ns since transport start on threads.
  /// Workload code should prefer this over engine().now().
  [[nodiscard]] sim::TimeNs now() { return transport_->now(); }
  /// The executor seam the runtime schedules through.
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] Backend backend() const { return cfg_.backend; }
  [[nodiscard]] bool is_sharded() const { return sharded_ != nullptr; }
  [[nodiscard]] bool is_threads() const { return threads_ != nullptr; }
  /// The sharded engine, or null on a legacy runtime.
  [[nodiscard]] sim::ShardedEngine* sharded() { return sharded_.get(); }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const ArmciParams& params() const { return cfg_.armci; }
  /// Live QoS knobs. The CHT queues, credit banks, and congestion
  /// windows all read these through a pointer, so set_qos() retunes the
  /// whole request path in place — no reconstruction, no drain. Call it
  /// only from a serial context (main thread, or a global-node task):
  /// it mutates state every shard reads.
  [[nodiscard]] const QosParams& qos() const { return cfg_.armci.qos; }
  void set_qos(const QosParams& q) { cfg_.armci.qos = q; }
  [[nodiscard]] GlobalMemory& memory() { return memory_; }
  /// The currently installed topology. Do not cache the reference
  /// across a suspension point — a reconfiguration may swap it.
  [[nodiscard]] const core::VirtualTopology& topology() const {
    return topo_mgr_.current();
  }
  /// Epoch-versioned topology holder (epoch 0 = construction-time).
  [[nodiscard]] const TopologyManager& topology_manager() const {
    return topo_mgr_;
  }
  [[nodiscard]] std::uint64_t topology_epoch() const {
    return topo_mgr_.epoch();
  }
  [[nodiscard]] net::Network& network() { return network_; }
  /// Protocol counters. On the sharded runtime a worker thread gets its
  /// shard's private slot (folded into the main struct between runs);
  /// reads from the main thread see the folded totals.
  [[nodiscard]] RuntimeStats& stats() {
    if (ShardSlot* s = context_slot()) return s->stats;
    return stats_;
  }
  /// Latency tracer; call tracer().enable() before spawning programs.
  /// Sharded: workers record into per-shard slots, merged and sorted
  /// into a canonical order when the run folds.
  [[nodiscard]] OpTracer& tracer() {
    if (ShardSlot* s = context_slot()) return s->tracer;
    return tracer_;
  }

  [[nodiscard]] std::int64_t num_nodes() const { return cfg_.num_nodes; }
  [[nodiscard]] int procs_per_node() const { return cfg_.procs_per_node; }
  [[nodiscard]] std::int64_t num_procs() const {
    return cfg_.num_nodes * cfg_.procs_per_node;
  }
  [[nodiscard]] core::NodeId node_of(ProcId p) const {
    return static_cast<core::NodeId>(p / cfg_.procs_per_node);
  }
  /// Buffer credits per directed edge: buffers_per_process for every
  /// process on the sending node.
  [[nodiscard]] std::int64_t credits_per_edge() const {
    return static_cast<std::int64_t>(cfg_.armci.buffers_per_process) *
           cfg_.procs_per_node;
  }

  [[nodiscard]] Proc& proc(ProcId p);
  [[nodiscard]] Cht& cht(core::NodeId n);
  [[nodiscard]] CreditBank& credits(core::NodeId n);
  /// Per-origin-node endpoint congestion windows (inert while
  /// qos.enabled && qos.congestion is false).
  [[nodiscard]] CongestionControl& congestion(core::NodeId n);
  /// Recycling pool all CHT-mediated requests are drawn from (the
  /// calling shard's pool on the sharded runtime; remote frees route
  /// home through the serial phase).
  [[nodiscard]] RequestPool& request_pool() {
    if (ShardSlot* s = context_slot()) return s->pool;
    return request_pool_;
  }
  /// Chunk arena staging direct put/get payload bytes (shard-local,
  /// like the request pool).
  [[nodiscard]] PayloadArena& payload_arena() {
    if (ShardSlot* s = context_slot()) return s->arena;
    return payload_arena_;
  }

  /// Spawn `program` as the body of process `p`. The callable (and any
  /// lambda captures) is kept alive by the Runtime until destruction —
  /// coroutine lambdas reference their captures through the callable
  /// object, which must outlive the coroutine.
  void spawn(ProcId p, std::function<sim::Co<void>(Proc&)> program);
  /// Spawn the same program on every process.
  void spawn_all(const std::function<sim::Co<void>(Proc&)>& program);
  /// Spawn an auxiliary task not tied to a process (helpers, monitors).
  void spawn_task(sim::Co<void> task);

  /// Run to completion. Throws DeadlockError if application tasks are
  /// left suspended after the event queue drains.
  void run_all();
  /// Run until `deadline`; returns true when all application tasks
  /// finished. Does not throw on deadlock (callers inspect live_tasks()).
  bool run_for(sim::TimeNs deadline);
  [[nodiscard]] std::int64_t live_tasks() const {
    std::int64_t n = live_;
    for (const ShardSlot& s : shard_slots_) n += s.live;
    return n;
  }

  /// Quiescence invariants after a clean run: every credit bank has all
  /// credits free and no parked waiter, every request returned to the
  /// pool, and no request was ever forwarded past the topology's
  /// max-forwards bound. Aborts (validate_fail) on violation. run_all()
  /// calls this automatically when built with -DVTOPO_VALIDATE; the
  /// validate ctest calls it explicitly in any build.
  void validate_quiescent();

  /// Live topology reconfiguration (paper Sec. IV-B made executable).
  /// Quiesces the request path — new CHT-mediated ops park at the
  /// reconfiguration fence while in-flight requests, forwards, credit
  /// acks, and credit waiters drain — then plans the remap, verifies the
  /// transition schedule is deadlock-free at every intermediate state
  /// (under VTOPO_VALIDATE), remaps every node's credit bank, installs
  /// the new topology (epoch bump), and resumes parked ops in FIFO issue
  /// order. Returns false (and does nothing) when `to` is already the
  /// current kind, or when `to` is the hypercube on a non-power-of-two
  /// node count. The remap stall is charged via the ArmciParams
  /// reconfig_* cost model; see last_reconfig() for the accounting.
  ///
  /// Unlock ops bypass the fence, so reconfiguring concurrently with
  /// held locks completes as long as holders eventually unlock without
  /// first issuing other CHT-mediated ops.
  [[nodiscard]] sim::Co<bool> reconfigure(
      core::TopologyKind to, ReconfigMode mode = ReconfigMode::kIncremental);
  /// Accounting of the most recent completed reconfiguration.
  [[nodiscard]] const ReconfigReport& last_reconfig() const {
    return last_reconfig_;
  }
  [[nodiscard]] bool reconfig_active() const { return reconfig_active_; }

  /// Awaited at the top of every CHT-mediated issue path: no-op (ready)
  /// while no reconfiguration is in progress, parks the op FIFO at the
  /// fence otherwise.
  struct [[nodiscard]] ReconfigFence {
    Runtime* rt;
    bool await_ready() const { return !rt->reconfig_active_; }
    void await_suspend(std::coroutine_handle<> h) { rt->park_at_fence(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] ReconfigFence reconfig_fence() { return ReconfigFence{this}; }

  /// In-flight accounting of CHT-mediated requests: issued past the
  /// fence -> response delivered back at the origin. This — not
  /// RequestPool::live() — is the reconfigure drain condition, because
  /// ops parked at the fence (and unissued chunks held in their frames)
  /// legitimately hold pooled requests while the remap runs.
  void note_request_issued() { ++inflight_slot(); }
  void note_request_completed() { --inflight_slot(); }
  [[nodiscard]] std::int64_t inflight_requests() const {
    std::int64_t n = inflight_requests_;
    for (const ShardSlot& s : shard_slots_) n += s.inflight;
    return n;
  }

  /// Full-membership barrier support (used via Proc::barrier()).
  [[nodiscard]] sim::Co<void> barrier_wait();
  /// GA-style global sum (ga_dgop): every process contributes `value`
  /// and receives the total. Modeled as an idealized binomial tree with
  /// barrier-like latency; arithmetic is exact and host-side.
  [[nodiscard]] sim::Co<double> allreduce_sum(double value);

  /// Request ids are the CHT dedup keys; they only need to be unique,
  /// not dense. Sharded issue paths run concurrently, so each node draws
  /// from its own (node-tagged) sequence — deterministic per node, no
  /// shared counter.
  [[nodiscard]] std::uint64_t next_request_id() {
    if (sharded_ != nullptr || threads_ != nullptr) {
      const int node = sim::current_node();
      if (node >= 0 && node < cfg_.num_nodes) {
        return (static_cast<std::uint64_t>(node + 1) << 40) |
               ++req_seq_[static_cast<std::size_t>(node)];
      }
    }
    return ++request_id_;
  }

  /// Stream-table identities at destination NICs: one per CHT and one
  /// per process.
  [[nodiscard]] net::Network::StreamKey cht_stream(core::NodeId n) const {
    return n;
  }
  [[nodiscard]] net::Network::StreamKey proc_stream(ProcId p) const {
    return num_nodes() + p;
  }

  // ---------------------------------------------------------------- faults

  /// True when a FaultPlan with any actual fault is installed. Every
  /// fault/retry/heal code path below is behind this flag; when false,
  /// the protocol schedules the exact same events as a build without the
  /// fault subsystem (byte-identical figures).
  [[nodiscard]] bool faults_armed() const { return injector_ != nullptr; }
  /// The injector, or null when disarmed.
  [[nodiscard]] sim::FaultInjector* fault_injector() {
    return injector_.get();
  }

  /// Node currently crashed (its NIC drops arriving protocol messages)?
  [[nodiscard]] bool node_down(core::NodeId n) const {
    return injector_ != nullptr && node_down_[static_cast<std::size_t>(n)];
  }
  /// CHT service-time multiplier of a slowed node (1.0 = nominal).
  [[nodiscard]] double node_slow_factor(core::NodeId n) const {
    return injector_ == nullptr ? 1.0
                                : node_slow_[static_cast<std::size_t>(n)];
  }
  /// Node currently routed around by the self-healing overlay?
  [[nodiscard]] bool healed(core::NodeId n) const {
    return injector_ != nullptr && healed_[static_cast<std::size_t>(n)];
  }

  /// Routing with the self-healing overlay applied: normally the
  /// topology's next_hop, but when that intermediate hop is marked dead
  /// the sender dedicates direct buffers to the final target
  /// (CreditBank::ensure_edge) and bypasses the hop. Direct delivery
  /// executes at the target without further forwarding, so the overlay
  /// adds no hold-and-wait edge to the buffer dependency graph (LDF
  /// deadlock freedom is preserved) and the per-request forwarding count
  /// can only shrink (the max_forwards bound still holds).
  [[nodiscard]] core::NodeId next_hop_for(core::NodeId src,
                                          core::NodeId dst);

  /// Install / clear the heal-around overlay for `dead`. Public so the
  /// chaos tests can exercise the overlay deterministically; normally
  /// driven by crash events and by consecutive first-hop timeouts.
  void heal_around(core::NodeId dead);
  void unheal(core::NodeId node);

  /// Send one CHT-mediated request message src -> dst (fault-aware when
  /// armed; plain Network::deliver otherwise). The request's upstream
  /// fields must already describe this hop.
  void send_request_msg(RequestPtr r, core::NodeId src, core::NodeId dst,
                        std::int64_t wire_bytes,
                        net::Network::StreamKey stream);
  /// Send the buffer-credit ack `from` -> `upstream` releasing one
  /// credit of edge (from <- upstream) on arrival. `cls` is the class
  /// the credit was acquired under (reserved-lane accounting).
  void send_ack_msg(core::NodeId from, core::NodeId upstream,
                    Priority cls = Priority::kNormal);
  /// Send the response for `req` back to its origin node. Completion is
  /// gated on the origin's future: the first response to arrive
  /// completes the op, later (duplicate) responses are absorbed.
  void send_response_msg(RequestPtr req, Response resp, core::NodeId from,
                         std::int64_t wire_bytes);
  /// Spawn the per-request timeout/retry watchdog for an eligible op
  /// (faults armed, inter-node, non-lock, response future attached).
  /// The issue path checks eligibility and calls this once per op.
  void arm_retry_watchdog(const RequestPtr& r);

 private:
  /// Everything shard-local under the parallel engine, one per shard,
  /// cache-line separated: counters and recyclers a worker thread
  /// touches on its hot path without synchronization. Folded into the
  /// main members between runs.
  struct alignas(64) ShardSlot {
    RuntimeStats stats;
    OpTracer tracer;
    RequestPool pool;
    PayloadArena arena;
    std::int64_t live = 0;
    std::int64_t inflight = 0;
  };
  /// The calling worker's slot, or null outside the parallel phase.
  /// Threads backend: one slot per node (plus the global pseudo-node's),
  /// selected by the worker's TLS node; the driver thread (node -1)
  /// falls through to the folded main members, which it only touches
  /// while every worker is quiescent.
  [[nodiscard]] ShardSlot* context_slot() {
    if (threads_ != nullptr) {
      const int node = sim::current_node();
      if (node < 0) return nullptr;
      return &shard_slots_[static_cast<std::size_t>(node)];
    }
    if (sharded_ == nullptr) return nullptr;
    const sim::ShardContext& c = sim::shard_context();
    if (!c.parallel) return nullptr;
    return &shard_slots_[static_cast<std::size_t>(c.shard)];
  }
  [[nodiscard]] std::int64_t& inflight_slot() {
    if (ShardSlot* s = context_slot()) return s->inflight;
    return inflight_requests_;
  }

  /// An op parked at the reconfiguration fence (node -1 on the legacy
  /// runtime; sharded resumes go back to the parking node's shard).
  struct FenceWaiter {
    std::coroutine_handle<> h;
    std::int32_t node = -1;
  };
  void park_at_fence(std::coroutine_handle<> h);

  void init();
  /// Drive the underlying engine (via the transport) until drained.
  void run_engine();
  /// Sum per-shard counters into the main stats/tracer and empty the
  /// slots. Main thread, engine idle.
  void fold_shard_state();
  /// Counter/tracer part of the fold, shared with the threads backend
  /// (which has per-node slots but no shard-memory accounting).
  void fold_slot_counters();
  void sync_slot_tracers();
  void stop_chts();
  [[nodiscard]] bool request_path_quiescent() const;

  // Fault-path internals (all no-ops while disarmed).
  void apply_fault(const sim::FaultEvent& e, bool begin);
  /// Reclaim the buffer-credit lease a lost message would have returned:
  /// after lease_reclaim_delay, release one credit of edge
  /// (holder's bank, toward `receiver`) under the class it was taken.
  void reclaim_lease(core::NodeId holder, core::NodeId receiver,
                     Priority cls);
  /// Deep copy of a request for duplication / retry. The clone shares
  /// the original's id (the dedup sequence number) and response future;
  /// hop bookkeeping is reset.
  [[nodiscard]] RequestPtr clone_request(const Request& r);
  /// Per-request watchdog: wakes every (backed-off) timeout and
  /// re-issues the op until the shared response future is fulfilled.
  /// Aborts via validate_fail after retry_max_attempts wasted attempts.
  [[nodiscard]] sim::Co<void> retry_watchdog(RequestPtr r,
                                             sim::Future<Response> fut,
                                             core::NodeId first_hop);
  /// Re-issue one retry copy from the origin (credit acquire + send).
  /// Bypasses the reconfiguration fence: the logical op was already
  /// admitted, and the quiesce loop is waiting for its completion.
  [[nodiscard]] sim::Co<void> reissue(RequestPtr r);
  void note_first_hop_timeout(core::NodeId hop);
  void note_first_hop_ok(core::NodeId hop);
  // Serial-phase bodies of the heal mutators (sharded calls route the
  // shared-state writes through post_serial; legacy calls run inline).
  void apply_first_hop_timeout(core::NodeId hop);
  void apply_heal_around(core::NodeId dead);
  void apply_unheal(core::NodeId node);

  // Declared first so the engine (and every facade captured from it)
  // outlives all other members during destruction. Null on the legacy
  // external-engine runtime. At most one of sharded_/threads_ is set.
  std::unique_ptr<sim::ShardedEngine> sharded_;
  std::unique_ptr<Transport> transport_;
  /// Non-owning view of transport_ when it is the threads backend (its
  /// dtor — worker join — runs when transport_ destructs, after every
  /// actor holding a facade reference is gone).
  ThreadsTransport* threads_ = nullptr;
  sim::Engine* eng_;
  Config cfg_;
  GlobalMemory memory_;
  TopologyManager topo_mgr_;
  net::Network network_;
  // Declared before the actors so the pools outlive every RequestPtr and
  // arena Ref still parked in CHT lock queues at teardown. The per-shard
  // slots (a deque: slots must not move under workers' references) live
  // here for the same lifetime reason.
  RequestPool request_pool_;
  PayloadArena payload_arena_;
  std::deque<ShardSlot> shard_slots_;
  std::vector<std::unique_ptr<Cht>> chts_;
  std::vector<std::unique_ptr<CreditBank>> credit_banks_;
  std::vector<std::unique_ptr<CongestionControl>> congestion_;
  std::vector<std::unique_ptr<Proc>> procs_;
  RuntimeStats stats_;
  OpTracer tracer_;
  // Deque: growth must not move stored callables (coroutines hold
  // references into them).
  std::deque<std::function<sim::Co<void>(Proc&)>> programs_;
  std::vector<std::uint64_t> req_seq_;  ///< per-node request-id streams
  std::uint64_t request_id_ = 0;
  std::int64_t live_ = 0;
  bool chts_stopped_ = false;

  // Fault-injection state (empty/null while disarmed).
  std::unique_ptr<sim::FaultInjector> injector_;
  std::vector<char> node_down_;
  std::vector<double> node_slow_;
  std::vector<char> healed_;
  bool any_healed_ = false;
  std::vector<int> first_hop_timeouts_;  ///< consecutive, per hop node
  struct SeizedCredits {
    core::NodeId bank;
    core::NodeId edge;
    std::int64_t count;
  };
  std::vector<SeizedCredits> seized_;  ///< active kBufferExhaust outages

  // Reconfiguration state.
  bool reconfig_active_ = false;
  std::int64_t inflight_requests_ = 0;
  std::vector<FenceWaiter> reconfig_waiters_;  ///< FIFO
  ReconfigReport last_reconfig_;

  // Barrier state.
  std::int64_t barrier_arrived_ = 0;
  std::vector<sim::Future<int>> barrier_futures_;
  // Allreduce state.
  std::int64_t reduce_arrived_ = 0;
  double reduce_sum_ = 0.0;
  std::vector<sim::Future<double>> reduce_futures_;
};

}  // namespace vtopo::armci
