#include "armci/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <utility>

#include "armci/cht.hpp"
#include "armci/proc.hpp"
#include "core/coords.hpp"
#include "core/remap.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

Runtime::Runtime(sim::Engine& eng, Config cfg)
    : eng_(&eng),
      cfg_(cfg),
      memory_(cfg.num_nodes * cfg.procs_per_node, cfg.segment_bytes),
      topo_mgr_(cfg.custom_shape
                    ? core::VirtualTopology::custom(
                          cfg.topology, *cfg.custom_shape, cfg.num_nodes,
                          cfg.policy)
                    : core::VirtualTopology::make(cfg.topology,
                                                  cfg.num_nodes,
                                                  cfg.policy)),
      network_(eng, cfg.num_nodes, cfg.net, cfg.placement, cfg.seed) {
  chts_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  credit_banks_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  for (core::NodeId n = 0; n < cfg.num_nodes; ++n) {
    chts_.push_back(std::make_unique<Cht>(*this, n));
    credit_banks_.push_back(std::make_unique<CreditBank>(
        eng, credits_per_edge(), topology().neighbors(n)));
  }
  procs_.reserve(static_cast<std::size_t>(num_procs()));
  for (ProcId p = 0; p < num_procs(); ++p) {
    procs_.push_back(std::make_unique<Proc>(*this, p));
  }
  for (auto& cht : chts_) cht->start();
  if (cfg_.faults && cfg_.faults->armed()) {
    injector_ = std::make_unique<sim::FaultInjector>(eng, *cfg_.faults);
    const auto nn = static_cast<std::size_t>(cfg_.num_nodes);
    node_down_.assign(nn, 0);
    node_slow_.assign(nn, 1.0);
    healed_.assign(nn, 0);
    first_hop_timeouts_.assign(nn, 0);
    injector_->arm([this](const sim::FaultEvent& e, bool begin) {
      apply_fault(e, begin);
    });
  }
}

Runtime::~Runtime() {
  // Let CHT loops exit so their coroutine frames are reclaimed; safe
  // even after run_all() (stop is idempotent via the poison drain).
  if (!chts_stopped_) {
    stop_chts();
  }
}

void Runtime::stop_chts() {
  for (auto& cht : chts_) cht->stop();
  eng_->run();
  chts_stopped_ = true;
}

Proc& Runtime::proc(ProcId p) {
  assert(p >= 0 && p < num_procs());
  return *procs_[static_cast<std::size_t>(p)];
}

Cht& Runtime::cht(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *chts_[static_cast<std::size_t>(n)];
}

CreditBank& Runtime::credits(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *credit_banks_[static_cast<std::size_t>(n)];
}

void Runtime::spawn(ProcId p, std::function<sim::Co<void>(Proc&)> program) {
  programs_.push_back(std::move(program));
  sim::spawn(programs_.back()(proc(p)), &live_);
}

void Runtime::spawn_all(const std::function<sim::Co<void>(Proc&)>& program) {
  for (ProcId p = 0; p < num_procs(); ++p) spawn(p, program);
}

void Runtime::spawn_task(sim::Co<void> task) {
  sim::spawn(std::move(task), nullptr);
}

void Runtime::run_all() {
  eng_->run();
  if (live_ != 0) throw DeadlockError(live_);
  stop_chts();
#if VTOPO_VALIDATE_ENABLED
  validate_quiescent();
#endif
}

void Runtime::validate_quiescent() {
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent after run");
  }
  request_pool_.check_drained("request leaked past shutdown");
  VTOPO_CHECK_ALWAYS(inflight_requests_ == 0,
                     "issued request never completed at its origin");
  // Check the cumulative forwarding depth against the loosest bound of
  // any topology generation installed during the run: after a live
  // reconfiguration to a shallower topology, hops that were legal under
  // the earlier generation remain in the counter.
  VTOPO_CHECK_ALWAYS(
      stats_.max_forwards_seen <=
          static_cast<std::uint64_t>(topo_mgr_.max_forwards_bound()),
      "request forwarded past the topology's max-forwards bound");
}

bool Runtime::request_path_quiescent() const {
  if (inflight_requests_ != 0) return false;
  for (const auto& bank : credit_banks_) {
    if (!bank->idle()) return false;
  }
  return true;
}

// --------------------------------------------------------------------
// Fault injection and the self-healing request path.
//
// Everything below is dormant unless a FaultPlan is armed: the message
// wrappers then reduce to the exact Network::deliver calls the protocol
// made before this subsystem existed, so fault-free runs schedule the
// same events in the same order (byte-identical figures).
// --------------------------------------------------------------------

void Runtime::apply_fault(const sim::FaultEvent& e, bool begin) {
  const auto a = static_cast<core::NodeId>(e.a);
  const auto b = static_cast<core::NodeId>(e.b);
  const bool a_ok = a >= 0 && a < num_nodes();
  const bool b_ok = b >= 0 && b < num_nodes();
  switch (e.kind) {
    case sim::FaultKind::kLinkSever:
    case sim::FaultKind::kLinkDegrade: {
      if (!a_ok || !b_ok || a == b) return;
      const bool sever = e.kind == sim::FaultKind::kLinkSever;
      const double slow = sever ? 1.0 : e.magnitude;
      if (begin) {
        // A physical link outage hits both directions of the pair.
        network_.fault_edge(a, b, sever, slow);
        network_.fault_edge(b, a, sever, slow);
      } else {
        network_.clear_edge_fault(a, b);
        network_.clear_edge_fault(b, a);
      }
      return;
    }
    case sim::FaultKind::kNodeCrash: {
      if (!a_ok) return;
      node_down_[static_cast<std::size_t>(a)] = begin ? 1 : 0;
      if (begin) {
        if (cfg_.armci.self_heal) heal_around(a);
      } else {
        unheal(a);
      }
      return;
    }
    case sim::FaultKind::kNodeSlow: {
      if (!a_ok) return;
      node_slow_[static_cast<std::size_t>(a)] =
          begin ? std::max(1.0, e.magnitude) : 1.0;
      return;
    }
    case sim::FaultKind::kBufferExhaust: {
      if (!a_ok || !b_ok) return;
      if (begin) {
        if (!credits(a).has_edge(b)) return;
        seized_.push_back(SeizedCredits{a, b, credits(a).seize(b)});
      } else {
        for (std::size_t i = 0; i < seized_.size(); ++i) {
          if (seized_[i].bank == a && seized_[i].edge == b) {
            const std::int64_t n = seized_[i].count;
            seized_.erase(seized_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            credits(a).restore(b, n);
            return;
          }
        }
      }
      return;
    }
  }
}

void Runtime::heal_around(core::NodeId dead) {
  if (injector_ == nullptr || dead < 0 || dead >= num_nodes()) return;
  char& flag = healed_[static_cast<std::size_t>(dead)];
  if (flag != 0) return;
  flag = 1;
  any_healed_ = true;
  ++stats_.heals;
}

void Runtime::unheal(core::NodeId node) {
  if (injector_ == nullptr || node < 0 || node >= num_nodes()) return;
  healed_[static_cast<std::size_t>(node)] = 0;
  first_hop_timeouts_[static_cast<std::size_t>(node)] = 0;
  any_healed_ = false;
  for (const char h : healed_) {
    if (h != 0) {
      any_healed_ = true;
      break;
    }
  }
}

core::NodeId Runtime::next_hop_for(core::NodeId src, core::NodeId dst) {
  const core::NodeId hop = topology().next_hop(src, dst);
  if (!any_healed_ || hop == dst ||
      healed_[static_cast<std::size_t>(hop)] == 0) {
    return hop;
  }
  // The dimension-order hop is routed around: dedicate direct buffers to
  // the final target instead. The target executes without forwarding, so
  // the overlay introduces no hold-and-wait edge (deadlock freedom) and
  // strictly fewer forwards than the severed route (bound preserved).
  credits(src).ensure_edge(dst);
  ++stats_.healed_reroutes;
  return dst;
}

void Runtime::note_first_hop_timeout(core::NodeId hop) {
  if (hop < 0 || hop >= num_nodes()) return;
  int& n = first_hop_timeouts_[static_cast<std::size_t>(hop)];
  if (++n >= cfg_.armci.heal_timeout_threshold && cfg_.armci.self_heal) {
    heal_around(hop);
  }
}

void Runtime::note_first_hop_ok(core::NodeId hop) {
  if (hop < 0 || hop >= num_nodes()) return;
  first_hop_timeouts_[static_cast<std::size_t>(hop)] = 0;
}

void Runtime::reclaim_lease(core::NodeId holder, core::NodeId receiver) {
  if (!cfg_.armci.lease_reclaim) return;  // chaos knob: leak instead
  CreditBank* bank = credit_banks_[static_cast<std::size_t>(holder)].get();
  eng_->schedule_after(cfg_.armci.lease_reclaim_delay,
                       [this, bank, receiver] {
    bank->release(receiver);
    ++stats_.credits_reclaimed;
  });
}

RequestPtr Runtime::clone_request(const Request& r) {
  RequestPtr c = request_pool_.acquire();
  c->id = r.id;  // shared sequence number: the dedup key
  c->op = r.op;
  c->origin_proc = r.origin_proc;
  c->origin_node = r.origin_node;
  c->target_proc = r.target_proc;
  c->target_node = r.target_node;
  c->attempt = r.attempt;
  c->addr = r.addr;
  c->acc_type = r.acc_type;
  c->scale = r.scale;
  c->imm = r.imm;
  c->mutex_id = r.mutex_id;
  c->segs = r.segs;
  c->strided = r.strided;
  c->data = r.data;
  c->response_future = r.response_future;  // shared completion state
  return c;
}

void Runtime::send_request_msg(RequestPtr r, core::NodeId src,
                               core::NodeId dst, std::int64_t wire_bytes,
                               net::Network::StreamKey stream) {
  Cht& cht_dst = cht(dst);
  // Locks are exempt from faults end to end (lock traffic is modeled
  // reliable: a replayed grant would corrupt the waiter queue), as are
  // intra-node deliveries (shared memory, not the wire).
  if (!faults_armed() || src == dst || r->op == OpCode::kLock ||
      r->op == OpCode::kUnlock) {
    RequestPtr rr = std::move(r);
    network_.deliver(src, dst, wire_bytes, stream,
                     [&cht_dst, rr]() mutable {
      cht_dst.enqueue(std::move(rr));
    });
    return;
  }
  const bool forced = network_.edge_severed(src, dst) || node_down(dst);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kRequest);
  }
  if (forced || f.drop) {
    ++stats_.msgs_dropped;
    // The hop's buffer-credit lease dies with the message; reclaim it so
    // flow control recovers. The op itself is recovered by the origin's
    // retry watchdog (its RequestPtr copy keeps the request alive).
    if (r->hop_credit_taken) reclaim_lease(src, dst);
    return;
  }
  if (f.duplicate) {
    ++stats_.msgs_duplicated;
    RequestPtr dup = clone_request(*r);
    dup->upstream_node = r->upstream_node;
    dup->upstream_is_cht = r->upstream_is_cht;
    dup->forwards = r->forwards;
    dup->hop_credit_taken = false;  // ghost copy holds no lease
    RequestPtr dd = std::move(dup);
    network_.deliver(src, dst, wire_bytes, stream,
                     [&cht_dst, dd]() mutable {
      cht_dst.enqueue(std::move(dd));
    });
  }
  const sim::TimeNs arrival = network_.send(src, dst, wire_bytes, stream);
  if (f.delay > 0) ++stats_.msgs_delayed;
  RequestPtr rr = std::move(r);
  eng_->schedule_at(arrival + f.delay, [&cht_dst, rr]() mutable {
    cht_dst.enqueue(std::move(rr));
  });
}

void Runtime::send_ack_msg(core::NodeId from, core::NodeId upstream) {
  const ArmciParams& p = cfg_.armci;
  CreditBank& bank = credits(upstream);
  const core::NodeId self = from;
  ++stats_.acks;
  if (!faults_armed()) {
    network_.deliver(from, upstream, p.ack_bytes, cht_stream(from),
                     [&bank, self] { bank.release(self); });
    return;
  }
  const bool forced =
      network_.edge_severed(from, upstream) || node_down(upstream);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kAck);
  }
  if (forced || f.drop) {
    ++stats_.msgs_dropped;
    // A lost ack strands the lease at the upstream holder; reclaim it
    // (or, with lease_reclaim off, leak it — the validate death test).
    reclaim_lease(upstream, from);
    return;
  }
  const sim::TimeNs arrival =
      network_.send(from, upstream, p.ack_bytes, cht_stream(from));
  if (f.delay > 0) ++stats_.msgs_delayed;
  eng_->schedule_at(arrival + f.delay, [&bank, self] {
    bank.release(self);
  });
}

void Runtime::send_response_msg(RequestPtr req, Response resp,
                                core::NodeId from,
                                std::int64_t wire_bytes) {
  ++stats_.responses;
  const core::NodeId dst = req->origin_node;
  const OpCode op = req->op;
  Runtime* rt = this;
  auto complete = [rt, req = std::move(req),
                   resp = std::move(resp)]() mutable {
    // Origin-side completion gate: the first response fulfils the op
    // (and lets the reconfigure quiesce proceed); late duplicates —
    // from retries or duplicated requests — are absorbed here.
    if (req->response_future->ready()) {
      ++rt->stats_.dup_suppressed;
      return;
    }
    rt->note_request_completed();
    req->response_future->set(std::move(resp));
  };
  if (!faults_armed() || from == dst || op == OpCode::kLock ||
      op == OpCode::kUnlock) {
    network_.deliver(from, dst, wire_bytes, cht_stream(from),
                     std::move(complete));
    return;
  }
  const bool forced = network_.edge_severed(from, dst) || node_down(dst);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kResponse);
  }
  if (forced || f.drop) {
    ++stats_.msgs_dropped;  // the origin's watchdog re-issues
    return;
  }
  const sim::TimeNs arrival =
      network_.send(from, dst, wire_bytes, cht_stream(from));
  if (f.delay > 0) ++stats_.msgs_delayed;
  eng_->schedule_at(arrival + f.delay, std::move(complete));
}

void Runtime::arm_retry_watchdog(const RequestPtr& r) {
  const core::NodeId first_hop =
      next_hop_for(r->origin_node, r->target_node);
  spawn_task(retry_watchdog(r, *r->response_future, first_hop));
}

sim::Co<void> Runtime::retry_watchdog(RequestPtr r,
                                      sim::Future<Response> fut,
                                      core::NodeId first_hop) {
  const ArmciParams& p = cfg_.armci;
  sim::TimeNs timeout = p.retry_timeout;
  for (int attempt = 1; attempt <= p.retry_max_attempts; ++attempt) {
    co_await sim::Sleep(*eng_, timeout);
    if (fut.ready()) {
      note_first_hop_ok(first_hop);
      co_return;
    }
    ++stats_.retries;
    tracer_.record(TraceKind::kRetry, r->origin_proc,
                   eng_->now() - timeout, timeout);
    note_first_hop_timeout(first_hop);
    RequestPtr copy = clone_request(*r);
    copy->attempt = attempt;
    spawn_task(reissue(std::move(copy)));
    timeout = std::min(
        static_cast<sim::TimeNs>(static_cast<double>(timeout) *
                                 p.retry_backoff),
        p.retry_backoff_cap);
  }
  co_await sim::Sleep(*eng_, timeout);
  if (fut.ready()) {
    note_first_hop_ok(first_hop);
    co_return;
  }
  VTOPO_CHECK_ALWAYS(false,
                     "retry attempts exhausted: request completion lost");
}

sim::Co<void> Runtime::reissue(RequestPtr r) {
  const ArmciParams& p = cfg_.armci;
  // Note: no reconfiguration fence here. The logical op was admitted on
  // its first issue and the quiesce loop is waiting for its completion;
  // parking the retry at the fence would deadlock the quiesce.
  co_await sim::Sleep(*eng_, p.proc_op_overhead);
  if (r->response_future->ready()) co_return;  // completed while asleep
  const core::NodeId origin = r->origin_node;
  const net::Network::StreamKey stream = proc_stream(r->origin_proc);
  const std::int64_t wire = p.request_header_bytes + r->payload_bytes();
  const core::NodeId hop = next_hop_for(origin, r->target_node);
  CreditBank& bank = credits(origin);
  const sim::TimeNs t0 = eng_->now();
  co_await bank.acquire(hop);
  const sim::TimeNs blocked = eng_->now() - t0;
  bank.add_blocked(blocked);
  stats_.credit_blocked_ns += blocked;
  if (r->response_future->ready()) {
    bank.release(hop);  // raced with a late response: hand it back
    co_return;
  }
  r->upstream_node = origin;
  r->upstream_is_cht = false;
  r->hop_credit_taken = true;
  send_request_msg(std::move(r), origin, hop, wire, stream);
}

sim::Co<bool> Runtime::reconfigure(core::TopologyKind to,
                                   ReconfigMode mode) {
  VTOPO_CHECK_ALWAYS(!reconfig_active_,
                     "reentrant reconfigure(): one at a time");
  if (to == topology().kind()) co_return false;
  // Refuse instead of throwing: Co promises terminate on an escaped
  // exception (sim actors have no one to rethrow to).
  if (to == core::TopologyKind::kHypercube &&
      !core::is_power_of_two(cfg_.num_nodes)) {
    co_return false;
  }
  const ArmciParams& p = cfg_.armci;
  const sim::TimeNs t0 = eng_->now();
  ReconfigReport rep;
  rep.from = topology().kind();
  rep.to = to;
  rep.mode = mode;

  // ---- Quiesce: fence new CHT-mediated ops, drain in-flight ones
  // (requests, forwards, credit acks, credit waiters). A bounded poll
  // count turns the one pathological non-draining pattern (a lock
  // holder parked at the fence while its waiter's request sits in the
  // target's lock queue) into a diagnosable abort instead of a hang.
  constexpr std::int64_t kMaxQuiescePolls = 10'000'000;
  reconfig_active_ = true;
  while (!request_path_quiescent()) {
    ++rep.quiesce_polls;
    VTOPO_CHECK_ALWAYS(rep.quiesce_polls <= kMaxQuiescePolls,
                       "reconfigure quiesce did not drain (CHT-mediated "
                       "op issued while holding a lock?)");
    co_await sim::Sleep(*eng_, p.reconfig_poll);
  }
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent at reconfiguration");
  }
  VTOPO_CHECK_ALWAYS(inflight_requests_ == 0,
                     "request in flight at reconfiguration");
  const sim::TimeNs t_quiesced = eng_->now();

  // ---- Plan the transition; under VTOPO_VALIDATE, verify the ordered
  // build -> switch -> teardown schedule keeps every intermediate
  // buffer-dependency graph acyclic before touching any bank.
  core::VirtualTopology next =
      core::VirtualTopology::make(to, cfg_.num_nodes, cfg_.policy);
  const core::RemapPlan plan = core::plan_remap(topology(), next);
  [[maybe_unused]] const core::RemapSchedule sched =
      core::plan_schedule(plan);
#if VTOPO_VALIDATE_ENABLED
  {
    const core::TransitionCheck check =
        core::verify_transition(topology(), next, sched);
    VTOPO_CHECK_ALWAYS(check.ok(), "unsafe topology transition schedule");
  }
#endif

  // ---- Execute: remap every node's credit bank from the delta.
  std::int64_t built = 0;
  std::int64_t torn = 0;
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    CreditBank& bank = *credit_banks_[static_cast<std::size_t>(n)];
    const CreditBank::RemapStats rs =
        mode == ReconfigMode::kIncremental
            ? bank.apply_remap(next.neighbors(n))
            : bank.rebuild(next.neighbors(n));
    rep.pools_kept += rs.kept;
    built += rs.added;
    torn += rs.removed;
  }
  rep.pools_added = built;
  rep.pools_removed = torn;
  const std::int64_t bytes_per_pool = credits_per_edge() * p.buffer_bytes;
  rep.bytes_allocated = built * bytes_per_pool;
  rep.bytes_released = torn * bytes_per_pool;
  co_await sim::Sleep(*eng_, p.reconfig_admin +
                                 p.reconfig_edge_build * built +
                                 p.reconfig_edge_teardown * torn);
  topo_mgr_.install(std::move(next), eng_->now());

  rep.epoch = topo_mgr_.epoch();
  rep.quiesce_ns = t_quiesced - t0;
  rep.remap_ns = eng_->now() - t_quiesced;
  ++stats_.reconfigurations;
  stats_.reconfig_quiesce_ns += rep.quiesce_ns;
  stats_.reconfig_remap_ns += rep.remap_ns;
  tracer_.record(TraceKind::kReconfigure, /*proc=*/-1, t0,
                 eng_->now() - t0);

  // ---- Resume ops parked at the fence, in FIFO issue order (via the
  // event queue, which is FIFO at equal timestamps — deterministic).
  reconfig_active_ = false;
  rep.waiters_resumed =
      static_cast<std::int64_t>(reconfig_waiters_.size());
  std::vector<std::coroutine_handle<>> waiters;
  waiters.swap(reconfig_waiters_);
  for (const std::coroutine_handle<> h : waiters) {
    eng_->schedule_after(0, [h] { h.resume(); });
  }
  last_reconfig_ = rep;
  co_return true;
}

bool Runtime::run_for(sim::TimeNs deadline) {
  eng_->run_until(deadline);
  return live_ == 0;
}

sim::Co<void> Runtime::barrier_wait() {
  const ArmciParams& p = cfg_.armci;
  barrier_futures_.emplace_back(*eng_);
  sim::Future<int> fut = barrier_futures_.back();
  if (++barrier_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    const sim::TimeNs latency =
        p.barrier_base + p.barrier_per_level * std::max(levels, 1);
    std::vector<sim::Future<int>> futs = std::move(barrier_futures_);
    barrier_futures_.clear();
    barrier_arrived_ = 0;
    for (auto& f : futs) {
      eng_->schedule_after(latency, [f]() mutable { f.set(0); });
    }
  }
  co_await fut;
}

sim::Co<double> Runtime::allreduce_sum(double value) {
  const ArmciParams& p = cfg_.armci;
  reduce_sum_ += value;
  reduce_futures_.emplace_back(*eng_);
  sim::Future<double> fut = reduce_futures_.back();
  if (++reduce_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    // Reduction + broadcast: two tree traversals.
    const sim::TimeNs latency =
        p.barrier_base + 2 * p.barrier_per_level * std::max(levels, 1);
    const double total = reduce_sum_;
    std::vector<sim::Future<double>> futs = std::move(reduce_futures_);
    reduce_futures_.clear();
    reduce_arrived_ = 0;
    reduce_sum_ = 0.0;
    for (auto& f : futs) {
      eng_->schedule_after(latency,
                           [f, total]() mutable { f.set(total); });
    }
  }
  const double result = co_await fut;
  co_return result;
}

}  // namespace vtopo::armci
