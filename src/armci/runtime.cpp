#include "armci/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <utility>

#include "armci/backend_threads.hpp"
#include "armci/cht.hpp"
#include "armci/proc.hpp"
#include "core/coords.hpp"
#include "core/remap.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

namespace {

/// Standalone private fabric (the historical path), or attachment to a
/// shared machine fabric when Config::fabric is set (tenant mode).
net::Network make_network(sim::Engine& eng, const Runtime::Config& cfg) {
  if (cfg.fabric != nullptr) {
    if (static_cast<std::int64_t>(cfg.fabric_slots.size()) !=
        cfg.num_nodes) {
      throw std::invalid_argument(
          "Config::fabric_slots must have one machine slot per node");
    }
    return net::Network(eng, cfg.fabric, cfg.fabric_slots, cfg.net);
  }
  return net::Network(eng, cfg.num_nodes, cfg.net, cfg.placement, cfg.seed);
}

}  // namespace

Runtime::Runtime(sim::Engine& eng, Config cfg)
    : transport_(std::make_unique<SimTransport>(eng)),
      eng_(&eng),
      cfg_(cfg),
      memory_(cfg.num_nodes * cfg.procs_per_node, cfg.segment_bytes),
      topo_mgr_(cfg.custom_shape
                    ? core::VirtualTopology::custom(
                          cfg.topology, *cfg.custom_shape, cfg.num_nodes,
                          cfg.policy)
                    : core::VirtualTopology::make(cfg.topology,
                                                  cfg.num_nodes,
                                                  cfg.policy)),
      network_(make_network(eng, cfg)) {
  init();
}

Runtime::Runtime(Config cfg)
    : sharded_(cfg.backend == Backend::kThreads
                   ? nullptr
                   // vtopo-lint: allow(backend-seam) -- the Runtime ctor IS the seam: it owns the sim backend's engine
                   : std::make_unique<sim::ShardedEngine>(
                         static_cast<int>(cfg.num_nodes),
                         std::max(cfg.shards, 1),
                         cfg.net.min_remote_latency(), cfg.thread_mode)),
      transport_(cfg.backend == Backend::kThreads
                     ? std::unique_ptr<Transport>(
                           std::make_unique<ThreadsTransport>(
                               static_cast<int>(cfg.num_nodes)))
                     : std::unique_ptr<Transport>(
                           std::make_unique<SimTransport>(*sharded_))),
      threads_(cfg.backend == Backend::kThreads
                   ? static_cast<ThreadsTransport*>(transport_.get())
                   : nullptr),
      eng_(threads_ != nullptr ? &threads_->global_engine()
                               : &sharded_->global_engine()),
      cfg_(cfg),
      memory_(cfg.num_nodes * cfg.procs_per_node, cfg.segment_bytes),
      topo_mgr_(cfg.custom_shape
                    ? core::VirtualTopology::custom(
                          cfg.topology, *cfg.custom_shape, cfg.num_nodes,
                          cfg.policy)
                    : core::VirtualTopology::make(cfg.topology,
                                                  cfg.num_nodes,
                                                  cfg.policy)),
      network_(*eng_, cfg.num_nodes, cfg.net, cfg.placement, cfg.seed) {
  if (cfg_.fabric != nullptr) {
    // Tenant coupling shares one link-occupancy horizon across
    // runtimes, which only the single global engine serializes; the
    // sharded windows and wall-clock threads have no cross-runtime
    // ordering story. The cluster service uses the legacy constructor
    // for coupled tenants.
    throw std::invalid_argument(
        "fabric attachment requires the caller-owned legacy engine");
  }
  if (sharded_ != nullptr) {
    network_.enable_sharding(sharded_.get());
  } else if (cfg_.faults && cfg_.faults->armed()) {
    // The fault/retry/heal machinery is deterministic-replay tooling
    // (seeded draws, serial-phase overlays); on wall-clock threads it
    // has no meaning. Refuse rather than silently ignore.
    throw std::invalid_argument(
        "threads backend does not support fault injection");
  }
  init();
}

void Runtime::init() {
  const auto nn = static_cast<std::size_t>(cfg_.num_nodes);
  if (sharded_ != nullptr) {
    for (int s = 0; s < sharded_->num_shards(); ++s) {
      shard_slots_.emplace_back();
      shard_slots_.back().pool.bind_shard(sharded_.get(), s);
      shard_slots_.back().arena.bind_shard(sharded_.get(), s);
    }
    req_seq_.assign(nn, 0);
  } else if (threads_ != nullptr) {
    // One slot per node plus the global pseudo-node: each worker touches
    // only its own slot; the driver folds them while workers are
    // quiescent. Pools home foreign frees through the owner's queue.
    for (int n = 0; n <= threads_->num_nodes(); ++n) {
      shard_slots_.emplace_back();
      shard_slots_.back().pool.bind_realtime(&threads_->engine_for_node(n),
                                             n);
    }
    req_seq_.assign(nn, 0);
  }
  chts_.reserve(nn);
  credit_banks_.reserve(nn);
  congestion_.reserve(nn);
  const QosParams* qos = &cfg_.armci.qos;
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    if (sharded_ != nullptr) {
      // Construct each node's actors under its own node context so the
      // engine references they capture (the CHT's queue, the credit
      // bank's waiter resumes) are the owning shard's facade.
      sim::NodeScope scope(*sharded_, static_cast<int>(n));
      chts_.push_back(std::make_unique<Cht>(*this, n));
      credit_banks_.push_back(std::make_unique<CreditBank>(
          sharded_->engine_for_node(static_cast<int>(n)),
          credits_per_edge(), topology().neighbors(n), qos));
      congestion_.push_back(std::make_unique<CongestionControl>(
          sharded_->engine_for_node(static_cast<int>(n)), qos));
    } else if (threads_ != nullptr) {
      // Same confinement rule on real threads: every engine reference
      // these actors capture must be the owning node's wall-clock
      // facade, and only that node's worker drives them afterwards.
      ThreadsTransport::ScopedNode scope(static_cast<int>(n));
      chts_.push_back(std::make_unique<Cht>(*this, n));
      credit_banks_.push_back(std::make_unique<CreditBank>(
          threads_->engine_for_node(static_cast<int>(n)),
          credits_per_edge(), topology().neighbors(n), qos));
      congestion_.push_back(std::make_unique<CongestionControl>(
          threads_->engine_for_node(static_cast<int>(n)), qos));
    } else {
      chts_.push_back(std::make_unique<Cht>(*this, n));
      credit_banks_.push_back(std::make_unique<CreditBank>(
          *eng_, credits_per_edge(), topology().neighbors(n), qos));
      congestion_.push_back(
          std::make_unique<CongestionControl>(*eng_, qos));
    }
  }
  procs_.reserve(static_cast<std::size_t>(num_procs()));
  for (ProcId p = 0; p < num_procs(); ++p) {
    procs_.push_back(std::make_unique<Proc>(*this, p));
  }
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    if (sharded_ != nullptr) {
      sim::NodeScope scope(*sharded_, static_cast<int>(n));
      chts_[static_cast<std::size_t>(n)]->start();
    } else if (threads_ != nullptr) {
      // Workers have not started yet: the service loop's first segment
      // runs inline here and parks on its queue; the std::thread
      // constructors in drive() order all of this before any worker.
      ThreadsTransport::ScopedNode scope(static_cast<int>(n));
      chts_[static_cast<std::size_t>(n)]->start();
    } else {
      chts_[static_cast<std::size_t>(n)]->start();
    }
  }
  if (cfg_.faults && cfg_.faults->armed()) {
    injector_ = std::make_unique<sim::FaultInjector>(*eng_, *cfg_.faults);
    node_down_.assign(nn, 0);
    node_slow_.assign(nn, 1.0);
    healed_.assign(nn, 0);
    first_hop_timeouts_.assign(nn, 0);
    auto handler = [this](const sim::FaultEvent& e, bool begin) {
      apply_fault(e, begin);
    };
    if (sharded_ != nullptr) {
      // Per-node RNG streams keep message-fault draws independent of
      // host interleaving; arming under the global pseudo-node makes
      // every outage a global event, which runs between windows where
      // cross-shard state is safe to mutate.
      injector_->shard_streams(static_cast<int>(cfg_.num_nodes));
      sim::NodeScope scope(*sharded_, sharded_->global_node());
      injector_->arm(handler);
    } else {
      injector_->arm(handler);
    }
  }
}

Runtime::~Runtime() {
  // Let CHT loops exit so their coroutine frames are reclaimed; safe
  // even after run_all() (stop is idempotent via the poison drain).
  if (!chts_stopped_) {
    stop_chts();
  }
}

void Runtime::stop_chts() {
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    if (sharded_ != nullptr) {
      // stop() pushes the poison token into the CHT's queue, which may
      // wake the parked consumer through its node facade — so push from
      // that node's context.
      sim::NodeScope scope(*sharded_, static_cast<int>(n));
      chts_[static_cast<std::size_t>(n)]->stop();
    } else if (threads_ != nullptr) {
      // Workers are quiescent here (drive() settled); the poison push
      // posts a wakeup through the node's queue, which re-orders the
      // worker behind this write.
      ThreadsTransport::ScopedNode scope(static_cast<int>(n));
      chts_[static_cast<std::size_t>(n)]->stop();
    } else {
      chts_[static_cast<std::size_t>(n)]->stop();
    }
  }
  run_engine();
  chts_stopped_ = true;
}

void Runtime::run_engine() {
  if (sharded_ != nullptr) {
    sync_slot_tracers();
    sharded_->run();
    fold_shard_state();
  } else if (threads_ != nullptr) {
    sync_slot_tracers();
    transport_->drive();
    fold_slot_counters();
  } else {
    eng_->run();
  }
  // Reserved-lane grants live as monotone counters inside the banks
  // (they have no stats access); snapshot the total whenever a run
  // settles so stats_ reads stay consistent with the other counters.
  std::uint64_t grants = 0;
  for (const auto& bank : credit_banks_) grants += bank->reserved_grants();
  stats_.reserved_grants = grants;
}

void Runtime::sync_slot_tracers() {
  for (ShardSlot& s : shard_slots_) s.tracer.configure_from(tracer_);
}

void Runtime::fold_slot_counters() {
  for (ShardSlot& s : shard_slots_) {
    RuntimeStats& a = stats_;
    const RuntimeStats& b = s.stats;
    a.requests += b.requests;
    a.forwards += b.forwards;
    a.max_forwards_seen =
        std::max(a.max_forwards_seen, b.max_forwards_seen);
    a.acks += b.acks;
    a.responses += b.responses;
    a.direct_ops += b.direct_ops;
    a.cht_wakeups += b.cht_wakeups;
    a.lock_queue_max = std::max(a.lock_queue_max, b.lock_queue_max);
    a.max_backlog = std::max(a.max_backlog, b.max_backlog);
    a.credit_blocked_ns += b.credit_blocked_ns;
    a.aged_promotions += b.aged_promotions;
    a.congestion_stalls += b.congestion_stalls;
    a.congestion_stall_ns += b.congestion_stall_ns;
    a.window_shrinks += b.window_shrinks;
    a.reconfigurations += b.reconfigurations;
    a.reconfig_quiesce_ns += b.reconfig_quiesce_ns;
    a.reconfig_remap_ns += b.reconfig_remap_ns;
    a.retries += b.retries;
    a.msgs_dropped += b.msgs_dropped;
    a.msgs_duplicated += b.msgs_duplicated;
    a.msgs_delayed += b.msgs_delayed;
    a.dup_suppressed += b.dup_suppressed;
    a.credits_reclaimed += b.credits_reclaimed;
    a.heals += b.heals;
    a.healed_reroutes += b.healed_reroutes;
    s.stats = RuntimeStats{};
    tracer_.merge_from(s.tracer);
  }
  // Sorting restores an order that does not depend on which shard
  // recorded which sample, so percentiles and float sums of the folded
  // series compare bytewise across shard counts.
  if (tracer_.enabled()) tracer_.canonicalize();
}

void Runtime::fold_shard_state() {
  fold_slot_counters();
  stats_.shard_mem.assign(
      static_cast<std::size_t>(sharded_->num_shards()), ShardMemStats{});
  for (int sh = 0; sh < sharded_->num_shards(); ++sh) {
    const sim::ShardedEngine::ShardMem m = sharded_->shard_mem(sh);
    ShardMemStats& d = stats_.shard_mem[static_cast<std::size_t>(sh)];
    d.heap_slots = m.heap_slots;
    d.heap_peak = m.heap_peak;
    d.mailbox_peak = m.mailbox_peak;
    d.events = m.executed;
    const ShardSlot& slot = shard_slots_[static_cast<std::size_t>(sh)];
    d.pool_parked = slot.pool.parked();
    d.pool_created = slot.pool.created();
    d.arena_chunks = static_cast<std::size_t>(slot.arena.created());
  }
}

Proc& Runtime::proc(ProcId p) {
  assert(p >= 0 && p < num_procs());
  return *procs_[static_cast<std::size_t>(p)];
}

Cht& Runtime::cht(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *chts_[static_cast<std::size_t>(n)];
}

CreditBank& Runtime::credits(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *credit_banks_[static_cast<std::size_t>(n)];
}

CongestionControl& Runtime::congestion(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *congestion_[static_cast<std::size_t>(n)];
}

void Runtime::spawn(ProcId p, std::function<sim::Co<void>(Proc&)> program) {
  programs_.push_back(std::move(program));
  if (sharded_ != nullptr) {
    // The program body runs on its node's shard from the first
    // instruction, and a proc coroutine always resumes on its own node
    // (futures resume at their owner, Sleep stays on the facade), so the
    // live counter lives in that shard's slot and is decremented there.
    const int node = static_cast<int>(node_of(p));
    sim::NodeScope scope(*sharded_, node);
    sim::spawn(programs_.back()(proc(p)),
               &shard_slots_[static_cast<std::size_t>(
                                 sharded_->shard_of(node))]
                    .live);
    return;
  }
  if (threads_ != nullptr) {
    // The first segment runs inline on the driver (workers not yet, or
    // no longer, running); once suspended, the coroutine only ever
    // resumes on its node's worker, which owns the slot's live counter.
    const int node = static_cast<int>(node_of(p));
    ThreadsTransport::ScopedNode scope(node);
    sim::spawn(programs_.back()(proc(p)),
               &shard_slots_[static_cast<std::size_t>(node)].live);
    return;
  }
  sim::spawn(programs_.back()(proc(p)), &live_);
}

void Runtime::spawn_all(const std::function<sim::Co<void>(Proc&)>& program) {
  for (ProcId p = 0; p < num_procs(); ++p) spawn(p, program);
}

void Runtime::spawn_task(sim::Co<void> task) {
  if (sharded_ != nullptr && sim::current_node() < 0) {
    // Auxiliary tasks spawned from the main thread (reconfigure
    // drivers, monitors) live on the global pseudo-node: their events
    // run between windows, where cross-shard state is safe to touch.
    sim::NodeScope scope(*sharded_, sharded_->global_node());
    sim::spawn(std::move(task), nullptr);
    return;
  }
  if (threads_ != nullptr && sim::current_node() < 0) {
    ThreadsTransport::ScopedNode scope(threads_->global_node());
    sim::spawn(std::move(task), nullptr);
    return;
  }
  sim::spawn(std::move(task), nullptr);
}

void Runtime::run_all() {
  run_engine();
  if (live_tasks() != 0) throw DeadlockError(live_tasks());
  stop_chts();
#if VTOPO_VALIDATE_ENABLED
  validate_quiescent();
#endif
}

void Runtime::validate_quiescent() {
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent after run");
  }
  request_pool_.check_drained("request leaked past shutdown");
  for (const ShardSlot& s : shard_slots_) {
    s.pool.check_drained("request leaked past shutdown (shard pool)");
  }
  VTOPO_CHECK_ALWAYS(inflight_requests() == 0,
                     "issued request never completed at its origin");
  for (const auto& cc : congestion_) {
    VTOPO_CHECK_ALWAYS(cc->idle(),
                       "congestion window slot held past shutdown");
  }
  // Check the cumulative forwarding depth against the loosest bound of
  // any topology generation installed during the run: after a live
  // reconfiguration to a shallower topology, hops that were legal under
  // the earlier generation remain in the counter.
  VTOPO_CHECK_ALWAYS(
      stats_.max_forwards_seen <=
          static_cast<std::uint64_t>(topo_mgr_.max_forwards_bound()),
      "request forwarded past the topology's max-forwards bound");
}

bool Runtime::request_path_quiescent() const {
  if (inflight_requests() != 0) return false;
  for (const auto& bank : credit_banks_) {
    if (!bank->idle()) return false;
  }
  return true;
}

// --------------------------------------------------------------------
// Fault injection and the self-healing request path.
//
// Everything below is dormant unless a FaultPlan is armed: the message
// wrappers then reduce to the exact Network::deliver calls the protocol
// made before this subsystem existed, so fault-free runs schedule the
// same events in the same order (byte-identical figures).
// --------------------------------------------------------------------

void Runtime::apply_fault(const sim::FaultEvent& e, bool begin) {
  const auto a = static_cast<core::NodeId>(e.a);
  const auto b = static_cast<core::NodeId>(e.b);
  const bool a_ok = a >= 0 && a < num_nodes();
  const bool b_ok = b >= 0 && b < num_nodes();
  switch (e.kind) {
    case sim::FaultKind::kLinkSever:
    case sim::FaultKind::kLinkDegrade: {
      if (!a_ok || !b_ok || a == b) return;
      const bool sever = e.kind == sim::FaultKind::kLinkSever;
      const double slow = sever ? 1.0 : e.magnitude;
      if (begin) {
        // A physical link outage hits both directions of the pair.
        network_.fault_edge(a, b, sever, slow);
        network_.fault_edge(b, a, sever, slow);
      } else {
        network_.clear_edge_fault(a, b);
        network_.clear_edge_fault(b, a);
      }
      return;
    }
    case sim::FaultKind::kNodeCrash: {
      if (!a_ok) return;
      node_down_[static_cast<std::size_t>(a)] = begin ? 1 : 0;
      if (begin) {
        if (cfg_.armci.self_heal) heal_around(a);
      } else {
        unheal(a);
      }
      return;
    }
    case sim::FaultKind::kNodeSlow: {
      if (!a_ok) return;
      node_slow_[static_cast<std::size_t>(a)] =
          begin ? std::max(1.0, e.magnitude) : 1.0;
      return;
    }
    case sim::FaultKind::kBufferExhaust: {
      if (!a_ok || !b_ok) return;
      // Restore may resume parked credit waiters through the bank's
      // engine; enter the bank's node context so those resumes land on
      // its own shard (apply_fault itself runs between windows).
      std::optional<sim::NodeScope> scope;
      if (sharded_ != nullptr) {
        scope.emplace(*sharded_, static_cast<int>(a));
      }
      if (begin) {
        if (!credits(a).has_edge(b)) return;
        seized_.push_back(SeizedCredits{a, b, credits(a).seize(b)});
      } else {
        for (std::size_t i = 0; i < seized_.size(); ++i) {
          if (seized_[i].bank == a && seized_[i].edge == b) {
            const std::int64_t n = seized_[i].count;
            seized_.erase(seized_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            credits(a).restore(b, n);
            return;
          }
        }
      }
      return;
    }
  }
}

// The heal overlay (healed_ / any_healed_ / first_hop_timeouts_) is
// shared across every node. Sharded, the mutators run in the serial
// phase — post_serial merges concurrent triggers in (time, stamp) order,
// so the overlay evolves identically at every shard count; workers read
// the flags race-free because writes happen only between windows.
// post_serial from a non-parallel context runs inline, so the legacy
// runtime and global-context callers (apply_fault) keep their old
// immediate semantics.

void Runtime::heal_around(core::NodeId dead) {
  if (sharded_ != nullptr) {
    sharded_->post_serial([this, dead] { apply_heal_around(dead); });
    return;
  }
  apply_heal_around(dead);
}

void Runtime::apply_heal_around(core::NodeId dead) {
  if (injector_ == nullptr || dead < 0 || dead >= num_nodes()) return;
  char& flag = healed_[static_cast<std::size_t>(dead)];
  if (flag != 0) return;
  flag = 1;
  any_healed_ = true;
  ++stats_.heals;
}

void Runtime::unheal(core::NodeId node) {
  if (sharded_ != nullptr) {
    sharded_->post_serial([this, node] { apply_unheal(node); });
    return;
  }
  apply_unheal(node);
}

void Runtime::apply_unheal(core::NodeId node) {
  if (injector_ == nullptr || node < 0 || node >= num_nodes()) return;
  healed_[static_cast<std::size_t>(node)] = 0;
  first_hop_timeouts_[static_cast<std::size_t>(node)] = 0;
  any_healed_ = false;
  for (const char h : healed_) {
    if (h != 0) {
      any_healed_ = true;
      break;
    }
  }
}

core::NodeId Runtime::next_hop_for(core::NodeId src, core::NodeId dst) {
  const core::NodeId hop = topology().next_hop(src, dst);
  if (!any_healed_ || hop == dst ||
      healed_[static_cast<std::size_t>(hop)] == 0) {
    return hop;
  }
  // The dimension-order hop is routed around: dedicate direct buffers to
  // the final target instead. The target executes without forwarding, so
  // the overlay introduces no hold-and-wait edge (deadlock freedom) and
  // strictly fewer forwards than the severed route (bound preserved).
  credits(src).ensure_edge(dst);
  ++stats().healed_reroutes;
  return dst;
}

void Runtime::note_first_hop_timeout(core::NodeId hop) {
  if (sharded_ != nullptr) {
    sharded_->post_serial([this, hop] { apply_first_hop_timeout(hop); });
    return;
  }
  apply_first_hop_timeout(hop);
}

void Runtime::apply_first_hop_timeout(core::NodeId hop) {
  if (hop < 0 || hop >= num_nodes()) return;
  int& n = first_hop_timeouts_[static_cast<std::size_t>(hop)];
  if (++n >= cfg_.armci.heal_timeout_threshold && cfg_.armci.self_heal) {
    apply_heal_around(hop);
  }
}

void Runtime::note_first_hop_ok(core::NodeId hop) {
  if (hop < 0 || hop >= num_nodes()) return;
  if (sharded_ != nullptr) {
    sharded_->post_serial([this, hop] {
      first_hop_timeouts_[static_cast<std::size_t>(hop)] = 0;
    });
    return;
  }
  first_hop_timeouts_[static_cast<std::size_t>(hop)] = 0;
}

void Runtime::reclaim_lease(core::NodeId holder, core::NodeId receiver,
                            Priority cls) {
  if (!cfg_.armci.lease_reclaim) return;  // chaos knob: leak instead
  CreditBank* bank = credit_banks_[static_cast<std::size_t>(holder)].get();
  Runtime* rt = this;
  auto release = [rt, bank, receiver, cls] {
    bank->release(receiver, cls);
    ++rt->stats().credits_reclaimed;
  };
  // The bank belongs to `holder`, which may live on another shard (or
  // worker thread) than the caller: route the delayed release through
  // the transport to its node. On the legacy engine this reduces to the
  // plain schedule_after the code used before the seam existed.
  transport_->post_after(static_cast<int>(holder),
                         cfg_.armci.lease_reclaim_delay,
                         std::move(release));
}

RequestPtr Runtime::clone_request(const Request& r) {
  RequestPtr c = request_pool().acquire();
  c->id = r.id;  // shared sequence number: the dedup key
  c->op = r.op;
  c->origin_proc = r.origin_proc;
  c->origin_node = r.origin_node;
  c->target_proc = r.target_proc;
  c->target_node = r.target_node;
  c->attempt = r.attempt;
  c->cls = r.cls;
  // The flag marks "this logical op holds a window slot"; every copy
  // carries it so whichever response completes first frees the slot.
  c->window_slot_taken = r.window_slot_taken;
  c->addr = r.addr;
  c->acc_type = r.acc_type;
  c->scale = r.scale;
  c->imm = r.imm;
  c->mutex_id = r.mutex_id;
  c->segs = r.segs;
  c->strided = r.strided;
  c->data = r.data;
  c->response_future = r.response_future;  // shared completion state
  return c;
}

void Runtime::send_request_msg(RequestPtr r, core::NodeId src,
                               core::NodeId dst, std::int64_t wire_bytes,
                               net::Network::StreamKey stream) {
  Cht& cht_dst = cht(dst);
  if (threads_ != nullptr) {
    // Real thread hand-off: the request crosses as a posted closure and
    // the target's worker submits it to its own CHT. Wire latency is
    // whatever the host's queues make it (wall-clock, not modeled).
    RequestPtr rr = std::move(r);
    transport_->post(static_cast<int>(dst), [&cht_dst, rr]() mutable {
      cht_dst.submit(std::move(rr));
    });
    return;
  }
  // Locks are exempt from faults end to end (lock traffic is modeled
  // reliable: a replayed grant would corrupt the waiter queue), as are
  // intra-node deliveries (shared memory, not the wire).
  if (!faults_armed() || src == dst || r->op == OpCode::kLock ||
      r->op == OpCode::kUnlock) {
    RequestPtr rr = std::move(r);
    network_.deliver(src, dst, wire_bytes, stream,
                     [&cht_dst, rr]() mutable {
      cht_dst.submit(std::move(rr));
    });
    return;
  }
  const bool forced = network_.edge_severed(src, dst) || node_down(dst);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kRequest);
  }
  if (forced || f.drop) {
    ++stats().msgs_dropped;
    // The hop's buffer-credit lease dies with the message; reclaim it so
    // flow control recovers. The op itself is recovered by the origin's
    // retry watchdog (its RequestPtr copy keeps the request alive).
    if (r->hop_credit_taken) reclaim_lease(src, dst, r->cls);
    return;
  }
  if (f.duplicate) {
    ++stats().msgs_duplicated;
    RequestPtr dup = clone_request(*r);
    dup->upstream_node = r->upstream_node;
    dup->upstream_is_cht = r->upstream_is_cht;
    dup->forwards = r->forwards;
    dup->hop_credit_taken = false;  // ghost copy holds no lease
    RequestPtr dd = std::move(dup);
    network_.deliver(src, dst, wire_bytes, stream,
                     [&cht_dst, dd]() mutable {
      cht_dst.submit(std::move(dd));
    });
  }
  if (f.delay > 0) ++stats().msgs_delayed;
  RequestPtr rr = std::move(r);
  network_.deliver_delayed(src, dst, wire_bytes, stream, f.delay,
                           [&cht_dst, rr]() mutable {
    cht_dst.submit(std::move(rr));
  });
}

void Runtime::send_ack_msg(core::NodeId from, core::NodeId upstream,
                           Priority cls) {
  const ArmciParams& p = cfg_.armci;
  CreditBank& bank = credits(upstream);
  const core::NodeId self = from;
  ++stats().acks;
  if (threads_ != nullptr) {
    // The credit returns on the upstream holder's own worker — the bank
    // (and any parked acquire waiter it resumes) is confined there.
    transport_->post(static_cast<int>(upstream),
                     [&bank, self, cls] { bank.release(self, cls); });
    return;
  }
  if (!faults_armed()) {
    network_.deliver(from, upstream, p.ack_bytes, cht_stream(from),
                     [&bank, self, cls] { bank.release(self, cls); });
    return;
  }
  const bool forced =
      network_.edge_severed(from, upstream) || node_down(upstream);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kAck);
  }
  if (forced || f.drop) {
    ++stats().msgs_dropped;
    // A lost ack strands the lease at the upstream holder; reclaim it
    // (or, with lease_reclaim off, leak it — the validate death test).
    reclaim_lease(upstream, from, cls);
    return;
  }
  if (f.delay > 0) ++stats().msgs_delayed;
  network_.deliver_delayed(from, upstream, p.ack_bytes, cht_stream(from),
                           f.delay,
                           [&bank, self, cls] { bank.release(self, cls); });
}

void Runtime::send_response_msg(RequestPtr req, Response resp,
                                core::NodeId from,
                                std::int64_t wire_bytes) {
  ++stats().responses;
  const core::NodeId dst = req->origin_node;
  const OpCode op = req->op;
  Runtime* rt = this;
  auto complete = [rt, req = std::move(req),
                   resp = std::move(resp)]() mutable {
    // Origin-side completion gate: the first response fulfils the op
    // (and lets the reconfigure quiesce proceed); late duplicates —
    // from retries or duplicated requests — are absorbed here. Runs at
    // the origin node, the same context that issued the op, so the
    // in-flight counter moves within one shard slot.
    if (req->response_future->ready()) {
      ++rt->stats().dup_suppressed;
      return;
    }
    rt->note_request_completed();
    // Endpoint congestion: the logical op's window slot (taken at issue,
    // carried by every retry/duplicate copy) frees exactly once, here at
    // the first completion, feeding the piggybacked queue depth into the
    // per-target AIMD window.
    if (req->window_slot_taken &&
        rt->congestion(req->origin_node)
            .complete(req->target_node, resp.queue_backlog)) {
      ++rt->stats().window_shrinks;
    }
    req->response_future->set(std::move(resp));
  };
  if (threads_ != nullptr) {
    // Completion runs at the origin's worker: the future, congestion
    // window, and in-flight counter it touches all live there.
    transport_->post(static_cast<int>(dst), std::move(complete));
    return;
  }
  if (!faults_armed() || from == dst || op == OpCode::kLock ||
      op == OpCode::kUnlock) {
    network_.deliver(from, dst, wire_bytes, cht_stream(from),
                     std::move(complete));
    return;
  }
  const bool forced = network_.edge_severed(from, dst) || node_down(dst);
  sim::FaultInjector::MsgFault f{};
  if (!forced) {
    f = injector_->sample_message(sim::FaultInjector::MsgClass::kResponse);
  }
  if (forced || f.drop) {
    ++stats().msgs_dropped;  // the origin's watchdog re-issues
    return;
  }
  if (f.delay > 0) ++stats().msgs_delayed;
  network_.deliver_delayed(from, dst, wire_bytes, cht_stream(from),
                           f.delay, std::move(complete));
}

void Runtime::arm_retry_watchdog(const RequestPtr& r) {
  const core::NodeId first_hop =
      next_hop_for(r->origin_node, r->target_node);
  spawn_task(retry_watchdog(r, *r->response_future, first_hop));
}

sim::Co<void> Runtime::retry_watchdog(RequestPtr r,
                                      sim::Future<Response> fut,
                                      core::NodeId first_hop) {
  const ArmciParams& p = cfg_.armci;
  sim::TimeNs timeout = p.retry_timeout;
  for (int attempt = 1; attempt <= p.retry_max_attempts; ++attempt) {
    co_await sim::Sleep(engine(), timeout);
    if (fut.ready()) {
      note_first_hop_ok(first_hop);
      co_return;
    }
    ++stats().retries;
    tracer().record(TraceKind::kRetry, r->origin_proc,
                    engine().now() - timeout, timeout);
    note_first_hop_timeout(first_hop);
    RequestPtr copy = clone_request(*r);
    copy->attempt = attempt;
    spawn_task(reissue(std::move(copy)));
    timeout = std::min(
        static_cast<sim::TimeNs>(static_cast<double>(timeout) *
                                 p.retry_backoff),
        p.retry_backoff_cap);
  }
  co_await sim::Sleep(engine(), timeout);
  if (fut.ready()) {
    note_first_hop_ok(first_hop);
    co_return;
  }
  VTOPO_CHECK_ALWAYS(false,
                     "retry attempts exhausted: request completion lost");
}

sim::Co<void> Runtime::reissue(RequestPtr r) {
  const ArmciParams& p = cfg_.armci;
  // Note: no reconfiguration fence here. The logical op was admitted on
  // its first issue and the quiesce loop is waiting for its completion;
  // parking the retry at the fence would deadlock the quiesce.
  co_await sim::Sleep(engine(), p.proc_op_overhead);
  if (r->response_future->ready()) co_return;  // completed while asleep
  const core::NodeId origin = r->origin_node;
  const net::Network::StreamKey stream = proc_stream(r->origin_proc);
  const std::int64_t wire = p.request_header_bytes + r->payload_bytes();
  const core::NodeId hop = next_hop_for(origin, r->target_node);
  CreditBank& bank = credits(origin);
  const sim::TimeNs t0 = engine().now();
  co_await bank.acquire(hop, r->cls);
  const sim::TimeNs blocked = engine().now() - t0;
  bank.add_blocked(blocked);
  stats().credit_blocked_ns += blocked;
  if (r->response_future->ready()) {
    bank.release(hop, r->cls);  // raced with a late response: hand it back
    co_return;
  }
  r->upstream_node = origin;
  r->upstream_is_cht = false;
  r->hop_credit_taken = true;
  send_request_msg(std::move(r), origin, hop, wire, stream);
}

sim::Co<bool> Runtime::reconfigure(core::TopologyKind to,
                                   ReconfigMode mode) {
  VTOPO_CHECK_ALWAYS(!reconfig_active_,
                     "reentrant reconfigure(): one at a time");
  // Sharded: the coroutine must live on the global pseudo-node (drive it
  // with spawn_task() from the main thread) — it mutates every node's
  // credit bank and the topology, which is only safe between windows.
  assert(sharded_ == nullptr || !sim::shard_context().parallel);
  // The remap mutates every node's credit bank and the shared topology;
  // on real threads there is no between-windows phase where that is
  // safe. Refuse (same contract as an impossible target shape).
  if (threads_ != nullptr) co_return false;
  if (to == topology().kind()) co_return false;
  // Refuse instead of throwing: Co promises terminate on an escaped
  // exception (sim actors have no one to rethrow to).
  if (to == core::TopologyKind::kHypercube &&
      !core::is_power_of_two(cfg_.num_nodes)) {
    co_return false;
  }
  const ArmciParams& p = cfg_.armci;
  const sim::TimeNs t0 = eng_->now();
  ReconfigReport rep;
  rep.from = topology().kind();
  rep.to = to;
  rep.mode = mode;

  // ---- Quiesce: fence new CHT-mediated ops, drain in-flight ones
  // (requests, forwards, credit acks, credit waiters). A bounded poll
  // count turns the one pathological non-draining pattern (a lock
  // holder parked at the fence while its waiter's request sits in the
  // target's lock queue) into a diagnosable abort instead of a hang.
  constexpr std::int64_t kMaxQuiescePolls = 10'000'000;
  reconfig_active_ = true;
  while (!request_path_quiescent()) {
    ++rep.quiesce_polls;
    VTOPO_CHECK_ALWAYS(rep.quiesce_polls <= kMaxQuiescePolls,
                       "reconfigure quiesce did not drain (CHT-mediated "
                       "op issued while holding a lock?)");
    co_await sim::Sleep(*eng_, p.reconfig_poll);
  }
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent at reconfiguration");
  }
  VTOPO_CHECK_ALWAYS(inflight_requests() == 0,
                     "request in flight at reconfiguration");
  const sim::TimeNs t_quiesced = eng_->now();

  // ---- Plan the transition; under VTOPO_VALIDATE, verify the ordered
  // build -> switch -> teardown schedule keeps every intermediate
  // buffer-dependency graph acyclic before touching any bank.
  core::VirtualTopology next =
      core::VirtualTopology::make(to, cfg_.num_nodes, cfg_.policy);
  const core::RemapPlan plan = core::plan_remap(topology(), next);
  [[maybe_unused]] const core::RemapSchedule sched =
      core::plan_schedule(plan);
#if VTOPO_VALIDATE_ENABLED
  {
    const core::TransitionCheck check =
        core::verify_transition(topology(), next, sched);
    VTOPO_CHECK_ALWAYS(check.ok(), "unsafe topology transition schedule");
  }
#endif

  // ---- Execute: remap every node's credit bank from the delta.
  std::int64_t built = 0;
  std::int64_t torn = 0;
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    CreditBank& bank = *credit_banks_[static_cast<std::size_t>(n)];
    const CreditBank::RemapStats rs =
        mode == ReconfigMode::kIncremental
            ? bank.apply_remap(next.neighbors(n))
            : bank.rebuild(next.neighbors(n));
    rep.pools_kept += rs.kept;
    built += rs.added;
    torn += rs.removed;
  }
  rep.pools_added = built;
  rep.pools_removed = torn;
  const std::int64_t bytes_per_pool = credits_per_edge() * p.buffer_bytes;
  rep.bytes_allocated = built * bytes_per_pool;
  rep.bytes_released = torn * bytes_per_pool;
  co_await sim::Sleep(*eng_, p.reconfig_admin +
                                 p.reconfig_edge_build * built +
                                 p.reconfig_edge_teardown * torn);
  topo_mgr_.install(std::move(next), eng_->now());

  rep.epoch = topo_mgr_.epoch();
  rep.quiesce_ns = t_quiesced - t0;
  rep.remap_ns = eng_->now() - t_quiesced;
  ++stats_.reconfigurations;
  stats_.reconfig_quiesce_ns += rep.quiesce_ns;
  stats_.reconfig_remap_ns += rep.remap_ns;
  tracer_.record(TraceKind::kReconfigure, /*proc=*/-1, t0,
                 eng_->now() - t0);

  // ---- Resume ops parked at the fence, in FIFO issue order (via the
  // event queue, which is FIFO at equal timestamps — deterministic).
  reconfig_active_ = false;
  rep.waiters_resumed =
      static_cast<std::int64_t>(reconfig_waiters_.size());
  std::vector<FenceWaiter> waiters;
  waiters.swap(reconfig_waiters_);
  for (const FenceWaiter& w : waiters) {
    if (sharded_ != nullptr) {
      // Resume on the node that parked: exact insert at the current
      // global time (the coroutine is a proc body — it must continue on
      // its own shard).
      sharded_->schedule_on_node(w.node, eng_->now(),
                                 [h = w.h] { h.resume(); });
    } else {
      eng_->schedule_after(0, [h = w.h] { h.resume(); });
    }
  }
  last_reconfig_ = rep;
  co_return true;
}

void Runtime::park_at_fence(std::coroutine_handle<> h) {
  if (sharded_ != nullptr) {
    // Record through the serial phase: concurrent parks from several
    // shards merge in (time, stamp) order, giving the same FIFO at
    // every shard count.
    const auto node = static_cast<std::int32_t>(sim::current_node());
    sharded_->post_serial([this, h, node] {
      reconfig_waiters_.push_back(FenceWaiter{h, node});
    });
    return;
  }
  reconfig_waiters_.push_back(FenceWaiter{h, -1});
}

bool Runtime::run_for(sim::TimeNs deadline) {
  if (sharded_ != nullptr) {
    sync_slot_tracers();
    sharded_->run_until(deadline);
    fold_shard_state();
  } else if (threads_ != nullptr) {
    // Wall-clock workers have no replayable notion of "stop at t":
    // drive to quiescence instead (deadline ignored by design).
    sync_slot_tracers();
    transport_->drive();
    fold_slot_counters();
  } else {
    eng_->run_until(deadline);
  }
  return live_tasks() == 0;
}

sim::Co<void> Runtime::barrier_wait() {
  const ArmciParams& p = cfg_.armci;
  if (threads_ != nullptr) {
    // Real-thread rendezvous: arrivals from every worker meet under one
    // mutex; the last arrival fulfils all futures outside the lock (a
    // realtime set() posts each resume to its awaiting node — including
    // the last arrival's own, which it then consumes without
    // suspending). No modeled tree latency: the barrier costs whatever
    // the host threads cost.
    sim::Future<int> fut(engine());
    std::vector<sim::Future<int>> futs;
    bool last = false;
    {
      std::lock_guard<std::mutex> g(threads_->coll_mu());
      barrier_futures_.push_back(fut);
      if (++barrier_arrived_ == num_procs()) {
        futs = std::move(barrier_futures_);
        barrier_futures_.clear();
        barrier_arrived_ = 0;
        last = true;
      }
    }
    if (last) {
      for (auto& f : futs) f.set(0);
    }
    co_await fut;
    co_return;
  }
  if (sharded_ != nullptr) {
    // Sharded rendezvous: arrivals funnel through the serial phase in
    // (time, stamp) order; the last arrival computes the same
    // tree-latency the legacy path does from its own arrival instant
    // and fulfils every future as one global event. Each future's
    // owner is the arriving proc's node, so resumes land back on the
    // right shards at the exact release time.
    sim::Future<int> fut(engine());
    const sim::TimeNs tc = sharded_->context_now();
    sim::ShardedEngine* sh = sharded_.get();
    Runtime* rt = this;
    sh->post_serial([rt, sh, fut, tc]() mutable {
      rt->barrier_futures_.push_back(std::move(fut));
      if (++rt->barrier_arrived_ == rt->num_procs()) {
        const int levels = static_cast<int>(std::ceil(
            std::log2(static_cast<double>(rt->num_procs()))));
        const sim::TimeNs latency =
            rt->cfg_.armci.barrier_base +
            rt->cfg_.armci.barrier_per_level * std::max(levels, 1);
        std::vector<sim::Future<int>> futs =
            std::move(rt->barrier_futures_);
        rt->barrier_futures_.clear();
        rt->barrier_arrived_ = 0;
        sh->schedule_global_at(tc + latency,
                               [futs = std::move(futs)]() mutable {
          for (auto& f : futs) f.set(0);
        });
      }
    });
    co_await fut;
    co_return;
  }
  barrier_futures_.emplace_back(*eng_);
  sim::Future<int> fut = barrier_futures_.back();
  if (++barrier_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    const sim::TimeNs latency =
        p.barrier_base + p.barrier_per_level * std::max(levels, 1);
    std::vector<sim::Future<int>> futs = std::move(barrier_futures_);
    barrier_futures_.clear();
    barrier_arrived_ = 0;
    for (auto& f : futs) {
      eng_->schedule_after(latency, [f]() mutable { f.set(0); });
    }
  }
  co_await fut;
}

sim::Co<double> Runtime::allreduce_sum(double value) {
  const ArmciParams& p = cfg_.armci;
  if (threads_ != nullptr) {
    // Like barrier_wait; the summation order is arrival order, which is
    // nondeterministic here — float totals can differ between runs by
    // rounding (callers compare with a tolerance, not bytes).
    sim::Future<double> fut(engine());
    std::vector<sim::Future<double>> futs;
    double total = 0.0;
    bool last = false;
    {
      std::lock_guard<std::mutex> g(threads_->coll_mu());
      reduce_sum_ += value;
      reduce_futures_.push_back(fut);
      if (++reduce_arrived_ == num_procs()) {
        total = reduce_sum_;
        futs = std::move(reduce_futures_);
        reduce_futures_.clear();
        reduce_arrived_ = 0;
        reduce_sum_ = 0.0;
        last = true;
      }
    }
    if (last) {
      for (auto& f : futs) f.set(total);
    }
    const double res = co_await fut;
    co_return res;
  }
  if (sharded_ != nullptr) {
    // Like barrier_wait, but the serial-phase arrival order also fixes
    // the floating-point summation order — (time, stamp), independent
    // of shard count and host interleaving.
    sim::Future<double> fut(engine());
    const sim::TimeNs tc = sharded_->context_now();
    sim::ShardedEngine* sh = sharded_.get();
    Runtime* rt = this;
    sh->post_serial([rt, sh, fut, tc, value]() mutable {
      rt->reduce_sum_ += value;
      rt->reduce_futures_.push_back(std::move(fut));
      if (++rt->reduce_arrived_ == rt->num_procs()) {
        const int levels = static_cast<int>(std::ceil(
            std::log2(static_cast<double>(rt->num_procs()))));
        const sim::TimeNs latency =
            rt->cfg_.armci.barrier_base +
            2 * rt->cfg_.armci.barrier_per_level * std::max(levels, 1);
        const double total = rt->reduce_sum_;
        std::vector<sim::Future<double>> futs =
            std::move(rt->reduce_futures_);
        rt->reduce_futures_.clear();
        rt->reduce_arrived_ = 0;
        rt->reduce_sum_ = 0.0;
        sh->schedule_global_at(
            tc + latency, [futs = std::move(futs), total]() mutable {
              for (auto& f : futs) f.set(total);
            });
      }
    });
    const double res = co_await fut;
    co_return res;
  }
  reduce_sum_ += value;
  reduce_futures_.emplace_back(*eng_);
  sim::Future<double> fut = reduce_futures_.back();
  if (++reduce_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    // Reduction + broadcast: two tree traversals.
    const sim::TimeNs latency =
        p.barrier_base + 2 * p.barrier_per_level * std::max(levels, 1);
    const double total = reduce_sum_;
    std::vector<sim::Future<double>> futs = std::move(reduce_futures_);
    reduce_futures_.clear();
    reduce_arrived_ = 0;
    reduce_sum_ = 0.0;
    for (auto& f : futs) {
      eng_->schedule_after(latency,
                           [f, total]() mutable { f.set(total); });
    }
  }
  const double result = co_await fut;
  co_return result;
}

}  // namespace vtopo::armci
