#include "armci/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "armci/cht.hpp"
#include "armci/proc.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

Runtime::Runtime(sim::Engine& eng, Config cfg)
    : eng_(&eng),
      cfg_(cfg),
      memory_(cfg.num_nodes * cfg.procs_per_node, cfg.segment_bytes),
      topology_(cfg.custom_shape
                    ? core::VirtualTopology::custom(
                          cfg.topology, *cfg.custom_shape, cfg.num_nodes,
                          cfg.policy)
                    : core::VirtualTopology::make(cfg.topology,
                                                  cfg.num_nodes,
                                                  cfg.policy)),
      network_(eng, cfg.num_nodes, cfg.net, cfg.placement, cfg.seed) {
  chts_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  credit_banks_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  for (core::NodeId n = 0; n < cfg.num_nodes; ++n) {
    chts_.push_back(std::make_unique<Cht>(*this, n));
    credit_banks_.push_back(std::make_unique<CreditBank>(
        eng, credits_per_edge(), topology_.neighbors(n)));
  }
  procs_.reserve(static_cast<std::size_t>(num_procs()));
  for (ProcId p = 0; p < num_procs(); ++p) {
    procs_.push_back(std::make_unique<Proc>(*this, p));
  }
  for (auto& cht : chts_) cht->start();
}

Runtime::~Runtime() {
  // Let CHT loops exit so their coroutine frames are reclaimed; safe
  // even after run_all() (stop is idempotent via the poison drain).
  if (!chts_stopped_) {
    stop_chts();
  }
}

void Runtime::stop_chts() {
  for (auto& cht : chts_) cht->stop();
  eng_->run();
  chts_stopped_ = true;
}

Proc& Runtime::proc(ProcId p) {
  assert(p >= 0 && p < num_procs());
  return *procs_[static_cast<std::size_t>(p)];
}

Cht& Runtime::cht(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *chts_[static_cast<std::size_t>(n)];
}

CreditBank& Runtime::credits(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *credit_banks_[static_cast<std::size_t>(n)];
}

void Runtime::spawn(ProcId p, std::function<sim::Co<void>(Proc&)> program) {
  programs_.push_back(std::move(program));
  sim::spawn(programs_.back()(proc(p)), &live_);
}

void Runtime::spawn_all(const std::function<sim::Co<void>(Proc&)>& program) {
  for (ProcId p = 0; p < num_procs(); ++p) spawn(p, program);
}

void Runtime::spawn_task(sim::Co<void> task) {
  sim::spawn(std::move(task), nullptr);
}

void Runtime::run_all() {
  eng_->run();
  if (live_ != 0) throw DeadlockError(live_);
  stop_chts();
#if VTOPO_VALIDATE_ENABLED
  validate_quiescent();
#endif
}

void Runtime::validate_quiescent() {
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent after run");
  }
  request_pool_.check_drained("request leaked past shutdown");
  VTOPO_CHECK_ALWAYS(
      stats_.max_forwards_seen <=
          static_cast<std::uint64_t>(topology_.max_forwards()),
      "request forwarded past the topology's max-forwards bound");
}

bool Runtime::run_for(sim::TimeNs deadline) {
  eng_->run_until(deadline);
  return live_ == 0;
}

sim::Co<void> Runtime::barrier_wait() {
  const ArmciParams& p = cfg_.armci;
  barrier_futures_.emplace_back(*eng_);
  sim::Future<int> fut = barrier_futures_.back();
  if (++barrier_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    const sim::TimeNs latency =
        p.barrier_base + p.barrier_per_level * std::max(levels, 1);
    std::vector<sim::Future<int>> futs = std::move(barrier_futures_);
    barrier_futures_.clear();
    barrier_arrived_ = 0;
    for (auto& f : futs) {
      eng_->schedule_after(latency, [f]() mutable { f.set(0); });
    }
  }
  co_await fut;
}

sim::Co<double> Runtime::allreduce_sum(double value) {
  const ArmciParams& p = cfg_.armci;
  reduce_sum_ += value;
  reduce_futures_.emplace_back(*eng_);
  sim::Future<double> fut = reduce_futures_.back();
  if (++reduce_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    // Reduction + broadcast: two tree traversals.
    const sim::TimeNs latency =
        p.barrier_base + 2 * p.barrier_per_level * std::max(levels, 1);
    const double total = reduce_sum_;
    std::vector<sim::Future<double>> futs = std::move(reduce_futures_);
    reduce_futures_.clear();
    reduce_arrived_ = 0;
    reduce_sum_ = 0.0;
    for (auto& f : futs) {
      eng_->schedule_after(latency,
                           [f, total]() mutable { f.set(total); });
    }
  }
  const double result = co_await fut;
  co_return result;
}

}  // namespace vtopo::armci
