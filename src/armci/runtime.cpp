#include "armci/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "armci/cht.hpp"
#include "armci/proc.hpp"
#include "core/coords.hpp"
#include "core/remap.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

Runtime::Runtime(sim::Engine& eng, Config cfg)
    : eng_(&eng),
      cfg_(cfg),
      memory_(cfg.num_nodes * cfg.procs_per_node, cfg.segment_bytes),
      topo_mgr_(cfg.custom_shape
                    ? core::VirtualTopology::custom(
                          cfg.topology, *cfg.custom_shape, cfg.num_nodes,
                          cfg.policy)
                    : core::VirtualTopology::make(cfg.topology,
                                                  cfg.num_nodes,
                                                  cfg.policy)),
      network_(eng, cfg.num_nodes, cfg.net, cfg.placement, cfg.seed) {
  chts_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  credit_banks_.reserve(static_cast<std::size_t>(cfg.num_nodes));
  for (core::NodeId n = 0; n < cfg.num_nodes; ++n) {
    chts_.push_back(std::make_unique<Cht>(*this, n));
    credit_banks_.push_back(std::make_unique<CreditBank>(
        eng, credits_per_edge(), topology().neighbors(n)));
  }
  procs_.reserve(static_cast<std::size_t>(num_procs()));
  for (ProcId p = 0; p < num_procs(); ++p) {
    procs_.push_back(std::make_unique<Proc>(*this, p));
  }
  for (auto& cht : chts_) cht->start();
}

Runtime::~Runtime() {
  // Let CHT loops exit so their coroutine frames are reclaimed; safe
  // even after run_all() (stop is idempotent via the poison drain).
  if (!chts_stopped_) {
    stop_chts();
  }
}

void Runtime::stop_chts() {
  for (auto& cht : chts_) cht->stop();
  eng_->run();
  chts_stopped_ = true;
}

Proc& Runtime::proc(ProcId p) {
  assert(p >= 0 && p < num_procs());
  return *procs_[static_cast<std::size_t>(p)];
}

Cht& Runtime::cht(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *chts_[static_cast<std::size_t>(n)];
}

CreditBank& Runtime::credits(core::NodeId n) {
  assert(n >= 0 && n < num_nodes());
  return *credit_banks_[static_cast<std::size_t>(n)];
}

void Runtime::spawn(ProcId p, std::function<sim::Co<void>(Proc&)> program) {
  programs_.push_back(std::move(program));
  sim::spawn(programs_.back()(proc(p)), &live_);
}

void Runtime::spawn_all(const std::function<sim::Co<void>(Proc&)>& program) {
  for (ProcId p = 0; p < num_procs(); ++p) spawn(p, program);
}

void Runtime::spawn_task(sim::Co<void> task) {
  sim::spawn(std::move(task), nullptr);
}

void Runtime::run_all() {
  eng_->run();
  if (live_ != 0) throw DeadlockError(live_);
  stop_chts();
#if VTOPO_VALIDATE_ENABLED
  validate_quiescent();
#endif
}

void Runtime::validate_quiescent() {
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent after run");
  }
  request_pool_.check_drained("request leaked past shutdown");
  VTOPO_CHECK_ALWAYS(inflight_requests_ == 0,
                     "issued request never completed at its origin");
  // Check the cumulative forwarding depth against the loosest bound of
  // any topology generation installed during the run: after a live
  // reconfiguration to a shallower topology, hops that were legal under
  // the earlier generation remain in the counter.
  VTOPO_CHECK_ALWAYS(
      stats_.max_forwards_seen <=
          static_cast<std::uint64_t>(topo_mgr_.max_forwards_bound()),
      "request forwarded past the topology's max-forwards bound");
}

bool Runtime::request_path_quiescent() const {
  if (inflight_requests_ != 0) return false;
  for (const auto& bank : credit_banks_) {
    if (!bank->idle()) return false;
  }
  return true;
}

sim::Co<bool> Runtime::reconfigure(core::TopologyKind to,
                                   ReconfigMode mode) {
  VTOPO_CHECK_ALWAYS(!reconfig_active_,
                     "reentrant reconfigure(): one at a time");
  if (to == topology().kind()) co_return false;
  // Refuse instead of throwing: Co promises terminate on an escaped
  // exception (sim actors have no one to rethrow to).
  if (to == core::TopologyKind::kHypercube &&
      !core::is_power_of_two(cfg_.num_nodes)) {
    co_return false;
  }
  const ArmciParams& p = cfg_.armci;
  const sim::TimeNs t0 = eng_->now();
  ReconfigReport rep;
  rep.from = topology().kind();
  rep.to = to;
  rep.mode = mode;

  // ---- Quiesce: fence new CHT-mediated ops, drain in-flight ones
  // (requests, forwards, credit acks, credit waiters). A bounded poll
  // count turns the one pathological non-draining pattern (a lock
  // holder parked at the fence while its waiter's request sits in the
  // target's lock queue) into a diagnosable abort instead of a hang.
  constexpr std::int64_t kMaxQuiescePolls = 10'000'000;
  reconfig_active_ = true;
  while (!request_path_quiescent()) {
    ++rep.quiesce_polls;
    VTOPO_CHECK_ALWAYS(rep.quiesce_polls <= kMaxQuiescePolls,
                       "reconfigure quiesce did not drain (CHT-mediated "
                       "op issued while holding a lock?)");
    co_await sim::Sleep(*eng_, p.reconfig_poll);
  }
  for (const auto& bank : credit_banks_) {
    bank->check_quiescent("credit bank not quiescent at reconfiguration");
  }
  VTOPO_CHECK_ALWAYS(inflight_requests_ == 0,
                     "request in flight at reconfiguration");
  const sim::TimeNs t_quiesced = eng_->now();

  // ---- Plan the transition; under VTOPO_VALIDATE, verify the ordered
  // build -> switch -> teardown schedule keeps every intermediate
  // buffer-dependency graph acyclic before touching any bank.
  core::VirtualTopology next =
      core::VirtualTopology::make(to, cfg_.num_nodes, cfg_.policy);
  const core::RemapPlan plan = core::plan_remap(topology(), next);
  [[maybe_unused]] const core::RemapSchedule sched =
      core::plan_schedule(plan);
#if VTOPO_VALIDATE_ENABLED
  {
    const core::TransitionCheck check =
        core::verify_transition(topology(), next, sched);
    VTOPO_CHECK_ALWAYS(check.ok(), "unsafe topology transition schedule");
  }
#endif

  // ---- Execute: remap every node's credit bank from the delta.
  std::int64_t built = 0;
  std::int64_t torn = 0;
  for (core::NodeId n = 0; n < cfg_.num_nodes; ++n) {
    CreditBank& bank = *credit_banks_[static_cast<std::size_t>(n)];
    const CreditBank::RemapStats rs =
        mode == ReconfigMode::kIncremental
            ? bank.apply_remap(next.neighbors(n))
            : bank.rebuild(next.neighbors(n));
    rep.pools_kept += rs.kept;
    built += rs.added;
    torn += rs.removed;
  }
  rep.pools_added = built;
  rep.pools_removed = torn;
  const std::int64_t bytes_per_pool = credits_per_edge() * p.buffer_bytes;
  rep.bytes_allocated = built * bytes_per_pool;
  rep.bytes_released = torn * bytes_per_pool;
  co_await sim::Sleep(*eng_, p.reconfig_admin +
                                 p.reconfig_edge_build * built +
                                 p.reconfig_edge_teardown * torn);
  topo_mgr_.install(std::move(next), eng_->now());

  rep.epoch = topo_mgr_.epoch();
  rep.quiesce_ns = t_quiesced - t0;
  rep.remap_ns = eng_->now() - t_quiesced;
  ++stats_.reconfigurations;
  stats_.reconfig_quiesce_ns += rep.quiesce_ns;
  stats_.reconfig_remap_ns += rep.remap_ns;
  tracer_.record(TraceKind::kReconfigure, /*proc=*/-1, t0,
                 eng_->now() - t0);

  // ---- Resume ops parked at the fence, in FIFO issue order (via the
  // event queue, which is FIFO at equal timestamps — deterministic).
  reconfig_active_ = false;
  rep.waiters_resumed =
      static_cast<std::int64_t>(reconfig_waiters_.size());
  std::vector<std::coroutine_handle<>> waiters;
  waiters.swap(reconfig_waiters_);
  for (const std::coroutine_handle<> h : waiters) {
    eng_->schedule_after(0, [h] { h.resume(); });
  }
  last_reconfig_ = rep;
  co_return true;
}

bool Runtime::run_for(sim::TimeNs deadline) {
  eng_->run_until(deadline);
  return live_ == 0;
}

sim::Co<void> Runtime::barrier_wait() {
  const ArmciParams& p = cfg_.armci;
  barrier_futures_.emplace_back(*eng_);
  sim::Future<int> fut = barrier_futures_.back();
  if (++barrier_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    const sim::TimeNs latency =
        p.barrier_base + p.barrier_per_level * std::max(levels, 1);
    std::vector<sim::Future<int>> futs = std::move(barrier_futures_);
    barrier_futures_.clear();
    barrier_arrived_ = 0;
    for (auto& f : futs) {
      eng_->schedule_after(latency, [f]() mutable { f.set(0); });
    }
  }
  co_await fut;
}

sim::Co<double> Runtime::allreduce_sum(double value) {
  const ArmciParams& p = cfg_.armci;
  reduce_sum_ += value;
  reduce_futures_.emplace_back(*eng_);
  sim::Future<double> fut = reduce_futures_.back();
  if (++reduce_arrived_ == num_procs()) {
    const int levels = static_cast<int>(
        std::ceil(std::log2(static_cast<double>(num_procs()))));
    // Reduction + broadcast: two tree traversals.
    const sim::TimeNs latency =
        p.barrier_base + 2 * p.barrier_per_level * std::max(levels, 1);
    const double total = reduce_sum_;
    std::vector<sim::Future<double>> futs = std::move(reduce_futures_);
    reduce_futures_.clear();
    reduce_arrived_ = 0;
    reduce_sum_ = 0.0;
    for (auto& f : futs) {
      eng_->schedule_after(latency,
                           [f, total]() mutable { f.set(total); });
    }
  }
  const double result = co_await fut;
  co_return result;
}

}  // namespace vtopo::armci
