// Operation-latency tracing.
//
// When enabled on a Runtime, every completed one-sided operation records
// its (simulated) latency into a per-kind series, and optionally into a
// bounded event log. This is how the repository's figures were
// calibrated, and what a downstream user points gnuplot at.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "armci/request.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

/// Categories of traced operations.
enum class TraceKind : std::uint8_t {
  kPut,       ///< contiguous put (direct)
  kGet,       ///< contiguous get (direct)
  kPutV,      ///< vectored put (per chunked request group)
  kGetV,      ///< vectored get
  kAcc,       ///< accumulate
  kFetchAdd,  ///< atomic fetch-&-add
  kSwap,      ///< atomic swap
  kLock,         ///< lock acquisition
  kUnlock,       ///< lock release
  kBarrier,      ///< barrier wait
  kReconfigure,  ///< live topology reconfiguration (quiesce + remap)
  kRetry,        ///< watchdog re-issue of a timed-out request
  // Per-priority-class QoS series (see armci/request.hpp Priority).
  kQueueWaitBulk,      ///< CHT queue wait of a kBulk request
  kQueueWaitNormal,    ///< CHT queue wait of a kNormal request
  kQueueWaitCritical,  ///< CHT queue wait of a kCritical request
  kClassLatBulk,       ///< origin-observed latency, kBulk ops
  kClassLatNormal,     ///< origin-observed latency, kNormal ops
  kClassLatCritical,   ///< origin-observed latency, kCritical ops
};
inline constexpr std::size_t kNumTraceKinds = 18;

/// The queue-wait / class-latency series slot for a priority class.
[[nodiscard]] constexpr TraceKind queue_wait_kind(Priority cls) {
  return static_cast<TraceKind>(
      static_cast<std::size_t>(TraceKind::kQueueWaitBulk) +
      static_cast<std::size_t>(cls));
}
[[nodiscard]] constexpr TraceKind class_latency_kind(Priority cls) {
  return static_cast<TraceKind>(
      static_cast<std::size_t>(TraceKind::kClassLatBulk) +
      static_cast<std::size_t>(cls));
}

[[nodiscard]] const char* to_string(TraceKind k);

/// One recorded operation (only kept when event logging is on).
struct TraceEvent {
  TraceKind kind;
  std::int32_t proc;
  sim::TimeNs start;
  sim::TimeNs latency;
};

class OpTracer {
 public:
  /// Tracing is off (zero overhead beyond a branch) until enabled.
  void enable(bool keep_events = false, std::size_t max_events = 1 << 20) {
    enabled_ = true;
    keep_events_ = keep_events;
    max_events_ = max_events;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TraceKind kind, std::int32_t proc, sim::TimeNs start,
              sim::TimeNs latency) {
    if (!enabled_) return;
    series_[static_cast<std::size_t>(kind)].add(sim::to_us(latency));
    if (keep_events_ && events_.size() < max_events_) {
      events_.push_back(TraceEvent{kind, proc, start, latency});
    }
  }

  [[nodiscard]] const sim::Series& series(TraceKind kind) const {
    return series_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const auto& s : series_) n += s.size();
    return n;
  }

  /// One line per kind: kind count mean_us p50 p95 max.
  [[nodiscard]] std::string summary() const;
  /// CSV: kind,proc,start_ns,latency_ns (needs keep_events).
  [[nodiscard]] std::string events_csv() const;

  /// Mirror another tracer's enable/keep/max settings (per-shard slot
  /// tracers follow the main tracer the workload configured).
  void configure_from(const OpTracer& main) {
    enabled_ = main.enabled_;
    keep_events_ = main.keep_events_;
    max_events_ = main.max_events_;
  }

  /// Steal `other`'s recordings into this tracer (sharded fold), leaving
  /// `other` empty but still configured.
  void merge_from(OpTracer& other) {
    for (std::size_t k = 0; k < kNumTraceKinds; ++k) {
      series_[k].append(other.series_[k]);
      other.series_[k] = sim::Series{};
    }
    events_.insert(events_.end(),
                   std::make_move_iterator(other.events_.begin()),
                   std::make_move_iterator(other.events_.end()));
    other.events_.clear();
  }

  /// Re-establish a shard-count-independent order after merging: samples
  /// sort ascending (percentiles and float sums become order-free) and
  /// events sort by (start, kind, proc, latency), truncated back to the
  /// configured cap.
  void canonicalize() {
    for (auto& s : series_) s.sort_samples();
    std::sort(events_.begin(), events_.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.start != b.start) return a.start < b.start;
                if (a.kind != b.kind) return a.kind < b.kind;
                if (a.proc != b.proc) return a.proc < b.proc;
                return a.latency < b.latency;
              });
    if (events_.size() > max_events_) events_.resize(max_events_);
  }

 private:
  bool enabled_ = false;
  bool keep_events_ = false;
  std::size_t max_events_ = 0;
  std::array<sim::Series, kNumTraceKinds> series_{};
  std::vector<TraceEvent> events_;
};

}  // namespace vtopo::armci
