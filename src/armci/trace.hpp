// Operation-latency tracing.
//
// When enabled on a Runtime, every completed one-sided operation records
// its (simulated) latency into a per-kind series, and optionally into a
// bounded event log. This is how the repository's figures were
// calibrated, and what a downstream user points gnuplot at.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

/// Categories of traced operations.
enum class TraceKind : std::uint8_t {
  kPut,       ///< contiguous put (direct)
  kGet,       ///< contiguous get (direct)
  kPutV,      ///< vectored put (per chunked request group)
  kGetV,      ///< vectored get
  kAcc,       ///< accumulate
  kFetchAdd,  ///< atomic fetch-&-add
  kSwap,      ///< atomic swap
  kLock,         ///< lock acquisition
  kUnlock,       ///< lock release
  kBarrier,      ///< barrier wait
  kReconfigure,  ///< live topology reconfiguration (quiesce + remap)
  kRetry,        ///< watchdog re-issue of a timed-out request
};
inline constexpr std::size_t kNumTraceKinds = 12;

[[nodiscard]] const char* to_string(TraceKind k);

/// One recorded operation (only kept when event logging is on).
struct TraceEvent {
  TraceKind kind;
  std::int32_t proc;
  sim::TimeNs start;
  sim::TimeNs latency;
};

class OpTracer {
 public:
  /// Tracing is off (zero overhead beyond a branch) until enabled.
  void enable(bool keep_events = false, std::size_t max_events = 1 << 20) {
    enabled_ = true;
    keep_events_ = keep_events;
    max_events_ = max_events;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TraceKind kind, std::int32_t proc, sim::TimeNs start,
              sim::TimeNs latency) {
    if (!enabled_) return;
    series_[static_cast<std::size_t>(kind)].add(sim::to_us(latency));
    if (keep_events_ && events_.size() < max_events_) {
      events_.push_back(TraceEvent{kind, proc, start, latency});
    }
  }

  [[nodiscard]] const sim::Series& series(TraceKind kind) const {
    return series_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const auto& s : series_) n += s.size();
    return n;
  }

  /// One line per kind: kind count mean_us p50 p95 max.
  [[nodiscard]] std::string summary() const;
  /// CSV: kind,proc,start_ns,latency_ns (needs keep_events).
  [[nodiscard]] std::string events_csv() const;

 private:
  bool enabled_ = false;
  bool keep_events_ = false;
  std::size_t max_events_ = 0;
  std::array<sim::Series, kNumTraceKinds> series_{};
  std::vector<TraceEvent> events_;
};

}  // namespace vtopo::armci
