#include "armci/request.hpp"

namespace vtopo::armci {

const char* to_string(OpCode op) {
  switch (op) {
    case OpCode::kAcc:
      return "acc";
    case OpCode::kPutV:
      return "put_v";
    case OpCode::kGetV:
      return "get_v";
    case OpCode::kPutS:
      return "put_s";
    case OpCode::kGetS:
      return "get_s";
    case OpCode::kFetchAdd:
      return "fetch_add";
    case OpCode::kSwap:
      return "swap";
    case OpCode::kLock:
      return "lock";
    case OpCode::kUnlock:
      return "unlock";
  }
  return "?";
}

const char* to_string(Priority cls) {
  switch (cls) {
    case Priority::kBulk:
      return "bulk";
    case Priority::kNormal:
      return "normal";
    case Priority::kCritical:
      return "critical";
  }
  return "?";
}

std::int64_t Request::response_data_bytes() const {
  switch (op) {
    case OpCode::kGetV: {
      std::int64_t total = 0;
      for (const auto& s : segs) total += s.bytes;
      return total;
    }
    case OpCode::kGetS:
      return strided.total_bytes();
    case OpCode::kFetchAdd:
    case OpCode::kSwap:
      return 8;
    case OpCode::kAcc:
    case OpCode::kPutV:
    case OpCode::kPutS:
    case OpCode::kLock:
    case OpCode::kUnlock:
      return 0;
  }
  return 0;
}

}  // namespace vtopo::armci
