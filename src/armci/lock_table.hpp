// Flat open-addressing table of remote-mutex lock states.
//
// A CHT resolves (owner process, mutex id) -> LockState on every kLock /
// kUnlock it executes. The red-black map this replaces paid a pointer
// chase per tree level plus a node allocation per new mutex; the flat
// table does one mixed-hash probe into a contiguous slot array. Lock
// handling never erases entries (a mutex that existed once keeps its
// slot), so the table only needs insert-or-find and grow.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "armci/request.hpp"

namespace vtopo::armci {

/// State of one simulated ARMCI mutex.
struct LockState {
  bool held = false;
  ProcId holder = -1;
  std::deque<RequestPtr> waiters;
};

class LockTable {
 public:
  /// State for mutex `mutex_id` owned by process `proc`, default-created
  /// on first touch. The reference is valid until the next get().
  [[nodiscard]] LockState& get(ProcId proc, std::int32_t mutex_id) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      grow();
    }
    const std::uint64_t key = make_key(proc, mutex_id);
    Slot& s = probe(slots_, key);
    if (!s.used) {
      s.used = true;
      s.key = key;
      ++size_;
    }
    return s.state;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    bool used = false;
    LockState state;
  };

  static std::uint64_t make_key(ProcId proc, std::int32_t mutex_id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(proc))
            << 32) |
           static_cast<std::uint32_t>(mutex_id);
  }

  /// splitmix64 finalizer: full-avalanche spread of the packed key.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Linear probe for `key`'s slot (its entry, or the first empty slot).
  static Slot& probe(std::vector<Slot>& slots, std::uint64_t key) {
    const std::size_t mask = slots.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (slots[i].used && slots[i].key != key) {
      i = (i + 1) & mask;
    }
    return slots[i];
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> next(cap);
    for (Slot& s : slots_) {
      if (!s.used) continue;
      Slot& dst = probe(next, s.key);
      assert(!dst.used);
      dst.used = true;
      dst.key = s.key;
      dst.state = std::move(s.state);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace vtopo::armci
