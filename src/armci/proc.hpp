// Application-process API: the public one-sided operation surface.
//
// Mirrors the ARMCI operation families:
//   - contiguous ARMCI_Put/ARMCI_Get  -> put()/get(): fully one-sided on
//     the NIC, never touch a CHT or a request buffer;
//   - ARMCI_AccV/ARMCI_PutV/ARMCI_GetV, strided variants, ARMCI_Rmw,
//     ARMCI_Lock/Unlock -> CHT-mediated requests that travel the virtual
//     topology and consume request buffers at every hop.
//
// All operations are awaitable coroutines completing at the simulated
// instant the real operation would; nb_* variants return a Future for
// overlap. Payloads are real bytes: data lands in GlobalMemory when the
// simulated operation executes, so value semantics (atomicity, lock
// mutual exclusion) are testable.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "armci/memory.hpp"
#include "armci/request.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

class Runtime;

/// One local->remote segment of a vectored put.
struct PutSeg {
  std::span<const std::uint8_t> src;
  std::int64_t target_offset = 0;
};

/// One remote->local segment of a vectored get.
struct GetSeg {
  std::span<std::uint8_t> dst;
  std::int64_t source_offset = 0;
};

/// Aggregates the completion futures of several non-blocking operations
/// (the armci_hdl_t wait-all idiom).
class NbHandle {
 public:
  void add(sim::Future<int> f) { futures_.push_back(std::move(f)); }
  /// True when every added operation has completed (ARMCI_Test).
  [[nodiscard]] bool test() const {
    for (const auto& f : futures_) {
      if (!f.ready()) return false;
    }
    return true;
  }
  /// Await completion of every added operation (ARMCI_Wait).
  [[nodiscard]] sim::Co<void> wait() {
    for (auto& f : futures_) co_await f;
  }
  [[nodiscard]] std::size_t size() const { return futures_.size(); }

 private:
  std::vector<sim::Future<int>> futures_;
};

class Proc {
 public:
  Proc(Runtime& rt, ProcId id);
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] core::NodeId node() const { return node_; }
  [[nodiscard]] Runtime& runtime() { return *rt_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  /// True for the lowest-ranked process on its node.
  [[nodiscard]] bool is_master() const;

  // --- Contiguous one-sided transfers (direct, no CHT) ---------------
  [[nodiscard]] sim::Co<void> put(GAddr dst,
                                  std::span<const std::uint8_t> src);
  [[nodiscard]] sim::Co<void> get(std::span<std::uint8_t> dst, GAddr src);

  // --- CHT-mediated operations (travel the virtual topology) ---------
  /// dst[i] += scale * src[i] executed atomically at the target CHT
  /// (ARMCI_Acc with ARMCI_ACC_DBL / _LNG / _FLT).
  [[nodiscard]] sim::Co<void> acc_f64(GAddr dst,
                                      std::span<const double> src,
                                      double scale = 1.0);
  [[nodiscard]] sim::Co<void> acc_i64(GAddr dst,
                                      std::span<const std::int64_t> src,
                                      std::int64_t scale = 1);
  [[nodiscard]] sim::Co<void> acc_f32(GAddr dst,
                                      std::span<const float> src,
                                      float scale = 1.0F);
  /// Vectored (noncontiguous) put/get; requests are split so each fits
  /// one request buffer, then pipelined.
  [[nodiscard]] sim::Co<void> put_v(ProcId target,
                                    std::span<const PutSeg> segs);
  [[nodiscard]] sim::Co<void> get_v(ProcId target,
                                    std::span<const GetSeg> segs);
  /// 2-D strided transfers, expressed over the vectored path.
  [[nodiscard]] sim::Co<void> put_strided(GAddr dst,
                                          std::int64_t dst_stride,
                                          const std::uint8_t* src,
                                          std::int64_t src_stride,
                                          std::int64_t block_bytes,
                                          std::int64_t count);
  [[nodiscard]] sim::Co<void> get_strided(std::uint8_t* dst,
                                          std::int64_t dst_stride,
                                          GAddr src,
                                          std::int64_t src_stride,
                                          std::int64_t block_bytes,
                                          std::int64_t count);

  /// N-level strided transfers (ARMCI_PutS/GetS/AccS with up to 7
  /// stride levels). `counts[0]` is the contiguous byte count;
  /// `counts[i]` (i >= 1) the repetition count at level i, with strides
  /// `dst_strides[i-1]` / `src_strides[i-1]` (sizes == counts.size()-1).
  [[nodiscard]] sim::Co<void> put_strided_n(
      GAddr dst, std::span<const std::int64_t> dst_strides,
      const std::uint8_t* src, std::span<const std::int64_t> src_strides,
      std::span<const std::int64_t> counts);
  [[nodiscard]] sim::Co<void> get_strided_n(
      std::uint8_t* dst, std::span<const std::int64_t> dst_strides,
      GAddr src, std::span<const std::int64_t> src_strides,
      std::span<const std::int64_t> counts);
  /// Strided double accumulate (ARMCI_AccS, ARMCI_ACC_DBL).
  [[nodiscard]] sim::Co<void> acc_strided_f64(
      GAddr dst, std::span<const std::int64_t> dst_strides,
      const double* src, std::span<const std::int64_t> src_strides,
      std::span<const std::int64_t> counts, double scale = 1.0);
  /// Atomic read-modify-write (ARMCI_Rmw).
  [[nodiscard]] sim::Co<std::int64_t> fetch_add(GAddr counter,
                                                std::int64_t delta);
  [[nodiscard]] sim::Co<std::int64_t> swap(GAddr cell, std::int64_t value);
  /// Remote mutexes (ARMCI_Lock/ARMCI_Unlock): mutex `mutex_id` hosted
  /// by process `owner`.
  [[nodiscard]] sim::Co<void> lock(ProcId owner, std::int32_t mutex_id);
  [[nodiscard]] sim::Co<void> unlock(ProcId owner, std::int32_t mutex_id);

  // --- Non-blocking variants ------------------------------------------
  /// Issue a vectored put and return a completion future.
  sim::Future<int> nb_put_v(ProcId target, std::span<const PutSeg> segs);
  /// Issue an accumulate and return a completion future.
  sim::Future<int> nb_acc_f64(GAddr dst, std::span<const double> src,
                              double scale = 1.0);
  /// Issue a vectored get and return a completion future; the local
  /// destination spans must stay valid until the future is awaited.
  sim::Future<int> nb_get_v(ProcId target, std::span<const GetSeg> segs);
  /// get_v with an owned segment list (safe to use from detached
  /// driver tasks whose caller-side spans may go out of scope).
  [[nodiscard]] sim::Co<void> scatter_get(ProcId target,
                                          std::vector<GetSeg> segs);
  /// Issue one prepared request without awaiting its response (used by
  /// the nb_* driver tasks; exposed for advanced pipelining).
  [[nodiscard]] sim::Co<void> nb_issue(RequestPtr r);

  // --- Synchronization & local work ------------------------------------
  [[nodiscard]] sim::Co<void> barrier();

  // --- Priority classes (QoS) ------------------------------------------
  /// Sticky override: every subsequent CHT-mediated op from this process
  /// is issued at `cls` instead of its op-derived default class
  /// (default_priority). Used by workloads that know a phase's bulk
  /// traffic is latency-insensitive.
  void set_priority(Priority cls) { cls_override_ = cls; }
  /// Return to per-op default classes.
  void clear_priority() { cls_override_.reset(); }
  [[nodiscard]] std::optional<Priority> priority_override() const {
    return cls_override_;
  }

  /// Model `d` of local computation.
  [[nodiscard]] sim::Co<void> compute(sim::TimeNs d);
  /// Memory fence: all issued operations here complete on return of the
  /// blocking calls, so fence only models its own small cost.
  [[nodiscard]] sim::Co<void> fence();

 private:
  friend class Runtime;

  /// Build an op skeleton addressed at `target`.
  [[nodiscard]] RequestPtr make_request(OpCode op, ProcId target);
  /// Attach a completion future to `r` and return it.
  sim::Future<Response> make_future(const RequestPtr& r);
  /// Origin-side issue: op overhead, first-hop credit, wire transfer.
  [[nodiscard]] sim::Co<void> issue_send(RequestPtr r);
  /// issue_send + await response.
  [[nodiscard]] sim::Co<Response> roundtrip(RequestPtr r);
  /// Split vectored segments into buffer-sized requests and issue them
  /// pipelined; `gather_into` scatters response data for gets.
  [[nodiscard]] sim::Co<void> vector_op(OpCode op, ProcId target,
                                        std::vector<RequestPtr> reqs);
  std::vector<RequestPtr> chunk_put(ProcId target, OpCode op,
                                    std::span<const PutSeg> segs,
                                    double scale,
                                    AccType acc_type = AccType::kF64);
  [[nodiscard]] sim::Co<void> acc_bytes(GAddr dst,
                                        std::span<const std::uint8_t> raw,
                                        double scale, AccType type);
  std::vector<RequestPtr> chunk_get(ProcId target,
                                    std::span<const GetSeg> segs);

  Runtime* rt_;
  ProcId id_;
  core::NodeId node_;
  sim::Rng rng_;
  std::optional<Priority> cls_override_;
};

}  // namespace vtopo::armci
