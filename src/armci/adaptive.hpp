// Adaptive topology controller (the tentpole of the reconfiguration
// work): closes the loop between the paper's Sec.-VI selection heuristic
// and the live reconfiguration path.
//
// At workload phase boundaries the application calls
// maybe_reconfigure(), which samples the counters accumulated since the
// previous boundary — CHT-mediated request volume, atomic-op skew from
// the OpTracer (the hot-spot signature of DFT-style counters), forward
// depth, and credit-blocked time — folds them into a WorkloadProfile,
// and asks core::recommend_topology() whether the current topology is
// still the right one. When the recommendation disagrees with the
// installed kind, the controller triggers Runtime::reconfigure().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "armci/runtime.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace vtopo::armci {

struct AdaptiveConfig {
  /// Per-node buffer budget handed to the recommender (MB).
  double buffer_budget_mb = 256.0;
  /// Latency sensitivity handed to the recommender; phased GAS codes
  /// sit toward the blocking fine-grained end.
  double latency_sensitivity = 0.7;
  /// Minimum CHT-mediated requests in a window before the controller
  /// trusts the sample enough to switch.
  std::uint64_t min_window_requests = 32;

  // --- QoS management (see armci/params.hpp QosParams) ---------------
  /// When true, each boundary also picks the next phase's QoS config:
  /// hot-spotted phases (skew >= qos_hotspot_threshold) run `qos_hot`,
  /// everything else `qos_cold`. The switch is applied through the
  /// serial phase (race-free under sharding), so it lands before the
  /// next phase's traffic.
  bool manage_qos = false;
  /// Skew at or above which the upcoming phase counts as hot-spotted.
  double qos_hotspot_threshold = 0.25;
  /// Hot-phase config: QoS on — class-weighted CHT dequeue, reserved
  /// critical credit lane, endpoint congestion windows.
  QosParams qos_hot{.enabled = true};
  /// Cold-phase config: QoS off — pure FIFO, zero scheduling overhead.
  QosParams qos_cold{};
};

class AdaptiveController {
 public:
  /// Counter deltas over one sampling window (phase).
  struct Sample {
    std::uint64_t window_requests = 0;  ///< CHT-mediated requests
    std::uint64_t window_atomics = 0;   ///< fetch-&-add + swap + lock
    double hotspot_fraction = 0.0;      ///< atomics / requests
    double avg_forward_depth = 0.0;     ///< forwards per request
    sim::TimeNs credit_blocked_ns = 0;  ///< sender stall in the window
    std::uint64_t window_retries = 0;   ///< watchdog re-issues (failure
                                        ///< detection feed)
  };

  /// Enables the runtime's OpTracer (per-kind series only) so per-kind
  /// op counts are observable at the next boundary.
  explicit AdaptiveController(Runtime& rt, AdaptiveConfig cfg = {});

  /// Phase-boundary hook: sample the window, consult the recommender,
  /// and reconfigure when it names a different kind. Returns true when
  /// a reconfiguration was executed. Call from exactly one process
  /// (inside a barrier pair) — reconfigure() quiesces globally.
  ///
  /// The just-closed window describes the *previous* phase; for
  /// strictly alternating phases that is exactly the wrong predictor of
  /// the next one. `next_hotspot` lets the application announce the
  /// upcoming phase's skew (e.g. from its own memory of the last
  /// same-kind phase); when provided it overrides the measured window
  /// skew and the min-traffic gate.
  [[nodiscard]] sim::Co<bool> maybe_reconfigure(
      std::optional<double> next_hotspot = std::nullopt);

  [[nodiscard]] const Sample& last_sample() const { return last_sample_; }
  /// Recommender rationale from the most recent boundary.
  [[nodiscard]] const std::string& last_rationale() const {
    return rationale_;
  }
  /// One entry per boundary decision, e.g. "phase window: hotspot=0.48
  /// -> mfcg (switched)".
  [[nodiscard]] const std::vector<std::string>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] int switches() const { return switches_; }
  /// Boundaries at which the QoS config changed (manage_qos only).
  [[nodiscard]] int qos_retunes() const { return qos_retunes_; }
  /// Whether the controller currently has the hot-phase QoS installed.
  [[nodiscard]] bool qos_hot_active() const { return qos_hot_active_; }

 private:
  [[nodiscard]] Sample take_sample();
  /// Pick + install the QoS config for the upcoming phase from `skew`.
  void retune_qos(double skew, std::ostringstream& decision);

  Runtime* rt_;
  AdaptiveConfig cfg_;
  // Counter snapshots at the previous boundary.
  std::uint64_t prev_requests_ = 0;
  std::uint64_t prev_forwards_ = 0;
  std::uint64_t prev_atomics_ = 0;
  sim::TimeNs prev_blocked_ = 0;
  std::uint64_t prev_retries_ = 0;
  Sample last_sample_{};
  std::string rationale_;
  std::vector<std::string> decisions_;
  int switches_ = 0;
  int qos_retunes_ = 0;
  bool qos_hot_active_ = false;
};

}  // namespace vtopo::armci
