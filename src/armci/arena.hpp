// Size-class payload arena for direct-transfer staging buffers.
//
// The direct put/get path stages real bytes in a buffer that must
// outlive the issuing coroutine (data lands in GlobalMemory at the
// simulated arrival instant, inside a network event). That used to be a
// shared_ptr<std::vector<uint8_t>> per transfer — two allocations and an
// atomic control block on every contiguous op. The arena hands out
// recycled chunks from power-of-two size classes instead: a steady-state
// workload reuses the same few chunks forever.
//
// Chunks are owned by a move-only Ref (InlineFn holds move-only
// captures, so a Ref rides inside a network-arrival callback without
// leaving inline storage). Oversized requests fall through to exact-size
// heap chunks that are freed, not parked.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <utility>

#include "sim/sharded_engine.hpp"

namespace vtopo::armci {

class PayloadArena {
  struct Chunk {
    Chunk* next = nullptr;      ///< freelist link while parked
    std::uint32_t cls = 0;      ///< size class; kUnpooled => exact-size
    std::uint32_t pad = 0;
    std::size_t size = 0;       ///< bytes handed out (<= class capacity)
    // payload bytes follow the header
  };

 public:
  static constexpr std::size_t kMinShift = 8;   // 256 B
  static constexpr std::size_t kMaxShift = 20;  // 1 MB
  static constexpr std::size_t kClasses = kMaxShift - kMinShift + 1;
  static constexpr std::uint32_t kUnpooled = ~std::uint32_t{0};

  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  ~PayloadArena() {
    for (Chunk* head : free_) {
      while (head != nullptr) {
        Chunk* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

  /// Move-only owning handle; releases its chunk back to the arena.
  class Ref {
   public:
    Ref() noexcept = default;
    Ref(Ref&& other) noexcept
        : arena_(std::exchange(other.arena_, nullptr)),
          c_(std::exchange(other.c_, nullptr)) {}
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        arena_ = std::exchange(other.arena_, nullptr);
        c_ = std::exchange(other.c_, nullptr);
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { release(); }

    [[nodiscard]] std::uint8_t* data() const noexcept {
      return reinterpret_cast<std::uint8_t*>(c_ + 1);
    }
    [[nodiscard]] std::size_t size() const noexcept {
      return c_ == nullptr ? 0 : c_->size;
    }
    [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
      return {data(), size()};
    }
    [[nodiscard]] std::span<std::uint8_t> mutable_view() const noexcept {
      return {data(), size()};
    }
    explicit operator bool() const noexcept { return c_ != nullptr; }

   private:
    friend class PayloadArena;
    Ref(PayloadArena* a, Chunk* c) noexcept : arena_(a), c_(c) {}
    void release() noexcept {
      if (c_ != nullptr) {
        arena_->recycle(c_);
        arena_ = nullptr;
        c_ = nullptr;
      }
    }
    PayloadArena* arena_ = nullptr;
    Chunk* c_ = nullptr;
  };

  /// A chunk holding exactly `bytes` writable bytes (uninitialized).
  [[nodiscard]] Ref acquire(std::size_t bytes) {
    Chunk* c;
    if (bytes > (std::size_t{1} << kMaxShift)) {
      c = new (::operator new(sizeof(Chunk) + bytes)) Chunk();
      c->cls = kUnpooled;
      ++created_;
    } else {
      const std::uint32_t cls = class_of(bytes);
      if (free_[cls] != nullptr) {
        c = free_[cls];
        free_[cls] = c->next;
        c->next = nullptr;
        ++reused_;
      } else {
        c = new (::operator new(sizeof(Chunk) +
                                (std::size_t{1} << (cls + kMinShift))))
            Chunk();
        c->cls = cls;
        ++created_;
      }
    }
    c->size = bytes;
    return Ref(this, c);
  }

  [[nodiscard]] std::uint64_t created() const { return created_; }
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

  /// Declare this arena shard-homed: a Ref released on another shard's
  /// worker (a put's payload dies at the target node) re-routes its
  /// chunk through the serial phase instead of touching the freelist
  /// concurrently (remote free).
  void bind_shard(sim::ShardedEngine* sharded, int home_shard) {
    sharded_ = sharded;
    home_shard_ = home_shard;
  }

 private:
  void recycle(Chunk* c) noexcept {
    if (c->cls == kUnpooled) {
      ::operator delete(c);  // plain heap free: safe from any thread
      return;
    }
    if (sharded_ != nullptr) {
      const sim::ShardContext& ctx = sim::shard_context();
      if (ctx.parallel && ctx.shard != home_shard_) {
        sharded_->post_serial([this, c] { park(c); });
        return;
      }
    }
    park(c);
  }

  void park(Chunk* c) noexcept {
    c->next = free_[c->cls];
    free_[c->cls] = c;
  }

  static std::uint32_t class_of(std::size_t bytes) {
    std::uint32_t cls = 0;
    while ((std::size_t{1} << (cls + kMinShift)) < bytes) ++cls;
    return cls;
  }

  Chunk* free_[kClasses] = {};
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  sim::ShardedEngine* sharded_ = nullptr;
  int home_shard_ = -1;
};

}  // namespace vtopo::armci
