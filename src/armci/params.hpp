// Tunable parameters of the ARMCI-like runtime model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace vtopo::armci {

/// Criticality-aware QoS knobs for the CHT request path. All of it is
/// off by default: with `enabled == false` every member below is inert
/// and the runtime schedules the exact same events as the pre-QoS tree
/// (figure goldens stay byte-identical). See docs/performance.md § QoS.
struct QosParams {
  /// Master switch for class-aware dequeue + aging + reserved lanes.
  bool enabled = false;

  /// Weighted deficit round-robin quanta (requests per round) for
  /// {bulk, normal, critical}. Critical drains first each round; a class
  /// with backlog never starves because every round grants each
  /// non-empty class its quantum.
  int weight_bulk = 1;
  int weight_normal = 2;
  int weight_critical = 8;
  /// Slack-estimated aging: a request whose queue wait exceeds
  /// `aging_quantum` is treated one class higher per elapsed quantum
  /// (bulk -> normal -> critical), so bulk backlog drains even under a
  /// sustained critical storm. 0 disables aging.
  sim::TimeNs aging_quantum = sim::us(50.0);

  /// Reserved credit lanes: out of each CreditBank pool, this many
  /// credits are usable only by requests of at least kNormal /
  /// kCritical class. A critical request can therefore always acquire a
  /// buffer even when bulk traffic has the shared portion drained.
  /// Both reservations must leave at least one shared credit.
  int reserve_normal = 0;
  int reserve_critical = 1;

  /// Endpoint congestion control (gemini shmem_congestion scheme):
  /// per-target outstanding-request windows at the origin, AIMD-driven
  /// by the queue-depth feedback piggybacked in responses.
  bool congestion = true;
  /// Initial / bounds of the per-target window (outstanding requests).
  int window_init = 8;
  int window_min = 1;
  int window_max = 64;
  /// Multiplicative shrink when a response reports backlog above
  /// `backlog_high`; additive growth (+1) when below `backlog_low`.
  int backlog_high = 16;
  int backlog_low = 4;
  double window_decrease = 0.5;
  /// Critical requests bypass the window entirely (they are the ops the
  /// window exists to protect).
  bool critical_bypasses_window = true;
};

struct ArmciParams {
  /// Request buffers dedicated to each remote process with a direct
  /// edge ("the number of buffers per process is 4", Sec. V-A).
  int buffers_per_process = 4;
  /// Size of each request buffer ("16KB"); CHT-mediated requests whose
  /// header+payload exceed this are split into multiple requests.
  std::int64_t buffer_bytes = 16 * 1024;
  /// Wire overhead of a request header / response header / credit ack.
  std::int64_t request_header_bytes = 64;
  std::int64_t response_header_bytes = 32;
  std::int64_t ack_bytes = 32;
  /// Wire overhead of a direct (RDMA) contiguous put/get descriptor.
  std::int64_t rdma_header_bytes = 40;

  /// CHT base cost to handle one request (dequeue, decode, dispatch).
  sim::TimeNs cht_service = sim::us(0.6);
  /// Extra CHT cost to forward a request to the next hop.
  sim::TimeNs cht_forward_extra = sim::us(0.4);
  /// CHT per-byte touch bandwidth (copy through shared memory).
  double cht_copy_bandwidth = 5.0e9;
  /// Wake-up penalty when a request reaches a CHT that has been idle
  /// longer than `cht_poll_window` (blocked in the network wait instead
  /// of actively polling). Actively-forwarding CHTs skip this — the
  /// mechanism behind the paper's observation that middle-band MFCG
  /// processes get *faster* under higher contention (Sec. V-B2).
  sim::TimeNs cht_wakeup = sim::us(3.0);
  sim::TimeNs cht_poll_window = sim::us(5.0);

  /// Live-reconfiguration cost model (Runtime::reconfigure): fixed
  /// administrative cost per reconfiguration, per-buffer-set build and
  /// teardown costs, and the polling interval of the quiesce loop.
  sim::TimeNs reconfig_admin = sim::us(25.0);
  sim::TimeNs reconfig_edge_build = sim::us(1.5);
  sim::TimeNs reconfig_edge_teardown = sim::us(0.5);
  sim::TimeNs reconfig_poll = sim::us(2.0);

  /// Self-healing request path (active only while a FaultPlan is armed;
  /// see docs/testing.md). Every CHT-mediated op except lock/unlock gets
  /// a watchdog: if the response has not arrived after `retry_timeout`,
  /// the origin re-issues an idempotent copy (same sequence id — the
  /// target CHT suppresses duplicate completions) and backs off
  /// exponentially by `retry_backoff` up to `retry_backoff_cap`. After
  /// `retry_max_attempts` re-issues without a completion the run aborts
  /// via validate_fail (a lost completion is an invariant violation, not
  /// a soft error).
  sim::TimeNs retry_timeout = sim::us(2000.0);
  double retry_backoff = 2.0;
  sim::TimeNs retry_backoff_cap = sim::us(16000.0);
  int retry_max_attempts = 10;
  /// Consecutive first-hop timeouts toward one next-hop node before the
  /// runtime heals around it (buffer-dedication edges remapped to reach
  /// targets directly, bypassing the suspect dimension neighbor).
  int heal_timeout_threshold = 3;
  /// Master switch for the heal-around overlay.
  bool self_heal = true;
  /// Credit-lease reclamation: when a request or ack message is lost,
  /// the credit it pinned is returned to its pool after
  /// `lease_reclaim_delay` (modeling a NIC-level delivery timeout).
  /// Disabling it makes every lost ack leak a credit — the seeded
  /// violation behind the credit-leak validate test.
  bool lease_reclaim = true;
  sim::TimeNs lease_reclaim_delay = sim::us(60.0);
  /// Bound of the per-CHT duplicate-completion cache (entries). Dedup
  /// only matters for non-idempotent ops (acc, fetch-&-add, swap);
  /// idempotent re-execution is harmless and is not cached.
  std::size_t dedup_cache_entries = 4096;

  /// Origin-side software cost to build and issue a one-sided op.
  sim::TimeNs proc_op_overhead = sim::us(0.3);
  /// Cost of executing an atomic (fetch-&-add / swap) at the target.
  sim::TimeNs atomic_exec = sim::us(0.2);
  /// Latency model of the (idealized tree) barrier: base + per-level.
  sim::TimeNs barrier_base = sim::us(2.0);
  sim::TimeNs barrier_per_level = sim::us(1.5);

  /// Criticality-aware QoS (default off; see QosParams).
  QosParams qos;
};

}  // namespace vtopo::armci
