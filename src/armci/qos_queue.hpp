// Class-aware CHT request queue.
//
// Replaces the CHT's single sim::AsyncQueue with three per-class FIFOs
// plus a weighted deficit-round-robin dequeue and slack-estimated aging.
// The consumer-parking protocol is copied from sim::AsyncQueue verbatim
// (one schedule_after(0) per push-with-parked-consumer), and with QoS
// disabled the selection degenerates to "pop the globally oldest entry"
// — three FIFOs whose heads are compared by push sequence number are a
// single FIFO — so the disabled path schedules the exact same events as
// the old queue and the figure goldens stay byte-identical.
//
// Shutdown poison is a flag, not a queued item: it is delivered only
// once every class deque has drained, which both keeps the weighted
// dequeue from reordering a request behind the poison and makes
// backlog() naturally exclude it.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "armci/params.hpp"
#include "armci/request.hpp"
#include "sim/engine.hpp"

namespace vtopo::armci {

class QosQueue {
 public:
  QosQueue(sim::Engine& eng, const QosParams* qos)
      : eng_(&eng), qos_(qos) {}

  void push(RequestPtr r) {
    const auto cls = static_cast<std::size_t>(r->cls);
    assert(cls < static_cast<std::size_t>(kNumPriorities));
    q_[cls].push_back(Entry{std::move(r), next_seq_++});
    wake();
  }

  /// Arm shutdown: pop() returns nullptr once all deques are empty.
  void poison() {
    poison_ = true;
    wake();
  }

  /// Queue depth, excluding the shutdown poison.
  [[nodiscard]] std::size_t size() const {
    return q_[0].size() + q_[1].size() + q_[2].size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Requests whose dequeue class was boosted above their nominal class
  /// by aging (monotone counter; caller diffs).
  [[nodiscard]] std::uint64_t aged_promotions() const { return aged_; }

  /// Awaitable pop; at most one consumer may be suspended at a time.
  /// Returns nullptr for the shutdown poison.
  auto pop() {
    struct Awaiter {
      QosQueue* q;
      bool await_ready() const { return !q->empty() || q->poison_; }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!q->consumer_ && "QosQueue: second concurrent consumer");
        q->consumer_ = h;
      }
      RequestPtr await_resume() { return q->take(); }
    };
    return Awaiter{this};
  }

 private:
  struct Entry {
    RequestPtr r;
    std::uint64_t seq = 0;  ///< global push order (FIFO tie-break)
  };

  void wake() {
    if (consumer_) {
      auto h = std::exchange(consumer_, nullptr);
      eng_->schedule_after(0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] bool qos_on() const {
    return qos_ != nullptr && qos_->enabled;
  }

  /// Aging: every elapsed aging_quantum of queue wait promotes the
  /// entry's effective class one step (bulk -> normal -> critical).
  [[nodiscard]] int effective_class(const Entry& e) const {
    const int cls = static_cast<int>(e.r->cls);
    const sim::TimeNs quantum = qos_->aging_quantum;
    if (quantum <= 0) return cls;
    const sim::TimeNs waited = eng_->now() - e.r->enqueued_ns;
    if (waited <= 0) return cls;
    const auto boost = static_cast<int>(waited / quantum);
    const int eff = cls + (boost > kNumPriorities ? kNumPriorities : boost);
    return eff >= kNumPriorities - 1 ? kNumPriorities - 1 : eff;
  }

  [[nodiscard]] int refill(int c) const {
    const int w = c == 0   ? qos_->weight_bulk
                  : c == 1 ? qos_->weight_normal
                           : qos_->weight_critical;
    return w < 1 ? 1 : w;  // a zero weight would starve the refill loop
  }

  RequestPtr take() {
    if (empty()) {
      assert(poison_ && "QosQueue: resumed with nothing to deliver");
      return nullptr;
    }
    std::size_t pick;
    if (!qos_on()) {
      // FIFO-exact: the globally oldest head across the class deques.
      pick = oldest_head();
    } else {
      pick = select_drr();
    }
    RequestPtr r = std::move(q_[pick].front().r);
    q_[pick].pop_front();
    return r;
  }

  [[nodiscard]] std::size_t oldest_head() const {
    std::size_t best = kNumPriorities;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (std::size_t c = 0; c < kNumPriorities; ++c) {
      if (!q_[c].empty() && q_[c].front().seq < best_seq) {
        best_seq = q_[c].front().seq;
        best = c;
      }
    }
    assert(best < static_cast<std::size_t>(kNumPriorities));
    return best;
  }

  /// Weighted deficit round-robin over the class deques with aging.
  /// Among non-empty classes holding round credit, the one whose head
  /// has the highest aged effective class wins (ties broken FIFO by
  /// push sequence); when every non-empty class has exhausted its
  /// quantum the round credits refill from the weights. Bulk therefore
  /// still drains under a sustained critical storm — once per round via
  /// its quantum, and promptly once its head ages past a quantum.
  std::size_t select_drr() {
    for (int attempt = 0; attempt < 2; ++attempt) {
      std::size_t best = kNumPriorities;
      int best_eff = -1;
      std::uint64_t best_seq = ~std::uint64_t{0};
      for (std::size_t c = 0; c < kNumPriorities; ++c) {
        if (q_[c].empty() || credits_[c] <= 0) continue;
        const int eff = effective_class(q_[c].front());
        if (eff > best_eff ||
            (eff == best_eff && q_[c].front().seq < best_seq)) {
          best = c;
          best_eff = eff;
          best_seq = q_[c].front().seq;
        }
      }
      if (best < static_cast<std::size_t>(kNumPriorities)) {
        --credits_[best];
        if (best_eff > static_cast<int>(q_[best].front().r->cls)) ++aged_;
        return best;
      }
      for (int c = 0; c < kNumPriorities; ++c) credits_[c] = refill(c);
    }
    return oldest_head();  // unreachable: refill guarantees a candidate
  }

  sim::Engine* eng_;
  const QosParams* qos_;
  std::deque<Entry> q_[kNumPriorities];
  std::uint64_t next_seq_ = 0;
  int credits_[kNumPriorities] = {0, 0, 0};
  std::uint64_t aged_ = 0;
  bool poison_ = false;
  std::coroutine_handle<> consumer_{};
};

}  // namespace vtopo::armci
