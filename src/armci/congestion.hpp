// Endpoint congestion control for the CHT request path (the gemini
// shmem_congestion scheme): each origin node keeps a per-target window
// of outstanding CHT-mediated requests. Issuing a request toward a
// target whose window is full parks the issuing coroutine FIFO; every
// response piggybacks the servicing CHT's queue depth, and the window
// reacts AIMD-style — multiplicative shrink when the reported backlog
// is high (the target is a hot spot), +1 growth when it is low. The
// effect is that origins collectively back off of a hammered endpoint
// before its CHT queue grows unboundedly, which is what turns the p999
// of *critical* ops around under a hot-spot storm.
//
// The controller is inert unless ArmciParams::qos.enabled &&
// qos.congestion: acquire() never blocks and complete() never adjusts,
// so the disabled path issues the exact same events as before.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "armci/params.hpp"
#include "armci/request.hpp"
#include "core/coords.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

/// Per-origin-node AIMD windows, keyed by target node. Windows are
/// created lazily on first send to a target (sorted-vector storage,
/// binary-search probe — same idiom as CreditBank's pools).
class CongestionControl {
 public:
  CongestionControl(sim::Engine& eng, const QosParams* qos)
      : eng_(&eng), qos_(qos) {}

  /// Whether the window gates this request at all. Critical requests
  /// bypass by default — the window exists to keep bulk storms from
  /// burying them, not to delay them too.
  [[nodiscard]] bool gates(Priority cls) const {
    if (qos_ == nullptr || !qos_->enabled || !qos_->congestion) return false;
    return !(cls == Priority::kCritical && qos_->critical_bypasses_window);
  }

  struct [[nodiscard]] Acquire {
    CongestionControl* cc;
    core::NodeId target;
    bool gated;
    bool suspended = false;  ///< set when the window was full (stall stat)
    bool await_ready() {
      if (!gated) return true;
      Win& w = cc->win(target);
      if (w.outstanding < cc->window_of(w)) {
        ++w.outstanding;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      suspended = true;
      cc->win(target).waiters.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Charge one window slot toward `target`; suspends FIFO while the
  /// window is full. Never suspends when `gates(cls)` is false.
  [[nodiscard]] Acquire acquire(core::NodeId target, Priority cls) {
    return Acquire{this, target, gates(cls)};
  }

  /// One gated request toward `target` completed with the servicing
  /// CHT reporting `backlog` queued requests. Applies AIMD, frees the
  /// slot, and wakes parked issuers the (possibly grown) window now
  /// admits. Returns true when the window shrank.
  bool complete(core::NodeId target, std::int32_t backlog) {
    Win& w = win(target);
    VTOPO_CHECK(w.outstanding > 0, "congestion slot freed but none taken");
    bool shrank = false;
    if (qos_ != nullptr) {
      if (backlog >= qos_->backlog_high) {
        const int was = window_of(w);
        const int next =
            static_cast<int>(static_cast<double>(was) * qos_->window_decrease);
        w.window = std::max(std::max(1, qos_->window_min), next);
        shrank = w.window < was;
      } else if (backlog <= qos_->backlog_low) {
        w.window = std::min(qos_->window_max, window_of(w) + 1);
      }
    }
    --w.outstanding;
    while (!w.waiters.empty() && w.outstanding < window_of(w)) {
      ++w.outstanding;
      const std::coroutine_handle<> h = w.waiters.front();
      w.waiters.pop_front();
      eng_->schedule_after(0, [h] { h.resume(); });
    }
    return shrank;
  }

  /// Current window toward `target` (window_init if never contacted).
  [[nodiscard]] int window(core::NodeId target) const {
    const auto it =
        std::lower_bound(targets_.begin(), targets_.end(), target);
    if (it == targets_.end() || *it != target) {
      return qos_ != nullptr ? qos_->window_init : 0;
    }
    return window_of(wins_[static_cast<std::size_t>(it - targets_.begin())]);
  }
  [[nodiscard]] int outstanding(core::NodeId target) const {
    const auto it =
        std::lower_bound(targets_.begin(), targets_.end(), target);
    if (it == targets_.end() || *it != target) return 0;
    return wins_[static_cast<std::size_t>(it - targets_.begin())].outstanding;
  }

  /// Drain condition: no slot held, no issuer parked.
  [[nodiscard]] bool idle() const {
    for (const Win& w : wins_) {
      if (w.outstanding != 0 || !w.waiters.empty()) return false;
    }
    return true;
  }

 private:
  struct Win {
    int window = -1;  ///< -1: not yet adjusted, use live window_init
    int outstanding = 0;
    std::deque<std::coroutine_handle<>> waiters;
  };

  /// The live window: qos.window_init until the first AIMD adjustment,
  /// so retuning window_init mid-run affects untouched targets.
  [[nodiscard]] int window_of(const Win& w) const {
    if (w.window >= 0) return w.window;
    return qos_ != nullptr ? std::max(1, qos_->window_init) : 1;
  }

  Win& win(core::NodeId target) {
    const auto it =
        std::lower_bound(targets_.begin(), targets_.end(), target);
    const auto at = static_cast<std::size_t>(it - targets_.begin());
    if (it != targets_.end() && *it == target) return wins_[at];
    targets_.insert(it, target);
    wins_.insert(wins_.begin() + static_cast<std::ptrdiff_t>(at), Win{});
    return wins_[at];
  }

  sim::Engine* eng_;
  const QosParams* qos_;
  std::vector<core::NodeId> targets_;  ///< sorted, parallel to wins_
  std::vector<Win> wins_;
};

}  // namespace vtopo::armci
