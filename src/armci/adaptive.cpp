#include "armci/adaptive.hpp"

#include <sstream>
#include <utility>

#include "core/recommend.hpp"

namespace vtopo::armci {

namespace {

std::uint64_t atomic_op_count(const OpTracer& t) {
  return t.series(TraceKind::kFetchAdd).size() +
         t.series(TraceKind::kSwap).size() +
         t.series(TraceKind::kLock).size();
}

}  // namespace

AdaptiveController::AdaptiveController(Runtime& rt, AdaptiveConfig cfg)
    : rt_(&rt), cfg_(cfg) {
  // Per-kind series are enough to measure skew; the bounded event log
  // stays off.
  if (!rt_->tracer().enabled()) rt_->tracer().enable();
  // Establish the cold baseline so qos_hot_active_ matches the runtime
  // from the first boundary on (ctor runs at setup — serial, safe).
  if (cfg_.manage_qos) rt_->set_qos(cfg_.qos_cold);
}

void AdaptiveController::retune_qos(double skew,
                                    std::ostringstream& decision) {
  const bool hot = skew >= cfg_.qos_hotspot_threshold;
  decision << " qos=" << (hot ? "hot" : "cold");
  if (hot == qos_hot_active_) return;
  qos_hot_active_ = hot;
  ++qos_retunes_;
  const QosParams q = hot ? cfg_.qos_hot : cfg_.qos_cold;
  Runtime* rt = rt_;
  // The knobs are read by every shard's queues/banks/windows; route the
  // write through the serial phase so it lands between windows.
  if (sim::ShardedEngine* sh = rt_->sharded()) {
    sh->post_serial([rt, q] { rt->set_qos(q); });
  } else {
    rt->set_qos(q);
  }
}

AdaptiveController::Sample AdaptiveController::take_sample() {
  const RuntimeStats& s = rt_->stats();
  const std::uint64_t atomics = atomic_op_count(rt_->tracer());
  Sample w;
  w.window_requests = s.requests - prev_requests_;
  w.window_atomics = atomics - prev_atomics_;
  w.credit_blocked_ns = s.credit_blocked_ns - prev_blocked_;
  const std::uint64_t fwd = s.forwards - prev_forwards_;
  if (w.window_requests > 0) {
    w.hotspot_fraction = static_cast<double>(w.window_atomics) /
                         static_cast<double>(w.window_requests);
    w.avg_forward_depth =
        static_cast<double>(fwd) / static_cast<double>(w.window_requests);
  }
  w.window_retries = s.retries - prev_retries_;
  prev_requests_ = s.requests;
  prev_atomics_ = atomics;
  prev_forwards_ = s.forwards;
  prev_blocked_ = s.credit_blocked_ns;
  prev_retries_ = s.retries;
  return w;
}

sim::Co<bool> AdaptiveController::maybe_reconfigure(
    std::optional<double> next_hotspot) {
  const Sample w = take_sample();
  last_sample_ = w;

  std::ostringstream decision;
  decision << "window: requests=" << w.window_requests
           << " hotspot=" << w.hotspot_fraction
           << " fwd_depth=" << w.avg_forward_depth
           << " blocked_us=" << sim::to_us(w.credit_blocked_ns);
  // Failure detection feed: retry pressure from the self-healing
  // request path shows up in the boundary decision log.
  if (w.window_retries > 0) decision << " retries=" << w.window_retries;
  if (next_hotspot) decision << " hint=" << *next_hotspot;

  // QoS tracks the upcoming phase's skew under the same trust rule as
  // the topology choice: a hint always counts, a measured window only
  // when it carried enough traffic.
  if (cfg_.manage_qos &&
      (next_hotspot || w.window_requests >= cfg_.min_window_requests)) {
    retune_qos(next_hotspot.value_or(w.hotspot_fraction), decision);
  }

  // A hint describes the *upcoming* phase, so the just-closed window's
  // traffic volume is not a reason to distrust it.
  if (!next_hotspot && w.window_requests < cfg_.min_window_requests) {
    decision << " -> too little traffic, hold "
             << core::to_string(rt_->topology().kind());
    decisions_.push_back(decision.str());
    co_return false;
  }

  core::WorkloadProfile profile;
  profile.num_nodes = rt_->num_nodes();
  profile.buffer_budget_mb = cfg_.buffer_budget_mb;
  profile.hotspot_fraction = next_hotspot.value_or(w.hotspot_fraction);
  profile.latency_sensitivity = cfg_.latency_sensitivity;
  profile.mem.procs_per_node = rt_->procs_per_node();
  profile.mem.buffer_bytes = rt_->params().buffer_bytes;
  profile.mem.buffers_per_process = rt_->params().buffers_per_process;
  const core::Recommendation rec = core::recommend_topology(profile);
  rationale_ = rec.rationale;

  if (rec.kind == rt_->topology().kind()) {
    decision << " -> hold " << core::to_string(rec.kind);
    decisions_.push_back(decision.str());
    co_return false;
  }
  decision << " -> switch " << core::to_string(rt_->topology().kind())
           << " to " << core::to_string(rec.kind);
  decisions_.push_back(decision.str());
  const bool switched = co_await rt_->reconfigure(rec.kind);
  if (switched) ++switches_;
  co_return switched;
}

}  // namespace vtopo::armci
