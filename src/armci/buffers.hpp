// Request-buffer credit accounting (the resource the paper's directed
// graph models).
//
// Edge E(i, j): node i dedicates buffers_per_process * ppn buffers to
// senders on node j. We track the credits on the *sender* side: before
// node j (a process or its CHT) may send a request to node i, it must
// acquire one credit for edge (i <- j); the credit returns when i's
// acknowledgment (or the response, for the first hop) arrives back at j.
// Exhausted credits block the sender — for a forwarding CHT this is the
// hold-and-wait that makes arbitrary forwarding orders deadlock.
//
// Storage is dense: one slot per topology out-neighbor, sized at
// construction from the neighbor list, so the per-send credit probe is a
// binary search over a sorted NodeId array plus an int decrement — no
// hash, no per-pool Semaphore object, no double indirection. Waiting
// coroutines queue FIFO through a waiter arena shared by all slots of
// the bank; release() hands the credit straight to the oldest waiter
// (count unchanged), preserving the exact fairness and event-scheduling
// semantics of the Semaphore-based implementation.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "armci/params.hpp"
#include "armci/request.hpp"
#include "core/coords.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

/// Sender-side credit pools on one node: one dense slot per out-neighbor.
///
/// With QoS armed (QosParams::enabled and nonzero reservations) each pool
/// is notionally partitioned into three lanes: a critical-only lane of
/// `reserve_critical` credits, a >=normal lane of `reserve_normal`, and
/// the shared remainder usable by any class. High classes drain the
/// shared lane first and fall back to their reserved lanes only when it
/// is exhausted, so a critical request can always acquire a buffer even
/// when bulk traffic has the shared portion of the pool drained.
/// Per-class in_use accounting runs unconditionally (pure bookkeeping,
/// no event change) so conservation stays checkable under VTOPO_VALIDATE
/// whether or not QoS is on; with zero reservations the eligibility and
/// hand-off logic is bit-equivalent to the single-lane bank.
class CreditBank {
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Pool {
    std::int64_t count = 0;
    std::int64_t in_use = 0;     ///< credits currently held by senders
    /// in_use split by holder class (sums to in_use).
    std::array<std::int64_t, kNumPriorities> cls_in_use{};
    /// Reserved-lane holds: laneC is critical-only, laneN is >=normal
    /// (split by holder class so releases stay attributable). Shared-
    /// lane holds are the remainder of in_use.
    std::int64_t lane_c_used = 0;
    std::int64_t lane_n_used_normal = 0;
    std::int64_t lane_n_used_critical = 0;
    std::uint32_t head = kNil;   ///< oldest waiter (arena index)
    std::uint32_t tail = kNil;   ///< newest waiter
    std::uint32_t nwait = 0;
  };

  struct Waiter {
    std::coroutine_handle<> h;
    std::uint32_t next = kNil;
    Priority cls = Priority::kNormal;
  };

 public:
  /// `neighbors` must be the node's direct-edge peers in ascending order
  /// (core::VirtualTopology::neighbors() order). `qos` may be null (no
  /// reserved lanes ever) or point at long-lived params whose
  /// reservations are read live on every acquire/release.
  CreditBank(sim::Engine& eng, std::int64_t credits_per_edge,
             std::vector<core::NodeId> neighbors,
             const QosParams* qos = nullptr)
      : eng_(&eng),
        qos_(qos),
        limit_(credits_per_edge),
        neighbors_(std::move(neighbors)),
        pools_(neighbors_.size()) {
    assert(std::is_sorted(neighbors_.begin(), neighbors_.end()));
    for (Pool& p : pools_) p.count = credits_per_edge;
  }

  struct [[nodiscard]] Acquire {
    CreditBank* bank;
    std::size_t idx;
    Priority cls;
    bool await_ready() const {
      Pool& p = bank->pools_[idx];
      if (bank->eligible(p, cls)) {
        bank->take(p, cls);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      bank->park(idx, h, cls);
    }
    void await_resume() const noexcept {}
  };

  /// Take one credit for sending to `receiver`; suspends FIFO when the
  /// edge (as visible to `cls` — reserved lanes excluded for lower
  /// classes) is exhausted.
  [[nodiscard]] Acquire acquire(core::NodeId receiver,
                                Priority cls = Priority::kNormal) {
    return Acquire{this, index_of(receiver), cls};
  }

  /// Return one credit held by a `cls` sender for the edge to
  /// `receiver`. The oldest waiter whose class may use the freed credit
  /// (reserved lanes considered) receives it immediately, resumed via
  /// the event queue at the current time; without reservations that is
  /// exactly the old oldest-waiter hand-off.
  void release(core::NodeId receiver, Priority cls = Priority::kNormal) {
    Pool& p = pools_[index_of(receiver)];
    VTOPO_CHECK(p.in_use > 0, "credit released that was never acquired");
    VTOPO_CHECK(p.cls_in_use[static_cast<std::size_t>(cls)] > 0,
                "credit released by a class holding none");
    give_back(p, cls);
    // Hand the freed credit to the oldest waiter that can use it. A
    // waiter of a low class may stay parked past this release when the
    // only free credits sit in lanes reserved above it.
    std::uint32_t prev = kNil;
    for (std::uint32_t w = p.head; w != kNil; w = arena_[w].next) {
      if (!eligible(p, arena_[w].cls)) {
        prev = w;
        continue;
      }
      take(p, arena_[w].cls);
      if (prev == kNil) {
        p.head = arena_[w].next;
      } else {
        arena_[prev].next = arena_[w].next;
      }
      if (p.tail == w) p.tail = prev;
      --p.nwait;
      const std::coroutine_handle<> h = arena_[w].h;
      arena_[w].next = free_;
      free_ = w;
      eng_->schedule_after(0, [h] { h.resume(); });
      return;
    }
  }

  [[nodiscard]] std::int64_t available(core::NodeId receiver) const {
    return pools_[index_of(receiver)].count;
  }
  [[nodiscard]] std::size_t waiters(core::NodeId receiver) const {
    return pools_[index_of(receiver)].nwait;
  }
  [[nodiscard]] std::int64_t in_use(core::NodeId receiver) const {
    return pools_[index_of(receiver)].in_use;
  }
  [[nodiscard]] std::int64_t credits_per_edge() const { return limit_; }

  /// Credits of `receiver`'s pool a fresh request of class `cls` could
  /// take right now (reserved lanes excluded for lower classes).
  [[nodiscard]] bool may_acquire(core::NodeId receiver, Priority cls) const {
    return eligible(pools_[index_of(receiver)], cls);
  }

  /// Times a critical acquire was satisfied from a reserved lane (the
  /// shared lane was drained; without the reservation it would have
  /// parked behind bulk).
  [[nodiscard]] std::uint64_t reserved_grants() const {
    return reserved_grants_;
  }

  /// Credit conservation: for every pool, free + in-use credits equal
  /// the per-edge limit, neither is negative, per-class holds sum to the
  /// total, reserved-lane holds are attributed to classes entitled to
  /// them, and a waiter can only be parked while every credit its class
  /// may use is taken (with no reservations: while the pool is
  /// exhausted).
  [[nodiscard]] bool conserved() const {
    for (const Pool& p : pools_) {
      if (p.count < 0 || p.in_use < 0) return false;
      if (p.count + p.in_use != limit_) return false;
      std::int64_t cls_sum = 0;
      for (const std::int64_t c : p.cls_in_use) {
        if (c < 0) return false;
        cls_sum += c;
      }
      if (cls_sum != p.in_use) return false;
      if (p.lane_c_used < 0 || p.lane_n_used_normal < 0 ||
          p.lane_n_used_critical < 0) {
        return false;
      }
      if (p.lane_c_used + p.lane_n_used_critical >
          p.cls_in_use[static_cast<std::size_t>(Priority::kCritical)]) {
        return false;
      }
      if (p.lane_n_used_normal >
          p.cls_in_use[static_cast<std::size_t>(Priority::kNormal)]) {
        return false;
      }
      for (std::uint32_t w = p.head; w != kNil; w = arena_[w].next) {
        if (eligible(p, arena_[w].cls)) return false;
      }
    }
    return true;
  }

  /// Abort (via validate_fail) unless conserved(). Compiled into every
  /// build so the validate ctest can exercise it; `what` names the bank
  /// in the failure message.
  void check_conserved(const char* what) const {
    VTOPO_CHECK_ALWAYS(conserved(), what);
  }

  /// Quiescence: conservation plus no credit held and no waiter parked —
  /// the shutdown condition after a clean run_all().
  void check_quiescent(const char* what) const {
    check_conserved(what);
    for (const Pool& p : pools_) {
      VTOPO_CHECK_ALWAYS(p.in_use == 0 && p.nwait == 0, what);
    }
  }

  /// Total time senders on this node spent blocked on exhausted credits.
  [[nodiscard]] sim::TimeNs blocked_ns() const { return blocked_ns_; }
  void add_blocked(sim::TimeNs d) { blocked_ns_ += d; }

  /// True when no credit is held and no waiter is parked on any pool —
  /// the per-node drain condition of the reconfiguration quiesce loop.
  [[nodiscard]] bool idle() const {
    for (const Pool& p : pools_) {
      if (p.in_use != 0 || p.nwait != 0) return false;
    }
    return true;
  }

  /// Pool-set delta of one remap at this bank.
  struct RemapStats {
    std::int64_t kept = 0;     ///< pools carried over (kept_edges)
    std::int64_t added = 0;    ///< pools freshly allocated (added_edges)
    std::int64_t removed = 0;  ///< pools torn down (removed_edges)
  };

  /// Incrementally remap the bank to a new sorted out-neighbor list:
  /// pools for kept edges are moved over untouched (their buffer sets
  /// are reused, not reallocated), pools for added edges start fresh at
  /// the per-edge limit, pools for removed edges are dropped. The bank
  /// must be idle() — the Runtime quiesces the request path first.
  RemapStats apply_remap(const std::vector<core::NodeId>& new_neighbors) {
    assert(std::is_sorted(new_neighbors.begin(), new_neighbors.end()));
    VTOPO_CHECK_ALWAYS(idle(), "apply_remap on a non-idle credit bank");
    RemapStats rs;
    std::vector<core::NodeId> merged_n;
    std::vector<Pool> merged_p;
    merged_n.reserve(new_neighbors.size());
    merged_p.reserve(new_neighbors.size());
    std::size_t i = 0;
    for (const core::NodeId nbr : new_neighbors) {
      while (i < neighbors_.size() && neighbors_[i] < nbr) {
        ++i;
        ++rs.removed;
      }
      merged_n.push_back(nbr);
      if (i < neighbors_.size() && neighbors_[i] == nbr) {
        merged_p.push_back(pools_[i]);
        ++i;
        ++rs.kept;
      } else {
        Pool fresh;
        fresh.count = limit_;
        merged_p.push_back(fresh);
        ++rs.added;
      }
    }
    rs.removed += static_cast<std::int64_t>(neighbors_.size() - i);
    neighbors_.swap(merged_n);
    pools_.swap(merged_p);
    return rs;
  }

  /// Ensure a (possibly non-topology) out-edge pool toward `receiver`
  /// exists, inserting a fresh full pool when missing. Safe on a live
  /// bank: pools travel with their neighbor ids and waiter state lives
  /// in the shared arena, so inserting a slot never invalidates a parked
  /// waiter. Used by the self-healing overlay, which dedicates direct
  /// buffers to a target when its dimension-order next hop is dead;
  /// conservation holds per pool (the new pool starts at the limit).
  /// Returns true when a pool was inserted.
  bool ensure_edge(core::NodeId receiver) {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    if (it != neighbors_.end() && *it == receiver) return false;
    const auto at = static_cast<std::size_t>(it - neighbors_.begin());
    neighbors_.insert(it, receiver);
    Pool fresh;
    fresh.count = limit_;
    pools_.insert(pools_.begin() + static_cast<std::ptrdiff_t>(at), fresh);
    return true;
  }

  /// True when the bank has a pool toward `receiver`.
  [[nodiscard]] bool has_edge(core::NodeId receiver) const {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    return it != neighbors_.end() && *it == receiver;
  }

  /// Buffer-exhaustion fault: move every currently free credit of the
  /// edge toward `receiver` into in_use (as if a misbehaving sender held
  /// them). Conservation still holds — the credits are held, not lost —
  /// so validate checks stay meaningful during the outage. Returns the
  /// number of credits seized.
  std::int64_t seize(core::NodeId receiver) {
    Pool& p = pools_[index_of(receiver)];
    const std::int64_t taken = p.count;
    p.in_use += taken;
    // Seized credits are booked as shared bulk holds: the fault models a
    // misbehaving bulk sender, and shared attribution means a seize can
    // drain the reserved lanes too (that is the outage being modeled).
    p.cls_in_use[static_cast<std::size_t>(Priority::kBulk)] += taken;
    p.count = 0;
    return taken;
  }

  /// Release credits seized by a buffer-exhaustion fault, honoring the
  /// FIFO waiter hand-off exactly like normal releases.
  void restore(core::NodeId receiver, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      release(receiver, Priority::kBulk);
    }
  }

  /// Rebuild-from-scratch alternative to apply_remap(): every pool of
  /// the new neighbor list is reallocated, every old pool torn down,
  /// regardless of overlap. Exists so the reconfiguration bench can
  /// price the naive strategy against the incremental one.
  RemapStats rebuild(const std::vector<core::NodeId>& new_neighbors) {
    assert(std::is_sorted(new_neighbors.begin(), new_neighbors.end()));
    VTOPO_CHECK_ALWAYS(idle(), "rebuild on a non-idle credit bank");
    RemapStats rs;
    rs.removed = static_cast<std::int64_t>(neighbors_.size());
    rs.added = static_cast<std::int64_t>(new_neighbors.size());
    neighbors_ = new_neighbors;
    pools_.assign(new_neighbors.size(), Pool{});
    for (Pool& p : pools_) p.count = limit_;
    return rs;
  }

 private:
  [[nodiscard]] std::size_t index_of(core::NodeId receiver) const {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    assert(it != neighbors_.end() && *it == receiver &&
           "credit requested for a non-neighbor");
    return static_cast<std::size_t>(it - neighbors_.begin());
  }

  void park(std::size_t idx, std::coroutine_handle<> h, Priority cls) {
    std::uint32_t w;
    if (free_ != kNil) {
      w = free_;
      free_ = arena_[w].next;
    } else {
      w = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    arena_[w].h = h;
    arena_[w].next = kNil;
    arena_[w].cls = cls;
    Pool& p = pools_[idx];
    if (p.tail == kNil) {
      p.head = w;
    } else {
      arena_[p.tail].next = w;
    }
    p.tail = w;
    ++p.nwait;
  }

  /// Effective lane reservations, clamped so at least one shared credit
  /// always remains (a pool that is all reserve would deadlock bulk
  /// permanently instead of merely deprioritizing it). Zero when QoS is
  /// off, collapsing every lane computation to the single-lane bank.
  [[nodiscard]] std::int64_t reserve_c() const {
    if (qos_ == nullptr || !qos_->enabled) return 0;
    const auto r = static_cast<std::int64_t>(qos_->reserve_critical);
    return std::clamp<std::int64_t>(r, 0, limit_ - 1);
  }
  [[nodiscard]] std::int64_t reserve_n() const {
    if (qos_ == nullptr || !qos_->enabled) return 0;
    const auto r = static_cast<std::int64_t>(qos_->reserve_normal);
    return std::clamp<std::int64_t>(r, 0, limit_ - 1 - reserve_c());
  }

  [[nodiscard]] std::int64_t lane_c_free(const Pool& p) const {
    return std::max<std::int64_t>(0, reserve_c() - p.lane_c_used);
  }
  [[nodiscard]] std::int64_t lane_n_free(const Pool& p) const {
    return std::max<std::int64_t>(
        0, reserve_n() - (p.lane_n_used_normal + p.lane_n_used_critical));
  }
  /// May go negative transiently when reservations are raised while
  /// shared credits are held (live QoS retune); eligibility treats that
  /// as "no shared credit free", which is exactly right.
  [[nodiscard]] std::int64_t shared_free(const Pool& p) const {
    return p.count - lane_c_free(p) - lane_n_free(p);
  }

  /// Whether a fresh `cls` request may take a credit now: each class
  /// sees the free count minus every lane reserved above it.
  [[nodiscard]] bool eligible(const Pool& p, Priority cls) const {
    switch (cls) {
      case Priority::kBulk:
        return shared_free(p) > 0;
      case Priority::kNormal:
        return p.count - lane_c_free(p) > 0;
      case Priority::kCritical:
        return p.count > 0;
    }
    return false;
  }

  /// Take one credit for `cls`, attributing it shared-lane first and
  /// only falling back to the class's reserved lanes when the shared
  /// portion is drained (reserves stay free for the next emergency).
  /// Caller guarantees eligible(p, cls).
  void take(Pool& p, Priority cls) {
    const bool shared_ok = shared_free(p) > 0;
    --p.count;
    ++p.in_use;
    ++p.cls_in_use[static_cast<std::size_t>(cls)];
    if (shared_ok || cls == Priority::kBulk) return;
    if (cls == Priority::kNormal) {
      ++p.lane_n_used_normal;
      return;
    }
    if (lane_n_free(p) > 0) {
      ++p.lane_n_used_critical;
    } else {
      ++p.lane_c_used;
      ++reserved_grants_;
    }
  }

  /// Undo one `cls` hold, freeing the most-reserved lane the class may
  /// have been occupying first so reserves replenish before the shared
  /// pool does.
  void give_back(Pool& p, Priority cls) {
    ++p.count;
    --p.in_use;
    --p.cls_in_use[static_cast<std::size_t>(cls)];
    if (cls == Priority::kCritical) {
      if (p.lane_c_used > 0) {
        --p.lane_c_used;
      } else if (p.lane_n_used_critical > 0) {
        --p.lane_n_used_critical;
      }
    } else if (cls == Priority::kNormal) {
      if (p.lane_n_used_normal > 0) --p.lane_n_used_normal;
    }
  }

  sim::Engine* eng_;
  const QosParams* qos_ = nullptr;
  std::int64_t limit_ = 0;      ///< credits_per_edge at construction
  std::vector<core::NodeId> neighbors_;
  std::vector<Pool> pools_;
  std::vector<Waiter> arena_;   ///< shared by all slots of this bank
  std::uint32_t free_ = kNil;   ///< head of recycled arena entries
  std::uint64_t reserved_grants_ = 0;
  sim::TimeNs blocked_ns_ = 0;
};

}  // namespace vtopo::armci
