// Request-buffer credit accounting (the resource the paper's directed
// graph models).
//
// Edge E(i, j): node i dedicates buffers_per_process * ppn buffers to
// senders on node j. We track the credits on the *sender* side: before
// node j (a process or its CHT) may send a request to node i, it must
// acquire one credit for edge (i <- j); the credit returns when i's
// acknowledgment (or the response, for the first hop) arrives back at j.
// Exhausted credits block the sender — for a forwarding CHT this is the
// hold-and-wait that makes arbitrary forwarding orders deadlock.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/coords.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace vtopo::armci {

/// Sender-side credit pools on one node: one pool per out-neighbor.
class CreditBank {
 public:
  CreditBank(sim::Engine& eng, std::int64_t credits_per_edge)
      : eng_(&eng), credits_per_edge_(credits_per_edge) {}

  /// Pool of credits for sending to `receiver` (lazily created; the
  /// topology guarantees only direct neighbors are ever requested).
  sim::Semaphore& pool(core::NodeId receiver) {
    auto it = pools_.find(receiver);
    if (it == pools_.end()) {
      it = pools_
               .emplace(receiver, std::make_unique<sim::Semaphore>(
                                      *eng_, credits_per_edge_))
               .first;
    }
    return *it->second;
  }

  /// Total time senders on this node spent blocked on exhausted credits.
  [[nodiscard]] sim::TimeNs blocked_ns() const { return blocked_ns_; }
  void add_blocked(sim::TimeNs d) { blocked_ns_ += d; }

 private:
  sim::Engine* eng_;
  std::int64_t credits_per_edge_;
  std::unordered_map<core::NodeId, std::unique_ptr<sim::Semaphore>> pools_;
  sim::TimeNs blocked_ns_ = 0;
};

}  // namespace vtopo::armci
