// Request-buffer credit accounting (the resource the paper's directed
// graph models).
//
// Edge E(i, j): node i dedicates buffers_per_process * ppn buffers to
// senders on node j. We track the credits on the *sender* side: before
// node j (a process or its CHT) may send a request to node i, it must
// acquire one credit for edge (i <- j); the credit returns when i's
// acknowledgment (or the response, for the first hop) arrives back at j.
// Exhausted credits block the sender — for a forwarding CHT this is the
// hold-and-wait that makes arbitrary forwarding orders deadlock.
//
// Storage is dense: one slot per topology out-neighbor, sized at
// construction from the neighbor list, so the per-send credit probe is a
// binary search over a sorted NodeId array plus an int decrement — no
// hash, no per-pool Semaphore object, no double indirection. Waiting
// coroutines queue FIFO through a waiter arena shared by all slots of
// the bank; release() hands the credit straight to the oldest waiter
// (count unchanged), preserving the exact fairness and event-scheduling
// semantics of the Semaphore-based implementation.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/coords.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

/// Sender-side credit pools on one node: one dense slot per out-neighbor.
class CreditBank {
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Pool {
    std::int64_t count = 0;
    std::int64_t in_use = 0;     ///< credits currently held by senders
    std::uint32_t head = kNil;   ///< oldest waiter (arena index)
    std::uint32_t tail = kNil;   ///< newest waiter
    std::uint32_t nwait = 0;
  };

  struct Waiter {
    std::coroutine_handle<> h;
    std::uint32_t next = kNil;
  };

 public:
  /// `neighbors` must be the node's direct-edge peers in ascending order
  /// (core::VirtualTopology::neighbors() order).
  CreditBank(sim::Engine& eng, std::int64_t credits_per_edge,
             std::vector<core::NodeId> neighbors)
      : eng_(&eng),
        limit_(credits_per_edge),
        neighbors_(std::move(neighbors)),
        pools_(neighbors_.size()) {
    assert(std::is_sorted(neighbors_.begin(), neighbors_.end()));
    for (Pool& p : pools_) p.count = credits_per_edge;
  }

  struct [[nodiscard]] Acquire {
    CreditBank* bank;
    std::size_t idx;
    bool await_ready() const {
      Pool& p = bank->pools_[idx];
      if (p.count > 0) {
        --p.count;
        ++p.in_use;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      bank->park(idx, h);
    }
    void await_resume() const noexcept {}
  };

  /// Take one credit for sending to `receiver`; suspends FIFO when the
  /// edge is exhausted.
  [[nodiscard]] Acquire acquire(core::NodeId receiver) {
    return Acquire{this, index_of(receiver)};
  }

  /// Return one credit for the edge to `receiver`. With waiters queued
  /// the credit is handed straight to the oldest one (resumed via the
  /// event queue at the current time); count stays unchanged.
  void release(core::NodeId receiver) {
    Pool& p = pools_[index_of(receiver)];
    VTOPO_CHECK(p.in_use > 0, "credit released that was never acquired");
    if (p.head != kNil) {
      // Hand the credit straight to the oldest waiter: the releaser's
      // in_use transfers to the waiter, so count and in_use are both
      // unchanged (a waiter can only exist while count == 0).
      VTOPO_CHECK(p.count == 0, "waiter parked while credits were free");
      const std::uint32_t w = p.head;
      p.head = arena_[w].next;
      if (p.head == kNil) p.tail = kNil;
      --p.nwait;
      const std::coroutine_handle<> h = arena_[w].h;
      arena_[w].next = free_;
      free_ = w;
      eng_->schedule_after(0, [h] { h.resume(); });
    } else {
      ++p.count;
      --p.in_use;
    }
  }

  [[nodiscard]] std::int64_t available(core::NodeId receiver) const {
    return pools_[index_of(receiver)].count;
  }
  [[nodiscard]] std::size_t waiters(core::NodeId receiver) const {
    return pools_[index_of(receiver)].nwait;
  }
  [[nodiscard]] std::int64_t in_use(core::NodeId receiver) const {
    return pools_[index_of(receiver)].in_use;
  }
  [[nodiscard]] std::int64_t credits_per_edge() const { return limit_; }

  /// Credit conservation: for every pool, free + in-use credits equal
  /// the per-edge limit, neither is negative, and a waiter can only be
  /// parked while the pool is exhausted.
  [[nodiscard]] bool conserved() const {
    for (const Pool& p : pools_) {
      if (p.count < 0 || p.in_use < 0) return false;
      if (p.count + p.in_use != limit_) return false;
      if (p.nwait > 0 && p.count != 0) return false;
    }
    return true;
  }

  /// Abort (via validate_fail) unless conserved(). Compiled into every
  /// build so the validate ctest can exercise it; `what` names the bank
  /// in the failure message.
  void check_conserved(const char* what) const {
    VTOPO_CHECK_ALWAYS(conserved(), what);
  }

  /// Quiescence: conservation plus no credit held and no waiter parked —
  /// the shutdown condition after a clean run_all().
  void check_quiescent(const char* what) const {
    check_conserved(what);
    for (const Pool& p : pools_) {
      VTOPO_CHECK_ALWAYS(p.in_use == 0 && p.nwait == 0, what);
    }
  }

  /// Total time senders on this node spent blocked on exhausted credits.
  [[nodiscard]] sim::TimeNs blocked_ns() const { return blocked_ns_; }
  void add_blocked(sim::TimeNs d) { blocked_ns_ += d; }

  /// True when no credit is held and no waiter is parked on any pool —
  /// the per-node drain condition of the reconfiguration quiesce loop.
  [[nodiscard]] bool idle() const {
    for (const Pool& p : pools_) {
      if (p.in_use != 0 || p.nwait != 0) return false;
    }
    return true;
  }

  /// Pool-set delta of one remap at this bank.
  struct RemapStats {
    std::int64_t kept = 0;     ///< pools carried over (kept_edges)
    std::int64_t added = 0;    ///< pools freshly allocated (added_edges)
    std::int64_t removed = 0;  ///< pools torn down (removed_edges)
  };

  /// Incrementally remap the bank to a new sorted out-neighbor list:
  /// pools for kept edges are moved over untouched (their buffer sets
  /// are reused, not reallocated), pools for added edges start fresh at
  /// the per-edge limit, pools for removed edges are dropped. The bank
  /// must be idle() — the Runtime quiesces the request path first.
  RemapStats apply_remap(const std::vector<core::NodeId>& new_neighbors) {
    assert(std::is_sorted(new_neighbors.begin(), new_neighbors.end()));
    VTOPO_CHECK_ALWAYS(idle(), "apply_remap on a non-idle credit bank");
    RemapStats rs;
    std::vector<core::NodeId> merged_n;
    std::vector<Pool> merged_p;
    merged_n.reserve(new_neighbors.size());
    merged_p.reserve(new_neighbors.size());
    std::size_t i = 0;
    for (const core::NodeId nbr : new_neighbors) {
      while (i < neighbors_.size() && neighbors_[i] < nbr) {
        ++i;
        ++rs.removed;
      }
      merged_n.push_back(nbr);
      if (i < neighbors_.size() && neighbors_[i] == nbr) {
        merged_p.push_back(pools_[i]);
        ++i;
        ++rs.kept;
      } else {
        Pool fresh;
        fresh.count = limit_;
        merged_p.push_back(fresh);
        ++rs.added;
      }
    }
    rs.removed += static_cast<std::int64_t>(neighbors_.size() - i);
    neighbors_.swap(merged_n);
    pools_.swap(merged_p);
    return rs;
  }

  /// Ensure a (possibly non-topology) out-edge pool toward `receiver`
  /// exists, inserting a fresh full pool when missing. Safe on a live
  /// bank: pools travel with their neighbor ids and waiter state lives
  /// in the shared arena, so inserting a slot never invalidates a parked
  /// waiter. Used by the self-healing overlay, which dedicates direct
  /// buffers to a target when its dimension-order next hop is dead;
  /// conservation holds per pool (the new pool starts at the limit).
  /// Returns true when a pool was inserted.
  bool ensure_edge(core::NodeId receiver) {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    if (it != neighbors_.end() && *it == receiver) return false;
    const auto at = static_cast<std::size_t>(it - neighbors_.begin());
    neighbors_.insert(it, receiver);
    Pool fresh;
    fresh.count = limit_;
    pools_.insert(pools_.begin() + static_cast<std::ptrdiff_t>(at), fresh);
    return true;
  }

  /// True when the bank has a pool toward `receiver`.
  [[nodiscard]] bool has_edge(core::NodeId receiver) const {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    return it != neighbors_.end() && *it == receiver;
  }

  /// Buffer-exhaustion fault: move every currently free credit of the
  /// edge toward `receiver` into in_use (as if a misbehaving sender held
  /// them). Conservation still holds — the credits are held, not lost —
  /// so validate checks stay meaningful during the outage. Returns the
  /// number of credits seized.
  std::int64_t seize(core::NodeId receiver) {
    Pool& p = pools_[index_of(receiver)];
    const std::int64_t taken = p.count;
    p.in_use += taken;
    p.count = 0;
    return taken;
  }

  /// Release credits seized by a buffer-exhaustion fault, honoring the
  /// FIFO waiter hand-off exactly like normal releases.
  void restore(core::NodeId receiver, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) release(receiver);
  }

  /// Rebuild-from-scratch alternative to apply_remap(): every pool of
  /// the new neighbor list is reallocated, every old pool torn down,
  /// regardless of overlap. Exists so the reconfiguration bench can
  /// price the naive strategy against the incremental one.
  RemapStats rebuild(const std::vector<core::NodeId>& new_neighbors) {
    assert(std::is_sorted(new_neighbors.begin(), new_neighbors.end()));
    VTOPO_CHECK_ALWAYS(idle(), "rebuild on a non-idle credit bank");
    RemapStats rs;
    rs.removed = static_cast<std::int64_t>(neighbors_.size());
    rs.added = static_cast<std::int64_t>(new_neighbors.size());
    neighbors_ = new_neighbors;
    pools_.assign(new_neighbors.size(), Pool{});
    for (Pool& p : pools_) p.count = limit_;
    return rs;
  }

 private:
  [[nodiscard]] std::size_t index_of(core::NodeId receiver) const {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), receiver);
    assert(it != neighbors_.end() && *it == receiver &&
           "credit requested for a non-neighbor");
    return static_cast<std::size_t>(it - neighbors_.begin());
  }

  void park(std::size_t idx, std::coroutine_handle<> h) {
    std::uint32_t w;
    if (free_ != kNil) {
      w = free_;
      free_ = arena_[w].next;
    } else {
      w = static_cast<std::uint32_t>(arena_.size());
      arena_.emplace_back();
    }
    arena_[w].h = h;
    arena_[w].next = kNil;
    Pool& p = pools_[idx];
    if (p.tail == kNil) {
      p.head = w;
    } else {
      arena_[p.tail].next = w;
    }
    p.tail = w;
    ++p.nwait;
  }

  sim::Engine* eng_;
  std::int64_t limit_ = 0;      ///< credits_per_edge at construction
  std::vector<core::NodeId> neighbors_;
  std::vector<Pool> pools_;
  std::vector<Waiter> arena_;   ///< shared by all slots of this bank
  std::uint32_t free_ = kNil;   ///< head of recycled arena entries
  sim::TimeNs blocked_ns_ = 0;
};

}  // namespace vtopo::armci
