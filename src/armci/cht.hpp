// Communication helper thread (CHT) actor.
//
// One CHT per node services CHT-mediated requests serially: it either
// executes the operation (when this node hosts the target process) or
// forwards the request one hop along the virtual topology. Handling a
// request holds the receive buffer the request occupies; the buffer is
// released — by acknowledging the upstream node — once the request has
// been executed, absorbed (lock waiters), or forwarded onward. While a
// forwarding CHT waits for a downstream buffer credit it therefore
// blocks holding a buffer: the hold-and-wait edge that makes forwarding
// order a deadlock question (see core/dependency_graph.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "armci/lock_table.hpp"
#include "armci/qos_queue.hpp"
#include "armci/request.hpp"
#include "sim/task.hpp"

namespace vtopo::armci {

class Runtime;

class Cht {
 public:
  Cht(Runtime& rt, core::NodeId node);

  [[nodiscard]] core::NodeId node() const { return node_; }

  /// Begin the service loop (spawned as a detached coroutine).
  void start();
  /// Push a poison request; the service loop exits after draining.
  void stop();

  /// Deliver a request to this CHT (called from network arrival events).
  /// The only sanctioned entry into the service queue: it stamps the
  /// enqueue time (per-class queue-wait accounting + aging) and keeps
  /// the backlog high-water — lint rule Q1 flags call sites that push
  /// into a CHT queue any other way.
  void submit(RequestPtr r);

  /// Queue depth right now (diagnostics; excludes the shutdown poison).
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  /// Requests this CHT has handled (executed or forwarded).
  [[nodiscard]] std::uint64_t handled() const { return handled_; }
  /// Total simulated time this CHT spent servicing requests.
  [[nodiscard]] sim::TimeNs busy_ns() const { return busy_ns_; }

 private:
  /// One remembered completion of a non-idempotent request, keyed by its
  /// idempotent sequence number (origin process, request id).
  struct DedupEntry {
    ProcId origin = 0;
    std::uint64_t id = 0;
    std::int64_t value = 0;
  };

  sim::Co<void> run_loop();
  sim::Co<void> handle(RequestPtr r);
  sim::Co<void> forward(RequestPtr r);
  void execute(const RequestPtr& r);
  void send_response(const RequestPtr& r, Response resp);
  /// Release the buffer credit the current hop consumed (if any).
  void release_upstream(const Request& r);
  [[nodiscard]] const DedupEntry* find_dedup(ProcId origin,
                                             std::uint64_t id) const;
  void remember_dedup(ProcId origin, std::uint64_t id, std::int64_t value);

  /// CHT time to decode/copy one request (and gather its response).
  [[nodiscard]] sim::TimeNs handle_cost(const Request& r) const;

  Runtime* rt_;
  core::NodeId node_;
  QosQueue queue_;
  LockTable locks_;
  sim::TimeNs last_active_ = std::numeric_limits<sim::TimeNs>::min() / 4;
  std::uint64_t last_aged_ = 0;  ///< queue_.aged_promotions() last synced
  std::uint64_t handled_ = 0;
  sim::TimeNs busy_ns_ = 0;
  std::vector<DedupEntry> dedup_;  ///< empty while faults are disarmed
  std::size_t dedup_next_ = 0;     ///< ring cursor once at capacity
};

}  // namespace vtopo::armci
