#include "armci/cht.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "armci/runtime.hpp"
#include "sim/validate.hpp"

namespace vtopo::armci {

Cht::Cht(Runtime& rt, core::NodeId node)
    : rt_(&rt), node_(node), queue_(rt.engine(), &rt.params().qos) {}

void Cht::start() { rt_->spawn_task(run_loop()); }

void Cht::stop() { queue_.poison(); }

void Cht::submit(RequestPtr r) {
  r->enqueued_ns = rt_->engine().now();
  queue_.push(std::move(r));
  RuntimeStats& stats = rt_->stats();
  stats.max_backlog = std::max<std::uint64_t>(stats.max_backlog,
                                              queue_.size());
}

sim::Co<void> Cht::run_loop() {
  for (;;) {
    RequestPtr r = co_await queue_.pop();
    if (!r) break;  // poison: shut down
    if (rt_->tracer().enabled()) {
      rt_->tracer().record(queue_wait_kind(r->cls), r->origin_proc,
                           r->enqueued_ns,
                           rt_->engine().now() - r->enqueued_ns);
    }
    // Aging promotions happen inside the queue's dequeue pick; sync the
    // monotone counter into the (shard-local) stats slot here.
    const std::uint64_t aged = queue_.aged_promotions();
    if (aged != last_aged_) {
      rt_->stats().aged_promotions += aged - last_aged_;
      last_aged_ = aged;
    }
    // Polling model: a CHT that went idle longer than the polling window
    // blocked in the network wait and pays a wake-up penalty; an actively
    // busy/forwarding CHT is already polling and reacts immediately.
    const ArmciParams& p = rt_->params();
    if (rt_->engine().now() - last_active_ > p.cht_poll_window) {
      ++rt_->stats().cht_wakeups;
      co_await sim::Sleep(rt_->engine(), p.cht_wakeup);
    }
    co_await handle(std::move(r));
    last_active_ = rt_->engine().now();
  }
}

sim::TimeNs Cht::handle_cost(const Request& r) const {
  const ArmciParams& p = rt_->params();
  sim::TimeNs cost = p.cht_service;
  const std::int64_t touched =
      r.payload_bytes() + (r.target_node == node_
                               ? r.response_data_bytes()
                               : 0);
  cost += static_cast<sim::TimeNs>(static_cast<double>(touched) * 1e9 /
                                   p.cht_copy_bandwidth);
  if (r.target_node == node_ &&
      (r.op == OpCode::kFetchAdd || r.op == OpCode::kSwap)) {
    cost += p.atomic_exec;
  }
  return cost;
}

sim::Co<void> Cht::handle(RequestPtr r) {
  ++handled_;
  sim::TimeNs cost = handle_cost(*r);
  if (rt_->faults_armed()) {
    const double slow = rt_->node_slow_factor(node_);
    if (slow > 1.0) {
      cost = static_cast<sim::TimeNs>(static_cast<double>(cost) * slow);
    }
  }
  busy_ns_ += cost;
  co_await sim::Sleep(rt_->engine(), cost);
  if (r->target_node == node_) {
    execute(r);
  } else {
    // Forwarding may block on a downstream buffer credit. That wait
    // must NOT stall the service loop: a serial CHT that blocks
    // head-of-line couples otherwise-independent buffer classes and
    // deadlocks even under LDF (the Dally–Seitz argument requires each
    // resource class to drain independently). Park the forward as its
    // own task; the receive buffer it occupies stays held until the
    // forward actually goes out.
    rt_->spawn_task(forward(std::move(r)));
  }
}

sim::Co<void> Cht::forward(RequestPtr r) {
  const ArmciParams& p = rt_->params();
  const core::NodeId next = rt_->next_hop_for(node_, r->target_node);
  assert(next != node_);

  // Acquire a buffer credit at the next hop. While blocked here the
  // request still occupies this node's receive buffer (hold-and-wait).
  CreditBank& bank = rt_->credits(node_);
  const sim::TimeNs t0 = rt_->engine().now();
  co_await bank.acquire(next, r->cls);
  const sim::TimeNs blocked = rt_->engine().now() - t0;
  bank.add_blocked(blocked);
  rt_->stats().credit_blocked_ns += blocked;

  co_await sim::Sleep(rt_->engine(), p.cht_forward_extra);

  // The buffer here is free once the copy has been pushed out: ack the
  // upstream node, then send the request onward.
  release_upstream(*r);
  r->upstream_node = node_;
  r->upstream_is_cht = true;
  r->hop_credit_taken = true;
  ++r->forwards;
  RuntimeStats& stats = rt_->stats();
  ++stats.forwards;
  stats.max_forwards_seen =
      std::max(stats.max_forwards_seen,
               static_cast<std::uint64_t>(r->forwards));
  // Every hop fixes one more coordinate toward the target, so no route
  // can exceed the topology's rank-1 forwarding bound (any policy).
  VTOPO_CHECK(r->forwards <= rt_->topology().max_forwards(),
              "request forwarded past the topology's max-forwards bound");

  const std::int64_t wire =
      p.request_header_bytes + r->payload_bytes();
  rt_->send_request_msg(std::move(r), node_, next, wire,
                        rt_->cht_stream(node_));
}

void Cht::release_upstream(const Request& r) {
  if (!r.hop_credit_taken) return;  // intra-node delivery took no credit
  rt_->send_ack_msg(node_, r.upstream_node, r.cls);
}

void Cht::execute(const RequestPtr& r) {
  GlobalMemory& mem = rt_->memory();
  Response resp;
  bool respond_now = true;

  // Idempotent sequence numbers: duplicates of a mutating request
  // (retries of an op whose response was lost, or wire-duplicated
  // copies) must not re-apply their side effect — accumulates and
  // atomics would double-apply, and a late duplicate put could undo a
  // newer write to the same location. The dedup cache remembers
  // executed (origin, id) pairs with their result; a hit absorbs the
  // effect and resends the remembered response. Reads (kGetV/kGetS)
  // skip the cache: re-execution cannot disturb memory, and the
  // origin-side gate discards the extra response.
  const bool dedupable =
      rt_->faults_armed() &&
      (r->op == OpCode::kAcc || r->op == OpCode::kFetchAdd ||
       r->op == OpCode::kSwap || r->op == OpCode::kPutV ||
       r->op == OpCode::kPutS);
  if (dedupable) {
    if (const DedupEntry* e = find_dedup(r->origin_proc, r->id)) {
      ++rt_->stats().dup_suppressed;
      release_upstream(*r);
      Response cached;
      cached.value = e->value;
      send_response(r, std::move(cached));
      return;
    }
  }

  switch (r->op) {
    case OpCode::kPutV: {
      std::int64_t off = 0;
      for (const auto& seg : r->segs) {
        mem.write(GAddr{r->target_proc, seg.target_offset},
                  std::span<const std::uint8_t>(r->data).subspan(
                      static_cast<std::size_t>(off),
                      static_cast<std::size_t>(seg.bytes)));
        off += seg.bytes;
      }
      break;
    }
    case OpCode::kAcc: {
      std::int64_t off = 0;
      for (const auto& seg : r->segs) {
        const GAddr dst{r->target_proc, seg.target_offset};
        const auto* bytes = r->data.data() + off;
        switch (r->acc_type) {
          case AccType::kF64: {
            const auto n = static_cast<std::size_t>(seg.bytes / 8);
            std::vector<double> vals(n);
            std::memcpy(vals.data(), bytes, n * sizeof(double));
            mem.accumulate_f64(dst, vals, r->scale);
            break;
          }
          case AccType::kI64: {
            const auto n = static_cast<std::size_t>(seg.bytes / 8);
            std::vector<std::int64_t> vals(n);
            std::memcpy(vals.data(), bytes, n * sizeof(std::int64_t));
            mem.accumulate_i64(dst, vals,
                               static_cast<std::int64_t>(r->scale));
            break;
          }
          case AccType::kF32: {
            const auto n = static_cast<std::size_t>(seg.bytes / 4);
            std::vector<float> vals(n);
            std::memcpy(vals.data(), bytes, n * sizeof(float));
            mem.accumulate_f32(dst, vals, static_cast<float>(r->scale));
            break;
          }
        }
        off += seg.bytes;
      }
      break;
    }
    case OpCode::kPutS: {
      const StridedDesc& d = r->strided;
      std::vector<std::int64_t> idx(static_cast<std::size_t>(d.levels), 0);
      std::int64_t src_off = 0;
      for (;;) {
        std::int64_t remote = d.base_offset;
        for (int l = 0; l < d.levels; ++l) {
          remote += idx[static_cast<std::size_t>(l)] *
                    d.strides[static_cast<std::size_t>(l)];
        }
        mem.write(GAddr{r->target_proc, remote},
                  std::span<const std::uint8_t>(r->data).subspan(
                      static_cast<std::size_t>(src_off),
                      static_cast<std::size_t>(d.block_bytes)));
        src_off += d.block_bytes;
        int l = 0;
        for (; l < d.levels; ++l) {
          if (++idx[static_cast<std::size_t>(l)] <
              d.counts[static_cast<std::size_t>(l)]) {
            break;
          }
          idx[static_cast<std::size_t>(l)] = 0;
        }
        if (l == d.levels) break;
      }
      break;
    }
    case OpCode::kGetS: {
      const StridedDesc& d = r->strided;
      resp.data.resize(static_cast<std::size_t>(d.total_bytes()));
      std::vector<std::int64_t> idx(static_cast<std::size_t>(d.levels), 0);
      std::int64_t dst_off = 0;
      for (;;) {
        std::int64_t remote = d.base_offset;
        for (int l = 0; l < d.levels; ++l) {
          remote += idx[static_cast<std::size_t>(l)] *
                    d.strides[static_cast<std::size_t>(l)];
        }
        mem.read(std::span<std::uint8_t>(resp.data)
                     .subspan(static_cast<std::size_t>(dst_off),
                              static_cast<std::size_t>(d.block_bytes)),
                 GAddr{r->target_proc, remote});
        dst_off += d.block_bytes;
        int l = 0;
        for (; l < d.levels; ++l) {
          if (++idx[static_cast<std::size_t>(l)] <
              d.counts[static_cast<std::size_t>(l)]) {
            break;
          }
          idx[static_cast<std::size_t>(l)] = 0;
        }
        if (l == d.levels) break;
      }
      break;
    }
    case OpCode::kGetV: {
      resp.data.resize(
          static_cast<std::size_t>(r->response_data_bytes()));
      std::int64_t off = 0;
      for (const auto& seg : r->segs) {
        mem.read(std::span<std::uint8_t>(resp.data)
                     .subspan(static_cast<std::size_t>(off),
                              static_cast<std::size_t>(seg.bytes)),
                 GAddr{r->target_proc, seg.target_offset});
        off += seg.bytes;
      }
      break;
    }
    case OpCode::kFetchAdd:
      resp.value = mem.fetch_add_i64(r->addr, r->imm);
      break;
    case OpCode::kSwap:
      resp.value = mem.swap_i64(r->addr, r->imm);
      break;
    case OpCode::kLock: {
      LockState& ls = locks_.get(r->target_proc, r->mutex_id);
      if (ls.held) {
        // Absorb into the waiter queue; the buffer is still released
        // below, and the grant response is sent at unlock time.
        ls.waiters.push_back(r);
        rt_->stats().lock_queue_max =
            std::max<std::uint64_t>(rt_->stats().lock_queue_max,
                                    ls.waiters.size());
        respond_now = false;
      } else {
        ls.held = true;
        ls.holder = r->origin_proc;
      }
      break;
    }
    case OpCode::kUnlock: {
      LockState& ls = locks_.get(r->target_proc, r->mutex_id);
      assert(ls.held && ls.holder == r->origin_proc &&
             "unlock by non-holder");
      if (!ls.waiters.empty()) {
        RequestPtr next = std::move(ls.waiters.front());
        ls.waiters.pop_front();
        ls.holder = next->origin_proc;
        send_response(next, Response{});  // grant to the next waiter
      } else {
        ls.held = false;
        ls.holder = -1;
      }
      break;
    }
  }

  if (dedupable && respond_now) {
    remember_dedup(r->origin_proc, r->id, resp.value);
  }
  release_upstream(*r);
  if (respond_now) send_response(r, std::move(resp));
}

void Cht::send_response(const RequestPtr& r, Response resp) {
  const ArmciParams& p = rt_->params();
  // Piggyback this CHT's queue depth: the congestion feedback the
  // origin's per-target AIMD window reacts to. Pure data on an existing
  // message — populated whether or not QoS is on.
  resp.queue_backlog = static_cast<std::int32_t>(backlog());
  const std::int64_t wire = p.response_header_bytes +
                            static_cast<std::int64_t>(resp.data.size());
  // Response rides inside the arrival callback by move (InlineFn holds
  // move-only captures), and the future fulfilment is a typed member —
  // no shared_ptr<Response>, no std::function allocation. The runtime
  // wrapper gates completion at the origin (exactly-once under faults)
  // and lets the reconfigure quiesce proceed once every issued request
  // has completed and the credit acks have drained.
  rt_->send_response_msg(r, std::move(resp), node_, wire);
}

const Cht::DedupEntry* Cht::find_dedup(ProcId origin,
                                       std::uint64_t id) const {
  for (const DedupEntry& e : dedup_) {
    if (e.id == id && e.origin == origin) return &e;
  }
  return nullptr;
}

void Cht::remember_dedup(ProcId origin, std::uint64_t id,
                         std::int64_t value) {
  const std::size_t cap = rt_->params().dedup_cache_entries;
  if (cap == 0) return;
  if (dedup_.size() < cap) {
    dedup_.push_back(DedupEntry{origin, id, value});
  } else {
    // FIFO ring: overwrite the oldest remembered completion.
    dedup_[dedup_next_ % cap] = DedupEntry{origin, id, value};
    ++dedup_next_;
  }
}

}  // namespace vtopo::armci
