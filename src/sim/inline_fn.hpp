// Small-buffer-optimized move-only callable for the event hot path.
//
// `std::function` heap-allocates for captures beyond ~2 pointers and
// double-dispatches through a type-erased manager. Event callbacks are
// almost always tiny (a coroutine handle, a couple of pointers), so
// InlineFn stores captures up to kInlineBytes in place and touches the
// heap only for oversized captures. It is move-only, which also lets it
// hold move-only captures (e.g. std::unique_ptr) that std::function
// rejects.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vtopo::sim {

class InlineFn {
 public:
  /// Captures up to this size (and max_align_t alignment) live in the
  /// object itself; larger ones fall back to one heap allocation.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() {
    assert(ops_ != nullptr && "invoking empty InlineFn");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into dst from src, then destroy src's object.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* src, void* dst) noexcept {
        D* obj = static_cast<D*>(src);
        ::new (dst) D(std::move(*obj));
        obj->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
  };

  template <class D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace vtopo::sim
