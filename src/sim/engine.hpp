// Deterministic discrete-event engine.
//
// The engine owns a time-ordered queue of callbacks. Ties are broken by
// insertion sequence number, so two runs with identical inputs execute
// events in exactly the same order. Coroutine-based actors (sim/task.hpp)
// are resumed through this queue, never recursively, which bounds stack
// depth regardless of how long dependency chains get.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace vtopo::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing during run().
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void schedule_at(TimeNs t, std::function<void()> fn) {
    assert(t >= now_ && "cannot schedule into the simulated past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a relative delay (>= 0).
  void schedule_after(TimeNs delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains. Returns the final simulated time.
  TimeNs run() {
    while (!queue_.empty()) {
      step();
    }
    return now_;
  }

  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Returns true if the queue drained (all work finished).
  bool run_until(TimeNs deadline) {
    while (!queue_.empty()) {
      if (queue_.top().time > deadline) return false;
      step();
    }
    return true;
  }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// True if no events are pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void step() {
    // Move the event out before popping so `fn` may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace vtopo::sim
