// Deterministic discrete-event engine.
//
// The engine owns a time-ordered queue of callbacks. Ties are broken by
// insertion sequence number, so two runs with identical inputs execute
// events in exactly the same order. Coroutine-based actors (sim/task.hpp)
// are resumed through this queue, never recursively, which bounds stack
// depth regardless of how long dependency chains get.
//
// Hot-path layout, two tiers:
//
//  * Same-time events (t == now): every coroutine hand-off — mailbox
//    push, future fulfilment, semaphore release — schedules at the
//    current timestamp. These bypass the priority queue entirely and go
//    through a FIFO ring buffer. Order is preserved exactly: a ring
//    entry is always younger (higher seq) than any same-time entry
//    still in the heap (same-time pushes stop reaching the heap the
//    moment now_ arrives at that timestamp), the ring itself is FIFO =
//    seq order, and simulated time cannot advance while the ring is
//    non-empty.
//  * Future events go into an explicit 4-ary heap over 24-byte
//    (time, seq, slot) keys, with payloads (InlineFn callbacks) parked
//    in a separate slot pool recycled through a free list. Sift
//    operations move only small trivially-copyable keys — never the
//    callables.
//
// A steady-state engine schedules events without touching the allocator
// at all: ring, heap, and slot pool grow to the high-water mark of
// pending events and are then reused.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace vtopo::sim {

/// Routing seam for the sharded engine (sim/sharded_engine.hpp). When a
/// hook is installed the Engine becomes a *facade*: schedules are
/// forwarded to the hook (which owns the real per-shard event
/// structures) and the Engine's own ring/heap stay empty. A null hook —
/// the default — leaves every code path bit-identical to the historical
/// single-threaded engine.
class ShardHook {
 public:
  virtual ~ShardHook() = default;
  /// Schedule on the simulated node currently executing (TLS context).
  virtual void hook_schedule(TimeNs t, InlineFn fn) = 0;
  /// Schedule on an explicit simulated node (possibly on another shard).
  virtual void hook_schedule_on_node(int node, TimeNs t, InlineFn fn) = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing during run().
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now()).
  void schedule_at(TimeNs t, InlineFn fn) {
    if (hook_ != nullptr) {
      hook_->hook_schedule(t, std::move(fn));
      return;
    }
    assert(t >= now_ && "cannot schedule into the simulated past");
    if (t == now_) {
      ring_push(std::move(fn));
      return;
    }
    heap_.push_back(Key{t, next_seq_++, alloc_slot(std::move(fn))});
    sift_up(heap_.size() - 1);
  }

  /// Schedule `fn` after a relative delay (>= 0).
  void schedule_after(TimeNs delay, InlineFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` on simulated node `node` at time `t`. In the legacy
  /// single-threaded engine every node shares this queue, so this is
  /// schedule_at; under a shard hook it routes to the shard owning
  /// `node` (clamped to the current window boundary when crossing
  /// shards — see sharded_engine.hpp).
  void schedule_on_node(int node, TimeNs t, InlineFn fn) {
    if (hook_ != nullptr) {
      hook_->hook_schedule_on_node(node, t, std::move(fn));
      return;
    }
    schedule_at(t, std::move(fn));
  }

  /// Install (or clear) the shard routing hook. Sharded-engine internal.
  void install_hook(ShardHook* hook) { hook_ = hook; }
  [[nodiscard]] bool hooked() const { return hook_ != nullptr; }

  /// Mark this engine as a wall-clock (threads-backend) facade. Completion
  /// sources that share state across real threads (sim::Future) switch to
  /// their synchronized protocol when the flag is set. Off by default, and
  /// never set for the deterministic engines, so the simulated paths stay
  /// bit-identical.
  void set_realtime(bool on) { realtime_ = on; }
  [[nodiscard]] bool realtime() const { return realtime_; }

  /// Force the clock. Sharded-engine internal: facades mirror their
  /// shard's window clock instead of advancing via step().
  void set_now(TimeNs t) { now_ = t; }

  /// Slot-pool high-water mark (memory accounting).
  [[nodiscard]] std::size_t heap_slot_capacity() const {
    return slots_.size();
  }

  /// Run until the event queue drains. Returns the final simulated time.
  TimeNs run() {
    while (!idle()) {
      step();
    }
    return now_;
  }

  /// Run until the queue drains or simulated time would exceed `deadline`.
  /// Returns true if the queue drained (all work finished).
  bool run_until(TimeNs deadline) {
    while (!idle()) {
      // Ring events run at now_ (<= deadline by construction); only a
      // heap pop can advance time past the deadline.
      if (ring_count_ == 0 && heap_.front().time > deadline) return false;
      step();
    }
    return true;
  }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// True if no events are pending.
  [[nodiscard]] bool idle() const {
    return ring_count_ == 0 && heap_.empty();
  }

 private:
  /// Heap key: payload lives in slots_[slot] so sifts move 24 bytes.
  struct Key {
    TimeNs time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool earlier(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // FIFO ring over a power-of-two vector; grows to the high-water mark
  // of simultaneously pending same-time events, then never reallocates.
  void ring_push(InlineFn fn) {
    if (ring_count_ == ring_.size()) ring_grow();
    const std::size_t mask = ring_.size() - 1;
    ring_[(ring_head_ + ring_count_) & mask] = std::move(fn);
    ++ring_count_;
  }

  InlineFn ring_pop() {
    assert(ring_count_ > 0);
    InlineFn fn = std::move(ring_[ring_head_]);
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_count_;
    return fn;
  }

  void ring_grow() {
    const std::size_t old_cap = ring_.size();
    std::vector<InlineFn> grown(old_cap == 0 ? 16 : old_cap * 2);
    for (std::size_t i = 0; i < ring_count_; ++i) {
      grown[i] = std::move(ring_[(ring_head_ + i) & (old_cap - 1)]);
    }
    ring_ = std::move(grown);
    ring_head_ = 0;
  }

  std::uint32_t alloc_slot(InlineFn fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t s = free_slots_.back();
      free_slots_.pop_back();
      slots_[s] = std::move(fn);
      return s;
    }
    assert(slots_.size() < UINT32_MAX && "event slot pool overflow");
    slots_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  // 4-ary sift: shallower than binary (log4 vs log2 levels) and the four
  // children share cache lines, which is where a discrete-event queue
  // spends its time.
  void sift_up(std::size_t i) {
    const Key k = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const Key k = heap_[i];
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], k)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = k;
  }

  void step() {
    if (ring_count_ != 0) {
      // Same-time heap entries are older (smaller seq) than every ring
      // entry, so they drain first when the timestamps coincide.
      if (heap_.empty() || heap_.front().time != now_) {
        ++executed_;
        InlineFn fn = ring_pop();
        fn();
        return;
      }
    }
    const Key top = heap_.front();
    const Key tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = tail;
      sift_down(0);
    }
    now_ = top.time;
    ++executed_;
    // Move the payload out and free its slot before invoking: the
    // callback may schedule new events (possibly reusing this slot).
    InlineFn fn = std::move(slots_[top.slot]);
    free_slots_.push_back(top.slot);
    fn();
  }

  ShardHook* hook_ = nullptr;
  bool realtime_ = false;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Key> heap_;
  std::vector<InlineFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<InlineFn> ring_;  // power-of-two capacity
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;
};

}  // namespace vtopo::sim
