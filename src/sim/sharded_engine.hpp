// Sharded deterministic parallel event engine (conservative PDES).
//
// Partitions the simulated node space into contiguous shards, each with
// its own 4-ary event heap, same-time FIFO ring, and slot pool, driven
// by one host thread per shard. Shards synchronize with conservative
// time windows: the window [T, E) has E = min(T + L, Tg) where T is the
// globally earliest pending event, L is the lookahead (the minimum
// cross-node network latency, so no event executed inside the window
// can affect another shard before E), and Tg is the next global-context
// event (reconfiguration, fault injection, barrier fulfilment), which
// always runs serially between windows.
//
// Determinism contract: output is byte-identical for every shard count,
// including 1. Three mechanisms carry it:
//
//  * Every event has a key (time, stamp) with
//    stamp = creator_node << kSeqBits | per-node sequence counter.
//    Per-node counters are only ever advanced by the node's owning
//    shard, so stamps are unique and assigned identically at any shard
//    count as long as each node executes its events in key order —
//    which each shard guarantees by popping in key order.
//  * Cross-shard effects never execute in the parallel phase. They are
//    either (a) serial posts — closures recorded with the creator's key
//    and run between windows in merged key order (used for shared-state
//    mutation such as network link occupancy), or (b) cross-shard
//    schedules — routed through per-(src,dst)-shard mailboxes, drained
//    between windows, sorted by key, and inserted into the target heap.
//    Cross-shard schedule times are clamped to the window boundary E;
//    because the window grid depends only on (T, Tg, L), the clamp is
//    itself shard-count-invariant.
//  * Global-context events run on the main thread between windows, in
//    key order, with every shard quiescent.
//
// The per-shard `Engine` facades keep the legacy single-threaded API:
// components constructed under a NodeScope capture their shard's facade
// and schedule through it; a ShardHook routes those calls into the
// sharded structures using the thread-local execution context.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace vtopo::sim {

class ShardedEngine;

/// Thread-local execution context: which sharded engine (if any) the
/// current thread is working for, which shard, and which simulated node
/// the currently executing event belongs to.
struct ShardContext {
  ShardedEngine* eng = nullptr;
  int shard = -1;  ///< -1 = main / serial / setup / global context
  int node = -1;   ///< simulated node; engine num_nodes() = global; -1 = legacy
  bool parallel = false;  ///< true only inside a worker's window execution
};

[[nodiscard]] ShardContext& shard_context() noexcept;

/// Simulated node of the currently executing event, or -1 outside any
/// sharded engine (legacy single-threaded runs).
[[nodiscard]] inline int current_node() noexcept {
  return shard_context().node;
}

/// Attribute main-thread setup/teardown work (component construction,
/// initial coroutine segments) to a simulated node, so the events and
/// sequence stamps it creates land on the node's owning shard exactly
/// as they would had the node created them itself.
class NodeScope {
 public:
  NodeScope(ShardedEngine& eng, int node) noexcept;
  ~NodeScope();
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  ShardContext saved_;
};

/// Total order over events: (time, stamp) lexicographic; stamps are
/// globally unique so the order is strict.
struct ShardKey {
  TimeNs time = 0;
  std::uint64_t stamp = 0;
  friend bool operator<(const ShardKey& a, const ShardKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.stamp < b.stamp;
  }
};

/// Sense-reversing spin barrier; acquire/release on every transition so
/// the window protocol is a full happens-before chain (TSan-clean).
/// Spins briefly then yields, so oversubscribed hosts (shards > cores)
/// degrade to scheduler hand-offs instead of burning whole timeslices.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}
  void arrive_and_wait() {
    const std::uint32_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
      count_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (gen_.load(std::memory_order_acquire) == gen) {
        if (++spins > 256) std::this_thread::yield();
      }
    }
  }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<std::uint32_t> gen_{0};
};

/// How the parallel phase is driven. Output is identical in all modes —
/// the window grid and every event order depend only on (shards,
/// lookahead, program) — so this is purely a host-execution choice.
enum class ThreadMode {
  kAuto,    ///< threads when the host has >= 2 cores, else serialized
  kThreads, ///< always one host thread per shard (TSan battery, tests)
  kSerial,  ///< always multiplex shards on the calling thread
};

class ShardedEngine final : public ShardHook {
 public:
  /// Low bits of a stamp hold the per-node sequence counter; high bits
  /// the creator node. 2^24 nodes x 2^40 events per node.
  static constexpr int kSeqBits = 40;
  static constexpr TimeNs kInfTime = INT64_MAX;

  /// `lookahead` must be > 0 and no larger than the minimum cross-node
  /// delivery latency of the model being simulated.
  ShardedEngine(int num_nodes, int num_shards, TimeNs lookahead,
                ThreadMode mode = ThreadMode::kAuto);
  ~ShardedEngine() override;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] int num_shards() const { return num_shards_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }
  /// Pseudo-node owning global-context events (reconfig, faults,
  /// barrier fulfilment); sorts after every real node at equal time.
  [[nodiscard]] int global_node() const { return num_nodes_; }

  [[nodiscard]] int shard_of(int node) const {
    assert(node >= 0 && node <= num_nodes_);
    if (node >= num_nodes_) return -1;  // global context
    return static_cast<int>((static_cast<std::int64_t>(node) * num_shards_) /
                            num_nodes_);
  }

  /// Facade engine of the shard owning `node` (global facade for the
  /// global pseudo-node). Components capture this at construction.
  [[nodiscard]] Engine& engine_for_node(int node) {
    const int s = shard_of(node);
    return s < 0 ? gcore_.facade : cores_[static_cast<std::size_t>(s)].facade;
  }
  [[nodiscard]] Engine& shard_engine(int shard) {
    return cores_[static_cast<std::size_t>(shard)].facade;
  }
  [[nodiscard]] Engine& global_engine() { return gcore_.facade; }

  /// Facade of the current TLS context (worker: its shard; main/serial/
  /// global: the global facade).
  [[nodiscard]] Engine& context_engine();
  [[nodiscard]] TimeNs context_now();

  /// Record a closure to run on the main thread between windows, merged
  /// across shards in (time, stamp) key order. Outside the parallel
  /// phase (setup, serial, global context) it runs immediately — which
  /// is the same thing, since those contexts are already serial and in
  /// key order.
  void post_serial(InlineFn fn);

  /// Schedule on an explicit node. Worker context: same shard inserts
  /// locally, cross-shard goes through the mailbox with the time
  /// clamped to the window boundary. Serial/global/setup context:
  /// direct insert.
  void schedule_on_node(int node, TimeNs t, InlineFn fn) {
    hook_schedule_on_node(node, t, std::move(fn));
  }

  /// Schedule a global-context event (runs between windows, main
  /// thread). Callable only outside the parallel phase.
  void schedule_global_at(TimeNs t, InlineFn fn);

  /// Current window boundary E (valid during parallel + serial phase).
  [[nodiscard]] TimeNs window_end() const { return window_end_; }

  /// Global clock: the last window boundary reached (== every facade's
  /// now() between windows).
  [[nodiscard]] TimeNs now() const { return gcore_.facade.now(); }

  /// Drive windows until every heap (shard + global) drains. Returns
  /// the final simulated time. Main thread only.
  TimeNs run();

  /// Drive windows until the heaps drain or simulated time would exceed
  /// `deadline`. Returns true if everything drained. Windows are capped
  /// at deadline + 1, so no event past the deadline executes; the cap is
  /// shard-count-invariant, so determinism is preserved.
  bool run_until(TimeNs deadline);

  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  /// Per-shard memory/high-water accounting (for RuntimeStats and the
  /// bench per-shard lines).
  struct ShardMem {
    std::size_t heap_slots = 0;     ///< slot-pool high-water (events)
    std::size_t heap_peak = 0;      ///< max simultaneous heap entries
    std::size_t ring_capacity = 0;  ///< same-time ring capacity
    std::size_t mailbox_peak = 0;   ///< max entries in one drain
    std::size_t serial_posts_peak = 0;
    std::uint64_t executed = 0;
  };
  [[nodiscard]] ShardMem shard_mem(int shard) const;

  // ShardHook: facade Engine::schedule_at / schedule_on_node land here.
  void hook_schedule(TimeNs t, InlineFn fn) override;
  void hook_schedule_on_node(int node, TimeNs t, InlineFn fn) override;

 private:
  struct Entry {
    InlineFn fn;
    std::int32_t node = -1;
  };
  struct HKey {
    TimeNs time;
    std::uint64_t stamp;
    std::uint32_t slot;
  };
  struct RingEv {
    std::uint64_t stamp = 0;
    std::int32_t node = -1;
    InlineFn fn;
  };
  struct Mail {
    ShardKey key;
    std::int32_t node = -1;
    InlineFn fn;
  };
  struct SerialPost {
    ShardKey key;
    std::int32_t node = -1;
    InlineFn fn;
  };

  /// One shard's event structures. Written by its owning thread during
  /// the parallel phase and by the main thread between windows; the
  /// window barriers order the two.
  struct alignas(64) Core {
    Engine facade;
    std::int32_t first_node = 0;
    std::int32_t node_count = 0;
    TimeNs cur = 0;  ///< time of the last executed event
    std::uint64_t executed = 0;
    std::vector<HKey> heap;
    std::vector<Entry> slots;
    std::vector<std::uint32_t> free_slots;
    std::vector<RingEv> ring;  ///< power-of-two capacity FIFO
    std::size_t ring_head = 0;
    std::size_t ring_count = 0;
    std::vector<std::vector<Mail>> outbox;  ///< one per destination shard
    std::vector<SerialPost> posts;
    std::size_t heap_peak = 0;
    std::size_t mailbox_peak = 0;
    std::size_t posts_peak = 0;
  };

  [[nodiscard]] std::uint64_t next_stamp(int node) {
    assert(node >= 0 && node <= num_nodes_);
    const std::uint64_t seq = cseq_[static_cast<std::size_t>(node)]++;
    assert(seq < (std::uint64_t{1} << kSeqBits));
    return (static_cast<std::uint64_t>(node) << kSeqBits) | seq;
  }

  [[nodiscard]] Core& core_for_node(int node) {
    const int s = shard_of(node);
    return s < 0 ? gcore_ : cores_[static_cast<std::size_t>(s)];
  }

  static void core_heap_insert(Core& c, TimeNs t, std::uint64_t stamp,
                               int node, InlineFn fn);
  void core_ring_push(Core& c, std::uint64_t stamp, int node, InlineFn fn);
  [[nodiscard]] static TimeNs core_next_time(const Core& c);
  /// Execute all of `c`'s events with key.time < end (ring merged by
  /// stamp). The caller's TLS context selects parallel vs serial rules.
  void run_core_window(Core& c, TimeNs end);

  void set_all_now(TimeNs t);
  void apply_serial_posts();
  void drain_mailboxes();
  void worker_main(int shard);
  /// Shared loop behind run() / run_until(). Returns true if drained.
  bool drive(TimeNs deadline);
  void join_workers();

  const int num_nodes_;
  const int num_shards_;
  const TimeNs lookahead_;
  const bool use_threads_;
  Core gcore_;  ///< global-context events; its facade is the global engine
  std::vector<Core> cores_;
  std::vector<std::uint64_t> cseq_;  ///< per-node sequence counters
  TimeNs window_end_ = 0;
  SpinBarrier start_barrier_;
  SpinBarrier done_barrier_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
  std::vector<SerialPost> post_scratch_;
  std::vector<Mail> mail_scratch_;
};

}  // namespace vtopo::sim
