// Simulated time base for the vtopo discrete-event engine.
//
// All simulated clocks are 64-bit signed nanosecond counts. Integer time
// keeps every run bit-for-bit deterministic (no float drift) while leaving
// headroom for ~292 years of simulated time.
#pragma once

#include <cstdint>

namespace vtopo::sim {

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

/// Convert microseconds to simulated nanoseconds.
constexpr TimeNs us(double v) { return static_cast<TimeNs>(v * kNsPerUs); }
/// Convert milliseconds to simulated nanoseconds.
constexpr TimeNs ms(double v) { return static_cast<TimeNs>(v * kNsPerMs); }
/// Convert seconds to simulated nanoseconds.
constexpr TimeNs sec(double v) { return static_cast<TimeNs>(v * kNsPerSec); }

/// Convert simulated nanoseconds to (floating) microseconds, the unit the
/// paper's figures use.
constexpr double to_us(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
/// Convert simulated nanoseconds to (floating) seconds.
constexpr double to_sec(TimeNs t) {
  return static_cast<double>(t) / kNsPerSec;
}

}  // namespace vtopo::sim
