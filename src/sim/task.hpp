// Coroutine actor layer on top of the event engine.
//
// Simulated processes are written as straight-line C++20 coroutines:
//
//   sim::Co<void> worker(Ctx& ctx) {
//     co_await ctx.sleep(us(5));
//     int v = co_await ctx.fetch_add(...);
//   }
//
// `Co<T>` is a lazily-started coroutine that resumes its awaiter by
// symmetric transfer when it finishes; `spawn()` detaches a root Co<void>
// onto the engine. Suspension points never resume recursively through
// arbitrary caller stacks: completion sources (Future, Semaphore, sleep)
// schedule resumption as engine events at the current simulated time.
#pragma once

#include <atomic>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/time.hpp"

namespace vtopo::sim {

template <class T>
class Co;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  // A simulated actor has no one to rethrow to; failing fast keeps the
  // deterministic run debuggable.
  [[noreturn]] void unhandled_exception() { std::terminate(); }

  // Coroutine frames come from the size-class freelists: per-op
  // coroutines (issue_send, roundtrip, CHT service loops) stop touching
  // the allocator once the pool reaches its high-water mark.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
};

}  // namespace detail

/// Lazily-started awaitable coroutine returning T.
template <class T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child coroutine
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  friend struct promise_type;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_{};
};

/// Co<void> specialization.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {}

 private:
  friend struct promise_type;
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_{};
};

namespace detail {

/// Self-destroying root coroutine used by spawn().
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
    static void* operator new(std::size_t n) {
      return FramePool::allocate(n);
    }
    static void operator delete(void* p) noexcept {
      FramePool::deallocate(p);
    }
  };
};

inline Detached drive(Co<void> co, std::int64_t* live_counter) {
  co_await std::move(co);
  if (live_counter != nullptr) --*live_counter;
}

}  // namespace detail

/// Detach a root coroutine onto the engine. The coroutine starts running
/// immediately (up to its first suspension point). If `live_counter` is
/// given it is incremented now and decremented when the task finishes,
/// letting callers assert that a run left no task stranded.
inline void spawn(Co<void> co, std::int64_t* live_counter = nullptr) {
  if (live_counter != nullptr) ++*live_counter;
  detail::drive(std::move(co), live_counter);
}

/// Awaitable relative delay.
class Sleep {
 public:
  Sleep(Engine& eng, TimeNs delay) : eng_(&eng), delay_(delay) {}
  bool await_ready() const noexcept { return delay_ <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    eng_->schedule_after(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine* eng_;
  TimeNs delay_;
};

inline Sleep sleep_for(Engine& eng, TimeNs delay) { return Sleep(eng, delay); }

/// One-shot future: a value produced by one party and awaited by at most
/// one coroutine. Copies share state (promise/future in one handle).
template <class T>
class Future {
 public:
  explicit Future(Engine& eng)
      : st_(std::allocate_shared<State>(RecycleAlloc<State>{}, &eng)) {}

  /// Fulfil the future. Resumes the waiter (if any) via the event queue at
  /// the current simulated time. Must be called exactly once. The resume
  /// lands on the node that created the future (its owner), so under the
  /// sharded engine a completion observed on another shard routes home
  /// instead of resuming the waiter on the wrong shard.
  ///
  /// Under a realtime (threads-backend) engine the set/await race is real:
  /// set() may run on a different std::thread than the awaiter. The state
  /// then switches to a spinlock-guarded protocol, and the resume is
  /// posted at time 0 — "as soon as possible" in wall-clock terms — to the
  /// awaiting node's queue, never reading the foreign facade's clock.
  void set(T v) {
    if (st_->realtime) {
      auto st = st_;
      st->lock();
      assert(!st->value.has_value() && "future set twice");
      st->value.emplace(std::move(v));
      auto h = std::exchange(st->waiter, nullptr);
      const int dest = st->waiter_node >= 0 ? st->waiter_node : st->owner_node;
      st->unlock();
      if (h) {
        st->eng->schedule_on_node(dest, 0, [h] { h.resume(); });
      }
      return;
    }
    assert(!st_->value.has_value() && "future set twice");
    st_->value.emplace(std::move(v));
    if (st_->waiter) {
      auto st = st_;
      st_->eng->schedule_on_node(st->owner_node, st->eng->now(), [st] {
        auto h = std::exchange(st->waiter, nullptr);
        h.resume();
      });
    }
  }

  [[nodiscard]] bool ready() const {
    if (st_->realtime) {
      st_->lock();
      const bool r = st_->value.has_value();
      st_->unlock();
      return r;
    }
    return st_->value.has_value();
  }

  /// Peek at the value (valid only when ready(); value must not have been
  /// consumed by a co_await).
  [[nodiscard]] const T& peek() const { return *st_->value; }

  auto operator co_await() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const {
        // Realtime states route through await_suspend so the value check
        // and waiter registration happen under one lock acquisition.
        if (st->realtime) return false;
        return st->value.has_value();
      }
      bool await_suspend(std::coroutine_handle<> h) {
        if (st->realtime) {
          st->lock();
          if (st->value.has_value()) {
            st->unlock();
            return false;  // value raced in: resume immediately
          }
          assert(!st->waiter && "future awaited by two coroutines");
          st->waiter = h;
          st->waiter_node = current_node();
          st->unlock();
          return true;
        }
        assert(!st->waiter && "future awaited by two coroutines");
        st->waiter = h;
        return true;
      }
      T await_resume() { return std::move(*st->value); }
    };
    return Awaiter{st_};
  }

 private:
  struct State {
    explicit State(Engine* e)
        : eng(e), owner_node(current_node()), realtime(e->realtime()) {}
    void lock() const {
      while (lk.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() const { lk.clear(std::memory_order_release); }
    Engine* eng;
    int owner_node;  ///< -1 in legacy runs: schedule_on_node == schedule_at
    bool realtime;   ///< engine is a wall-clock facade: use the lock
    int waiter_node = -1;  ///< node awaiting; resume routes there
    std::optional<T> value;
    std::coroutine_handle<> waiter;
    mutable std::atomic_flag lk = ATOMIC_FLAG_INIT;
  };
  std::shared_ptr<State> st_;
};

/// Counting semaphore with FIFO hand-off: release() while waiters queue is
/// non-empty hands the token to the oldest waiter directly, so ordering is
/// fair and deterministic. Models finite resource pools (request buffers).
class Semaphore {
 public:
  Semaphore(Engine& eng, std::int64_t initial)
      : eng_(&eng), count_(initial) {}

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiters() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // Token is handed straight to the waiter; count_ stays unchanged.
      eng_->schedule_after(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

 private:
  Engine* eng_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace vtopo::sim
