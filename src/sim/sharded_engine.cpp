#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <utility>

namespace vtopo::sim {

namespace {

thread_local ShardContext g_shard_context;

[[nodiscard]] bool earlier_key(TimeNs at, std::uint64_t as, TimeNs bt,
                               std::uint64_t bs) {
  if (at != bt) return at < bt;
  return as < bs;
}

}  // namespace

ShardContext& shard_context() noexcept { return g_shard_context; }

NodeScope::NodeScope(ShardedEngine& eng, int node) noexcept
    : saved_(shard_context()) {
  shard_context() = ShardContext{&eng, -1, node, false};
}

NodeScope::~NodeScope() { shard_context() = saved_; }

ShardedEngine::ShardedEngine(int num_nodes, int num_shards, TimeNs lookahead,
                             ThreadMode mode)
    : num_nodes_(num_nodes),
      num_shards_(std::clamp(num_shards, 1, std::max(num_nodes, 1))),
      lookahead_(std::max<TimeNs>(lookahead, 1)),
      use_threads_(num_shards_ > 1 &&
                   (mode == ThreadMode::kThreads ||
                    (mode == ThreadMode::kAuto &&
                     std::thread::hardware_concurrency() >= 2))),
      cores_(static_cast<std::size_t>(num_shards_)),
      cseq_(static_cast<std::size_t>(num_nodes_) + 1, 0),
      start_barrier_(num_shards_),
      done_barrier_(num_shards_) {
  assert(num_nodes_ >= 1);
  for (int s = 0; s < num_shards_; ++s) {
    Core& c = cores_[static_cast<std::size_t>(s)];
    // First node whose shard_of() maps to s: smallest n with
    // n * S / N == s, i.e. ceil(s * N / S).
    const std::int64_t n64 = num_nodes_;
    c.first_node = static_cast<std::int32_t>((s * n64 + num_shards_ - 1) /
                                             num_shards_);
    const std::int32_t next = static_cast<std::int32_t>(
        ((s + 1) * n64 + num_shards_ - 1) / num_shards_);
    c.node_count = next - c.first_node;
    c.facade.install_hook(this);
    c.outbox.resize(static_cast<std::size_t>(num_shards_));
  }
  gcore_.facade.install_hook(this);
  gcore_.outbox.resize(static_cast<std::size_t>(num_shards_));
  // The constructing (main) thread operates in global context until a
  // NodeScope or window execution says otherwise.
  shard_context() = ShardContext{this, -1, num_nodes_, false};
}

ShardedEngine::~ShardedEngine() {
  if (shard_context().eng == this) shard_context() = ShardContext{};
}

Engine& ShardedEngine::context_engine() {
  const ShardContext& ctx = shard_context();
  if (ctx.shard >= 0) {
    return cores_[static_cast<std::size_t>(ctx.shard)].facade;
  }
  // NodeScope / serial-post contexts resolve to the facade of the
  // node's owning shard, so components constructed (or run) there
  // capture an engine whose clock tracks that shard's window.
  if (ctx.node >= 0 && ctx.node < num_nodes_) {
    return engine_for_node(ctx.node);
  }
  return gcore_.facade;
}

TimeNs ShardedEngine::context_now() { return context_engine().now(); }

void ShardedEngine::core_heap_insert(Core& c, TimeNs t, std::uint64_t stamp,
                                     int node, InlineFn fn) {
  std::uint32_t slot;
  if (!c.free_slots.empty()) {
    slot = c.free_slots.back();
    c.free_slots.pop_back();
    c.slots[slot].fn = std::move(fn);
    c.slots[slot].node = static_cast<std::int32_t>(node);
  } else {
    assert(c.slots.size() < UINT32_MAX);
    c.slots.push_back(Entry{std::move(fn), static_cast<std::int32_t>(node)});
    slot = static_cast<std::uint32_t>(c.slots.size() - 1);
  }
  c.heap.push_back(HKey{t, stamp, slot});
  // 4-ary sift-up over (time, stamp) keys.
  std::size_t i = c.heap.size() - 1;
  const HKey k = c.heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    const HKey& p = c.heap[parent];
    if (!earlier_key(k.time, k.stamp, p.time, p.stamp)) break;
    c.heap[i] = c.heap[parent];
    i = parent;
  }
  c.heap[i] = k;
  if (c.heap.size() > c.heap_peak) c.heap_peak = c.heap.size();
}

void ShardedEngine::core_ring_push(Core& c, std::uint64_t stamp, int node,
                                   InlineFn fn) {
  // The ring is kept stamp-ascending so the pop rule can treat its front
  // as the ring minimum. Same-time pushes arrive in execution order,
  // which is stamp order (see header), so the fallback almost never
  // fires — but if an out-of-order stamp does appear, the heap gives the
  // same total order at ring speed cost only for that event.
  if (c.ring_count > 0) {
    const std::size_t mask = c.ring.size() - 1;
    const RingEv& last = c.ring[(c.ring_head + c.ring_count - 1) & mask];
    if (stamp < last.stamp) {
      core_heap_insert(c, c.cur, stamp, node, std::move(fn));
      return;
    }
  }
  if (c.ring_count == c.ring.size()) {
    const std::size_t old_cap = c.ring.size();
    std::vector<RingEv> grown(old_cap == 0 ? 16 : old_cap * 2);
    for (std::size_t i = 0; i < c.ring_count; ++i) {
      grown[i] = std::move(c.ring[(c.ring_head + i) & (old_cap - 1)]);
    }
    c.ring = std::move(grown);
    c.ring_head = 0;
  }
  const std::size_t mask = c.ring.size() - 1;
  c.ring[(c.ring_head + c.ring_count) & mask] =
      RingEv{stamp, static_cast<std::int32_t>(node), std::move(fn)};
  ++c.ring_count;
}

TimeNs ShardedEngine::core_next_time(const Core& c) {
  if (c.ring_count > 0) return c.cur;
  if (c.heap.empty()) return kInfTime;
  return c.heap.front().time;
}

void ShardedEngine::run_core_window(Core& c, TimeNs end) {
  ShardContext& ctx = shard_context();
  for (;;) {
    bool use_ring = false;
    if (c.ring_count > 0) {
      if (c.heap.empty()) {
        use_ring = true;
      } else {
        const HKey& top = c.heap.front();
        use_ring = top.time > c.cur ||
                   (top.time == c.cur &&
                    c.ring[c.ring_head].stamp < top.stamp);
      }
    }
    if (use_ring) {
      RingEv ev = std::move(c.ring[c.ring_head]);
      c.ring_head = (c.ring_head + 1) & (c.ring.size() - 1);
      --c.ring_count;
      c.facade.set_now(c.cur);
      ctx.node = ev.node;
      ++c.executed;
      InlineFn fn = std::move(ev.fn);
      fn();
      continue;
    }
    if (c.heap.empty()) break;
    const HKey top = c.heap.front();
    if (top.time >= end) break;
    const HKey tail = c.heap.back();
    c.heap.pop_back();
    if (!c.heap.empty()) {
      // 4-ary sift-down of the old tail from the root.
      std::size_t i = 0;
      const std::size_t n = c.heap.size();
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        for (std::size_t ch = first + 1; ch < last; ++ch) {
          if (earlier_key(c.heap[ch].time, c.heap[ch].stamp,
                          c.heap[best].time, c.heap[best].stamp)) {
            best = ch;
          }
        }
        if (!earlier_key(c.heap[best].time, c.heap[best].stamp,
                         tail.time, tail.stamp)) {
          break;
        }
        c.heap[i] = c.heap[best];
        i = best;
      }
      c.heap[i] = tail;
    }
    c.cur = top.time;
    c.facade.set_now(top.time);
    Entry& slot = c.slots[top.slot];
    ctx.node = slot.node;
    InlineFn fn = std::move(slot.fn);
    c.free_slots.push_back(top.slot);
    ++c.executed;
    fn();
  }
  assert(c.ring_count == 0 && "same-time ring must drain within a window");
}

void ShardedEngine::set_all_now(TimeNs t) {
  for (Core& c : cores_) c.facade.set_now(t);
  gcore_.facade.set_now(t);
}

void ShardedEngine::hook_schedule(TimeNs t, InlineFn fn) {
  const int node = shard_context().node;
  assert(node >= 0 && "facade schedule outside any node/global context");
  hook_schedule_on_node(node, t, std::move(fn));
}

void ShardedEngine::hook_schedule_on_node(int node, TimeNs t, InlineFn fn) {
  ShardContext& ctx = shard_context();
  assert(ctx.eng == this || ctx.eng == nullptr);
  const int creator = ctx.node >= 0 ? ctx.node : num_nodes_;
  const std::uint64_t stamp = next_stamp(creator);
  const int dst_shard = shard_of(node);
  if (ctx.parallel) {
    assert(dst_shard >= 0 && "global-context schedule from parallel phase");
    Core& self = cores_[static_cast<std::size_t>(ctx.shard)];
    // Same-node schedules, and cross-node schedules at or beyond the
    // window boundary (which every network-routed effect satisfies, by
    // the lookahead), insert at their exact time. A cross-NODE schedule
    // below the boundary — a zero-delay completion hand-off, say — must
    // behave identically whether or not the two nodes happen to share a
    // shard, so it always goes through the mailbox quantized to the
    // boundary: the window grid depends only on (T, Tg, L), making the
    // quantization shard-count-invariant.
    if (node == ctx.node ||
        (dst_shard == ctx.shard && t >= window_end_)) {
      assert(t >= self.facade.now());
      if (t == self.facade.now()) {
        core_ring_push(self, stamp, node, std::move(fn));
      } else {
        core_heap_insert(self, t, stamp, node, std::move(fn));
      }
      return;
    }
    const TimeNs tc = t < window_end_ ? window_end_ : t;
    auto& box = self.outbox[static_cast<std::size_t>(dst_shard)];
    box.push_back(Mail{ShardKey{tc, stamp}, static_cast<std::int32_t>(node),
                       std::move(fn)});
    return;
  }
  // Serial / setup / global context: direct insert, main thread.
  Core& dst = dst_shard < 0 ? gcore_ : cores_[static_cast<std::size_t>(dst_shard)];
  const TimeNs now = dst.facade.now();
  core_heap_insert(dst, t < now ? now : t, stamp, node, std::move(fn));
}

void ShardedEngine::schedule_global_at(TimeNs t, InlineFn fn) {
  ShardContext& ctx = shard_context();
  assert(!ctx.parallel && "global events must be scheduled outside windows");
  const int creator = ctx.node >= 0 ? ctx.node : num_nodes_;
  const TimeNs now = gcore_.facade.now();
  core_heap_insert(gcore_, t < now ? now : t, next_stamp(creator),
                   num_nodes_, std::move(fn));
}

void ShardedEngine::post_serial(InlineFn fn) {
  ShardContext& ctx = shard_context();
  if (!ctx.parallel) {
    // Setup, serial, and global contexts are already exclusive and in
    // key order; running now *is* the merged order.
    fn();
    return;
  }
  Core& c = cores_[static_cast<std::size_t>(ctx.shard)];
  c.posts.push_back(SerialPost{ShardKey{c.cur, next_stamp(ctx.node)},
                               static_cast<std::int32_t>(ctx.node),
                               std::move(fn)});
  if (c.posts.size() > c.posts_peak) c.posts_peak = c.posts.size();
}

void ShardedEngine::apply_serial_posts() {
  post_scratch_.clear();
  for (Core& c : cores_) {
    for (SerialPost& p : c.posts) post_scratch_.push_back(std::move(p));
    c.posts.clear();
  }
  if (post_scratch_.empty()) return;
  std::sort(post_scratch_.begin(), post_scratch_.end(),
            [](const SerialPost& a, const SerialPost& b) {
              return a.key < b.key;
            });
  const ShardContext saved = shard_context();
  for (SerialPost& p : post_scratch_) {
    shard_context() = ShardContext{this, -1, p.node, false};
    InlineFn fn = std::move(p.fn);
    fn();
  }
  shard_context() = saved;
  post_scratch_.clear();
}

void ShardedEngine::drain_mailboxes() {
  // The destination heap orders by (time, stamp), so entries can be
  // inserted in any order; the merge the protocol requires is exactly
  // the heap's comparator.
  for (int dstidx = 0; dstidx < num_shards_; ++dstidx) {
    Core& dst = cores_[static_cast<std::size_t>(dstidx)];
    std::size_t drained = 0;
    for (Core& src : cores_) {
      auto& box = src.outbox[static_cast<std::size_t>(dstidx)];
      drained += box.size();
      for (Mail& m : box) {
        core_heap_insert(dst, m.key.time, m.key.stamp, m.node,
                         std::move(m.fn));
      }
      box.clear();
    }
    if (drained > dst.mailbox_peak) dst.mailbox_peak = drained;
  }
}

void ShardedEngine::worker_main(int shard) {
  shard_context() = ShardContext{this, shard, -1, false};
  Core& c = cores_[static_cast<std::size_t>(shard)];
  for (;;) {
    start_barrier_.arrive_and_wait();
    if (stop_.load(std::memory_order_acquire)) break;
    shard_context().parallel = true;
    run_core_window(c, window_end_);
    shard_context().parallel = false;
    shard_context().node = -1;
    done_barrier_.arrive_and_wait();
  }
  shard_context() = ShardContext{};
}

bool ShardedEngine::drive(TimeNs deadline) {
  assert(!shard_context().parallel);
  if (use_threads_ && threads_.empty()) {
    threads_.reserve(static_cast<std::size_t>(num_shards_ - 1));
    for (int s = 1; s < num_shards_; ++s) {
      threads_.emplace_back([this, s] { worker_main(s); });
    }
  }
  for (;;) {
    TimeNs tn = kInfTime;
    for (const Core& c : cores_) {
      const TimeNs t = core_next_time(c);
      if (t < tn) tn = t;
    }
    const TimeNs tg = core_next_time(gcore_);
    if (tn == kInfTime && tg == kInfTime) return true;
    if (std::min(tn, tg) > deadline) return false;
    if (tg <= tn) {
      // Global events run serially, alone, at exactly their timestamp.
      set_all_now(tg);
      gcore_.cur = tg;
      const ShardContext saved = shard_context();
      shard_context() = ShardContext{this, -1, num_nodes_, false};
      run_core_window(gcore_, tg + 1);
      shard_context() = saved;
      continue;
    }
    TimeNs e = tn + lookahead_;
    if (tg != kInfTime && tg < e) e = tg;
    if (deadline != kInfTime && deadline + 1 < e) e = deadline + 1;
    window_end_ = e;
    const ShardContext saved = shard_context();
    if (!use_threads_) {
      // Host-serial multiplexing: same window grid, same per-shard
      // execution order, so byte-identical to the threaded run.
      for (int s = 0; s < num_shards_; ++s) {
        shard_context() = ShardContext{this, s, -1, true};
        run_core_window(cores_[static_cast<std::size_t>(s)], e);
      }
    } else {
      start_barrier_.arrive_and_wait();
      shard_context() = ShardContext{this, 0, -1, true};
      run_core_window(cores_[0], e);
      shard_context().parallel = false;
      done_barrier_.arrive_and_wait();
    }
    shard_context() = saved;
    set_all_now(e);
    apply_serial_posts();
    drain_mailboxes();
  }
}

void ShardedEngine::join_workers() {
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_release);
  start_barrier_.arrive_and_wait();
  for (std::thread& th : threads_) th.join();
  threads_.clear();
  stop_.store(false, std::memory_order_relaxed);
}

TimeNs ShardedEngine::run() {
  drive(kInfTime);
  join_workers();
  // Report the time of the last executed event (not the final window
  // boundary), matching the legacy engine's notion of "final time".
  TimeNs last = gcore_.cur;
  for (const Core& c : cores_) last = std::max(last, c.cur);
  set_all_now(last);
  return last;
}

bool ShardedEngine::run_until(TimeNs deadline) {
  const bool drained = drive(deadline);
  join_workers();
  if (drained) {
    TimeNs last = gcore_.cur;
    for (const Core& c : cores_) last = std::max(last, c.cur);
    set_all_now(last);
  } else {
    // Every pending event is strictly past the deadline (windows were
    // capped at deadline + 1), so parking the clocks there is monotonic.
    set_all_now(deadline);
  }
  return drained;
}

bool ShardedEngine::idle() const {
  auto empty = [](const Core& c) {
    return c.ring_count == 0 && c.heap.empty();
  };
  if (!empty(gcore_)) return false;
  for (const Core& c : cores_) {
    if (!empty(c)) return false;
  }
  return true;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t n = gcore_.executed;
  for (const Core& c : cores_) n += c.executed;
  return n;
}

ShardedEngine::ShardMem ShardedEngine::shard_mem(int shard) const {
  const Core& c = cores_[static_cast<std::size_t>(shard)];
  ShardMem m;
  m.heap_slots = c.slots.size();
  m.heap_peak = c.heap_peak;
  m.ring_capacity = c.ring.size();
  m.mailbox_peak = c.mailbox_peak;
  m.serial_posts_peak = c.posts_peak;
  m.executed = c.executed;
  return m;
}

}  // namespace vtopo::sim
