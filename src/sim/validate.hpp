// Runtime invariant layer (the VTOPO_VALIDATE compile option).
//
// Two macro tiers:
//   VTOPO_CHECK(cond, msg)        — compiled in only when the build sets
//                                   -DVTOPO_VALIDATE (the `tsan` preset
//                                   and `cmake -DVTOPO_VALIDATE=ON`).
//                                   Use on hot paths.
//   VTOPO_CHECK_ALWAYS(cond, msg) — compiled in unconditionally. Use in
//                                   explicit check_*() entry points so
//                                   the validate ctest can exercise the
//                                   invariants in any build.
//
// VTOPO_VALIDATE must only ever be set build-wide (the CMake option does
// this via add_compile_definitions): the guarded code lives in inline
// header functions, and per-target definitions would create divergent
// inline definitions across translation units (an ODR violation).
//
// A failed check prints `file:line: invariant violated: cond (msg)` to
// stderr and aborts — deterministic, unskippable, and visible to death
// tests.
#pragma once

namespace vtopo::detail {

[[noreturn]] void validate_fail(const char* file, int line,
                                const char* cond, const char* msg);

}  // namespace vtopo::detail

#define VTOPO_CHECK_ALWAYS(cond, msg)                                   \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::vtopo::detail::validate_fail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (false)

#if defined(VTOPO_VALIDATE)
#define VTOPO_VALIDATE_ENABLED 1
#define VTOPO_CHECK(cond, msg) VTOPO_CHECK_ALWAYS(cond, msg)
#else
#define VTOPO_VALIDATE_ENABLED 0
#define VTOPO_CHECK(cond, msg) static_cast<void>(0)
#endif
