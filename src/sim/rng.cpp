#include "sim/rng.hpp"

#include <cmath>

namespace vtopo::sim {

double Rng::exponential(double mean) {
  // Inverse-CDF; clamp away from 0 so log() stays finite.
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace vtopo::sim
