#include "sim/validate.hpp"

#include <cstdio>
#include <cstdlib>

namespace vtopo::detail {

void validate_fail(const char* file, int line, const char* cond,
                   const char* msg) {
  std::fprintf(stderr, "%s:%d: invariant violated: %s (%s)\n", file, line,
               cond, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace vtopo::detail
