#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace vtopo::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Series::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Series::min() const {
  return samples_.empty()
             ? 0.0
             : *std::min_element(samples_.begin(), samples_.end());
}

double Series::max() const {
  return samples_.empty()
             ? 0.0
             : *std::max_element(samples_.begin(), samples_.end());
}

double Series::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void Log2Histogram::add(std::int64_t v) {
  int bucket = 0;
  if (v > 1) {
    bucket = 63 - __builtin_clzll(static_cast<unsigned long long>(v));
  }
  buckets_[static_cast<std::size_t>(bucket)]++;
  ++total_;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "[2^" << i << ", 2^" << i + 1 << "): " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace vtopo::sim
