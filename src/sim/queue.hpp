// Unbounded awaitable FIFO queue for actor mailboxes.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <utility>

#include "sim/engine.hpp"

namespace vtopo::sim {

/// Single-consumer awaitable queue: producers push from event context,
/// the consumer coroutine pops (suspending while empty). Hand-off goes
/// through the event queue so producers never run consumer code inline.
template <class T>
class AsyncQueue {
 public:
  explicit AsyncQueue(Engine& eng) : eng_(&eng) {}

  void push(T item) {
    items_.push_back(std::move(item));
    if (consumer_) {
      auto h = std::exchange(consumer_, nullptr);
      // The resume thunk fits InlineFn's inline storage, so waking the
      // consumer costs no allocation per push.
      eng_->schedule_after(0, [h] { h.resume(); });
    }
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Awaitable pop; at most one consumer may be suspended at a time.
  auto pop() {
    struct Awaiter {
      AsyncQueue* q;
      bool await_ready() const { return !q->items_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!q->consumer_ && "AsyncQueue: second concurrent consumer");
        q->consumer_ = h;
      }
      T await_resume() {
        assert(!q->items_.empty());
        T item = std::move(q->items_.front());
        q->items_.pop_front();
        return item;
      }
    };
    return Awaiter{this};
  }

 private:
  Engine* eng_;
  std::deque<T> items_;
  std::coroutine_handle<> consumer_{};
};

}  // namespace vtopo::sim
