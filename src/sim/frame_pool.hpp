// Size-class freelists for coroutine frames and other per-op heap blocks.
//
// Every simulated ARMCI operation used to cost several allocator round
// trips: one coroutine frame per issue_send/roundtrip/nb_issue, one
// shared Future state, one Request. The engine's slot pool (PR 1) showed
// the pattern: grow to the high-water mark once, then recycle. FramePool
// generalizes it to variable-size blocks via power-of-two size classes.
//
// Layout: every block carries a 16-byte header holding its size-class
// index, so deallocation needs no size from the caller and default
// (16-byte) alignment is preserved for the payload. Freed blocks park on
// a thread-local freelist per class; blocks above the largest class fall
// through to plain operator new/delete. Thread-local state means sweep
// workers (bench/sweep.hpp) recycle independently with no locking, and
// the engine's single-threaded determinism is untouched — pooling only
// changes *where* a frame lives, never the order anything runs.
//
// The freelists are reachable from a thread-local object whose
// destructor frees every parked block, so LeakSanitizer sees a clean
// exit; a live (non-recycled) frame at exit still reports as a leak,
// which is exactly the bug it would be.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace vtopo::sim {

class FramePool {
 public:
  /// Smallest pooled block (header included): 2^kMinShift bytes.
  static constexpr std::size_t kMinShift = 6;    // 64 B
  /// Largest pooled block: 2^kMaxShift bytes; bigger goes to the heap.
  static constexpr std::size_t kMaxShift = 17;   // 128 KB
  static constexpr std::size_t kClasses = kMaxShift - kMinShift + 1;
  static constexpr std::size_t kHeader = 16;
  static constexpr std::uint64_t kUnpooled = ~std::uint64_t{0};

  static void* allocate(std::size_t bytes) {
    const std::size_t total = bytes + kHeader;
    if (total > (std::size_t{1} << kMaxShift)) {
      auto* base = static_cast<std::uint64_t*>(::operator new(total));
      *base = kUnpooled;
      return reinterpret_cast<char*>(base) + kHeader;
    }
    const std::size_t cls = class_of(total);
    Lists& tl = lists();
    auto& list = tl.free[cls];
    std::uint64_t* base;
    if (!list.empty()) {
      base = static_cast<std::uint64_t*>(list.back());
      list.pop_back();
      ++tl.reused;
    } else {
      base = static_cast<std::uint64_t*>(
          ::operator new(std::size_t{1} << (cls + kMinShift)));
      ++tl.created;
    }
    *base = cls;
    return reinterpret_cast<char*>(base) + kHeader;
  }

  static void deallocate(void* p) noexcept {
    auto* base =
        reinterpret_cast<std::uint64_t*>(static_cast<char*>(p) - kHeader);
    const std::uint64_t cls = *base;
    if (cls == kUnpooled) {
      ::operator delete(base);
      return;
    }
    lists().free[cls].push_back(base);
  }

  /// Blocks handed out from a freelist / freshly heap-allocated on this
  /// thread (test + bench observability).
  [[nodiscard]] static std::uint64_t reused() { return lists().reused; }
  [[nodiscard]] static std::uint64_t created() { return lists().created; }

  /// Blocks currently parked on this thread's freelists.
  [[nodiscard]] static std::uint64_t parked() {
    const Lists& tl = lists();
    std::uint64_t n = 0;
    for (const auto& list : tl.free) {
      n += static_cast<std::uint64_t>(list.size());
    }
    return n;
  }
  /// Pooled blocks handed out on this thread and not yet returned
  /// (coroutine frames still alive). Zero once every frame completed;
  /// trim() does not change it (trim only frees *parked* blocks).
  [[nodiscard]] static std::uint64_t live() {
    return lists().created - parked();
  }

  /// Release every parked block back to the heap (tests that want to
  /// measure from a cold pool).
  static void trim() {
    Lists& tl = lists();
    for (auto& list : tl.free) {
      for (void* base : list) ::operator delete(base);
      list.clear();
    }
  }

 private:
  struct Lists {
    std::vector<void*> free[kClasses];
    std::uint64_t reused = 0;
    std::uint64_t created = 0;
    ~Lists() {
      for (auto& list : free) {
        for (void* base : list) ::operator delete(base);
      }
    }
  };

  static Lists& lists() {
    thread_local Lists tl;
    return tl;
  }

  /// Index of the smallest class with 2^(cls+kMinShift) >= total.
  static std::size_t class_of(std::size_t total) {
    std::size_t cls = 0;
    while ((std::size_t{1} << (cls + kMinShift)) < total) ++cls;
    return cls;
  }
};

/// STL allocator over FramePool, for shared state that is created and
/// torn down once per simulated operation (e.g. Future's control block
/// via std::allocate_shared).
template <class T>
struct RecycleAlloc {
  using value_type = T;

  RecycleAlloc() noexcept = default;
  template <class U>
  RecycleAlloc(const RecycleAlloc<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(FramePool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { FramePool::deallocate(p); }

  template <class U>
  friend bool operator==(const RecycleAlloc&, const RecycleAlloc<U>&) {
    return true;
  }
};

}  // namespace vtopo::sim
