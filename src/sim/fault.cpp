#include "sim/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "sim/sharded_engine.hpp"

namespace vtopo::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkSever:
      return "sever";
    case FaultKind::kLinkDegrade:
      return "degrade";
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kNodeSlow:
      return "slow";
    case FaultKind::kBufferExhaust:
      return "exhaust";
  }
  return "?";
}

namespace {

void append_event(std::ostringstream& os, const FaultEvent& e) {
  os << to_string(e.kind) << '=' << e.a;
  if (e.kind == FaultKind::kLinkSever || e.kind == FaultKind::kLinkDegrade ||
      e.kind == FaultKind::kBufferExhaust) {
    os << '-' << e.b;
  }
  if (e.kind == FaultKind::kLinkDegrade || e.kind == FaultKind::kNodeSlow) {
    os << '*' << e.magnitude;
  }
  os << '@' << to_us(e.at) << '+' << to_us(e.duration);
}

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  *out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size();
}

bool parse_i64(std::string_view s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  *out = std::strtoll(tmp.c_str(), &end, 10);
  return end == tmp.c_str() + tmp.size();
}

/// Event value grammar: A[-B][*F]@T[+D] with T, D in microseconds.
bool parse_event_value(std::string_view v, bool wants_b, bool wants_factor,
                       FaultEvent* e) {
  const auto at_pos = v.find('@');
  if (at_pos == std::string_view::npos) return false;
  std::string_view subject = v.substr(0, at_pos);
  std::string_view when = v.substr(at_pos + 1);

  if (wants_factor) {
    const auto star = subject.find('*');
    if (star == std::string_view::npos) return false;
    if (!parse_double(subject.substr(star + 1), &e->magnitude)) return false;
    if (e->magnitude <= 0) return false;
    subject = subject.substr(0, star);
  }
  if (wants_b) {
    const auto dash = subject.find('-');
    if (dash == std::string_view::npos) return false;
    if (!parse_i64(subject.substr(dash + 1), &e->b)) return false;
    subject = subject.substr(0, dash);
  }
  if (!parse_i64(subject, &e->a)) return false;

  double at_us = 0.0;
  double dur_us = 0.0;
  const auto plus = when.find('+');
  if (plus == std::string_view::npos) {
    if (!parse_double(when, &at_us)) return false;
  } else {
    if (!parse_double(when.substr(0, plus), &at_us)) return false;
    if (!parse_double(when.substr(plus + 1), &dur_us)) return false;
  }
  if (at_us < 0 || dur_us < 0) return false;
  e->at = us(at_us);
  e->duration = us(dur_us);
  return true;
}

}  // namespace

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop_requests > 0 && drop_requests == drop_acks &&
      drop_requests == drop_responses) {
    os << ";drop=" << drop_requests;
  } else {
    if (drop_requests > 0) os << ";drop_req=" << drop_requests;
    if (drop_acks > 0) os << ";drop_ack=" << drop_acks;
    if (drop_responses > 0) os << ";drop_resp=" << drop_responses;
  }
  if (duplicate_rate > 0) os << ";dup=" << duplicate_rate;
  if (delay_rate > 0) {
    os << ";delay=" << delay_rate << ";delay_max=" << to_us(delay_max);
  }
  for (const FaultEvent& e : events) {
    os << ';';
    append_event(os, e);
  }
  return os.str();
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec,
                                          std::string* err) {
  FaultPlan plan;
  auto fail = [&](const std::string& what) -> std::optional<FaultPlan> {
    if (err != nullptr) *err = what;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto next = spec.find(';', pos);
    std::string_view tok = spec.substr(
        pos, next == std::string_view::npos ? spec.size() - pos : next - pos);
    pos = next == std::string_view::npos ? spec.size() + 1 : next + 1;
    if (tok.empty()) continue;
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) {
      return fail("token without '=': " + std::string(tok));
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    auto rate = [&](double* out) {
      return parse_double(val, out) && *out >= 0 && *out <= 1;
    };
    if (key == "seed") {
      std::int64_t s = 0;
      if (!parse_i64(val, &s) || s < 0) return fail("bad seed");
      plan.seed = static_cast<std::uint64_t>(s);
    } else if (key == "drop") {
      double r = 0;
      if (!rate(&r)) return fail("bad drop rate");
      plan.set_drop_rate(r);
    } else if (key == "drop_req") {
      if (!rate(&plan.drop_requests)) return fail("bad drop_req rate");
    } else if (key == "drop_ack") {
      if (!rate(&plan.drop_acks)) return fail("bad drop_ack rate");
    } else if (key == "drop_resp") {
      if (!rate(&plan.drop_responses)) return fail("bad drop_resp rate");
    } else if (key == "dup") {
      if (!rate(&plan.duplicate_rate)) return fail("bad dup rate");
    } else if (key == "delay") {
      if (!rate(&plan.delay_rate)) return fail("bad delay rate");
    } else if (key == "delay_max") {
      double d = 0;
      if (!parse_double(val, &d) || d < 0) return fail("bad delay_max");
      plan.delay_max = us(d);
    } else {
      FaultEvent e;
      bool ok = false;
      if (key == "sever") {
        e.kind = FaultKind::kLinkSever;
        ok = parse_event_value(val, /*wants_b=*/true, /*wants_factor=*/false,
                               &e);
      } else if (key == "degrade") {
        e.kind = FaultKind::kLinkDegrade;
        ok = parse_event_value(val, true, true, &e);
      } else if (key == "crash") {
        e.kind = FaultKind::kNodeCrash;
        ok = parse_event_value(val, false, false, &e);
      } else if (key == "slow") {
        e.kind = FaultKind::kNodeSlow;
        ok = parse_event_value(val, false, true, &e);
      } else if (key == "exhaust") {
        e.kind = FaultKind::kBufferExhaust;
        ok = parse_event_value(val, true, false, &e);
      } else {
        return fail("unknown key: " + std::string(key));
      }
      if (!ok) return fail("malformed event: " + std::string(tok));
      plan.events.push_back(e);
    }
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::int64_t num_nodes,
                            int outages, int crashes, double drop_rate,
                            double dup_rate, double delay_rate,
                            TimeNs horizon) {
  FaultPlan plan;
  plan.seed = seed;
  plan.set_drop_rate(drop_rate);
  plan.duplicate_rate = dup_rate;
  plan.delay_rate = delay_rate;
  // Own derived stream: the schedule must not disturb message draws.
  Rng rng(derive_seed(seed, 0x5eedf417));
  const auto n = static_cast<std::uint64_t>(std::max<std::int64_t>(
      num_nodes, 2));
  auto when = [&] {
    return static_cast<TimeNs>(rng.uniform(
        static_cast<std::uint64_t>(std::max<TimeNs>(horizon, 1))));
  };
  auto dur = [&] {
    // Outages last 5-25% of the horizon: long enough to force retries,
    // short enough that the retry budget outlives them.
    const auto h = static_cast<double>(std::max<TimeNs>(horizon, 1));
    return static_cast<TimeNs>(h * (0.05 + 0.20 * rng.uniform01()));
  };
  for (int i = 0; i < outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkSever;
    e.a = static_cast<std::int64_t>(rng.uniform(n));
    do {
      e.b = static_cast<std::int64_t>(rng.uniform(n));
    } while (e.b == e.a);
    e.at = when();
    e.duration = dur();
    plan.events.push_back(e);
  }
  for (int i = 0; i < crashes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kNodeCrash;
    // Spare node 0: most workloads anchor shared state (counters, lock
    // masters) there, and a dead target only stalls until recovery.
    e.a = 1 + static_cast<std::int64_t>(rng.uniform(n - 1));
    e.at = when();
    e.duration = dur();
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return plan;
}

FaultInjector::FaultInjector(Engine& eng, FaultPlan plan)
    : eng_(&eng),
      plan_(std::move(plan)),
      rng_(derive_seed(plan_.seed, 0xfa'417)) {}

void FaultInjector::arm(Handler handler) {
  // One stored handler; per-event closures capture only two pointers,
  // keeping them inside InlineFn's inline storage. The events vector is
  // never mutated after arming, so the element pointers stay valid.
  handler_ = std::move(handler);
  FaultInjector* self = this;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent* e = &plan_.events[i];
    const TimeNs begin_at = std::max<TimeNs>(e->at, eng_->now());
    eng_->schedule_at(begin_at,
                      [self, e] { self->handler_(*e, /*begin=*/true); });
    if (e->duration > 0) {
      eng_->schedule_at(begin_at + e->duration,
                        [self, e] { self->handler_(*e, /*begin=*/false); });
    }
  }
}

void FaultInjector::shard_streams(int num_nodes) {
  node_streams_.resize(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    node_streams_[static_cast<std::size_t>(n)].rng = Rng(derive_seed(
        plan_.seed, 0xfa'418 + static_cast<std::uint64_t>(n)));
  }
}

std::uint64_t FaultInjector::dropped() const {
  std::uint64_t n = dropped_;
  for (const NodeStream& s : node_streams_) n += s.dropped;
  return n;
}

std::uint64_t FaultInjector::duplicated() const {
  std::uint64_t n = duplicated_;
  for (const NodeStream& s : node_streams_) n += s.duplicated;
  return n;
}

std::uint64_t FaultInjector::delayed() const {
  std::uint64_t n = delayed_;
  for (const NodeStream& s : node_streams_) n += s.delayed;
  return n;
}

FaultInjector::MsgFault FaultInjector::sample_message(MsgClass cls) {
  Rng* rng = &rng_;
  std::uint64_t* dropped = &dropped_;
  std::uint64_t* duplicated = &duplicated_;
  std::uint64_t* delayed = &delayed_;
  if (!node_streams_.empty()) {
    const int node = current_node();
    if (node >= 0 &&
        node < static_cast<int>(node_streams_.size())) {
      NodeStream& s = node_streams_[static_cast<std::size_t>(node)];
      rng = &s.rng;
      dropped = &s.dropped;
      duplicated = &s.duplicated;
      delayed = &s.delayed;
    }
  }
  MsgFault f;
  double drop_rate = 0.0;
  switch (cls) {
    case MsgClass::kRequest:
      drop_rate = plan_.drop_requests;
      break;
    case MsgClass::kAck:
      drop_rate = plan_.drop_acks;
      break;
    case MsgClass::kResponse:
      drop_rate = plan_.drop_responses;
      break;
  }
  if (drop_rate > 0 && rng->chance(drop_rate)) {
    f.drop = true;
    ++*dropped;
    return f;
  }
  if (cls == MsgClass::kRequest && plan_.duplicate_rate > 0 &&
      rng->chance(plan_.duplicate_rate)) {
    f.duplicate = true;
    ++*duplicated;
  }
  if (plan_.delay_rate > 0 && rng->chance(plan_.delay_rate)) {
    f.delay = 1 + static_cast<TimeNs>(rng->uniform(
                      static_cast<std::uint64_t>(
                          std::max<TimeNs>(plan_.delay_max, 1))));
    ++*delayed;
  }
  return f;
}

}  // namespace vtopo::sim
