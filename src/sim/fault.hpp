// Deterministic fault injection for the discrete-event simulator.
//
// A FaultPlan is a seeded description of everything that goes wrong in a
// run: scheduled outages (severed or degraded links, crashed or slowed
// nodes, exhausted buffer pools) plus stochastic per-message faults
// (drop / duplicate / delay) sampled from a single Rng stream. Because
// the simulator itself is deterministic, a plan replays byte-identically
// from its seed: the same plan on the same workload produces the same
// event sequence, the same message losses, and the same final state.
//
// The sim layer knows nothing about ARMCI or the torus; event subjects
// are plain integer ids whose meaning is assigned by the layer that
// registers the dispatch handler (armci::Runtime maps them onto nodes,
// virtual-topology edges, and credit banks). A disarmed plan — no rates,
// no events — injects nothing and consumes no randomness, so fault-free
// runs stay byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace vtopo::sim {

/// What a scheduled fault event does. Transient faults carry a duration;
/// the injector dispatches a begin at `at` and an end at `at + duration`.
enum class FaultKind : std::uint8_t {
  kLinkSever,      ///< messages a -> b are lost while active
  kLinkDegrade,    ///< messages a -> b serialize `magnitude`x slower
  kNodeCrash,      ///< arrivals at node `a` are lost while active
  kNodeSlow,       ///< node `a` services requests `magnitude`x slower
  kBufferExhaust,  ///< node `a` loses its free credits toward node `b`
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One scheduled fault: begins at `at`, ends at `at + duration`.
struct FaultEvent {
  TimeNs at = 0;
  FaultKind kind = FaultKind::kLinkSever;
  std::int64_t a = 0;        ///< node / link source
  std::int64_t b = 0;        ///< link destination (link & buffer faults)
  double magnitude = 1.0;    ///< slowdown factor (degrade / slow)
  TimeNs duration = 0;
};

/// A complete, replayable description of a run's faults.
struct FaultPlan {
  /// Seeds the message-fault stream (and nothing else: scheduled events
  /// are listed explicitly so two layers never race for draws).
  std::uint64_t seed = 1;

  /// Per-message fault probabilities, sampled independently per eligible
  /// message. Requests may be dropped, duplicated, or delayed; acks and
  /// responses may be dropped or delayed (never duplicated at the wire —
  /// duplication of their effect comes from request retries).
  double drop_requests = 0.0;
  double drop_acks = 0.0;
  double drop_responses = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  /// Delayed messages arrive uniformly up to this much late.
  TimeNs delay_max = us(50.0);

  std::vector<FaultEvent> events;

  /// True when the plan injects anything at all. A disarmed plan is
  /// behaviorally invisible (no RNG draws, no scheduled events).
  [[nodiscard]] bool armed() const {
    return drop_requests > 0 || drop_acks > 0 || drop_responses > 0 ||
           duplicate_rate > 0 || delay_rate > 0 || !events.empty();
  }

  /// Convenience: set all three drop rates at once.
  void set_drop_rate(double r) {
    drop_requests = drop_acks = drop_responses = r;
  }

  /// Canonical one-line form, parseable by parse(). Example:
  ///   seed=7;drop=0.05;dup=0.01;sever=2-5@100+400;crash=3@250+200
  [[nodiscard]] std::string describe() const;

  /// Parse the describe() syntax. Tokens are ';'-separated key=value
  /// pairs:
  ///   seed=N           drop=R  drop_req=R  drop_ack=R  drop_resp=R
  ///   dup=R            delay=R             delay_max=US
  ///   sever=A-B@T+D    degrade=A-B*F@T+D   crash=A@T+D
  ///   slow=A*F@T+D     exhaust=A-B@T+D
  /// with T and D in simulated microseconds. Returns nullopt (and sets
  /// *err) on malformed input.
  static std::optional<FaultPlan> parse(std::string_view spec,
                                        std::string* err = nullptr);

  /// A seeded random plan: `outages` scheduled link severs plus
  /// `crashes` node crashes over nodes [0, num_nodes), all inside
  /// [0, horizon), with the given message-fault rates. Deterministic in
  /// (seed, arguments); uses its own derived stream so it does not
  /// disturb the message-fault draws.
  static FaultPlan random(std::uint64_t seed, std::int64_t num_nodes,
                          int outages, int crashes, double drop_rate,
                          double dup_rate, double delay_rate,
                          TimeNs horizon);
};

/// Runtime side of a FaultPlan: schedules the begin/end event pairs on
/// the engine and samples per-message faults. The owner registers a
/// dispatch handler that applies each event to the simulated hardware.
class FaultInjector {
 public:
  /// Dispatch callback: `begin` is true at `at`, false at `at+duration`.
  using Handler = std::function<void(const FaultEvent&, bool begin)>;

  FaultInjector(Engine& eng, FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Schedule every event's begin/end on the engine. Call once, before
  /// the simulation runs; events already in the past fire immediately.
  void arm(Handler handler);

  /// Per-message fault decision. At most one of drop/duplicate fires;
  /// delay composes with either survival outcome.
  struct MsgFault {
    bool drop = false;
    bool duplicate = false;
    TimeNs delay = 0;
  };

  /// Message classes with distinct drop rates.
  enum class MsgClass : std::uint8_t { kRequest, kAck, kResponse };

  /// Sample the fate of one eligible message (consumes RNG draws; call
  /// only while the plan is armed and only for fault-eligible traffic).
  /// With sharded streams (shard_streams()) the draw comes from the
  /// stream of the simulated node currently executing.
  [[nodiscard]] MsgFault sample_message(MsgClass cls);

  /// Switch to one independent RNG stream (and counter set) per
  /// simulated node, each derived from (plan seed, node). Under the
  /// sharded engine a single stream would be drawn from concurrently
  /// and in host-dependent order; per-node streams make every draw a
  /// function of the drawing node's own deterministic history, so the
  /// sampled fault sequence is byte-identical at every shard count.
  void shard_streams(int num_nodes);

  // Cumulative sampling outcomes (diagnostics / benches). Sum across
  // node streams; call from the main thread only.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t duplicated() const;
  [[nodiscard]] std::uint64_t delayed() const;

 private:
  /// Per-node sampling stream, cache-line separated: nodes on different
  /// shards draw concurrently during the parallel phase.
  struct alignas(64) NodeStream {
    Rng rng{0};
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };

  Engine* eng_;
  FaultPlan plan_;
  Rng rng_;
  Handler handler_;
  std::vector<NodeStream> node_streams_;  ///< empty in legacy mode
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace vtopo::sim
