// Measurement containers used by benches and tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vtopo::sim {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// A stored sample series with percentile queries. Used for per-rank
/// latency curves (Figs. 6 and 7 plot one point per process rank).
class Series {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  /// Append another series' samples (sharded-tracer fold).
  void append(const Series& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  /// Sort samples ascending: a canonical order independent of which
  /// shard recorded which sample, so folded series compare bytewise
  /// across shard counts.
  void sort_samples() { std::sort(samples_.begin(), samples_.end()); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
};

/// Fixed-bucket log2 histogram for latency distributions (ns scale).
class Log2Histogram {
 public:
  void add(std::int64_t v);
  [[nodiscard]] std::size_t count() const { return total_; }
  /// Bucket i counts values in [2^i, 2^(i+1)); bucket 0 also holds <=1.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(64, 0);
  std::size_t total_ = 0;
};

}  // namespace vtopo::sim
