// Deterministic pseudo-random numbers for workload generation.
//
// xoshiro256** seeded through splitmix64. We avoid <random> engines for
// cross-platform bit-for-bit reproducibility of benches and tests.
#pragma once

#include <cstdint>

namespace vtopo::sim {

/// splitmix64 step; used for seeding and as a cheap hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna), deterministic across
/// platforms and fast enough to sit on a hot simulation path.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Rejection-sampled
  /// to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound) {
    const std::uint64_t limit =
        ~std::uint64_t{0} - (~std::uint64_t{0}) % bound;
    std::uint64_t r = next_u64();
    while (r >= limit) r = next_u64();
    return r % bound;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Derive a stream-specific seed from a run seed and a stream id, so every
/// simulated process gets an independent deterministic stream.
constexpr std::uint64_t derive_seed(std::uint64_t run_seed,
                                    std::uint64_t stream_id) {
  std::uint64_t s = run_seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace vtopo::sim
