// Global Arrays demo: distributed out-of-place matrix transpose with
// dynamic load balancing — the GA programming model (NWChem's) on top
// of the simulated ARMCI runtime.
//
//   $ ./ga_transpose [n]
//
// B = A^T computed by tiles: workers claim tile indices from a shared
// counter (GA NXTVAL), get an A-patch, transpose locally, put the
// B-patch — all one-sided, across whatever virtual topology is chosen.
// Verifies every element afterwards.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "ga/global_array.hpp"

using namespace vtopo;
using armci::Proc;

namespace {

constexpr std::int64_t kTile = 8;

sim::Co<void> worker(Proc& p, ga::GlobalArray2D& a, ga::GlobalArray2D& b,
                     ga::SharedCounter& counter, std::int64_t n) {
  const std::int64_t tiles_per_dim = (n + kTile - 1) / kTile;
  const std::int64_t total = tiles_per_dim * tiles_per_dim;
  co_await p.barrier();
  for (;;) {
    const std::int64_t t = co_await counter.next(p);
    if (t >= total) break;
    const std::int64_t ti = t / tiles_per_dim;
    const std::int64_t tj = t % tiles_per_dim;
    const std::int64_t ilo = ti * kTile;
    const std::int64_t ihi = std::min(ilo + kTile, n);
    const std::int64_t jlo = tj * kTile;
    const std::int64_t jhi = std::min(jlo + kTile, n);
    const std::int64_t rows = ihi - ilo;
    const std::int64_t cols = jhi - jlo;

    std::vector<double> tile(static_cast<std::size_t>(rows * cols));
    co_await a.get(p, ilo, ihi, jlo, jhi, tile.data(), cols);

    std::vector<double> tr(static_cast<std::size_t>(rows * cols));
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        tr[static_cast<std::size_t>(c * rows + r)] =
            tile[static_cast<std::size_t>(r * cols + c)];
      }
    }
    co_await p.compute(sim::us(0.02 * static_cast<double>(rows * cols)));
    co_await b.put(p, jlo, jhi, ilo, ihi, tr.data(), rows);
  }
  co_await p.barrier();
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 48;

  for (const auto kind : core::all_topology_kinds()) {
    sim::Engine engine;
    armci::Runtime::Config cfg;
    cfg.num_nodes = 16;
    cfg.procs_per_node = 4;
    cfg.topology = kind;
    armci::Runtime rt(engine, cfg);

    ga::GlobalArray2D a(rt, n, n);
    ga::GlobalArray2D b(rt, n, n);
    ga::SharedCounter counter(rt);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        a.write_element(i, j, static_cast<double>(i * n + j));
      }
    }

    rt.spawn_all([&](Proc& p) { return worker(p, a, b, counter, n); });
    rt.run_all();

    std::int64_t wrong = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        if (b.read_element(j, i) != static_cast<double>(i * n + j)) {
          ++wrong;
        }
      }
    }
    std::printf("%-18s %lldx%lld transpose: %s, %.1f us simulated, "
                "%llu requests (%llu forwarded)\n",
                rt.topology().name().c_str(), static_cast<long long>(n),
                static_cast<long long>(n),
                wrong == 0 ? "correct" : "WRONG", sim::to_us(engine.now()),
                static_cast<unsigned long long>(rt.stats().requests),
                static_cast<unsigned long long>(rt.stats().forwards));
  }
  return 0;
}
