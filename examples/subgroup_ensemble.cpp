// Subgroup ensemble: NWChem-style process groups running independent
// sub-calculations concurrently — each group has its own GA task
// counter, its own distributed accumulate target, and group-scoped
// collectives; a final cross-group reduction combines the ensemble.
//
//   $ ./subgroup_ensemble [groups]
//
// Demonstrates armci::ProcGroup, ga::SharedCounter per group, and the
// message-based coll::Collectives for the global combine.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "armci/group.hpp"
#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "coll/collectives.hpp"
#include "ga/global_array.hpp"
#include "msg/two_sided.hpp"

using namespace vtopo;
using armci::Proc;

int main(int argc, char** argv) {
  const int num_groups = argc > 1 ? std::atoi(argv[1]) : 4;

  sim::Engine engine;
  armci::Runtime::Config cfg;
  cfg.num_nodes = 32;
  cfg.procs_per_node = 4;
  cfg.topology = core::TopologyKind::kMfcg;
  armci::Runtime rt(engine, cfg);
  msg::TwoSided channel(rt);
  coll::Collectives coll(rt, channel);

  const std::int64_t per_group = rt.num_procs() / num_groups;
  std::vector<std::unique_ptr<armci::ProcGroup>> groups;
  std::vector<std::unique_ptr<ga::SharedCounter>> counters;
  const auto result_off = rt.memory().alloc_all(8 * num_groups);
  for (int g = 0; g < num_groups; ++g) {
    groups.push_back(std::make_unique<armci::ProcGroup>(
        armci::ProcGroup::range(
            rt, static_cast<armci::ProcId>(g * per_group), per_group)));
    // Each group's counter lives on its first member's node.
    counters.push_back(std::make_unique<ga::SharedCounter>(
        rt, static_cast<armci::ProcId>(g * per_group)));
  }

  constexpr std::int64_t kTasksPerGroup = 64;
  double ensemble_total = 0.0;

  rt.spawn_all([&](Proc& p) -> sim::Co<void> {
    const int g = static_cast<int>(p.id() / per_group);
    if (g >= num_groups) co_return;  // remainder procs sit out
    armci::ProcGroup& group = *groups[static_cast<std::size_t>(g)];
    ga::SharedCounter& counter = *counters[static_cast<std::size_t>(g)];
    const auto host = static_cast<armci::ProcId>(g * per_group);

    // Phase 1: group-local dynamic load balancing.
    double local = 0.0;
    for (;;) {
      const std::int64_t t = co_await counter.next(p);
      if (t >= kTasksPerGroup) break;
      co_await p.compute(sim::us(40));
      local += static_cast<double>(g + 1);  // this group's contribution
    }
    // Phase 2: group-scoped sum lands on the group host's cell.
    const double group_sum = co_await group.allreduce_sum(p.id(), local);
    if (p.id() == host) {
      p.runtime().memory().write_f64(
          armci::GAddr{0, result_off + g * 8}, group_sum);
    }
    co_await group.barrier(p.id());

    // Phase 3: global combine over ALL processes via message-based
    // collectives (hosts contribute their group sums).
    const double mine =
        p.id() == host ? group_sum : 0.0;
    const double total = co_await coll.allreduce_sum(p, mine);
    if (p.id() == 0) ensemble_total = total;
  });
  rt.run_all();

  std::printf("groups=%d procs/group=%lld tasks/group=%lld\n", num_groups,
              static_cast<long long>(per_group),
              static_cast<long long>(kTasksPerGroup));
  double expect = 0.0;
  for (int g = 0; g < num_groups; ++g) {
    const double sum =
        rt.memory().read_f64(armci::GAddr{0, result_off + g * 8});
    std::printf("  group %d sum = %.0f (expected %.0f)\n", g, sum,
                static_cast<double>((g + 1) * kTasksPerGroup));
    expect += static_cast<double>((g + 1) * kTasksPerGroup);
  }
  std::printf("ensemble total = %.0f (expected %.0f) — %s\n",
              ensemble_total, expect,
              ensemble_total == expect ? "correct" : "WRONG");
  std::printf("simulated time %.1f us, %llu messages\n",
              sim::to_us(engine.now()),
              static_cast<unsigned long long>(channel.messages()));
  return 0;
}
