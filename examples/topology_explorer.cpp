// Topology explorer: inspect the core library without the simulator.
//
//   $ ./topology_explorer <nodes> [fcg|mfcg|cfcg|hypercube] [src dst]
//
// Prints the chosen topology's shape, node 0's buffer edges, the
// request-path tree rooted at node 0, the Fig.-5 memory estimate, the
// deadlock-freedom verdict of the dependency analysis — and, if src/dst
// are given, the LDF forwarding route between them.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dependency_graph.hpp"
#include "core/dot_export.hpp"
#include "core/memory_model.hpp"
#include "core/tree_analysis.hpp"

using namespace vtopo;

namespace {

core::TopologyKind parse_kind(const char* s) {
  const std::string k(s);
  if (k == "fcg") return core::TopologyKind::kFcg;
  if (k == "mfcg") return core::TopologyKind::kMfcg;
  if (k == "cfcg") return core::TopologyKind::kCfcg;
  if (k == "hypercube") return core::TopologyKind::kHypercube;
  std::fprintf(stderr, "unknown topology '%s'\n", s);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <nodes> [fcg|mfcg|cfcg|hypercube] [src dst]\n",
                 argv[0]);
    return 1;
  }
  const std::int64_t nodes = std::atoll(argv[1]);
  const core::TopologyKind kind =
      argc > 2 ? parse_kind(argv[2]) : core::TopologyKind::kMfcg;

  const auto topo = core::VirtualTopology::make(kind, nodes);
  std::printf("topology      %s, %lld nodes", topo.name().c_str(),
              static_cast<long long>(nodes));
  if (topo.shape().capacity() != nodes) {
    std::printf(" (partially populated %s grid)",
                topo.shape().to_string().c_str());
  }
  std::printf("\nmax forwards  %d\n", topo.max_forwards());

  std::printf("node 0 edges  %lld:", static_cast<long long>(topo.degree(0)));
  int shown = 0;
  for (const auto v : topo.neighbors(0)) {
    if (shown++ == 16) {
      std::printf(" ...");
      break;
    }
    std::printf(" %d", v);
  }
  std::printf("\n");

  const auto tree = core::build_request_tree(topo, 0);
  std::printf("request tree  height %d, root fanout %lld, depths:",
              tree.height(), static_cast<long long>(tree.root_fanout()));
  const auto hist = tree.depth_histogram();
  for (std::size_t d = 1; d < hist.size(); ++d) {
    std::printf(" d%zu=%lld", d, static_cast<long long>(hist[d]));
  }
  std::printf("\n");

  const core::MemoryParams mp;
  std::printf("CHT buffers   %.1f MB on node 0 (VmRSS estimate %.1f MB)\n",
              static_cast<double>(core::cht_buffer_bytes(topo, 0, mp)) /
                  (1024.0 * 1024.0),
              core::master_process_rss_mb(topo, 0, mp));

  if (nodes <= 512) {
    const core::DependencyGraph dep(topo);
    std::printf("forwarding    %zu buffer edges, %zu dependencies, %s\n",
                dep.num_resources(), dep.num_dependencies(),
                dep.acyclic() ? "deadlock-free (acyclic)" : "CYCLIC");
  } else {
    std::printf("forwarding    (dependency analysis skipped for N > 512)\n");
  }

  if (argc > 2 && std::string(argv[argc - 1]) == "--dot") {
    std::printf("%s", core::to_dot(topo).c_str());
    std::printf("%s", core::tree_to_dot(topo, 0).c_str());
    return 0;
  }

  if (argc > 4) {
    const auto src = static_cast<core::NodeId>(std::atoi(argv[3]));
    const auto dst = static_cast<core::NodeId>(std::atoi(argv[4]));
    std::printf("route %d -> %d:", src, dst);
    core::NodeId cur = src;
    for (const auto hop : topo.route(src, dst)) {
      std::printf(" %d ->", cur);
      cur = hop;
    }
    std::printf(" %d (%zu hops)\n", dst, topo.route(src, dst).size());
  }
  return 0;
}
