// Quickstart: the vtopo public API in one file.
//
// Builds a 16-node simulated cluster running the ARMCI-like GAS runtime
// over an MFCG virtual topology, then exercises the main one-sided
// operation families from coroutine "process programs":
//
//   $ ./quickstart
//
// Every simulated process is a C++20 coroutine; ARMCI operations are
// awaitables that complete at the simulated instant the real operation
// would. The final printout shows both data results (computed through
// the real global-memory semantics) and the protocol counters.
#include <cstdio>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"

using namespace vtopo;
using armci::GAddr;
using armci::Proc;

namespace {

// Shared experiment addresses (host-side plain struct).
struct Layout {
  std::int64_t counter;  // fetch-&-add cell on rank 0
  std::int64_t vec;      // per-process vector strip on rank 0
  std::int64_t sum;      // accumulate target on rank 0
};

sim::Co<void> program(Proc& p, const Layout& lay) {
  // 1. Dynamic-load-balancing idiom: grab a ticket from a global
  //    counter owned by rank 0 (ARMCI_Rmw / GA NXTVAL).
  const std::int64_t ticket =
      co_await p.fetch_add(GAddr{0, lay.counter}, 1);

  // 2. Contiguous one-sided put: direct RDMA, bypasses the CHT.
  std::vector<std::uint8_t> payload(64,
                                    static_cast<std::uint8_t>(p.id()));
  co_await p.put(GAddr{0, lay.vec + p.id() * 64}, payload);

  // 3. Noncontiguous (vectored) put: CHT-mediated, travels the virtual
  //    topology and may be forwarded by intermediate nodes.
  const armci::PutSeg seg{payload, lay.vec + p.id() * 64};
  co_await p.put_v(/*target=*/0, {&seg, 1});

  // 4. Atomic accumulate: sum += id at rank 0.
  const std::vector<double> contrib{static_cast<double>(p.id())};
  co_await p.acc_f64(GAddr{0, lay.sum}, contrib, 1.0);

  // 5. Mutual exclusion via a remote mutex hosted by rank 0.
  co_await p.lock(0, 0);
  co_await p.compute(sim::us(2));  // critical section work
  co_await p.unlock(0, 0);

  // 6. Collective rendezvous.
  co_await p.barrier();

  if (ticket == 0) {
    std::printf("process %d drew ticket 0 at simulated t=%.1f us\n",
                p.id(), sim::to_us(p.runtime().engine().now()));
  }
}

}  // namespace

int main() {
  sim::Engine engine;

  armci::Runtime::Config cfg;
  cfg.num_nodes = 16;          // simulated physical nodes
  cfg.procs_per_node = 4;      // application processes per node
  cfg.topology = core::TopologyKind::kMfcg;  // the paper's winner

  armci::Runtime rt(engine, cfg);
  std::printf("cluster: %lld procs on %lld nodes, topology %s\n",
              static_cast<long long>(rt.num_procs()),
              static_cast<long long>(rt.num_nodes()),
              rt.topology().name().c_str());

  Layout lay{};
  lay.counter = rt.memory().alloc_all(8);
  lay.vec = rt.memory().alloc_all(64 * rt.num_procs());
  lay.sum = rt.memory().alloc_all(8);

  rt.spawn_all([lay](Proc& p) { return program(p, lay); });
  rt.run_all();

  // Validate results through the global memory.
  const std::int64_t n = rt.num_procs();
  std::printf("counter: %lld (expected %lld)\n",
              static_cast<long long>(
                  rt.memory().read_i64(GAddr{0, lay.counter})),
              static_cast<long long>(n));
  std::printf("sum of ids: %.0f (expected %.0f)\n",
              rt.memory().read_f64(GAddr{0, lay.sum}),
              static_cast<double>(n * (n - 1) / 2));

  const auto& st = rt.stats();
  std::printf("protocol: %llu requests, %llu forwards, %llu acks, "
              "%llu direct RDMA ops\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.forwards),
              static_cast<unsigned long long>(st.acks),
              static_cast<unsigned long long>(st.direct_ops));
  std::printf("simulated wall time: %.1f us\n",
              sim::to_us(engine.now()));
  return 0;
}
