// Hot-spot demo: dynamic load balancing off one global counter — the
// communication pattern that motivated the paper — run back-to-back on
// all four virtual topologies.
//
//   $ ./hotspot_counter [tasks_per_proc]
//
// Every process claims tasks with fetch-&-add on a counter owned by
// rank 0 and "computes" briefly per task. With FCG, rank 0's node sees
// one message stream per process and melts down; MFCG funnels the same
// load through ~2*sqrt(N) neighbor CHT streams.
#include <cstdio>
#include <cstdlib>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "workloads/task_pool.hpp"

using namespace vtopo;
using armci::GAddr;
using armci::Proc;

int main(int argc, char** argv) {
  const std::int64_t tasks_per_proc = argc > 1 ? std::atoll(argv[1]) : 8;

  std::printf("%-12s %10s %12s %12s %14s\n", "topology", "time_ms",
              "forwards", "cht_wakeups", "blocked_ms");
  double fcg_ms = 0;
  for (const auto kind : core::all_topology_kinds()) {
    sim::Engine engine;
    armci::Runtime::Config cfg;
    cfg.num_nodes = 128;
    cfg.procs_per_node = 4;
    cfg.topology = kind;
    armci::Runtime rt(engine, cfg);

    const auto counter = rt.memory().alloc_all(8);
    const std::int64_t total = tasks_per_proc * rt.num_procs();

    rt.spawn_all([counter, total](Proc& p) -> sim::Co<void> {
      const work::TaskPool pool{GAddr{0, counter}, total, 1};
      co_await work::drain_task_pool(
          p, pool, [&p](std::int64_t) -> sim::Co<void> {
            co_await p.compute(sim::us(150));
          });
      co_await p.barrier();
    });
    rt.run_all();

    const double ms = sim::to_sec(engine.now()) * 1e3;
    if (kind == core::TopologyKind::kFcg) fcg_ms = ms;
    std::printf("%-12s %10.2f %12llu %12llu %14.2f\n",
                rt.topology().name().c_str(), ms,
                static_cast<unsigned long long>(rt.stats().forwards),
                static_cast<unsigned long long>(rt.stats().cht_wakeups),
                static_cast<double>(rt.stats().credit_blocked_ns) / 1e6);
    if (kind != core::TopologyKind::kFcg) {
      std::printf("%12s -> %.0f%% of the FCG time\n", "",
                  100.0 * ms / fcg_ms);
    }
  }
  return 0;
}
