// Halo exchange: the classic structured-grid pattern implemented with
// strided one-sided puts, with a correctness check of every ghost cell.
//
//   $ ./halo_exchange [steps]
//
// Each process owns a tile of a global 2-D field and pushes its edge
// rows/columns into its four neighbors' ghost regions each step using
// put_strided (noncontiguous, CHT-mediated — the operation family
// Fig. 6 measures). Shows that the virtual topology is transparent to
// application correctness.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "core/coords.hpp"

using namespace vtopo;
using armci::GAddr;
using armci::Proc;

namespace {

constexpr int kTile = 16;  // local tile edge (doubles)

struct Field {
  std::int64_t tile;    // kTile x kTile owned cells
  std::int64_t ghosts;  // 4 edges of kTile cells: W,E,N,S
  std::int32_t px, py;
};

sim::Co<void> step_program(Proc& p, std::shared_ptr<Field> f, int steps,
                           std::shared_ptr<std::vector<int>> errors) {
  const std::int32_t ix = p.id() % f->px;
  const std::int32_t iy = static_cast<std::int32_t>(p.id() / f->px);
  auto neighbor = [&](int dx, int dy) -> armci::ProcId {
    const std::int32_t nx = (ix + dx + f->px) % f->px;
    const std::int32_t ny =
        (iy + dy + f->py) % f->py;
    return static_cast<armci::ProcId>(ny * f->px + nx);
  };

  armci::GlobalMemory& mem = p.runtime().memory();
  // Fill the owned tile with a recognizable pattern: value = id.
  std::vector<double> mine(kTile * kTile, static_cast<double>(p.id()));
  mem.write(GAddr{p.id(), f->tile},
            {reinterpret_cast<const std::uint8_t*>(mine.data()),
             mine.size() * sizeof(double)});
  co_await p.barrier();

  for (int s = 0; s < steps; ++s) {
    const auto* tile_bytes =
        reinterpret_cast<const std::uint8_t*>(mine.data());
    // East edge (last column) -> east neighbor's West ghost strip,
    // one strided put: kTile rows of 8 bytes, row stride kTile*8.
    co_await p.put_strided(GAddr{neighbor(+1, 0), f->ghosts}, 8,
                           tile_bytes + (kTile - 1) * 8, kTile * 8, 8,
                           kTile);
    // West edge -> west neighbor's East ghosts.
    co_await p.put_strided(
        GAddr{neighbor(-1, 0), f->ghosts + kTile * 8}, 8, tile_bytes,
        kTile * 8, 8, kTile);
    // South edge (last row) -> south neighbor's North ghosts
    // (contiguous, still via the vectored path).
    co_await p.put_strided(
        GAddr{neighbor(0, +1), f->ghosts + 2 * kTile * 8}, 8,
        tile_bytes + (kTile - 1) * kTile * 8, 8, 8, kTile);
    // North edge -> north neighbor's South ghosts.
    co_await p.put_strided(
        GAddr{neighbor(0, -1), f->ghosts + 3 * kTile * 8}, 8, tile_bytes,
        8, 8, kTile);
    co_await p.barrier();

    // Verify all four ghost strips hold the neighbor ids.
    const double expect[4] = {
        static_cast<double>(neighbor(-1, 0)),
        static_cast<double>(neighbor(+1, 0)),
        static_cast<double>(neighbor(0, -1)),
        static_cast<double>(neighbor(0, +1)),
    };
    for (int edge = 0; edge < 4; ++edge) {
      for (int i = 0; i < kTile; ++i) {
        const double got = mem.read_f64(
            GAddr{p.id(), f->ghosts + (edge * kTile + i) * 8});
        if (got != expect[edge]) {
          ++(*errors)[static_cast<std::size_t>(p.id())];
        }
      }
    }
    co_await p.barrier();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 4;

  for (const auto kind : core::all_topology_kinds()) {
    sim::Engine engine;
    armci::Runtime::Config cfg;
    cfg.num_nodes = 16;
    cfg.procs_per_node = 4;
    cfg.topology = kind;
    armci::Runtime rt(engine, cfg);

    auto field = std::make_shared<Field>();
    const core::Shape grid = core::mesh_shape_for(rt.num_procs());
    field->px = grid.dim(0);
    field->py = grid.dim(1);
    field->tile = rt.memory().alloc_all(kTile * kTile * 8);
    field->ghosts = rt.memory().alloc_all(4 * kTile * 8);
    auto errors = std::make_shared<std::vector<int>>(
        static_cast<std::size_t>(rt.num_procs()), 0);

    rt.spawn_all([field, steps, errors](Proc& p) {
      return step_program(p, field, steps, errors);
    });
    rt.run_all();

    int total_errors = 0;
    for (const int e : *errors) total_errors += e;
    std::printf("%-16s %2d steps on %dx%d grid: %s (%.1f us simulated)\n",
                rt.topology().name().c_str(), steps, field->px, field->py,
                total_errors == 0 ? "all ghosts correct"
                                  : "GHOST ERRORS",
                sim::to_us(engine.now()));
  }
  return 0;
}
