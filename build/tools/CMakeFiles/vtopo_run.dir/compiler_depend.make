# Empty compiler generated dependencies file for vtopo_run.
# This may be replaced when dependencies are built.
