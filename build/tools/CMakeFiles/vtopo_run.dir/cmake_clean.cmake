file(REMOVE_RECURSE
  "CMakeFiles/vtopo_run.dir/vtopo_run.cpp.o"
  "CMakeFiles/vtopo_run.dir/vtopo_run.cpp.o.d"
  "vtopo_run"
  "vtopo_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
