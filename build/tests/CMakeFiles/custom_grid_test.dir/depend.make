# Empty dependencies file for custom_grid_test.
# This may be replaced when dependencies are built.
