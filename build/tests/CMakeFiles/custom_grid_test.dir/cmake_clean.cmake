file(REMOVE_RECURSE
  "CMakeFiles/custom_grid_test.dir/core/custom_grid_test.cpp.o"
  "CMakeFiles/custom_grid_test.dir/core/custom_grid_test.cpp.o.d"
  "custom_grid_test"
  "custom_grid_test.pdb"
  "custom_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
