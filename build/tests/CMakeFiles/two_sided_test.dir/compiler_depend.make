# Empty compiler generated dependencies file for two_sided_test.
# This may be replaced when dependencies are built.
