file(REMOVE_RECURSE
  "CMakeFiles/two_sided_test.dir/msg/two_sided_test.cpp.o"
  "CMakeFiles/two_sided_test.dir/msg/two_sided_test.cpp.o.d"
  "two_sided_test"
  "two_sided_test.pdb"
  "two_sided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_sided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
