file(REMOVE_RECURSE
  "CMakeFiles/global_array_test.dir/ga/global_array_test.cpp.o"
  "CMakeFiles/global_array_test.dir/ga/global_array_test.cpp.o.d"
  "global_array_test"
  "global_array_test.pdb"
  "global_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
