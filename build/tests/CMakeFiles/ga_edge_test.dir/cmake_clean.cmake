file(REMOVE_RECURSE
  "CMakeFiles/ga_edge_test.dir/ga/ga_edge_test.cpp.o"
  "CMakeFiles/ga_edge_test.dir/ga/ga_edge_test.cpp.o.d"
  "ga_edge_test"
  "ga_edge_test.pdb"
  "ga_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
