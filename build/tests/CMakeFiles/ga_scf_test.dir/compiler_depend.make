# Empty compiler generated dependencies file for ga_scf_test.
# This may be replaced when dependencies are built.
