file(REMOVE_RECURSE
  "CMakeFiles/ga_scf_test.dir/integration/ga_scf_test.cpp.o"
  "CMakeFiles/ga_scf_test.dir/integration/ga_scf_test.cpp.o.d"
  "ga_scf_test"
  "ga_scf_test.pdb"
  "ga_scf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_scf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
