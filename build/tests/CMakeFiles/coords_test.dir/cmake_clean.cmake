file(REMOVE_RECURSE
  "CMakeFiles/coords_test.dir/core/coords_test.cpp.o"
  "CMakeFiles/coords_test.dir/core/coords_test.cpp.o.d"
  "coords_test"
  "coords_test.pdb"
  "coords_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
