# Empty dependencies file for tree_reduce_test.
# This may be replaced when dependencies are built.
