file(REMOVE_RECURSE
  "CMakeFiles/tree_reduce_test.dir/coll/tree_reduce_test.cpp.o"
  "CMakeFiles/tree_reduce_test.dir/coll/tree_reduce_test.cpp.o.d"
  "tree_reduce_test"
  "tree_reduce_test.pdb"
  "tree_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
