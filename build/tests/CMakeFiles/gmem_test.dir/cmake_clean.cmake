file(REMOVE_RECURSE
  "CMakeFiles/gmem_test.dir/armci/gmem_test.cpp.o"
  "CMakeFiles/gmem_test.dir/armci/gmem_test.cpp.o.d"
  "gmem_test"
  "gmem_test.pdb"
  "gmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
