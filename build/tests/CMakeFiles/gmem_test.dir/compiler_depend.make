# Empty compiler generated dependencies file for gmem_test.
# This may be replaced when dependencies are built.
