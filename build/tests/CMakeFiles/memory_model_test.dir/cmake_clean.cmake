file(REMOVE_RECURSE
  "CMakeFiles/memory_model_test.dir/core/memory_model_test.cpp.o"
  "CMakeFiles/memory_model_test.dir/core/memory_model_test.cpp.o.d"
  "memory_model_test"
  "memory_model_test.pdb"
  "memory_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
