file(REMOVE_RECURSE
  "libvtopo_armci.a"
)
