file(REMOVE_RECURSE
  "CMakeFiles/vtopo_armci.dir/cht.cpp.o"
  "CMakeFiles/vtopo_armci.dir/cht.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/group.cpp.o"
  "CMakeFiles/vtopo_armci.dir/group.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/memory.cpp.o"
  "CMakeFiles/vtopo_armci.dir/memory.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/proc.cpp.o"
  "CMakeFiles/vtopo_armci.dir/proc.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/request.cpp.o"
  "CMakeFiles/vtopo_armci.dir/request.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/runtime.cpp.o"
  "CMakeFiles/vtopo_armci.dir/runtime.cpp.o.d"
  "CMakeFiles/vtopo_armci.dir/trace.cpp.o"
  "CMakeFiles/vtopo_armci.dir/trace.cpp.o.d"
  "libvtopo_armci.a"
  "libvtopo_armci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
