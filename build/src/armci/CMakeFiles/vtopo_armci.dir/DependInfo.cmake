
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/armci/cht.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/cht.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/cht.cpp.o.d"
  "/root/repo/src/armci/group.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/group.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/group.cpp.o.d"
  "/root/repo/src/armci/memory.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/memory.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/memory.cpp.o.d"
  "/root/repo/src/armci/proc.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/proc.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/proc.cpp.o.d"
  "/root/repo/src/armci/request.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/request.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/request.cpp.o.d"
  "/root/repo/src/armci/runtime.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/runtime.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/runtime.cpp.o.d"
  "/root/repo/src/armci/trace.cpp" "src/armci/CMakeFiles/vtopo_armci.dir/trace.cpp.o" "gcc" "src/armci/CMakeFiles/vtopo_armci.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vtopo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vtopo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vtopo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
