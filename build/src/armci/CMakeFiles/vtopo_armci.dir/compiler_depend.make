# Empty compiler generated dependencies file for vtopo_armci.
# This may be replaced when dependencies are built.
