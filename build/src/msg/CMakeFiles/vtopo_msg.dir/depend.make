# Empty dependencies file for vtopo_msg.
# This may be replaced when dependencies are built.
