file(REMOVE_RECURSE
  "CMakeFiles/vtopo_msg.dir/two_sided.cpp.o"
  "CMakeFiles/vtopo_msg.dir/two_sided.cpp.o.d"
  "libvtopo_msg.a"
  "libvtopo_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
