file(REMOVE_RECURSE
  "libvtopo_msg.a"
)
