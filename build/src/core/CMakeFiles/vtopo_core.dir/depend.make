# Empty dependencies file for vtopo_core.
# This may be replaced when dependencies are built.
