file(REMOVE_RECURSE
  "libvtopo_core.a"
)
