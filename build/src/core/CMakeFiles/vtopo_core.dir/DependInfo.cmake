
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coords.cpp" "src/core/CMakeFiles/vtopo_core.dir/coords.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/coords.cpp.o.d"
  "/root/repo/src/core/dependency_graph.cpp" "src/core/CMakeFiles/vtopo_core.dir/dependency_graph.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/core/dot_export.cpp" "src/core/CMakeFiles/vtopo_core.dir/dot_export.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/dot_export.cpp.o.d"
  "/root/repo/src/core/forwarding.cpp" "src/core/CMakeFiles/vtopo_core.dir/forwarding.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/forwarding.cpp.o.d"
  "/root/repo/src/core/memory_model.cpp" "src/core/CMakeFiles/vtopo_core.dir/memory_model.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/memory_model.cpp.o.d"
  "/root/repo/src/core/recommend.cpp" "src/core/CMakeFiles/vtopo_core.dir/recommend.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/recommend.cpp.o.d"
  "/root/repo/src/core/remap.cpp" "src/core/CMakeFiles/vtopo_core.dir/remap.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/remap.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/vtopo_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/topology.cpp.o.d"
  "/root/repo/src/core/tree_analysis.cpp" "src/core/CMakeFiles/vtopo_core.dir/tree_analysis.cpp.o" "gcc" "src/core/CMakeFiles/vtopo_core.dir/tree_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vtopo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
