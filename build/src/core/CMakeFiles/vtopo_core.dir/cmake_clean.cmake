file(REMOVE_RECURSE
  "CMakeFiles/vtopo_core.dir/coords.cpp.o"
  "CMakeFiles/vtopo_core.dir/coords.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/dependency_graph.cpp.o"
  "CMakeFiles/vtopo_core.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/dot_export.cpp.o"
  "CMakeFiles/vtopo_core.dir/dot_export.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/forwarding.cpp.o"
  "CMakeFiles/vtopo_core.dir/forwarding.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/memory_model.cpp.o"
  "CMakeFiles/vtopo_core.dir/memory_model.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/recommend.cpp.o"
  "CMakeFiles/vtopo_core.dir/recommend.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/remap.cpp.o"
  "CMakeFiles/vtopo_core.dir/remap.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/topology.cpp.o"
  "CMakeFiles/vtopo_core.dir/topology.cpp.o.d"
  "CMakeFiles/vtopo_core.dir/tree_analysis.cpp.o"
  "CMakeFiles/vtopo_core.dir/tree_analysis.cpp.o.d"
  "libvtopo_core.a"
  "libvtopo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
