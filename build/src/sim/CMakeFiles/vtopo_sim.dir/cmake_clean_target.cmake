file(REMOVE_RECURSE
  "libvtopo_sim.a"
)
