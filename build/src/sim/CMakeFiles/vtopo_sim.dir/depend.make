# Empty dependencies file for vtopo_sim.
# This may be replaced when dependencies are built.
