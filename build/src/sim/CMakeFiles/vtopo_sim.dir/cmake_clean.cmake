file(REMOVE_RECURSE
  "CMakeFiles/vtopo_sim.dir/rng.cpp.o"
  "CMakeFiles/vtopo_sim.dir/rng.cpp.o.d"
  "CMakeFiles/vtopo_sim.dir/stats.cpp.o"
  "CMakeFiles/vtopo_sim.dir/stats.cpp.o.d"
  "libvtopo_sim.a"
  "libvtopo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
