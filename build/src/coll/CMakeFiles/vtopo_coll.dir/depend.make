# Empty dependencies file for vtopo_coll.
# This may be replaced when dependencies are built.
