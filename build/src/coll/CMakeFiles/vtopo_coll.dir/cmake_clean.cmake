file(REMOVE_RECURSE
  "CMakeFiles/vtopo_coll.dir/collectives.cpp.o"
  "CMakeFiles/vtopo_coll.dir/collectives.cpp.o.d"
  "CMakeFiles/vtopo_coll.dir/tree_reduce.cpp.o"
  "CMakeFiles/vtopo_coll.dir/tree_reduce.cpp.o.d"
  "libvtopo_coll.a"
  "libvtopo_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
