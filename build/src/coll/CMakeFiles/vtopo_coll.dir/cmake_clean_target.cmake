file(REMOVE_RECURSE
  "libvtopo_coll.a"
)
