# Empty dependencies file for vtopo_net.
# This may be replaced when dependencies are built.
