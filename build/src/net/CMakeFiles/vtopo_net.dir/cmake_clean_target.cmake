file(REMOVE_RECURSE
  "libvtopo_net.a"
)
