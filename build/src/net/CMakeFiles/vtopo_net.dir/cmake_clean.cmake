file(REMOVE_RECURSE
  "CMakeFiles/vtopo_net.dir/network.cpp.o"
  "CMakeFiles/vtopo_net.dir/network.cpp.o.d"
  "CMakeFiles/vtopo_net.dir/torus.cpp.o"
  "CMakeFiles/vtopo_net.dir/torus.cpp.o.d"
  "libvtopo_net.a"
  "libvtopo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
