
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/contention.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/contention.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/contention.cpp.o.d"
  "/root/repo/src/workloads/nas_lu.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/nas_lu.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/nas_lu.cpp.o.d"
  "/root/repo/src/workloads/nwchem_ccsd.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/nwchem_ccsd.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/nwchem_ccsd.cpp.o.d"
  "/root/repo/src/workloads/nwchem_dft.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/nwchem_dft.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/nwchem_dft.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/task_pool.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/task_pool.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/task_pool.cpp.o.d"
  "/root/repo/src/workloads/trace_replay.cpp" "src/workloads/CMakeFiles/vtopo_workloads.dir/trace_replay.cpp.o" "gcc" "src/workloads/CMakeFiles/vtopo_workloads.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/armci/CMakeFiles/vtopo_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vtopo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vtopo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vtopo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
