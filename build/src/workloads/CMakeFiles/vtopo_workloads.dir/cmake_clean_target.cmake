file(REMOVE_RECURSE
  "libvtopo_workloads.a"
)
