file(REMOVE_RECURSE
  "CMakeFiles/vtopo_workloads.dir/contention.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/contention.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/nas_lu.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/nas_lu.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/nwchem_ccsd.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/nwchem_ccsd.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/nwchem_dft.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/nwchem_dft.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/task_pool.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/task_pool.cpp.o.d"
  "CMakeFiles/vtopo_workloads.dir/trace_replay.cpp.o"
  "CMakeFiles/vtopo_workloads.dir/trace_replay.cpp.o.d"
  "libvtopo_workloads.a"
  "libvtopo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
