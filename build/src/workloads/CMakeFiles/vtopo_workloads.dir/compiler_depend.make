# Empty compiler generated dependencies file for vtopo_workloads.
# This may be replaced when dependencies are built.
