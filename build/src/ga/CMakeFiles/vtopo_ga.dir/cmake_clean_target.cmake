file(REMOVE_RECURSE
  "libvtopo_ga.a"
)
