file(REMOVE_RECURSE
  "CMakeFiles/vtopo_ga.dir/global_array.cpp.o"
  "CMakeFiles/vtopo_ga.dir/global_array.cpp.o.d"
  "CMakeFiles/vtopo_ga.dir/summa.cpp.o"
  "CMakeFiles/vtopo_ga.dir/summa.cpp.o.d"
  "libvtopo_ga.a"
  "libvtopo_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtopo_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
