
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ga/global_array.cpp" "src/ga/CMakeFiles/vtopo_ga.dir/global_array.cpp.o" "gcc" "src/ga/CMakeFiles/vtopo_ga.dir/global_array.cpp.o.d"
  "/root/repo/src/ga/summa.cpp" "src/ga/CMakeFiles/vtopo_ga.dir/summa.cpp.o" "gcc" "src/ga/CMakeFiles/vtopo_ga.dir/summa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/armci/CMakeFiles/vtopo_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vtopo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vtopo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vtopo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
