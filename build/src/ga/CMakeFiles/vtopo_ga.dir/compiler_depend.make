# Empty compiler generated dependencies file for vtopo_ga.
# This may be replaced when dependencies are built.
