# Empty dependencies file for subgroup_ensemble.
# This may be replaced when dependencies are built.
