file(REMOVE_RECURSE
  "CMakeFiles/subgroup_ensemble.dir/subgroup_ensemble.cpp.o"
  "CMakeFiles/subgroup_ensemble.dir/subgroup_ensemble.cpp.o.d"
  "subgroup_ensemble"
  "subgroup_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgroup_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
