# Empty compiler generated dependencies file for ga_transpose.
# This may be replaced when dependencies are built.
