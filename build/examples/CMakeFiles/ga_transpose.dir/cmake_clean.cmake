file(REMOVE_RECURSE
  "CMakeFiles/ga_transpose.dir/ga_transpose.cpp.o"
  "CMakeFiles/ga_transpose.dir/ga_transpose.cpp.o.d"
  "ga_transpose"
  "ga_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
