file(REMOVE_RECURSE
  "CMakeFiles/hotspot_counter.dir/hotspot_counter.cpp.o"
  "CMakeFiles/hotspot_counter.dir/hotspot_counter.cpp.o.d"
  "hotspot_counter"
  "hotspot_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
