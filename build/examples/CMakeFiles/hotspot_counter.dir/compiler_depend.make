# Empty compiler generated dependencies file for hotspot_counter.
# This may be replaced when dependencies are built.
