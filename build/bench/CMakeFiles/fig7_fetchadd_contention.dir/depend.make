# Empty dependencies file for fig7_fetchadd_contention.
# This may be replaced when dependencies are built.
