file(REMOVE_RECURSE
  "CMakeFiles/fig7_fetchadd_contention.dir/fig7_fetchadd_contention.cpp.o"
  "CMakeFiles/fig7_fetchadd_contention.dir/fig7_fetchadd_contention.cpp.o.d"
  "fig7_fetchadd_contention"
  "fig7_fetchadd_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fetchadd_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
