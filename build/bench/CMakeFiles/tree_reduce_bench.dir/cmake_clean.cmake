file(REMOVE_RECURSE
  "CMakeFiles/tree_reduce_bench.dir/tree_reduce_bench.cpp.o"
  "CMakeFiles/tree_reduce_bench.dir/tree_reduce_bench.cpp.o.d"
  "tree_reduce_bench"
  "tree_reduce_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_reduce_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
