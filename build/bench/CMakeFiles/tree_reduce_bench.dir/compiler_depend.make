# Empty compiler generated dependencies file for tree_reduce_bench.
# This may be replaced when dependencies are built.
