file(REMOVE_RECURSE
  "CMakeFiles/ga_patch_bench.dir/ga_patch_bench.cpp.o"
  "CMakeFiles/ga_patch_bench.dir/ga_patch_bench.cpp.o.d"
  "ga_patch_bench"
  "ga_patch_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_patch_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
