# Empty dependencies file for ga_patch_bench.
# This may be replaced when dependencies are built.
