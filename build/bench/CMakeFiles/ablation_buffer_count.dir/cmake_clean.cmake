file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_count.dir/ablation_buffer_count.cpp.o"
  "CMakeFiles/ablation_buffer_count.dir/ablation_buffer_count.cpp.o.d"
  "ablation_buffer_count"
  "ablation_buffer_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
