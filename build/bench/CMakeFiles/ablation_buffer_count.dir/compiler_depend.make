# Empty compiler generated dependencies file for ablation_buffer_count.
# This may be replaced when dependencies are built.
