# Empty compiler generated dependencies file for fig9_nwchem.
# This may be replaced when dependencies are built.
