file(REMOVE_RECURSE
  "CMakeFiles/fig9_nwchem.dir/fig9_nwchem.cpp.o"
  "CMakeFiles/fig9_nwchem.dir/fig9_nwchem.cpp.o.d"
  "fig9_nwchem"
  "fig9_nwchem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_nwchem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
