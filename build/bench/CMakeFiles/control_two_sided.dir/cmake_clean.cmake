file(REMOVE_RECURSE
  "CMakeFiles/control_two_sided.dir/control_two_sided.cpp.o"
  "CMakeFiles/control_two_sided.dir/control_two_sided.cpp.o.d"
  "control_two_sided"
  "control_two_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_two_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
