# Empty compiler generated dependencies file for control_two_sided.
# This may be replaced when dependencies are built.
