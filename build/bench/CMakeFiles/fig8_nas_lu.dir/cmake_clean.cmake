file(REMOVE_RECURSE
  "CMakeFiles/fig8_nas_lu.dir/fig8_nas_lu.cpp.o"
  "CMakeFiles/fig8_nas_lu.dir/fig8_nas_lu.cpp.o.d"
  "fig8_nas_lu"
  "fig8_nas_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nas_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
