# Empty compiler generated dependencies file for fig8_nas_lu.
# This may be replaced when dependencies are built.
