file(REMOVE_RECURSE
  "CMakeFiles/future_bgp.dir/future_bgp.cpp.o"
  "CMakeFiles/future_bgp.dir/future_bgp.cpp.o.d"
  "future_bgp"
  "future_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
