# Empty compiler generated dependencies file for future_bgp.
# This may be replaced when dependencies are built.
