file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_table.dir/ablation_stream_table.cpp.o"
  "CMakeFiles/ablation_stream_table.dir/ablation_stream_table.cpp.o.d"
  "ablation_stream_table"
  "ablation_stream_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
