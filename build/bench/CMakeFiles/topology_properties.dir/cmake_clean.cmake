file(REMOVE_RECURSE
  "CMakeFiles/topology_properties.dir/topology_properties.cpp.o"
  "CMakeFiles/topology_properties.dir/topology_properties.cpp.o.d"
  "topology_properties"
  "topology_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
