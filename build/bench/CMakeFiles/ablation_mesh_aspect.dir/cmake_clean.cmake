file(REMOVE_RECURSE
  "CMakeFiles/ablation_mesh_aspect.dir/ablation_mesh_aspect.cpp.o"
  "CMakeFiles/ablation_mesh_aspect.dir/ablation_mesh_aspect.cpp.o.d"
  "ablation_mesh_aspect"
  "ablation_mesh_aspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mesh_aspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
