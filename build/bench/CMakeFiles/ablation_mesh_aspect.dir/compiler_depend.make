# Empty compiler generated dependencies file for ablation_mesh_aspect.
# This may be replaced when dependencies are built.
