# Empty dependencies file for fig6_vector_contention.
# This may be replaced when dependencies are built.
