file(REMOVE_RECURSE
  "CMakeFiles/fig6_vector_contention.dir/fig6_vector_contention.cpp.o"
  "CMakeFiles/fig6_vector_contention.dir/fig6_vector_contention.cpp.o.d"
  "fig6_vector_contention"
  "fig6_vector_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vector_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
