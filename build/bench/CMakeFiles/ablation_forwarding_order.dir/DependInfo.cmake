
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_forwarding_order.cpp" "bench/CMakeFiles/ablation_forwarding_order.dir/ablation_forwarding_order.cpp.o" "gcc" "bench/CMakeFiles/ablation_forwarding_order.dir/ablation_forwarding_order.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vtopo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vtopo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vtopo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/armci/CMakeFiles/vtopo_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/vtopo_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/vtopo_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/vtopo_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vtopo_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
