# Empty dependencies file for ablation_forwarding_order.
# This may be replaced when dependencies are built.
