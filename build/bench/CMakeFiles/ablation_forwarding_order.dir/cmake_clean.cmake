file(REMOVE_RECURSE
  "CMakeFiles/ablation_forwarding_order.dir/ablation_forwarding_order.cpp.o"
  "CMakeFiles/ablation_forwarding_order.dir/ablation_forwarding_order.cpp.o.d"
  "ablation_forwarding_order"
  "ablation_forwarding_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forwarding_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
