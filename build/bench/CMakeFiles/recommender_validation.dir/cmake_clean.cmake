file(REMOVE_RECURSE
  "CMakeFiles/recommender_validation.dir/recommender_validation.cpp.o"
  "CMakeFiles/recommender_validation.dir/recommender_validation.cpp.o.d"
  "recommender_validation"
  "recommender_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
