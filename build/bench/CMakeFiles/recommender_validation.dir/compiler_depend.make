# Empty compiler generated dependencies file for recommender_validation.
# This may be replaced when dependencies are built.
