// Ablation F: the SeaStar message-stream limit. The paper's Sec. II
// pins FCG's fragility on the NIC's bounded simultaneous message
// streams (256 on SeaStar2+, with BEER flow control past the limit).
// Sweeping the table size shows the FCG hot-spot collapse turn on and
// off, while MFCG — whose hot node only ever sees ~2*sqrt(N) CHT
// streams — is insensitive.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

namespace {

double median_at(const work::ClusterConfig& cluster, int iters) {
  work::ContentionConfig cfg;
  cfg.op = work::ContentionConfig::Op::kFetchAdd;
  cfg.iterations = iters;
  cfg.contender_stride = 5;  // 20% contention
  const auto res = work::run_contention(cluster, cfg);
  sim::Series s;
  for (const double t : res.op_time_us) {
    if (t >= 0) s.add(t);
  }
  return s.median();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation F", "NIC stream-table size (BEER limit)");
  std::printf("# 256 nodes x 4 procs, fetch-&-add at 20%% contention\n");
  std::printf("%-12s %14s %14s %10s\n", "table_size", "FCG_median_us",
              "MFCG_median_us", "FCG/MFCG");

  for (const int table : {32, 64, 128, 256, 1 << 20}) {
    work::ClusterConfig cluster;
    cluster.num_nodes = 256;
    cluster.procs_per_node = 4;
    cluster.net.stream_table_size = table;
    cluster.topology = core::TopologyKind::kFcg;
    const double fcg = median_at(cluster, iters);
    cluster.topology = core::TopologyKind::kMfcg;
    const double mfcg = median_at(cluster, iters);
    if (table == (1 << 20)) {
      std::printf("%-12s %14.1f %14.1f %10.2f\n", "unlimited", fcg, mfcg,
                  fcg / mfcg);
    } else {
      std::printf("%-12d %14.1f %14.1f %10.2f\n", table, fcg, mfcg,
                  fcg / mfcg);
    }
  }
  bench::print_rule();
  std::printf("# FCG's collapse scales with stream-table pressure (204 "
              "contending process\n# streams at 20%%); MFCG's ~30 CHT "
              "streams never exhaust any table, so its\n# median barely "
              "moves. With an unlimited table both converge to pure "
              "queueing.\n");
  return 0;
}
