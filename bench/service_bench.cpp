// service_bench — multi-tenant cluster service characterization.
//
// Two batteries per partition policy (compact / striped / bestfit):
//
//   interference  a probe tenant (fig-7 fetch-add latency protocol)
//                 runs solo, then co-resident with fetch-add-storm
//                 aggressor tenants on the same coupled fabric. The
//                 interference index is the probe's p99 latency shared
//                 over solo. Route-contained compact partitions pin the
//                 index at exactly 1.0 (the victim's event stream is
//                 bit-identical); striped partitions pay real link
//                 contention.
//
//   throughput    a mixed job stream saturates a small machine so the
//                 admission queue backs up: jobs/sec plus p50/p99 queue
//                 wait per policy.
//
// Writes BENCH_service.json. Gates: every submitted job completes,
// compact interference index stays at 1.0 (exact isolation), striped
// exceeds it measurably, and the shared-run report is deterministic.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "svc/service.hpp"

using namespace vtopo;

namespace {

constexpr std::int64_t kMachineSlots = 64;

svc::JobSpec probe_spec(int iters) {
  svc::JobSpec s;
  s.name = "probe";
  s.kind = svc::JobKind::kProbe;
  s.nodes = 8;
  s.procs_per_node = 2;
  s.ops = iters;
  return s;
}

svc::JobSpec storm_spec(const std::string& name, std::int64_t ops) {
  svc::JobSpec s;
  s.name = name;
  s.kind = svc::JobKind::kStorm;
  s.nodes = 8;
  s.procs_per_node = 2;
  s.ops = ops;
  return s;
}

struct InterferenceOut {
  double solo_p99_us = 0.0;
  double shared_p99_us = 0.0;
  double index = 0.0;  ///< shared / solo
  bool deterministic = false;
  bool all_completed = false;
};

InterferenceOut run_interference(core::PartitionPolicy policy, bool quick) {
  const int iters = quick ? 6 : 12;
  const std::int64_t storm_ops = quick ? 256 : 768;
  svc::ServiceConfig sc;
  sc.machine_slots = kMachineSlots;
  sc.policy = policy;

  auto probe_p99 = [](const svc::JobResult& r) {
    bench::Percentiles p;
    for (const double us : r.latencies) {
      if (us >= 0) p.add(us);
    }
    return p.p99();
  };

  InterferenceOut out;
  svc::ClusterService service(sc);
  // The probe submits first, so it carves the same partition of the
  // empty machine solo and shared — only the aggressors differ.
  const svc::ServiceReport solo = service.run({probe_spec(iters)});
  const std::vector<svc::JobSpec> mix = {
      probe_spec(iters), storm_spec("storm1", storm_ops),
      storm_spec("storm2", storm_ops), storm_spec("storm3", storm_ops)};
  const svc::ServiceReport shared = service.run(mix);
  const svc::ServiceReport shared2 = service.run(mix);

  out.solo_p99_us = probe_p99(solo.results[0]);
  out.shared_p99_us = probe_p99(shared.results[0]);
  out.index = out.solo_p99_us > 0 ? out.shared_p99_us / out.solo_p99_us : 0;
  out.deterministic = shared.canonical() == shared2.canonical();
  out.all_completed =
      solo.completed == 1 &&
      shared.completed == static_cast<std::int64_t>(mix.size()) &&
      shared.rejected == 0;
  return out;
}

struct ThroughputOut {
  double jobs_per_sec = 0.0;
  double wait_p50_ms = 0.0;
  double wait_p99_ms = 0.0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  bool all_completed = false;
};

ThroughputOut run_throughput(core::PartitionPolicy policy, bool quick) {
  const int jobs = quick ? 10 : 24;
  svc::ServiceConfig sc;
  sc.machine_slots = 16;  // small machine: the stream must queue
  sc.policy = policy;

  std::vector<svc::JobSpec> mix;
  for (int i = 0; i < jobs; ++i) {
    svc::JobSpec s;
    s.name = "job" + std::to_string(i);
    switch (i % 3) {
      case 0:
        s.kind = svc::JobKind::kDft;
        s.ops = 96;
        break;
      case 1:
        s.kind = svc::JobKind::kSynthetic;
        s.ops = 8;
        break;
      default:
        s.kind = svc::JobKind::kCcsd;
        s.ops = 64;
        break;
    }
    s.nodes = (i % 2 == 0) ? 8 : 4;
    s.procs_per_node = 2;
    s.priority = i % 2;
    s.submit_at = static_cast<sim::TimeNs>(i) * 50000;  // 50 us apart
    mix.push_back(std::move(s));
  }

  svc::ClusterService service(sc);
  const svc::ServiceReport rep = service.run(mix);

  ThroughputOut out;
  bench::Percentiles waits;
  for (const auto& r : rep.results) {
    if (r.rejected) continue;
    waits.add(static_cast<double>(r.queue_wait()) / 1e6);
  }
  out.completed = rep.completed;
  out.rejected = rep.rejected;
  out.all_completed = rep.completed == jobs && rep.rejected == 0;
  out.jobs_per_sec = rep.total_sim_ns > 0
                         ? static_cast<double>(rep.completed) /
                               (static_cast<double>(rep.total_sim_ns) / 1e9)
                         : 0.0;
  out.wait_p50_ms = waits.percentile(50);
  out.wait_p99_ms = waits.percentile(99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path =
      args.get_string("--out", "BENCH_service.json");

  bench::print_header("service_bench",
                      "multi-tenant service: throughput, queue wait, and "
                      "cross-tenant interference per partition policy");

  const core::PartitionPolicy policies[] = {
      core::PartitionPolicy::kCompactBlock, core::PartitionPolicy::kStriped,
      core::PartitionPolicy::kBestFit};
  InterferenceOut interf[3];
  ThroughputOut thru[3];
  for (int i = 0; i < 3; ++i) {
    interf[i] = run_interference(policies[i], quick);
    thru[i] = run_throughput(policies[i], quick);
    std::printf("%-8s interference: solo p99 %8.1f us  shared p99 %8.1f "
                "us  index %.4f%s%s\n",
                core::to_string(policies[i]).c_str(), interf[i].solo_p99_us,
                interf[i].shared_p99_us, interf[i].index,
                interf[i].deterministic ? "" : "  NON-DETERMINISTIC",
                interf[i].all_completed ? "" : "  INCOMPLETE");
    std::printf("%-8s throughput:   %7.1f jobs/s  wait p50 %8.3f ms  "
                "p99 %8.3f ms  (%lld done, %lld rejected)%s\n",
                core::to_string(policies[i]).c_str(),
                thru[i].jobs_per_sec, thru[i].wait_p50_ms,
                thru[i].wait_p99_ms,
                static_cast<long long>(thru[i].completed),
                static_cast<long long>(thru[i].rejected),
                thru[i].all_completed ? "" : "  INCOMPLETE");
  }
  bench::print_rule();

  const double compact_x = interf[0].index;
  const double striped_x = interf[1].index;
  bool ok_done = true;
  bool ok_det = true;
  for (int i = 0; i < 3; ++i) {
    ok_done = ok_done && interf[i].all_completed && thru[i].all_completed;
    ok_det = ok_det && interf[i].deterministic;
  }
  // Compact partitions are route-contained, so the victim's latencies
  // are bit-identical under co-residency: the index is exactly 1.
  const bool ok_isolation = compact_x > 0.9999 && compact_x < 1.0001;
  const bool ok_contrast = striped_x > compact_x * 1.02;
  std::printf("gates: all_jobs_complete %s  deterministic %s  "
              "compact_isolated %s  striped_contended %s\n",
              ok_done ? "yes" : "NO", ok_det ? "yes" : "NO",
              ok_isolation ? "yes" : "NO", ok_contrast ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"quick\": %s,\n  \"policies\": {\n",
               quick ? "true" : "false");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(
        f,
        "    \"%s\": {\"solo_p99_us\": %.2f, \"shared_p99_us\": %.2f, "
        "\"interference_index\": %.4f, \"jobs_per_sec\": %.2f, "
        "\"wait_p50_ms\": %.4f, \"wait_p99_ms\": %.4f, "
        "\"completed\": %lld, \"rejected\": %lld}%s\n",
        core::to_string(policies[i]).c_str(), interf[i].solo_p99_us,
        interf[i].shared_p99_us, interf[i].index, thru[i].jobs_per_sec,
        thru[i].wait_p50_ms, thru[i].wait_p99_ms,
        static_cast<long long>(thru[i].completed),
        static_cast<long long>(thru[i].rejected), i < 2 ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"gates\": {\"all_jobs_complete\": %s, "
               "\"deterministic\": %s, \"compact_isolated\": %s, "
               "\"striped_contended\": %s}\n}\n",
               ok_done ? "true" : "false", ok_det ? "true" : "false",
               ok_isolation ? "true" : "false",
               ok_contrast ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  return ok_done && ok_det && ok_isolation && ok_contrast ? 0 : 1;
}
