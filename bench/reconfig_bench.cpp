// Live-reconfiguration cost model: prices the incremental credit-bank
// remap against the rebuild-from-scratch strategy on the same mid-run
// transition, then races the adaptive controller against every static
// topology on the phase-switching workload. Writes BENCH_reconfig.json.
//
// Two claims are checked (and recorded for docs/performance.md):
//   1. The incremental remap is strictly cheaper than a rebuild, in
//      both bytes allocated and remap stall time, whenever the two
//      topologies share edges (FCG -> MFCG shares every mesh edge).
//   2. The adaptive controller beats the worse static choice and lands
//      within ~10% of the per-phase-best static oracle (the sum of each
//      phase's fastest static time).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "bench_util.hpp"
#include "core/topology.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "workloads/phased.hpp"

using namespace vtopo;

namespace {

using core::TopologyKind;

struct ModeCost {
  const char* mode;
  std::int64_t pools_kept = 0;
  std::int64_t pools_added = 0;
  std::int64_t pools_removed = 0;
  double bytes_allocated_mb = 0.0;
  double bytes_released_mb = 0.0;
  double quiesce_ms = 0.0;
  double remap_ms = 0.0;
  double exec_sec = 0.0;
};

sim::Co<void> switch_at(armci::Runtime* rt, sim::TimeNs at,
                        TopologyKind to, armci::ReconfigMode mode) {
  co_await sim::Sleep(rt->engine(), at);
  (void)co_await rt->reconfigure(to, mode);
}

/// One mid-run FCG -> MFCG switch under a fetch-&-add flood, with the
/// given remap strategy. Everything is simulated time: the run is
/// deterministic and comparable across modes.
ModeCost price_mode(armci::ReconfigMode mode, bool quick) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime::Config cfg;
  cfg.num_nodes = quick ? 32 : 128;
  cfg.procs_per_node = 4;
  cfg.topology = TopologyKind::kFcg;
  armci::Runtime rt(eng, cfg);
  const auto off = rt.memory().alloc_all(8);
  rt.spawn_task(switch_at(&rt, sim::us(60), TopologyKind::kMfcg, mode));
  const int ops = quick ? 20 : 40;
  rt.spawn_all([off, ops](armci::Proc& p) -> sim::Co<void> {
    for (int i = 0; i < ops; ++i) {
      co_await p.fetch_add(armci::GAddr{0, off}, 1);
    }
  });
  rt.run_all();

  const armci::ReconfigReport& rep = rt.last_reconfig();
  ModeCost c;
  c.mode = mode == armci::ReconfigMode::kIncremental ? "incremental"
                                                     : "rebuild";
  c.pools_kept = rep.pools_kept;
  c.pools_added = rep.pools_added;
  c.pools_removed = rep.pools_removed;
  c.bytes_allocated_mb =
      static_cast<double>(rep.bytes_allocated) / (1024.0 * 1024.0);
  c.bytes_released_mb =
      static_cast<double>(rep.bytes_released) / (1024.0 * 1024.0);
  c.quiesce_ms = sim::to_us(rep.quiesce_ns) / 1e3;
  c.remap_ms = sim::to_us(rep.remap_ns) / 1e3;
  c.exec_sec = sim::to_sec(eng.now());
  return c;
}

struct PhasedRun {
  std::string label;
  double exec_sec = 0.0;
  std::vector<double> phase_sec;
  int reconfigurations = 0;
};

work::PhasedConfig phased_cfg(bool quick) {
  work::PhasedConfig pc;
  pc.cycles = 2;
  // Phases must be long enough to amortize the ~0.2 ms reconfiguration
  // stall, or the adaptive schedule pays for its switches without
  // recouping them.
  pc.hot_ops_per_proc = quick ? 96 : 256;
  pc.bw_tiles_per_proc = quick ? 24 : 64;
  return pc;
}

PhasedRun run_static(TopologyKind kind, bool quick) {
  work::ClusterConfig cl;
  cl.num_nodes = quick ? 16 : 32;
  cl.procs_per_node = 2;
  cl.topology = kind;
  const work::PhasedResult r = work::run_phased(cl, phased_cfg(quick));
  PhasedRun out;
  out.label = core::to_string(kind);
  out.exec_sec = r.app.exec_time_sec;
  out.phase_sec = r.phase_sec;
  out.reconfigurations = r.reconfigurations;
  return out;
}

PhasedRun run_adaptive(bool quick) {
  work::ClusterConfig cl;
  cl.num_nodes = quick ? 16 : 32;
  cl.procs_per_node = 2;
  cl.topology = TopologyKind::kFcg;  // deliberately wrong for phase 0
  work::PhasedConfig pc = phased_cfg(quick);
  pc.adaptive = true;
  const work::PhasedResult r = work::run_phased(cl, pc);
  PhasedRun out;
  out.label = "adaptive";
  out.exec_sec = r.app.exec_time_sec;
  out.phase_sec = r.phase_sec;
  out.reconfigurations = r.reconfigurations;
  return out;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path =
      args.get_string("--out", "BENCH_reconfig.json");

  bench::print_header("reconfig_bench",
                      "live reconfiguration cost: incremental vs "
                      "rebuild, adaptive vs static");

  // ---- Part 1: remap strategy cost on one mid-run transition.
  const ModeCost inc = price_mode(armci::ReconfigMode::kIncremental, quick);
  const ModeCost reb = price_mode(armci::ReconfigMode::kRebuild, quick);
  std::printf("%-12s %10s %10s %10s %12s %10s %10s\n", "mode", "kept",
              "added", "removed", "alloc_mb", "quiesce_ms", "remap_ms");
  for (const ModeCost* c : {&inc, &reb}) {
    std::printf("%-12s %10lld %10lld %10lld %12.2f %10.3f %10.3f\n",
                c->mode, static_cast<long long>(c->pools_kept),
                static_cast<long long>(c->pools_added),
                static_cast<long long>(c->pools_removed),
                c->bytes_allocated_mb, c->quiesce_ms, c->remap_ms);
  }
  const bool incremental_cheaper =
      inc.bytes_allocated_mb < reb.bytes_allocated_mb &&
      inc.remap_ms < reb.remap_ms;
  std::printf("incremental_cheaper   %s\n",
              incremental_cheaper ? "yes" : "NO");

  // ---- Part 2: adaptive controller vs static choices on the
  // phase-switching workload.
  std::vector<PhasedRun> runs;
  for (const TopologyKind k :
       {TopologyKind::kFcg, TopologyKind::kMfcg, TopologyKind::kCfcg}) {
    runs.push_back(run_static(k, quick));
  }
  const PhasedRun adaptive = run_adaptive(quick);

  // Per-phase-best oracle: each phase at its fastest static time.
  const std::size_t phases = adaptive.phase_sec.size();
  double oracle = 0.0;
  for (std::size_t i = 0; i < phases; ++i) {
    double best = runs[0].phase_sec[i];
    for (const PhasedRun& r : runs) {
      if (r.phase_sec[i] < best) best = r.phase_sec[i];
    }
    oracle += best;
  }
  const double adaptive_work = sum(adaptive.phase_sec);

  std::printf("%-10s %12s %16s\n", "schedule", "exec_sec", "reconfigs");
  for (const PhasedRun& r : runs) {
    std::printf("%-10s %12.6f %16d\n", r.label.c_str(), r.exec_sec,
                r.reconfigurations);
  }
  std::printf("%-10s %12.6f %16d\n", adaptive.label.c_str(),
              adaptive.exec_sec, adaptive.reconfigurations);
  double worst = 0.0;
  double best_static = runs[0].exec_sec;
  for (const PhasedRun& r : runs) {
    if (r.exec_sec > worst) worst = r.exec_sec;
    if (r.exec_sec < best_static) best_static = r.exec_sec;
  }
  std::printf("per_phase_best_sec    %.6f\n", oracle);
  std::printf("adaptive_work_sec     %.6f\n", adaptive_work);
  std::printf("adaptive_vs_oracle    %.3f\n", adaptive_work / oracle);
  std::printf("beats_worst_static    %s\n",
              adaptive.exec_sec < worst ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"transition\": \"fcg_to_mfcg\",\n"
               "  \"incremental\": {\"pools_kept\": %lld, "
               "\"pools_added\": %lld, \"pools_removed\": %lld, "
               "\"alloc_mb\": %.3f, \"quiesce_ms\": %.4f, "
               "\"remap_ms\": %.4f},\n"
               "  \"rebuild\": {\"pools_kept\": %lld, "
               "\"pools_added\": %lld, \"pools_removed\": %lld, "
               "\"alloc_mb\": %.3f, \"quiesce_ms\": %.4f, "
               "\"remap_ms\": %.4f},\n"
               "  \"incremental_cheaper\": %s,\n"
               "  \"phased\": {\n"
               "    \"fcg_sec\": %.6f,\n"
               "    \"mfcg_sec\": %.6f,\n"
               "    \"cfcg_sec\": %.6f,\n"
               "    \"adaptive_sec\": %.6f,\n"
               "    \"adaptive_reconfigs\": %d,\n"
               "    \"per_phase_best_sec\": %.6f,\n"
               "    \"adaptive_work_sec\": %.6f,\n"
               "    \"adaptive_vs_oracle\": %.4f,\n"
               "    \"beats_worst_static\": %s\n"
               "  }\n"
               "}\n",
               static_cast<long long>(inc.pools_kept),
               static_cast<long long>(inc.pools_added),
               static_cast<long long>(inc.pools_removed),
               inc.bytes_allocated_mb, inc.quiesce_ms, inc.remap_ms,
               static_cast<long long>(reb.pools_kept),
               static_cast<long long>(reb.pools_added),
               static_cast<long long>(reb.pools_removed),
               reb.bytes_allocated_mb, reb.quiesce_ms, reb.remap_ms,
               incremental_cheaper ? "true" : "false", runs[0].exec_sec,
               runs[1].exec_sec, runs[2].exec_sec, adaptive.exec_sec,
               adaptive.reconfigurations, oracle, adaptive_work,
               adaptive_work / oracle,
               adaptive.exec_sec < worst ? "true" : "false");
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return incremental_cheaper ? 0 : 1;
}
