// Negative control: a two-sided (MPI-style) wavefront sweep next to the
// one-sided ARMCI version, across all virtual topologies.
//
// Two-sided messages go process-to-process on the NIC — no CHT, no
// request buffers, no forwarding — so the virtual topology MUST NOT
// change their timing. Any spread in the two-sided columns would mean
// the model leaks topology effects where the paper's mechanism has
// none; the one-sided columns show the usual (small, neighbor-traffic)
// effect for contrast.
#include <cstdio>
#include <memory>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "bench_util.hpp"
#include "msg/two_sided.hpp"
#include "workloads/nas_lu.hpp"

using namespace vtopo;

namespace {

/// Two-sided nearest-neighbor sweep shaped like the LU wavefront.
double run_two_sided_sweep(core::TopologyKind kind, int iterations) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime::Config cfg;
  cfg.num_nodes = 64;
  cfg.procs_per_node = 4;
  cfg.topology = kind;
  armci::Runtime rt(eng, cfg);
  msg::TwoSided ts(rt);
  const core::Shape grid = core::mesh_shape_for(rt.num_procs());
  const std::int32_t px = grid.dim(0);

  // vtopo-lint: allow(coro-ref) -- closure copied into Runtime::programs_; captured locals outlive run_all()
  rt.spawn_all([&, px, iterations](armci::Proc& p) -> sim::Co<void> {
    const armci::ProcId me = p.id();
    const std::int32_t ix = me % px;
    const std::int32_t iy = static_cast<std::int32_t>(me / px);
    const bool has_west = ix > 0;
    const bool has_north = iy > 0;
    const bool has_east =
        ix + 1 < px && me + 1 < p.runtime().num_procs();
    const bool has_south = me + px < p.runtime().num_procs();
    std::vector<std::uint8_t> strip(2040,
                                    static_cast<std::uint8_t>(me));
    co_await p.barrier();
    for (int it = 0; it < iterations; ++it) {
      if (has_west) co_await ts.recv(p, me - 1, it);
      if (has_north) co_await ts.recv(p, me - px, it);
      co_await p.compute(sim::us(200));
      if (has_east) co_await ts.send(p, me + 1, it, strip);
      if (has_south) co_await ts.send(p, me + px, it, strip);
    }
  });
  rt.run_all();
  return sim::to_sec(eng.now()) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 4 : 8));

  bench::print_header("Control", "two-sided traffic ignores the topology");
  std::printf("# 256 procs (64 nodes x 4), %d wavefront sweeps\n", iters);
  std::printf("%-12s %18s %18s\n", "topology", "two_sided_ms",
              "one_sided_lu_ms");

  work::LuConfig lu;
  lu.iterations = iters;
  lu.nx_global = 128;
  for (const auto kind : core::all_topology_kinds()) {
    work::ClusterConfig cluster;
    cluster.num_nodes = 64;
    cluster.procs_per_node = 4;
    cluster.topology = kind;
    const double one_sided =
        work::run_nas_lu(cluster, lu).exec_time_sec * 1e3;
    std::printf("%-12s %18.3f %18.3f\n", core::to_string(kind),
                run_two_sided_sweep(kind, iters), one_sided);
  }
  bench::print_rule();
  std::printf("# The two_sided column must be bit-identical across "
              "topologies: MPI-style\n# messages never enter a CHT. The "
              "one-sided column moves (slightly) because\n# LU's "
              "noncontiguous puts and residual accumulates do.\n");
  return 0;
}
