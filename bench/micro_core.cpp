// google-benchmark microbenchmarks for the hot primitives: LDF next-hop
// and route computation, event-engine throughput, torus routing, and
// the NIC stream table.
#include <benchmark/benchmark.h>

#include "core/dependency_graph.hpp"
#include "core/topology.hpp"
#include "net/network.hpp"
#include "net/torus.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

using namespace vtopo;

static void BM_LdfNextHop(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kMfcg, state.range(0));
  sim::Rng rng(1);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.next_hop(s, t));
  }
}
BENCHMARK(BM_LdfNextHop)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_LdfRoute(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kCfcg, state.range(0));
  sim::Rng rng(2);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.route(s, t));
  }
}
BENCHMARK(BM_LdfRoute)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_HypercubeRoute(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kHypercube, state.range(0));
  sim::Rng rng(3);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.route(s, t));
  }
}
BENCHMARK(BM_HypercubeRoute)->Arg(1024)->Arg(4096);

static void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_executed());
  }
}
BENCHMARK(BM_EngineScheduleRun);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    auto body = [](sim::Engine& e) -> sim::Co<void> {
      for (int i = 0; i < 500; ++i) co_await sim::Sleep(e, 1);
    };
    sim::spawn(body(eng));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
}
BENCHMARK(BM_CoroutinePingPong);

static void BM_TorusRouteLinks(benchmark::State& state) {
  const net::TorusGeometry torus(state.range(0));
  sim::Rng rng(4);
  const auto n = static_cast<std::uint64_t>(torus.num_slots());
  for (auto _ : state) {
    const auto a = static_cast<std::int64_t>(rng.uniform(n));
    const auto b = static_cast<std::int64_t>(rng.uniform(n));
    benchmark::DoNotOptimize(torus.route_links(a, b));
  }
}
BENCHMARK(BM_TorusRouteLinks)->Arg(256)->Arg(4096);

static void BM_NetworkSend(benchmark::State& state) {
  sim::Engine eng;
  net::Network net(eng, 256);
  sim::Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(256));
    const auto d = static_cast<core::NodeId>(rng.uniform(256));
    benchmark::DoNotOptimize(net.send(s, d, 1024, s));
  }
}
BENCHMARK(BM_NetworkSend);

static void BM_DependencyGraphBuild(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kMfcg, state.range(0));
  for (auto _ : state) {
    const core::DependencyGraph g(topo);
    benchmark::DoNotOptimize(g.acyclic());
  }
}
BENCHMARK(BM_DependencyGraphBuild)->Arg(64)->Arg(144);

BENCHMARK_MAIN();
