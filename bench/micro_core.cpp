// google-benchmark microbenchmarks for the hot primitives: LDF next-hop
// and route computation, event-engine throughput, torus routing, and
// the NIC stream table.
#include <benchmark/benchmark.h>

#include "core/dependency_graph.hpp"
#include "core/topology.hpp"
#include "net/network.hpp"
#include "net/stream_lru.hpp"
#include "net/torus.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sweep.hpp"

using namespace vtopo;

static void BM_LdfNextHop(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kMfcg, state.range(0));
  sim::Rng rng(1);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.next_hop(s, t));
  }
}
BENCHMARK(BM_LdfNextHop)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_LdfRoute(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kCfcg, state.range(0));
  sim::Rng rng(2);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.route(s, t));
  }
}
BENCHMARK(BM_LdfRoute)->Arg(64)->Arg(1024)->Arg(16384);

static void BM_HypercubeRoute(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kHypercube, state.range(0));
  sim::Rng rng(3);
  const auto n = static_cast<std::uint64_t>(topo.num_nodes());
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(n));
    const auto t = static_cast<core::NodeId>(rng.uniform(n));
    if (s == t) continue;
    benchmark::DoNotOptimize(topo.route(s, t));
  }
}
BENCHMARK(BM_HypercubeRoute)->Arg(1024)->Arg(4096);

static void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_at(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_executed());
  }
}
BENCHMARK(BM_EngineScheduleRun);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
    auto body = [](sim::Engine& e) -> sim::Co<void> {
      for (int i = 0; i < 500; ++i) co_await sim::Sleep(e, 1);
    };
    sim::spawn(body(eng));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
}
BENCHMARK(BM_CoroutinePingPong);

static void BM_TorusRouteLinks(benchmark::State& state) {
  const net::TorusGeometry torus(state.range(0));
  sim::Rng rng(4);
  const auto n = static_cast<std::uint64_t>(torus.num_slots());
  for (auto _ : state) {
    const auto a = static_cast<std::int64_t>(rng.uniform(n));
    const auto b = static_cast<std::int64_t>(rng.uniform(n));
    benchmark::DoNotOptimize(torus.route_links(a, b));
  }
}
BENCHMARK(BM_TorusRouteLinks)->Arg(256)->Arg(4096);

static void BM_TorusForEachRouteLink(benchmark::State& state) {
  const net::TorusGeometry torus(state.range(0));
  sim::Rng rng(4);
  const auto n = static_cast<std::uint64_t>(torus.num_slots());
  for (auto _ : state) {
    const auto a = static_cast<std::int64_t>(rng.uniform(n));
    const auto b = static_cast<std::int64_t>(rng.uniform(n));
    net::LinkId acc = 0;
    torus.for_each_route_link(a, b, [&acc](net::LinkId l) { acc ^= l; });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TorusForEachRouteLink)->Arg(256)->Arg(4096);

static void BM_InlineFnScheduleRun(benchmark::State& state) {
  // Same shape as BM_EngineScheduleRun but with a capture that fills the
  // inline buffer, stressing the SBO path rather than empty lambdas.
  struct Payload {
    std::uint64_t a, b, c, d;
  };
  for (auto _ : state) {
    sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) {
      Payload p{static_cast<std::uint64_t>(i), 1, 2, 3};
      eng.schedule_at(i, [p, &sink] { sink += p.a + p.b + p.c + p.d; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_InlineFnScheduleRun);

static void BM_StreamLruTouch(benchmark::State& state) {
  net::StreamLru lru;
  lru.set_capacity(128);
  sim::Rng rng(6);
  // Twice the capacity of distinct streams => steady-state evictions.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lru.touch(static_cast<std::int64_t>(rng.uniform(256))));
  }
}
BENCHMARK(BM_StreamLruTouch);

static void BM_ParallelSweep(benchmark::State& state) {
  // End-to-end harness cost: 16 independent mini-engines per sweep.
  const auto jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const auto out = bench::run_sweep(16, jobs, [](std::size_t i) {
      sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
      for (int e = 0; e < 200; ++e) {
        eng.schedule_at(static_cast<sim::TimeNs>(e + i), [] {});
      }
      return eng.run();
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(4);

static void BM_NetworkSend(benchmark::State& state) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  net::Network net(eng, 256);
  sim::Rng rng(5);
  for (auto _ : state) {
    const auto s = static_cast<core::NodeId>(rng.uniform(256));
    const auto d = static_cast<core::NodeId>(rng.uniform(256));
    benchmark::DoNotOptimize(net.send(s, d, 1024, s));
  }
}
BENCHMARK(BM_NetworkSend);

static void BM_DependencyGraphBuild(benchmark::State& state) {
  const auto topo = core::VirtualTopology::make(
      core::TopologyKind::kMfcg, state.range(0));
  for (auto _ : state) {
    const core::DependencyGraph g(topo);
    benchmark::DoNotOptimize(g.acyclic());
  }
}
BENCHMARK(BM_DependencyGraphBuild)->Arg(64)->Arg(144);

BENCHMARK_MAIN();
