// Figure 7: atomic fetch-&-add operations under varying levels of
// hot-spot contention (1,024 processes on 256 nodes).
#include "contention_panels.hpp"

int main(int argc, char** argv) {
  const vtopo::bench::Args args(argc, argv);
  vtopo::bench::run_contention_figure(
      "Figure 7", vtopo::work::ContentionConfig::Op::kFetchAdd, args);
  return 0;
}
