// Ablation D: physical placement. The paper observes that even under
// FCG the per-op time "gradually increases with the process rank",
// attributing it to physical torus distance from Rank 0's node. This
// ablation contrasts contiguous (linear) allocation with a fragmented
// (random-permutation) allocation, and shows the virtual-topology
// effects are robust to placement.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

namespace {

struct RowStats {
  double first_quarter;  // mean over the lowest-rank quarter
  double last_quarter;   // mean over the highest-rank quarter
  double median;
};

RowStats collect(const work::ContentionResult& res) {
  std::vector<double> v;
  for (const double t : res.op_time_us) {
    if (t >= 0) v.push_back(t);
  }
  sim::Series all;
  sim::OnlineStats head;
  sim::OnlineStats tail;
  for (std::size_t i = 0; i < v.size(); ++i) {
    all.add(v[i]);
    if (i < v.size() / 4) head.add(v[i]);
    if (i >= 3 * v.size() / 4) tail.add(v[i]);
  }
  return {head.mean(), tail.mean(), all.median()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation D", "physical placement on the torus");
  std::printf("# 256 nodes x 4 procs, vectored put, no contention\n");
  std::printf("%-10s %-10s %14s %14s %12s\n", "topology", "placement",
              "low_ranks_us", "high_ranks_us", "median_us");

  for (const auto kind :
       {core::TopologyKind::kFcg, core::TopologyKind::kMfcg}) {
    for (const auto placement :
         {net::Placement::kLinear, net::Placement::kRandom}) {
      work::ClusterConfig cluster;
      cluster.num_nodes = 256;
      cluster.procs_per_node = 4;
      cluster.topology = kind;
      cluster.net = {};
      work::ContentionConfig cfg;
      cfg.iterations = iters;
      cluster.placement = placement;
      const auto res = work::run_contention(cluster, cfg);
      const RowStats row = collect(res);
      std::printf("%-10s %-10s %14.1f %14.1f %12.1f\n",
                  core::to_string(kind),
                  placement == net::Placement::kLinear ? "linear"
                                                       : "random",
                  row.first_quarter, row.last_quarter, row.median);
    }
  }
  bench::print_rule();
  std::printf("# Linear placement shows the paper's rank gradient (far "
              "ranks sit far away);\n# fragmented placement flattens it "
              "without changing the topology ordering.\n");
  return 0;
}
