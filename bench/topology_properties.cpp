// Section III analysis table: the structural properties the paper
// derives for each virtual topology (edges per node, forwarding bound,
// request-tree height and fanout — Figs. 2-4 in numbers).
#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_model.hpp"
#include "core/tree_analysis.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t max_nodes = args.get_int("--max-nodes", 4096);

  bench::print_header("Section III", "virtual topology structural analysis");
  std::printf("%8s %-10s %-12s %7s %8s %7s %8s %10s %12s\n", "nodes",
              "kind", "shape", "edges", "max_fwd", "height", "fanout",
              "tot_fwds", "cht_buf_MB");

  core::MemoryParams mp;
  for (std::int64_t n = 16; n <= max_nodes; n *= 4) {
    for (const auto kind : core::all_topology_kinds()) {
      const auto topo = core::VirtualTopology::make(kind, n);
      const auto tree = core::build_request_tree(topo, 0);
      std::printf("%8lld %-10s %-12s %7lld %8d %7d %8lld %10lld %12.1f\n",
                  static_cast<long long>(n), core::to_string(kind),
                  topo.shape().to_string().c_str(),
                  static_cast<long long>(topo.degree(0)),
                  topo.max_forwards(), tree.height(),
                  static_cast<long long>(tree.root_fanout()),
                  static_cast<long long>(tree.total_forwards()),
                  static_cast<double>(core::cht_buffer_bytes(topo, 0, mp)) /
                      (1024.0 * 1024.0));
    }
    bench::print_rule();
  }
  std::printf("# edges: O(N) FCG, O(sqrt N) MFCG, O(cbrt N) CFCG, "
              "O(log N) Hypercube\n");
  std::printf("# fanout = direct contention pressure at a hot node "
              "(paper Figs. 2 and 4)\n");
  return 0;
}
