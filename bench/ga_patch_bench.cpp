// GA-level view of the topology trade-off: patch get/acc latency vs.
// patch size under each virtual topology (quiet network). GA patches
// decompose into the noncontiguous ARMCI operations of Fig. 6, so this
// shows what an application-level access actually pays per topology.
#include <cstdio>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "bench_util.hpp"
#include "ga/global_array.hpp"
#include "sim/stats.hpp"

using namespace vtopo;

namespace {

struct Sample {
  double get_us;
  double acc_us;
};

Sample measure(core::TopologyKind kind, std::int64_t patch,
               int repeats) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime::Config cfg;
  cfg.num_nodes = 64;
  cfg.procs_per_node = 4;
  cfg.topology = kind;
  cfg.segment_bytes = std::int64_t{16} << 20;
  armci::Runtime rt(eng, cfg);
  ga::GlobalArray2D a(rt, 512, 512);

  sim::Series get_series;
  sim::Series acc_series;
  // One measuring process touching far-away patches; everyone else idle.
  // vtopo-lint: allow(coro-ref) -- closure copied into Runtime::programs_; captured locals outlive run_all()
  rt.spawn(rt.num_procs() - 1, [&](armci::Proc& p) -> sim::Co<void> {
    std::vector<double> buf(static_cast<std::size_t>(patch * patch));
    sim::Engine& e = p.runtime().engine();
    for (int r = 0; r < repeats; ++r) {
      const std::int64_t i0 = (r * 64) % (512 - patch);
      sim::TimeNs t0 = e.now();
      co_await a.get(p, i0, i0 + patch, 0, patch, buf.data(), patch);
      get_series.add(sim::to_us(e.now() - t0));
      t0 = e.now();
      co_await a.acc(p, i0, i0 + patch, 0, patch, buf.data(), patch,
                     1.0);
      acc_series.add(sim::to_us(e.now() - t0));
    }
  });
  rt.run_all();
  return {get_series.median(), acc_series.median()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int repeats =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 4 : 12));

  bench::print_header("GA patch ops", "application-level topology cost");
  std::printf("# 512x512 global array over 256 procs (64 nodes x 4), "
              "quiet network\n");
  std::printf("%8s %-10s %12s %12s\n", "patch", "topology", "get_us",
              "acc_us");
  for (const std::int64_t patch : {8, 32, 128}) {
    for (const auto kind : core::all_topology_kinds()) {
      const Sample s = measure(kind, patch, repeats);
      std::printf("%4lldx%-3lld %-10s %12.1f %12.1f\n",
                  static_cast<long long>(patch),
                  static_cast<long long>(patch), core::to_string(kind),
                  s.get_us, s.acc_us);
    }
    bench::print_rule();
  }
  std::printf("# Small patches pay the per-hop forwarding latency "
              "(Hypercube worst);\n# large patches amortize it into "
              "bandwidth, narrowing the gap.\n");
  return 0;
}
