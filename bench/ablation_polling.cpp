// Ablation E: the CHT polling model. The paper observes (Sec. V-B2)
// that under higher contention, the spread across MFCG ranks *shrinks*
// — forwarding keeps intermediate CHTs in polling mode, so they skip
// the wake-up latency. This ablation switches the wake-up penalty off
// and shows the effect disappear.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

namespace {

struct Row {
  double median;
  double rel_spread;  // (p90 - p10) / median
};

Row measure(const work::ClusterConfig& cluster, int stride, int iters) {
  work::ContentionConfig cfg;
  cfg.iterations = iters;
  cfg.contender_stride = stride;
  const auto res = work::run_contention(cluster, cfg);
  sim::Series s;
  for (const double t : res.op_time_us) {
    if (t >= 0) s.add(t);
  }
  return {s.median(), (s.percentile(90) - s.percentile(10)) / s.median()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation E", "CHT wake-up latency vs. polling");
  std::printf("# MFCG, 256 nodes x 4 procs, vectored put\n");
  std::printf("%-12s %-12s %12s %14s\n", "wakeup_us", "contention",
              "median_us", "rel_spread");

  for (const double wakeup_us : {0.0, 3.0, 6.0}) {
    for (const int stride : {0, 5}) {
      work::ClusterConfig cluster;
      cluster.num_nodes = 256;
      cluster.procs_per_node = 4;
      cluster.topology = core::TopologyKind::kMfcg;
      cluster.armci.cht_wakeup = sim::us(wakeup_us);
      const Row row = measure(cluster, stride, iters);
      std::printf("%-12.1f %-12s %12.1f %14.3f\n", wakeup_us,
                  stride == 0 ? "none" : "20%", row.median,
                  row.rel_spread);
    }
  }
  bench::print_rule();
  std::printf("# Two reads: (1) the wake-up penalty inflates only the "
              "UNCONTENDED medians;\n# under 20%% contention the medians "
              "are identical for every wake-up cost —\n# busy CHTs never "
              "sleep, exactly the paper's polling observation. (2) the\n"
              "# spread narrowing under contention persists regardless: "
              "hot-spot queueing\n# homogenizes ranks on top of the "
              "polling effect.\n");
  return 0;
}
