# Render the paper-style contention panels from split series files.
#   gnuplot -e "dir='out_dir'" bench/plot/contention.gp
if (!exists("dir")) dir = "series"
set terminal pngcairo size 1200,800
set output dir."/contention.png"
set logscale y
set xlabel "Process Rank"
set ylabel "Time (usec)"
set key outside
plot for [f in system("ls ".dir."/*.dat")] f using 1:2 \
     with points pointsize 0.3 title system("basename ".f." .dat")
