#!/usr/bin/env bash
# Split a fig6/fig7 bench output into one data file per (topology,
# contention) series, ready for gnuplot.
#
#   ./build/bench/fig6_vector_contention > fig6.txt
#   bench/plot/split_series.sh fig6.txt out_dir
#   gnuplot -e "dir='out_dir'" bench/plot/contention.gp
set -euo pipefail
input=${1:?usage: split_series.sh <bench_output> <out_dir>}
outdir=${2:?usage: split_series.sh <bench_output> <out_dir>}
mkdir -p "$outdir"
awk -v dir="$outdir" '
  /^# series/ {
    topo=""; cont="";
    for (i = 1; i <= NF; ++i) {
      if ($i ~ /^topology=/)   { topo = substr($i, 10) }
      if ($i ~ /^contention=/) { cont = substr($i, 12) }
    }
    gsub(/%/, "", cont);
    file = dir "/" topo "_" cont ".dat";
    next
  }
  /^#/ { next }
  /^[0-9]+ / { if (file != "") print > file }
' "$input"
ls "$outdir"
