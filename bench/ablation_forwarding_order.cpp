// Ablation A: why lowest-dimension-first? Compare the buffer-dependency
// structure of LDF against highest-dimension-first (also monotone) and
// a scrambled per-node order (the "arbitrary forwarding" the paper
// warns causes deadlock, Sec. IV-A).
#include <cstdio>

#include "bench_util.hpp"
#include "core/dependency_graph.hpp"
#include "core/topology.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t max_nodes = args.get_int("--max-nodes", 512);

  bench::print_header("Ablation A", "forwarding order vs. deadlock freedom");
  std::printf("%8s %-6s %-10s %10s %10s %8s\n", "nodes", "kind", "policy",
              "resources", "deps", "cyclic");

  const core::ForwardingPolicy policies[] = {
      core::ForwardingPolicy::kLowestDimFirst,
      core::ForwardingPolicy::kHighestDimFirst,
      core::ForwardingPolicy::kScrambled};

  int scrambled_cyclic = 0;
  int scrambled_total = 0;
  for (std::int64_t n = 16; n <= max_nodes; n *= 2) {
    for (const auto kind :
         {core::TopologyKind::kMfcg, core::TopologyKind::kCfcg}) {
      for (const auto policy : policies) {
        const auto topo = core::VirtualTopology::make(kind, n, policy);
        const core::DependencyGraph g(topo);
        const bool cyclic = !g.acyclic();
        if (policy == core::ForwardingPolicy::kScrambled) {
          ++scrambled_total;
          if (cyclic) ++scrambled_cyclic;
        }
        std::printf("%8lld %-6s %-10s %10zu %10zu %8s\n",
                    static_cast<long long>(n), core::to_string(kind),
                    core::to_string(policy), g.num_resources(),
                    g.num_dependencies(), cyclic ? "CYCLIC" : "ok");
      }
    }
    bench::print_rule();
  }
  std::printf("# monotone orders (ldf/hdf) are always acyclic; scrambled "
              "orders were cyclic\n# in %d of %d sampled configurations "
              "=> deadlock-prone, as Sec. IV-A predicts.\n",
              scrambled_cyclic, scrambled_total);
  return 0;
}
