// Ablation B: MFCG mesh aspect ratio. The paper uses the most-square
// mesh; this ablation shows why: skewed meshes trade buffer memory in
// one dimension for the other while degrading the hot-spot request
// tree (fanout up, attenuation down) and the contended latency.
#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_model.hpp"
#include "core/tree_analysis.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t nodes = args.get_int("--nodes", 256);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation B", "MFCG mesh aspect ratio");
  std::printf("# %lld nodes x 4 procs, fetch-&-add at 20%% contention\n",
              static_cast<long long>(nodes));
  std::printf("%-10s %8s %12s %14s %14s\n", "mesh", "edges",
              "root_fanout", "cht_buf_MB", "median_us@20%");

  core::MemoryParams mp;
  mp.procs_per_node = 4;
  // Sweep aspect ratios X x Y with X*Y == nodes (full grids).
  for (const std::int64_t x : {16LL, 32LL, 64LL, 128LL}) {
    if (nodes % x != 0) continue;
    const std::int64_t y = nodes / x;
    const core::Shape shape({static_cast<std::int32_t>(x),
                             static_cast<std::int32_t>(y)});
    const auto topo = core::VirtualTopology::custom(
        core::TopologyKind::kMfcg, shape, nodes);

    work::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.procs_per_node = 4;
    cluster.topology = core::TopologyKind::kMfcg;
    cluster.custom_shape = shape;
    work::ContentionConfig cfg;
    cfg.op = work::ContentionConfig::Op::kFetchAdd;
    cfg.iterations = iters;
    cfg.contender_stride = 5;
    const auto res = work::run_contention(cluster, cfg);
    sim::Series series;
    for (const double t : res.op_time_us) {
      if (t >= 0) series.add(t);
    }

    const auto tree = core::build_request_tree(topo, 0);
    std::printf("%-10s %8lld %12lld %14.1f %14.1f\n",
                shape.to_string().c_str(),
                static_cast<long long>(topo.degree(0)),
                static_cast<long long>(tree.root_fanout()),
                static_cast<double>(core::cht_buffer_bytes(topo, 0, mp)) /
                    (1024.0 * 1024.0),
                series.median());
  }
  bench::print_rule();
  std::printf("# The near-square mesh minimizes edges (memory) for a "
              "fixed node count;\n# skew raises one dimension's fanout "
              "and with it the hot-spot pressure.\n");
  return 0;
}
