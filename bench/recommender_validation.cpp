// Closing the loop: does core::recommend_topology's advice agree with
// the simulator? Sweep the synthetic workload's hot-spot fraction and
// compare the measured-fastest topology against the heuristic's pick.
#include <cstdio>
#include <limits>

#include "bench_util.hpp"
#include "core/recommend.hpp"
#include "workloads/synthetic.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t nodes = args.get_int("--nodes", 128);
  const std::int64_t ops =
      args.get_int("--ops", args.has("--quick") ? 12 : 24);

  bench::print_header("Recommender validation",
                      "heuristic advice vs. measured winner");
  std::printf("# synthetic workload, %lld nodes x 4 procs, %lld ops/proc\n",
              static_cast<long long>(nodes), static_cast<long long>(ops));
  std::printf("%10s %10s %10s %10s %10s   %-10s %-12s %s\n", "hotspot",
              "FCG_ms", "MFCG_ms", "CFCG_ms", "HC_ms", "measured",
              "recommended", "agree");

  int agree = 0;
  int total = 0;
  for (const double hotspot : {0.0, 0.05, 0.15, 0.3, 0.6}) {
    work::SyntheticConfig sc;
    sc.ops_per_proc = ops;
    sc.hotspot_fraction = hotspot;
    double best_ms = std::numeric_limits<double>::infinity();
    core::TopologyKind best = core::TopologyKind::kFcg;
    double ms[4] = {0, 0, 0, 0};
    const auto& kinds = core::all_topology_kinds();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      work::ClusterConfig cl;
      cl.num_nodes = nodes;
      cl.procs_per_node = 4;
      cl.topology = kinds[k];
      const auto res = run_synthetic(cl, sc);
      ms[k] = res.exec_time_sec * 1e3;
      if (ms[k] < best_ms) {
        best_ms = ms[k];
        best = kinds[k];
      }
    }

    core::WorkloadProfile prof;
    prof.num_nodes = nodes;
    prof.hotspot_fraction = hotspot;
    prof.latency_sensitivity = 0.9;  // blocking fine-grained ops
    prof.buffer_budget_mb = 1024;    // memory not the constraint here
    const auto rec = core::recommend_topology(prof);

    // "Agreement" = the heuristic's pick is within 5% of the fastest
    // (ties between near-identical topologies are not disagreements).
    const double rec_ms =
        ms[static_cast<std::size_t>(rec.kind)];
    const bool ok = rec_ms <= best_ms * 1.05;
    ++total;
    if (ok) ++agree;
    std::printf("%10.2f %10.2f %10.2f %10.2f %10.2f   %-10s %-12s %s\n",
                hotspot, ms[0], ms[1], ms[2], ms[3],
                core::to_string(best), core::to_string(rec.kind),
                ok ? "yes" : "NO");
  }
  bench::print_rule();
  std::printf("# heuristic within 5%% of the measured winner in %d/%d "
              "sweeps\n",
              agree, total);
  return 0;
}
