// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace vtopo::bench {

/// Tail-percentile summary of a sample set (p50/p99/p999 and friends).
/// Accumulate with add()/add_all(), query with percentile(). Uses the
/// exact linear-interpolation formula of sim::Series::percentile, so a
/// bench that mixes Series-derived numbers with its own stays
/// consistent: sort ascending, pos = p/100 * (n-1), interpolate between
/// floor(pos) and the next sample. Empty set reports 0.
class Percentiles {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double percentile(double p) {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    if (samples_.size() == 1) return samples_.front();
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    const double pos =
        clamped / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }
  [[nodiscard]] double p50() { return percentile(50.0); }
  [[nodiscard]] double p99() { return percentile(99.0); }
  [[nodiscard]] double p999() { return percentile(99.9); }
  [[nodiscard]] double max() {
    return samples_.empty() ? 0.0 : percentile(100.0);
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Wall-clock section timer for real-execution benches (the threads
/// backend runs in real time, so its latencies are measured with
/// steady_clock rather than read off the simulated clock). lap()
/// returns the nanoseconds since construction or the previous lap and
/// feeds them into an optional Percentiles accumulator, so a bench can
/// mix wall-clock laps with Series-derived numbers consistently.
// vtopo-lint: allow-file(nondeterminism) -- wall-clock measurement is this helper's entire purpose; it never feeds simulated state
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()), last_(start_) {}

  /// Nanoseconds since construction.
  [[nodiscard]] double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  [[nodiscard]] double elapsed_sec() const { return elapsed_ns() * 1e-9; }

  /// Nanoseconds since the previous lap (or construction), optionally
  /// recorded into `sink`.
  double lap(Percentiles* sink = nullptr) {
    const auto now = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(now - last_).count();
    last_ = now;
    if (sink != nullptr) sink->add(ns);
    return ns;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_;
};

/// Minimal flag parser: --key value / --flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True when `flag` was passed as a flag token. Tokens sitting in the
  /// value position of a preceding `--key` are not considered flags, so
  /// `--label quick` does not make has("quick") true.
  [[nodiscard]] bool has(const std::string& flag) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (is_value_position(i)) continue;
      if (args_[i] == flag) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const char* raw = find_value(key);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0') {
      std::fprintf(stderr,
                   "warning: %s expects an integer, got \"%s\"; using "
                   "%lld\n",
                   key.c_str(), raw, static_cast<long long>(fallback));
      return fallback;
    }
    return v;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const char* raw = find_value(key);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0') {
      std::fprintf(stderr,
                   "warning: %s expects a number, got \"%s\"; using %g\n",
                   key.c_str(), raw, fallback);
      return fallback;
    }
    return v;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const {
    const char* raw = find_value(key);
    return raw == nullptr ? fallback : std::string(raw);
  }

 private:
  static bool looks_like_key(const std::string& tok) {
    return tok.size() > 2 && tok[0] == '-' && tok[1] == '-';
  }

  /// args_[i] is the value of a preceding --key (and so not a flag).
  [[nodiscard]] bool is_value_position(std::size_t i) const {
    return i > 0 && looks_like_key(args_[i - 1]) &&
           !looks_like_key(args_[i]);
  }

  /// Value token following `key`, or nullptr when absent or when the
  /// next token is itself a --key (i.e. `key` was passed as a bare flag).
  [[nodiscard]] const char* find_value(const std::string& key) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == key && !looks_like_key(args_[i + 1])) {
        return args_[i + 1].c_str();
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
};

/// printf into a growing string — lets sweep points format output into
/// per-point buffers that the harness prints in deterministic order.
inline void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline void append_format(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                   ap2);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(ap2);
}

inline void print_header(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf(
      "# Reproduction of ICPP'11 \"Virtual Topologies for Scalable "
      "Resource Management and Contention Attenuation\" (simulated Cray "
      "XT5 substrate)\n");
}

inline void print_rule() {
  std::printf(
      "#------------------------------------------------------------\n");
}

}  // namespace vtopo::bench
