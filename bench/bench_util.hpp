// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace vtopo::bench {

/// Minimal flag parser: --key value / --flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == key) return std::stoll(args_[i + 1]);
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

inline void print_header(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf(
      "# Reproduction of ICPP'11 \"Virtual Topologies for Scalable "
      "Resource Management and Contention Attenuation\" (simulated Cray "
      "XT5 substrate)\n");
}

inline void print_rule() {
  std::printf(
      "#------------------------------------------------------------\n");
}

}  // namespace vtopo::bench
