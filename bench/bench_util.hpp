// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace vtopo::bench {

/// Minimal flag parser: --key value / --flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True when `flag` was passed as a flag token. Tokens sitting in the
  /// value position of a preceding `--key` are not considered flags, so
  /// `--label quick` does not make has("quick") true.
  [[nodiscard]] bool has(const std::string& flag) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (is_value_position(i)) continue;
      if (args_[i] == flag) return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const char* raw = find_value(key);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0') {
      std::fprintf(stderr,
                   "warning: %s expects an integer, got \"%s\"; using "
                   "%lld\n",
                   key.c_str(), raw, static_cast<long long>(fallback));
      return fallback;
    }
    return v;
  }

  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const char* raw = find_value(key);
    if (raw == nullptr) return fallback;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0') {
      std::fprintf(stderr,
                   "warning: %s expects a number, got \"%s\"; using %g\n",
                   key.c_str(), raw, fallback);
      return fallback;
    }
    return v;
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const {
    const char* raw = find_value(key);
    return raw == nullptr ? fallback : std::string(raw);
  }

 private:
  static bool looks_like_key(const std::string& tok) {
    return tok.size() > 2 && tok[0] == '-' && tok[1] == '-';
  }

  /// args_[i] is the value of a preceding --key (and so not a flag).
  [[nodiscard]] bool is_value_position(std::size_t i) const {
    return i > 0 && looks_like_key(args_[i - 1]) &&
           !looks_like_key(args_[i]);
  }

  /// Value token following `key`, or nullptr when absent or when the
  /// next token is itself a --key (i.e. `key` was passed as a bare flag).
  [[nodiscard]] const char* find_value(const std::string& key) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == key && !looks_like_key(args_[i + 1])) {
        return args_[i + 1].c_str();
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
};

/// printf into a growing string — lets sweep points format output into
/// per-point buffers that the harness prints in deterministic order.
inline void append_format(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline void append_format(std::string& out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                   ap2);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(ap2);
}

inline void print_header(const char* figure, const char* what) {
  std::printf("# %s — %s\n", figure, what);
  std::printf(
      "# Reproduction of ICPP'11 \"Virtual Topologies for Scalable "
      "Resource Management and Contention Attenuation\" (simulated Cray "
      "XT5 substrate)\n");
}

inline void print_rule() {
  std::printf(
      "#------------------------------------------------------------\n");
}

}  // namespace vtopo::bench
