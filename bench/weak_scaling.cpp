// Weak-scaling sweep of the Figure-7 hot-spot workload: N processes
// (1k -> 64k on the legacy engine, to 1M+ on the sharded engine) each
// issue K fetch-&-adds on one counter owned by rank 0, across the four
// virtual topologies. Reports wall-clock, simulated time, protocol
// counters, and peak RSS per point, plus the allocation-free
// runtime-path throughput numbers and a shard sweep, into
// BENCH_runtime.json.
//
// Unlike the figure benches this is a *flood* (no turn-taking barrier
// between ranks): host-side work is O(N * K), which is what makes the
// large points tractable. FCG is swept only to 4k processes — its
// per-node credit state is O(N) (every node neighbors every other), so
// the full-graph points would measure allocator thrashing, exactly the
// scaling wall Figure 5 documents; those points print an explicit
// "skipped" marker instead of silently vanishing from the table.
//
// The shard sweep runs the same flood on the sharded engine at 1/2/4/8
// shards and reports wallclock speedup relative to 1 shard plus the
// per-shard memory high-waters. Speedup is a *host* property: with
// fewer cores than shards the conservative-window machinery is pure
// overhead, so the JSON records host_cores alongside the ratios and
// readers should interpret them together (see docs/performance.md).
//
// --backend threads runs the sweep on the real std::thread transport
// instead of the simulator: one OS thread per node, wall-clock
// latencies, sweep capped at 1024 processes (each node is a real
// thread), shard sweep and scale ceiling skipped (the threads backend
// has no shards), output to BENCH_realtime_scaling.json. The sim_ms
// column then reports *real* elapsed milliseconds — host-dependent and
// not comparable to simulated numbers (see docs/performance.md).
//
// vtopo-lint: allow-file(nondeterminism) -- wall-clock throughput timing only; never feeds simulated results
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "armci/trace.hpp"
#include "core/topology.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_engine.hpp"

namespace {

using vtopo::armci::GAddr;
using vtopo::armci::Proc;
using vtopo::armci::Runtime;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KB -> MB
}

struct Point {
  std::string topology;
  std::int64_t procs = 0;
  std::int64_t nodes = 0;
  std::int64_t ops = 0;
  int shards = 0;  ///< 0 = legacy single-threaded engine
  double wallclock_ms = 0;
  double sim_ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t forwards = 0;
  std::uint64_t msgs = 0;
  double rss_mb = 0;
  std::vector<vtopo::armci::ShardMemStats> shard_mem;
};

/// One sweep point: `procs` ranks flooding fetch-&-adds at rank 0.
/// `shards` == 0 runs the legacy engine; >= 1 the sharded engine.
/// `use_threads` runs the real std::thread transport backend instead
/// (one worker thread per node; `shards` is ignored there).
Point run_point(vtopo::core::TopologyKind kind, std::int64_t procs,
                int ops_per_proc, int shards = 0,
                bool use_threads = false) {
  const auto start = std::chrono::steady_clock::now();
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  Runtime::Config cfg;
  cfg.procs_per_node = 4;
  cfg.num_nodes = procs / cfg.procs_per_node;
  cfg.topology = kind;
  cfg.shards = shards > 0 ? shards : 1;
  if (use_threads) cfg.backend = vtopo::armci::Backend::kThreads;
  std::unique_ptr<Runtime> rt_owner =
      (shards > 0 || use_threads) ? std::make_unique<Runtime>(cfg)
                                  : std::make_unique<Runtime>(eng, cfg);
  Runtime& rt = *rt_owner;
  const auto off = rt.memory().alloc_all(8);
  rt.spawn_all([off, ops_per_proc](Proc& p) -> vtopo::sim::Co<void> {
    for (int k = 0; k < ops_per_proc; ++k) {
      co_await p.fetch_add(GAddr{0, off}, 1);
    }
  });
  rt.run_all();

  Point pt;
  pt.topology = vtopo::core::to_string(kind);
  pt.procs = procs;
  pt.nodes = cfg.num_nodes;
  pt.ops = procs * ops_per_proc;
  pt.shards = shards;
  pt.wallclock_ms = seconds_since(start) * 1e3;
  // Via the transport seam: simulated ns on the sim backend, wall-clock
  // ns since transport start on the threads backend.
  pt.sim_ms = static_cast<double>(rt.now()) / 1e6;
  pt.requests = rt.stats().requests;
  pt.forwards = rt.stats().forwards;
  pt.msgs = rt.network().messages_sent();
  pt.rss_mb = peak_rss_mb();
  pt.shard_mem = rt.stats().shard_mem;
  return pt;
}

/// Network::send throughput — the same loop hotpath_bench measures, so
/// the number is directly comparable against BENCH_hotpath.json.
double measure_msgs_per_sec(std::int64_t total_msgs) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  vtopo::net::Network net(eng, 256);
  vtopo::sim::Rng rng(7);
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < total_msgs; ++i) {
    const auto s = static_cast<vtopo::core::NodeId>(rng.uniform(256));
    const auto d = static_cast<vtopo::core::NodeId>(rng.uniform(256));
    net.send(s, d, 1024, s);
  }
  return static_cast<double>(total_msgs) / seconds_since(start);
}

struct RuntimePath {
  double ops_per_sec = 0;
  std::uint64_t req_created = 0;
  std::uint64_t req_reused = 0;
  std::uint64_t frames_created = 0;
  std::uint64_t frames_reused = 0;
};

/// Full-ARMCI-path fetch-&-add throughput on a fixed 16-node MFCG
/// cluster, with the pool hit counters that show the path running
/// allocation-free once warm.
RuntimePath measure_runtime_path(std::int64_t total_ops) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 4;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  Runtime rt(eng, cfg);
  const auto off = rt.memory().alloc_all(8);
  const int per_proc =
      static_cast<int>(total_ops / rt.num_procs());
  const std::uint64_t frames_created0 = vtopo::sim::FramePool::created();
  const std::uint64_t frames_reused0 = vtopo::sim::FramePool::reused();
  const auto start = std::chrono::steady_clock::now();
  rt.spawn_all([off, per_proc](Proc& p) -> vtopo::sim::Co<void> {
    for (int k = 0; k < per_proc; ++k) {
      co_await p.fetch_add(GAddr{0, off}, 1);
    }
  });
  rt.run_all();
  RuntimePath r;
  r.ops_per_sec = static_cast<double>(per_proc * rt.num_procs()) /
                  seconds_since(start);
  r.req_created = rt.request_pool().created();
  r.req_reused = rt.request_pool().reused();
  r.frames_created = vtopo::sim::FramePool::created() - frames_created0;
  r.frames_reused = vtopo::sim::FramePool::reused() - frames_reused0;
  return r;
}

void print_point(const Point& pt) {
  std::printf("%-7s %8lld %7lld %9lld %12.1f %12.3f %10llu %9.1f\n",
              pt.topology.c_str(), static_cast<long long>(pt.procs),
              static_cast<long long>(pt.nodes),
              static_cast<long long>(pt.ops), pt.wallclock_ms, pt.sim_ms,
              static_cast<unsigned long long>(pt.requests), pt.rss_mb);
}

/// Criticality-aware QoS before/after on the CHT path: a contended
/// mixed-class storm (bulk puts + critical fetch-&-adds at rank 0) with
/// the class-aware path off and on, returning the critical p99 in
/// simulated microseconds (deterministic, unlike the wall-clock rows).
double measure_qos_critical_p99_us(bool qos) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 2;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  // Slow CHT service makes the rank-0 queue (what QoS reorders) the
  // bottleneck instead of the NIC wire.
  cfg.armci.cht_service = vtopo::sim::us(5.0);
  cfg.armci.qos.enabled = qos;
  Runtime rt(eng, cfg);
  rt.tracer().enable();
  const auto off =
      rt.memory().alloc_all(64 + 1024 * (rt.num_procs() + 1));
  rt.spawn_all([off](Proc& p) -> vtopo::sim::Co<void> {
    if (p.node() == 0) co_return;
    if (p.id() % 4 == 0) {
      for (int i = 0; i < 10; ++i) {
        co_await p.fetch_add(GAddr{0, off}, 1);
      }
    } else {
      const std::vector<std::uint8_t> buf(1024, 0x5a);
      const vtopo::armci::PutSeg seg{buf, off + 64 + p.id() * 1024};
      for (int i = 0; i < 25; ++i) {
        co_await p.put_v(0, {&seg, 1});
      }
    }
  });
  rt.run_all();
  vtopo::bench::Percentiles pct;
  pct.add_all(rt.tracer()
                  .series(vtopo::armci::class_latency_kind(
                      vtopo::armci::Priority::kCritical))
                  .samples());
  return pct.p99();
}

void print_shard_mem(const Point& pt) {
  for (std::size_t s = 0; s < pt.shard_mem.size(); ++s) {
    const auto& m = pt.shard_mem[s];
    std::printf(
        "#   shard %zu: heap_slots=%zu heap_peak=%zu mailbox_peak=%zu "
        "pool_created=%llu events=%llu\n",
        s, m.heap_slots, m.heap_peak, m.mailbox_peak,
        static_cast<unsigned long long>(m.pool_created),
        static_cast<unsigned long long>(m.events));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const vtopo::bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::int64_t max_procs =
      args.get_int("--max-procs", quick ? 1024 : 65536);
  const int ops_per_proc =
      static_cast<int>(args.get_int("--ops", quick ? 2 : 8));
  const std::int64_t msgs =
      args.get_int("--msgs", quick ? 100'000 : 2'000'000);
  const std::int64_t path_ops =
      args.get_int("--path-ops", quick ? 6'400 : 64'000);
  const std::int64_t shard_procs =
      args.get_int("--shard-procs", quick ? 1024 : 65536);
  const std::int64_t big_procs =
      args.get_int("--big-procs", quick ? 16384 : 1048576);
  const int big_ops =
      static_cast<int>(args.get_int("--big-ops", quick ? 1 : 2));
  const std::string backend_name = args.get_string("--backend", "sim");
  const bool threads = backend_name == "threads";
  // The threads run must not clobber the simulator's golden-adjacent
  // artifact, so it defaults to its own output file.
  const std::string out_path = args.get_string(
      "--out",
      threads ? "BENCH_realtime_scaling.json" : "BENCH_runtime.json");
  const unsigned host_cores = std::thread::hardware_concurrency();

  vtopo::bench::print_header(
      "weak_scaling",
      threads
          ? "hot-spot fetch-add flood on the std::thread backend "
            "(real wall-clock, <= 1024 processes)"
          : "hot-spot fetch-add flood, 1k -> 64k processes + sharded 1M");

  const double mps = measure_msgs_per_sec(msgs);
  const RuntimePath path = measure_runtime_path(path_ops);
  const double qos_p99_before = measure_qos_critical_p99_us(false);
  const double qos_p99_after = measure_qos_critical_p99_us(true);
  std::printf("host_cores            %u\n", host_cores);
  std::printf("msgs_per_sec          %.3e\n", mps);
  std::printf("fetchadd_ops_per_sec  %.3e\n", path.ops_per_sec);
  std::printf("qos_critical_p99_us   %.1f -> %.1f (storm, fifo -> qos)\n",
              qos_p99_before, qos_p99_after);
  std::printf("request_pool          created=%llu reused=%llu\n",
              static_cast<unsigned long long>(path.req_created),
              static_cast<unsigned long long>(path.req_reused));
  std::printf("frame_pool            created=%llu reused=%llu\n",
              static_cast<unsigned long long>(path.frames_created),
              static_cast<unsigned long long>(path.frames_reused));
  vtopo::bench::print_rule();

  // Sweep ascending so each point's peak-RSS reading is dominated by its
  // own footprint (ru_maxrss is monotone over the process lifetime).
  const vtopo::core::TopologyKind kinds[] = {
      vtopo::core::TopologyKind::kFcg, vtopo::core::TopologyKind::kMfcg,
      vtopo::core::TopologyKind::kCfcg,
      vtopo::core::TopologyKind::kHypercube};
  constexpr std::int64_t kFcgMaxProcs = 4096;
  // One OS thread per node on the real backend: past 1024 processes
  // (256 worker threads) the sweep measures the host scheduler, not the
  // transport — mirror the FCG wall with an explicit marker.
  constexpr std::int64_t kThreadsMaxProcs = 1024;

  std::vector<Point> points;
  std::printf("# %-5s %8s %7s %9s %12s %12s %10s %9s\n", "topo", "procs",
              "nodes", "ops", "wallclock_ms", "sim_ms", "requests",
              "rss_mb");
  if (threads) {
    std::printf("# backend=threads: sim_ms column is REAL elapsed ms "
                "(host-dependent)\n");
  }
  for (std::int64_t procs = 1024; procs <= max_procs; procs *= 4) {
    for (const auto kind : kinds) {
      if (kind == vtopo::core::TopologyKind::kFcg &&
          procs > kFcgMaxProcs) {
        std::printf("%-7s %8lld %7lld  skipped (O(N^2) memory: full-graph "
                    "credit state)\n",
                    "FCG", static_cast<long long>(procs),
                    static_cast<long long>(procs / 4));
        continue;
      }
      if (threads && procs > kThreadsMaxProcs) {
        std::printf("%-7s %8lld %7lld  skipped (threads backend: one OS "
                    "thread per node)\n",
                    vtopo::core::to_string(kind),
                    static_cast<long long>(procs),
                    static_cast<long long>(procs / 4));
        continue;
      }
      points.push_back(run_point(kind, procs, ops_per_proc, 0, threads));
      print_point(points.back());
    }
  }

  // ---- Shard sweep + scale ceiling: sim backend only (the threads
  // backend has no shards — its parallelism IS the per-node threads) ----
  std::vector<Point> shard_points;
  Point big;
  if (!threads) {
    vtopo::bench::print_rule();
    std::printf("# shard sweep: MFCG %lld procs, ThreadMode=auto "
                "(host_cores=%u)\n",
                static_cast<long long>(shard_procs), host_cores);
    for (const int shards : {1, 2, 4, 8}) {
      shard_points.push_back(run_point(vtopo::core::TopologyKind::kMfcg,
                                       shard_procs, ops_per_proc, shards));
      Point& pt = shard_points.back();
      std::printf("# shards=%d wallclock_ms=%.1f sim_ms=%.3f rss_mb=%.1f "
                  "speedup=%.2f\n",
                  shards, pt.wallclock_ms, pt.sim_ms, pt.rss_mb,
                  shard_points.front().wallclock_ms / pt.wallclock_ms);
      print_shard_mem(pt);
    }

    vtopo::bench::print_rule();
    std::printf("# scale ceiling: MFCG %lld procs, 8 shards, %d ops/proc\n",
                static_cast<long long>(big_procs), big_ops);
    big = run_point(vtopo::core::TopologyKind::kMfcg, big_procs, big_ops, 8);
    print_point(big);
    print_shard_mem(big);
  } else {
    vtopo::bench::print_rule();
    std::printf("# shard sweep + scale ceiling skipped: threads backend "
                "(one OS thread per node, no engine shards)\n");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"backend\": \"%s\",\n"
               "  \"host_cores\": %u,\n"
               "  \"msgs_per_sec\": %.1f,\n"
               "  \"fetchadd_ops_per_sec\": %.1f,\n"
               "  \"request_pool\": {\"created\": %llu, \"reused\": %llu},\n"
               "  \"frame_pool\": {\"created\": %llu, \"reused\": %llu},\n"
               "  \"fcg_skipped_above_procs\": %lld,\n"
               "  \"weak_scaling\": [\n",
               backend_name.c_str(), host_cores, mps, path.ops_per_sec,
               static_cast<unsigned long long>(path.req_created),
               static_cast<unsigned long long>(path.req_reused),
               static_cast<unsigned long long>(path.frames_created),
               static_cast<unsigned long long>(path.frames_reused),
               static_cast<long long>(kFcgMaxProcs));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    std::fprintf(f,
                 "    {\"topology\": \"%s\", \"procs\": %lld, \"nodes\": "
                 "%lld, \"ops\": %lld, \"wallclock_ms\": %.3f, "
                 "\"sim_ms\": %.3f, \"requests\": %llu, \"forwards\": "
                 "%llu, \"msgs\": %llu, \"peak_rss_mb\": %.1f}%s\n",
                 pt.topology.c_str(), static_cast<long long>(pt.procs),
                 static_cast<long long>(pt.nodes),
                 static_cast<long long>(pt.ops), pt.wallclock_ms,
                 pt.sim_ms, static_cast<unsigned long long>(pt.requests),
                 static_cast<unsigned long long>(pt.forwards),
                 static_cast<unsigned long long>(pt.msgs), pt.rss_mb,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"shard_sweep\": [\n");
  for (std::size_t i = 0; i < shard_points.size(); ++i) {
    const Point& pt = shard_points[i];
    std::fprintf(
        f,
        "    {\"shards\": %d, \"procs\": %lld, \"wallclock_ms\": %.3f, "
        "\"sim_ms\": %.3f, \"peak_rss_mb\": %.1f, "
        "\"speedup_vs_1shard\": %.3f}%s\n",
        pt.shards, static_cast<long long>(pt.procs), pt.wallclock_ms,
        pt.sim_ms, pt.rss_mb,
        shard_points.front().wallclock_ms / pt.wallclock_ms,
        i + 1 < shard_points.size() ? "," : "");
  }
  if (threads) {
    std::fprintf(
        f,
        "  ],\n"
        "  \"shard_sweep_note\": \"skipped: the threads backend has no "
        "engine shards (one OS thread per node is its parallelism)\",\n"
        "  \"threads_note\": \"sim_ms fields are REAL elapsed ms on the "
        "std::thread backend — host-dependent, not comparable to "
        "simulated numbers\",\n"
        "  \"scale_ceiling\": null,\n");
  } else {
    std::fprintf(
        f,
        "  ],\n"
        "  \"shard_sweep_note\": \"speedup is a host property: with "
        "host_cores < shards the window machinery is pure overhead and "
        "ratios near/below 1.0 are expected; >= 3x at 8 shards requires "
        ">= 8 cores\",\n"
        "  \"scale_ceiling\": {\"topology\": \"%s\", \"procs\": %lld, "
        "\"nodes\": %lld, \"ops\": %lld, \"shards\": %d, "
        "\"wallclock_ms\": %.3f, \"sim_ms\": %.3f, \"requests\": %llu, "
        "\"peak_rss_mb\": %.1f, \"completed\": true},\n",
        big.topology.c_str(), static_cast<long long>(big.procs),
        static_cast<long long>(big.nodes), static_cast<long long>(big.ops),
        big.shards, big.wallclock_ms, big.sim_ms,
        static_cast<unsigned long long>(big.requests), big.rss_mb);
  }
  std::fprintf(f, "  \"qos_critical_p99_us\": "
               "{\"before\": %.1f, \"after\": %.1f}\n",
               qos_p99_before, qos_p99_after);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return 0;
}
