// Extension bench: the virtual topology's request tree as a reduction
// tree. Compares allreduce latency and root in-degree across
// topologies — contention attenuation applied to collectives.
#include <cstdio>

#include "bench_util.hpp"
#include "coll/tree_reduce.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t nodes = args.get_int("--nodes", 256);
  const int rounds =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 10));

  bench::print_header("Extension", "topology trees as reduction trees");
  std::printf("# %lld nodes x 4 procs, %d allreduce rounds\n",
              static_cast<long long>(nodes), rounds);
  std::printf("%-12s %14s %16s\n", "topology", "root_in_msgs",
              "allreduce_us");

  for (const auto kind : core::all_topology_kinds()) {
    sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
    armci::Runtime::Config cfg;
    cfg.num_nodes = nodes;
    cfg.procs_per_node = 4;
    cfg.topology = kind;
    armci::Runtime rt(eng, cfg);
    msg::TwoSided ts(rt);
    coll::TreeReduce tr(rt, ts,
                        core::build_request_tree(rt.topology(), 0));
    sim::TimeNs total = 0;
    // vtopo-lint: allow(coro-ref) -- closure copied into Runtime::programs_; captured locals outlive run_all()
    rt.spawn_all([&](armci::Proc& p) -> sim::Co<void> {
      sim::Engine& e = p.runtime().engine();
      for (int r = 0; r < rounds; ++r) {
        const sim::TimeNs t0 = e.now();
        co_await tr.allreduce_sum(p, 1.0);
        if (p.id() == 0) total += e.now() - t0;
      }
    });
    rt.run_all();
    std::printf("%-12s %14lld %16.1f\n", core::to_string(kind),
                static_cast<long long>(tr.root_in_messages()),
                sim::to_us(total) / rounds);
  }
  bench::print_rule();
  std::printf("# The root's in-degree falls from N-1 (flat) to the "
              "topology fanout; the\n# deeper trees trade root pressure "
              "for tree height, exactly as Sec. III\n# predicts for "
              "request traffic.\n");
  return 0;
}
