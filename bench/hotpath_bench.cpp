// Hot-path throughput measurement: events/sec through the engine,
// messages/sec through Network::send, and wall-clock for a Figure-7
// style contention run. Writes BENCH_hotpath.json so later PRs have a
// perf trajectory to regress against.
//
// The binary embeds a replica of the pre-overhaul engine (binary
// std::priority_queue over events carrying std::function payloads) and
// measures it alongside the current engine, so the speedup is computed
// in one process on the same machine rather than across checkouts.
//
// vtopo-lint: allow-file(nondeterminism) -- wall-clock throughput timing only; never feeds simulated results
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "armci/trace.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workloads/contention.hpp"

namespace {

using vtopo::sim::TimeNs;

/// Pre-overhaul engine, verbatim from the seed tree (trimmed to the
/// members the benchmark exercises).
class LegacyEngine {
 public:
  [[nodiscard]] TimeNs now() const { return now_; }

  void schedule_at(TimeNs t, std::function<void()> fn) {
    assert(t >= now_ && "cannot schedule into the simulated past");
    // vtopo-lint: allow(qos-submit) -- LegacyEngine's own event heap shares the queue_ name; not a CHT request queue
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void schedule_after(TimeNs delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  TimeNs run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
    }
    return now_;
  }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The measured event mix mirrors what the simulator actually generates:
// timed events (network arrivals, sleeps) interleaved with zero-delay
// hand-offs (coroutine resumptions — every AsyncQueue push, Future
// fulfilment, and Semaphore release schedules at the current time).
// Each timer firing spawns a two-deep resume chain and reschedules
// itself, so two thirds of the executed events are same-time hand-offs.
// Captures are three words, the size of a typical event callback.

template <class EngineT>
struct HandOff {
  EngineT* eng;
  std::int64_t* remaining;
  std::int64_t chain;
  void operator()() const {
    if (--*remaining <= 0) return;
    if (chain > 1) eng->schedule_after(0, HandOff{eng, remaining, chain - 1});
  }
};

template <class EngineT>
struct Timer {
  EngineT* eng;
  std::int64_t* remaining;
  TimeNs delay;
  void operator()() const {
    if (--*remaining <= 0) return;
    eng->schedule_after(0, HandOff<EngineT>{eng, remaining, 2});
    eng->schedule_after(delay, *this);
  }
};

/// Events/sec at a steady-state pending-timer population of `timers`.
template <class EngineT>
double measure_events_per_sec(std::int64_t total_events, int timers) {
  EngineT eng;
  std::int64_t remaining = total_events;
  for (int i = 0; i < timers; ++i) {
    // Co-prime-ish delays keep the heap genuinely unordered.
    const auto delay = static_cast<TimeNs>(1 + (i * 2654435761u) % 97);
    eng.schedule_after(delay, Timer<EngineT>{&eng, &remaining, delay});
  }
  const auto start = std::chrono::steady_clock::now();
  eng.run();
  return static_cast<double>(total_events) / seconds_since(start);
}

double measure_msgs_per_sec(std::int64_t total_msgs) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  vtopo::net::Network net(eng, 256);
  vtopo::sim::Rng rng(7);
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < total_msgs; ++i) {
    const auto s = static_cast<vtopo::core::NodeId>(rng.uniform(256));
    const auto d = static_cast<vtopo::core::NodeId>(rng.uniform(256));
    net.send(s, d, 1024, s);
  }
  const double elapsed = seconds_since(start);
  return static_cast<double>(total_msgs) / elapsed;
}

/// Runtime-path section: full ARMCI fetch-&-add round trips (request
/// pool, coroutine frames, credit probe, CHT service, response future)
/// on a 16-node MFCG cluster, with the pool counters that show the path
/// running allocation-free once warm.
struct RuntimePath {
  double ops_per_sec = 0;
  double request_reuse_frac = 0;
  double frame_reuse_frac = 0;
};

RuntimePath measure_runtime_path(std::int64_t total_ops) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  vtopo::armci::Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 4;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  vtopo::armci::Runtime rt(eng, cfg);
  const auto off = rt.memory().alloc_all(8);
  const int per_proc = static_cast<int>(total_ops / rt.num_procs());
  const std::uint64_t fc0 = vtopo::sim::FramePool::created();
  const std::uint64_t fr0 = vtopo::sim::FramePool::reused();
  const auto start = std::chrono::steady_clock::now();
  rt.spawn_all([off, per_proc](vtopo::armci::Proc& p)
                   -> vtopo::sim::Co<void> {
    for (int k = 0; k < per_proc; ++k) {
      co_await p.fetch_add(vtopo::armci::GAddr{0, off}, 1);
    }
  });
  rt.run_all();
  RuntimePath r;
  r.ops_per_sec = static_cast<double>(per_proc * rt.num_procs()) /
                  seconds_since(start);
  const double req_created =
      static_cast<double>(rt.request_pool().created());
  const double req_reused = static_cast<double>(rt.request_pool().reused());
  r.request_reuse_frac = req_reused / std::max(1.0, req_created + req_reused);
  const double fc = static_cast<double>(vtopo::sim::FramePool::created() - fc0);
  const double fr = static_cast<double>(vtopo::sim::FramePool::reused() - fr0);
  r.frame_reuse_frac = fr / std::max(1.0, fc + fr);
  return r;
}

/// Same flood on the self-hosted sharded runtime: ops/sec through the
/// windowed schedule plus the per-shard memory high-waters. On a host
/// with fewer cores than shards the ratio against the legacy number is
/// the cost of the window machinery, not a speedup measurement.
struct ShardedPath {
  double ops_per_sec = 0;
  std::vector<vtopo::armci::ShardMemStats> shard_mem;
};

ShardedPath measure_sharded_path(std::int64_t total_ops, int shards,
                                 bool force_threads) {
  vtopo::armci::Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 4;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  cfg.shards = shards;
  // --shard-threads pins one host thread per shard even on small hosts:
  // the TSan battery drives the real barrier/mailbox protocol this way.
  cfg.thread_mode = force_threads ? vtopo::sim::ThreadMode::kThreads
                                  : vtopo::sim::ThreadMode::kAuto;
  vtopo::armci::Runtime rt(cfg);
  const auto off = rt.memory().alloc_all(8);
  const int per_proc = static_cast<int>(total_ops / rt.num_procs());
  const auto start = std::chrono::steady_clock::now();
  rt.spawn_all([off, per_proc](vtopo::armci::Proc& p)
                   -> vtopo::sim::Co<void> {
    for (int k = 0; k < per_proc; ++k) {
      co_await p.fetch_add(vtopo::armci::GAddr{0, off}, 1);
    }
  });
  rt.run_all();
  ShardedPath r;
  r.ops_per_sec = static_cast<double>(per_proc * rt.num_procs()) /
                  seconds_since(start);
  r.shard_mem = rt.stats().shard_mem;
  return r;
}

/// Threads-backend section: the same fetch-&-add flood on the real
/// std::thread transport (one worker per node, real MPSC queues, real
/// shared-memory copies). Latency here is wall-clock end-to-end per op,
/// collected per process and summarized with the shared Percentiles
/// helper — these are REAL nanoseconds, not simulated ones, so they are
/// host-dependent and not comparable to the sim sections above (see
/// docs/performance.md).
struct ThreadsPath {
  std::int64_t nodes = 0;
  std::int64_t procs = 0;
  std::int64_t ops = 0;
  double wall_sec = 0;
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double p999_ns = 0;
  double max_ns = 0;
};

ThreadsPath measure_threads_path(std::int64_t total_ops) {
  vtopo::armci::Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 4;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  cfg.backend = vtopo::armci::Backend::kThreads;
  vtopo::armci::Runtime rt(cfg);
  const auto off = rt.memory().alloc_all(8);
  const int per_proc = static_cast<int>(total_ops / rt.num_procs());
  // Per-proc latency slots: each worker writes only its own vector, the
  // driver reads them after run_all()'s join.
  auto lat = std::make_shared<std::vector<std::vector<double>>>(
      static_cast<std::size_t>(rt.num_procs()));
  vtopo::bench::WallTimer run_timer;
  rt.spawn_all([off, per_proc, lat](vtopo::armci::Proc& p)
                   -> vtopo::sim::Co<void> {
    (*lat)[static_cast<std::size_t>(p.id())].reserve(
        static_cast<std::size_t>(per_proc));
    for (int k = 0; k < per_proc; ++k) {
      const auto t0 = std::chrono::steady_clock::now();
      co_await p.fetch_add(vtopo::armci::GAddr{0, off}, 1);
      (*lat)[static_cast<std::size_t>(p.id())].push_back(
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  });
  rt.run_all();
  ThreadsPath r;
  r.nodes = rt.num_nodes();
  r.procs = rt.num_procs();
  r.ops = static_cast<std::int64_t>(per_proc) * rt.num_procs();
  r.wall_sec = run_timer.elapsed_sec();
  r.ops_per_sec = static_cast<double>(r.ops) / r.wall_sec;
  vtopo::bench::Percentiles pct;
  for (const auto& v : *lat) pct.add_all(v);
  r.p50_ns = pct.p50();
  r.p99_ns = pct.p99();
  r.p999_ns = pct.p999();
  r.max_ns = pct.max();
  return r;
}

/// Criticality-aware QoS before/after on the CHT path: the same
/// contended mixed-class storm with the class-aware path off and on,
/// returning the critical fetch-&-add p99 in simulated microseconds
/// (deterministic run to run, unlike the wall-clock sections above).
double measure_qos_critical_p99_us(bool qos) {
  vtopo::sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  vtopo::armci::Runtime::Config cfg;
  cfg.num_nodes = 16;
  cfg.procs_per_node = 2;
  cfg.topology = vtopo::core::TopologyKind::kMfcg;
  // Slow CHT service makes the rank-0 queue (what QoS reorders) the
  // bottleneck instead of the NIC wire.
  cfg.armci.cht_service = vtopo::sim::us(5.0);
  cfg.armci.qos.enabled = qos;
  vtopo::armci::Runtime rt(eng, cfg);
  rt.tracer().enable();
  const auto off =
      rt.memory().alloc_all(64 + 1024 * (rt.num_procs() + 1));
  rt.spawn_all([off](vtopo::armci::Proc& p) -> vtopo::sim::Co<void> {
    if (p.node() == 0) co_return;
    if (p.id() % 4 == 0) {
      for (int i = 0; i < 10; ++i) {
        co_await p.fetch_add(vtopo::armci::GAddr{0, off}, 1);
      }
    } else {
      const std::vector<std::uint8_t> buf(1024, 0x5a);
      const vtopo::armci::PutSeg seg{buf, off + 64 + p.id() * 1024};
      for (int i = 0; i < 25; ++i) {
        co_await p.put_v(0, {&seg, 1});
      }
    }
  });
  rt.run_all();
  vtopo::bench::Percentiles pct;
  pct.add_all(rt.tracer()
                  .series(vtopo::armci::class_latency_kind(
                      vtopo::armci::Priority::kCritical))
                  .samples());
  return pct.p99();
}

double measure_fig7_wallclock_ms(bool quick) {
  vtopo::work::ClusterConfig cluster;
  cluster.num_nodes = quick ? 16 : 64;
  cluster.procs_per_node = 4;
  cluster.topology = vtopo::core::TopologyKind::kMfcg;
  vtopo::work::ContentionConfig cfg;
  cfg.op = vtopo::work::ContentionConfig::Op::kFetchAdd;
  cfg.iterations = quick ? 1 : 5;
  cfg.contender_stride = 9;
  const auto start = std::chrono::steady_clock::now();
  const auto res = vtopo::work::run_contention(cluster, cfg);
  const double ms = seconds_since(start) * 1e3;
  if (res.op_time_us.empty()) std::fprintf(stderr, "empty fig7 result\n");
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const vtopo::bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::int64_t events =
      args.get_int("--events", quick ? 400'000 : 8'000'000);
  const std::int64_t msgs = args.get_int("--msgs", quick ? 100'000 : 2'000'000);
  const int timers = static_cast<int>(args.get_int("--timers", 256));
  const std::string out_path =
      args.get_string("--out", "BENCH_hotpath.json");

  vtopo::bench::print_header("hotpath_bench",
                             "simulator hot-path throughput");

  const double legacy_eps =
      measure_events_per_sec<LegacyEngine>(events, timers);
  const double eps =
      measure_events_per_sec<vtopo::sim::Engine>(events, timers);
  const double mps = measure_msgs_per_sec(msgs);
  const std::int64_t path_ops =
      args.get_int("--path-ops", quick ? 6'400 : 64'000);
  const int shards = static_cast<int>(args.get_int("--shards", 4));
  const bool shard_threads = args.has("--shard-threads");
  const RuntimePath path = measure_runtime_path(path_ops);
  const ShardedPath spath =
      measure_sharded_path(path_ops, shards, shard_threads);
  const ThreadsPath tpath = measure_threads_path(path_ops);
  const double fig7_ms = measure_fig7_wallclock_ms(quick);
  const double qos_p99_before = measure_qos_critical_p99_us(false);
  const double qos_p99_after = measure_qos_critical_p99_us(true);

  std::printf("events_per_sec        %.3e\n", eps);
  std::printf("legacy_events_per_sec %.3e\n", legacy_eps);
  std::printf("engine_speedup        %.2fx\n", eps / legacy_eps);
  std::printf("msgs_per_sec          %.3e\n", mps);
  std::printf("fetchadd_ops_per_sec  %.3e\n", path.ops_per_sec);
  std::printf("sharded_ops_per_sec   %.3e (%d shards)\n", spath.ops_per_sec,
              shards);
  for (std::size_t s = 0; s < spath.shard_mem.size(); ++s) {
    const auto& m = spath.shard_mem[s];
    std::printf(
        "#   shard %zu: heap_slots=%zu heap_peak=%zu mailbox_peak=%zu "
        "pool_created=%llu events=%llu\n",
        s, m.heap_slots, m.heap_peak, m.mailbox_peak,
        static_cast<unsigned long long>(m.pool_created),
        static_cast<unsigned long long>(m.events));
  }
  std::printf("threads_ops_per_sec   %.3e (%lld nodes, real wall-clock)\n",
              tpath.ops_per_sec, static_cast<long long>(tpath.nodes));
  std::printf(
      "threads_latency_ns    p50=%.0f p99=%.0f p999=%.0f max=%.0f\n",
      tpath.p50_ns, tpath.p99_ns, tpath.p999_ns, tpath.max_ns);
  std::printf("request_reuse_frac    %.4f\n", path.request_reuse_frac);
  std::printf("frame_reuse_frac      %.4f\n", path.frame_reuse_frac);
  std::printf("fig7_wallclock_ms     %.1f\n", fig7_ms);
  std::printf("qos_critical_p99_us   %.1f -> %.1f (storm, fifo -> qos)\n",
              qos_p99_before, qos_p99_after);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"msgs_per_sec\": %.1f,\n"
               "  \"fig7_wallclock_ms\": %.3f,\n"
               "  \"legacy_events_per_sec\": %.1f,\n"
               "  \"engine_speedup\": %.3f,\n"
               "  \"fetchadd_ops_per_sec\": %.1f,\n"
               "  \"sharded_ops_per_sec\": %.1f,\n"
               "  \"sharded_shards\": %d,\n"
               "  \"request_reuse_frac\": %.4f,\n"
               "  \"frame_reuse_frac\": %.4f,\n"
               "  \"qos_critical_p99_us\": "
               "{\"before\": %.1f, \"after\": %.1f}\n"
               "}\n",
               eps, mps, fig7_ms, legacy_eps, eps / legacy_eps,
               path.ops_per_sec, spath.ops_per_sec, shards,
               path.request_reuse_frac, path.frame_reuse_frac,
               qos_p99_before, qos_p99_after);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());

  const std::string realtime_path =
      args.get_string("--realtime-out", "BENCH_realtime.json");
  std::FILE* rf = std::fopen(realtime_path.c_str(), "w");
  if (rf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", realtime_path.c_str());
    return 1;
  }
  std::fprintf(rf,
               "{\n"
               "  \"backend\": \"threads\",\n"
               "  \"workload\": \"fetchadd_flood\",\n"
               "  \"nodes\": %lld,\n"
               "  \"procs\": %lld,\n"
               "  \"ops\": %lld,\n"
               "  \"wall_sec\": %.6f,\n"
               "  \"ops_per_sec\": %.1f,\n"
               "  \"latency_ns\": {\"p50\": %.0f, \"p99\": %.0f, "
               "\"p999\": %.0f, \"max\": %.0f},\n"
               "  \"note\": \"real wall-clock nanoseconds on the "
               "std::thread backend; host-dependent, not comparable to "
               "simulated-ns sections\"\n"
               "}\n",
               static_cast<long long>(tpath.nodes),
               static_cast<long long>(tpath.procs),
               static_cast<long long>(tpath.ops), tpath.wall_sec,
               tpath.ops_per_sec, tpath.p50_ns, tpath.p99_ns, tpath.p999_ns,
               tpath.max_ns);
  std::fclose(rf);
  std::printf("# wrote %s\n", realtime_path.c_str());
  return 0;
}
