// Criticality-aware QoS bench: per-class tail latency under a hot-spot
// storm, FIFO vs the QoS request path, plus the adaptive per-phase QoS
// selection. Writes BENCH_qos.json.
//
// Storm: on an MFCG mesh every fourth process times critical
// fetch-&-adds against a rank-0 counter while the rest flood 1 KiB
// vectored puts at rank 0 — the DFT-style pattern where a FIFO CHT
// buries the atomics behind bulk backlog. The QoS path (class-weighted
// dequeue + reserved credit lane + endpoint congestion windows) must
// cut the critical-class p99/p999 at least 2x while keeping aggregate
// throughput within 5% (the bulk work is the same; it is only
// reordered). The adaptive section alternates hot-spot and neighbor-
// exchange phases under three policies — static FIFO, static QoS, and
// AdaptiveController{manage_qos}. In hot phases critical atomics gate a
// NXTVAL-style task chain, so a FIFO CHT stretches the phase itself;
// the gate is the controller beating the worst static choice on
// end-to-end phase time (while matching static QoS on critical p99).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "armci/adaptive.hpp"
#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "armci/trace.hpp"
#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

using namespace vtopo;

namespace {

struct ClassStats {
  std::size_t n = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

ClassStats class_stats(armci::Runtime& rt, armci::Priority cls) {
  const sim::Series& s =
      rt.tracer().series(armci::class_latency_kind(cls));
  bench::Percentiles pct;
  pct.add_all(s.samples());
  ClassStats out;
  out.n = pct.count();
  out.p50_us = pct.p50();
  out.p99_us = pct.p99();
  out.p999_us = pct.p999();
  return out;
}

struct StormResult {
  ClassStats cls[armci::kNumPriorities];
  double ops_per_sec = 0.0;  ///< completed app ops per simulated second
  double end_ms = 0.0;
  bool exactly_once = true;
  std::uint64_t max_backlog = 0;
  std::uint64_t aged_promotions = 0;
  std::uint64_t reserved_grants = 0;
  std::uint64_t congestion_stalls = 0;
  std::uint64_t window_shrinks = 0;
};

armci::Runtime::Config storm_cfg(bool qos, bool quick) {
  armci::Runtime::Config cfg;
  cfg.num_nodes = quick ? 8 : 16;
  cfg.procs_per_node = quick ? 2 : 4;
  cfg.topology = core::TopologyKind::kMfcg;
  cfg.armci.qos.enabled = qos;
  // Make the rank-0 CHT the bottleneck (the regime QoS exists for):
  // with the default sub-microsecond service time the NIC wire into
  // node 0 saturates first and the CHT queue never grows deep enough
  // to reorder. A slower CHT — one busy helper thread on a loaded
  // node — pushes the contention into the request queue itself.
  cfg.armci.cht_service = sim::us(5.0);
  return cfg;
}

/// Bulk payload per vectored put. Small enough that wire time stays
/// well under the CHT service time (queueing, not bandwidth, dominates).
constexpr std::int64_t kBulkBytes = 1024;

StormResult run_storm(bool qos, bool quick) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime rt(eng, storm_cfg(qos, quick));
  rt.tracer().enable();
  const int bulk_ops = quick ? 12 : 25;
  const int crit_ops = quick ? 8 : 30;
  const auto off =
      rt.memory().alloc_all(64 + 4096 * (rt.num_procs() + 1));
  std::int64_t crit_procs = 0;
  std::int64_t bulk_procs = 0;
  for (armci::ProcId id = 0; id < rt.num_procs(); ++id) {
    if (rt.node_of(id) == 0) continue;
    (id % 4 == 0 ? crit_procs : bulk_procs) += 1;
  }
  rt.spawn_all([off, bulk_ops, crit_ops](armci::Proc& p)
                   -> sim::Co<void> {
    if (p.node() == 0) co_return;
    if (p.id() % 4 == 0) {
      for (int i = 0; i < crit_ops; ++i) {
        co_await p.fetch_add(armci::GAddr{0, off}, 1);
      }
    } else {
      const std::vector<std::uint8_t> buf(kBulkBytes, 0x5a);
      const armci::PutSeg seg{buf, off + 64 + p.id() * 4096};
      for (int i = 0; i < bulk_ops; ++i) {
        co_await p.put_v(0, {&seg, 1});
      }
    }
  });
  rt.run_all();

  StormResult out;
  for (int c = 0; c < armci::kNumPriorities; ++c) {
    out.cls[c] = class_stats(rt, static_cast<armci::Priority>(c));
  }
  const std::int64_t total_ops =
      crit_procs * crit_ops + bulk_procs * bulk_ops;
  out.ops_per_sec =
      static_cast<double>(total_ops) / sim::to_sec(eng.now());
  out.end_ms = sim::to_us(eng.now()) / 1000.0;
  out.exactly_once = rt.memory().read_i64(armci::GAddr{0, off}) ==
                     crit_procs * crit_ops;
  out.max_backlog = rt.stats().max_backlog;
  out.aged_promotions = rt.stats().aged_promotions;
  out.reserved_grants = rt.stats().reserved_grants;
  out.congestion_stalls = rt.stats().congestion_stalls;
  out.window_shrinks = rt.stats().window_shrinks;
  return out;
}

// ---------------------------------------------------- adaptive section

enum class Policy { kStaticFifo, kStaticQos, kAdaptive };

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kStaticFifo:
      return "static_fifo";
    case Policy::kStaticQos:
      return "static_qos";
    case Policy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct PhasedOut {
  double critical_p99_us = 0.0;
  double end_ms = 0.0;
  int qos_retunes = 0;
  bool exactly_once = true;
};

/// Alternating phases: even = hot-spot storm at rank 0, odd = neighbor
/// exchange (pure bulk, no hot spot — the phase where QoS scheduling is
/// pure overhead). In the hot phase every fourth process runs a
/// NXTVAL-style chain — fetch-&-add a shared counter, then execute the
/// task it names — so the phase cannot close until the critical atomics
/// drain: a FIFO CHT that buries them behind the bulk flood stretches
/// the phase end-to-end, which is what the adaptive policy (announcing
/// each upcoming phase's skew, installing qos_hot / qos_cold through
/// the serial phase) gets paid for.
PhasedOut run_phases(Policy policy, bool quick) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime::Config cfg =
      storm_cfg(policy == Policy::kStaticQos, quick);
  armci::Runtime rt(eng, cfg);
  std::unique_ptr<armci::AdaptiveController> ctrl;
  if (policy == Policy::kAdaptive) {
    armci::AdaptiveConfig acfg;
    acfg.manage_qos = true;
    ctrl = std::make_unique<armci::AdaptiveController>(rt, acfg);
  } else {
    rt.tracer().enable();
  }
  const int phases = 4;
  const int bulk_ops = quick ? 6 : 12;
  const int crit_ops = quick ? 8 : 20;
  const sim::TimeNs task_compute = sim::us(200.0);
  const auto off =
      rt.memory().alloc_all(64 + 4096 * (rt.num_procs() + 1));
  const std::int64_t nprocs = rt.num_procs();
  std::int64_t crit_procs = 0;
  for (armci::ProcId id = 0; id < nprocs; ++id) {
    if (rt.node_of(id) != 0 && id % 4 == 0) ++crit_procs;
  }
  armci::AdaptiveController* c = ctrl.get();
  rt.spawn_all([off, bulk_ops, crit_ops, task_compute, nprocs,
                c](armci::Proc& p) -> sim::Co<void> {
    for (int ph = 0; ph < phases; ++ph) {
      co_await p.barrier();
      if (p.id() == 0 && c != nullptr) {
        // Announce the upcoming phase's skew (hot phases are even).
        (void)co_await c->maybe_reconfigure(ph % 2 == 0 ? 0.9 : 0.0);
      }
      co_await p.barrier();
      if (ph % 2 == 0) {
        if (p.node() == 0) continue;
        if (p.id() % 4 == 0) {
          for (int i = 0; i < crit_ops; ++i) {
            co_await p.fetch_add(armci::GAddr{0, off}, 1);
            co_await p.compute(task_compute);  // the task NXTVAL named
          }
        } else {
          const std::vector<std::uint8_t> buf(kBulkBytes, 0x5a);
          const armci::PutSeg seg{buf, off + 64 + p.id() * 4096};
          for (int i = 0; i < bulk_ops; ++i) {
            co_await p.put_v(0, {&seg, 1});
          }
        }
      } else {
        const std::vector<std::uint8_t> buf(kBulkBytes, 0x21);
        const armci::ProcId peer = (p.id() + 1) % nprocs;
        const armci::PutSeg seg{buf, off + 64 + p.id() * 4096};
        for (int i = 0; i < bulk_ops; ++i) {
          co_await p.put_v(peer, {&seg, 1});
        }
      }
    }
  });
  rt.run_all();

  PhasedOut out;
  out.critical_p99_us =
      class_stats(rt, armci::Priority::kCritical).p99_us;
  out.end_ms = sim::to_us(eng.now()) / 1000.0;
  out.qos_retunes = ctrl ? ctrl->qos_retunes() : 0;
  out.exactly_once = rt.memory().read_i64(armci::GAddr{0, off}) ==
                     crit_procs * crit_ops * (phases / 2);
  return out;
}

void print_class_block(const char* label, const StormResult& r) {
  static const char* kClsName[] = {"bulk", "normal", "critical"};
  std::printf("%s:\n", label);
  std::printf("  %-9s %6s %10s %10s %10s\n", "class", "n", "p50_us",
              "p99_us", "p999_us");
  for (int c = 0; c < armci::kNumPriorities; ++c) {
    if (r.cls[c].n == 0) continue;
    std::printf("  %-9s %6zu %10.1f %10.1f %10.1f\n", kClsName[c],
                r.cls[c].n, r.cls[c].p50_us, r.cls[c].p99_us,
                r.cls[c].p999_us);
  }
  std::printf("  ops/sec %.0f  end_ms %.2f  max_backlog %llu"
              "  aged %llu  reserved %llu  stalls %llu  shrinks %llu%s\n",
              r.ops_per_sec, r.end_ms,
              static_cast<unsigned long long>(r.max_backlog),
              static_cast<unsigned long long>(r.aged_promotions),
              static_cast<unsigned long long>(r.reserved_grants),
              static_cast<unsigned long long>(r.congestion_stalls),
              static_cast<unsigned long long>(r.window_shrinks),
              r.exactly_once ? "" : "  LOST-OPS");
}

void json_class_block(std::FILE* f, const char* key,
                      const StormResult& r) {
  static const char* kClsName[] = {"bulk", "normal", "critical"};
  std::fprintf(f, "    \"%s\": {\n", key);
  for (int c = 0; c < armci::kNumPriorities; ++c) {
    std::fprintf(f,
                 "      \"%s\": {\"n\": %zu, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"p999_us\": %.2f},\n",
                 kClsName[c], r.cls[c].n, r.cls[c].p50_us,
                 r.cls[c].p99_us, r.cls[c].p999_us);
  }
  std::fprintf(f,
               "      \"ops_per_sec\": %.1f, \"end_ms\": %.3f, "
               "\"max_backlog\": %llu, \"aged_promotions\": %llu, "
               "\"reserved_grants\": %llu, \"congestion_stalls\": %llu, "
               "\"window_shrinks\": %llu, \"exactly_once\": %s\n",
               r.ops_per_sec, r.end_ms,
               static_cast<unsigned long long>(r.max_backlog),
               static_cast<unsigned long long>(r.aged_promotions),
               static_cast<unsigned long long>(r.reserved_grants),
               static_cast<unsigned long long>(r.congestion_stalls),
               static_cast<unsigned long long>(r.window_shrinks),
               r.exactly_once ? "true" : "false");
  std::fprintf(f, "    }");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path = args.get_string("--out", "BENCH_qos.json");

  bench::print_header("qos_bench",
                      "per-class tail latency under a hot-spot storm, "
                      "FIFO vs criticality-aware QoS");

  const StormResult fifo = run_storm(/*qos=*/false, quick);
  const StormResult qos = run_storm(/*qos=*/true, quick);
  print_class_block("fifo", fifo);
  print_class_block("qos", qos);

  const auto& fc = fifo.cls[static_cast<int>(armci::Priority::kCritical)];
  const auto& qc = qos.cls[static_cast<int>(armci::Priority::kCritical)];
  const double p99_x = qc.p99_us > 0 ? fc.p99_us / qc.p99_us : 0.0;
  const double p999_x = qc.p999_us > 0 ? fc.p999_us / qc.p999_us : 0.0;
  const double bw_ratio =
      fifo.ops_per_sec > 0 ? qos.ops_per_sec / fifo.ops_per_sec : 0.0;
  std::printf("critical p99 %.1f -> %.1f us (%.2fx)  p999 %.1f -> %.1f "
              "us (%.2fx)  throughput ratio %.4f\n",
              fc.p99_us, qc.p99_us, p99_x, fc.p999_us, qc.p999_us,
              p999_x, bw_ratio);

  bench::print_rule();
  const PhasedOut ph_fifo = run_phases(Policy::kStaticFifo, quick);
  const PhasedOut ph_qos = run_phases(Policy::kStaticQos, quick);
  const PhasedOut ph_adapt = run_phases(Policy::kAdaptive, quick);
  std::printf("phased (hot/cold alternating): policy critical_p99_us "
              "end_ms retunes\n");
  for (const auto* p : {&ph_fifo, &ph_qos, &ph_adapt}) {
    const Policy pol = p == &ph_fifo   ? Policy::kStaticFifo
                       : p == &ph_qos ? Policy::kStaticQos
                                      : Policy::kAdaptive;
    std::printf("  %-12s %10.1f %8.2f %4d%s\n", to_string(pol),
                p->critical_p99_us, p->end_ms, p->qos_retunes,
                p->exactly_once ? "" : "  LOST-OPS");
  }
  const double worst_static_ms =
      ph_fifo.end_ms > ph_qos.end_ms ? ph_fifo.end_ms : ph_qos.end_ms;

  const bool ok_once = fifo.exactly_once && qos.exactly_once &&
                       ph_fifo.exactly_once && ph_qos.exactly_once &&
                       ph_adapt.exactly_once;
  const bool ok_tail = p99_x >= 2.0 && p999_x >= 2.0;
  const bool ok_bw = bw_ratio >= 0.95 && bw_ratio <= 1.05;
  const bool ok_adapt = ph_adapt.end_ms < worst_static_ms &&
                        ph_adapt.qos_retunes >= 2;
  std::printf("gates: exactly_once %s  tail_2x %s  bandwidth_5pct %s  "
              "adaptive_beats_worst_static %s\n",
              ok_once ? "yes" : "NO", ok_tail ? "yes" : "NO",
              ok_bw ? "yes" : "NO", ok_adapt ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"hotspot_storm_mfcg\",\n"
                  "  \"quick\": %s,\n  \"storm\": {\n",
               quick ? "true" : "false");
  json_class_block(f, "fifo", fifo);
  std::fprintf(f, ",\n");
  json_class_block(f, "qos", qos);
  std::fprintf(f,
               ",\n    \"critical_p99_improvement_x\": %.3f,\n"
               "    \"critical_p999_improvement_x\": %.3f,\n"
               "    \"throughput_ratio\": %.4f\n  },\n",
               p99_x, p999_x, bw_ratio);
  std::fprintf(f, "  \"phased\": {\n");
  const PhasedOut* outs[] = {&ph_fifo, &ph_qos, &ph_adapt};
  const Policy pols[] = {Policy::kStaticFifo, Policy::kStaticQos,
                         Policy::kAdaptive};
  for (int i = 0; i < 3; ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"critical_p99_us\": %.2f, "
                 "\"end_ms\": %.3f, \"qos_retunes\": %d, "
                 "\"exactly_once\": %s}%s\n",
                 to_string(pols[i]), outs[i]->critical_p99_us,
                 outs[i]->end_ms, outs[i]->qos_retunes,
                 outs[i]->exactly_once ? "true" : "false",
                 i < 2 ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"gates\": {\"exactly_once\": %s, "
               "\"critical_tail_2x\": %s, \"bandwidth_within_5pct\": %s, "
               "\"adaptive_beats_worst_static\": %s}\n}\n",
               ok_once ? "true" : "false", ok_tail ? "true" : "false",
               ok_bw ? "true" : "false", ok_adapt ? "true" : "false");
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());

  // Quick mode is the ctest smoke: correctness gates only (the tiny
  // configuration is not sized for stable tail ratios).
  if (!ok_once) return 1;
  if (!quick && !(ok_tail && ok_bw && ok_adapt)) return 1;
  return 0;
}
