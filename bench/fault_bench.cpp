// Chaos smoke bench: goodput retained and recovery latency of the
// self-healing request path at 1%, 5%, and 10% link-fault (message
// drop) rates, each with one scheduled link sever and one node crash.
// Writes BENCH_fault.json.
//
// Every process times each of its fetch-&-adds against a rank-0
// counter on an MFCG mesh. Recovery latency is what the retry watchdog
// costs a faulted op (the high percentiles of the per-op latency
// distribution); goodput is completed ops per simulated second, and
// "retained" is that over the fault-free baseline. Exactly-once is
// asserted on the counter — a lost or doubled increment fails the run.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "armci/proc.hpp"
#include "armci/runtime.hpp"
#include "bench_util.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

using namespace vtopo;

namespace {

struct RatePoint {
  double rate = 0.0;
  double goodput_ops_per_sec = 0.0;
  double retained = 1.0;          ///< vs the fault-free baseline
  double median_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;            ///< worst single recovery
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t heals = 0;
  bool exactly_once = true;
};

RatePoint run_rate(double rate, bool quick) {
  sim::Engine eng; // vtopo-lint: allow(backend-seam) -- engine microbench measures the sim backend itself
  armci::Runtime::Config cfg;
  cfg.num_nodes = quick ? 8 : 16;
  cfg.procs_per_node = 2;
  cfg.topology = core::TopologyKind::kMfcg;
  cfg.seed = 7;
  // Tuned for a low-latency fabric: the default 2 ms watchdog is sized
  // for WAN-ish tails and would make every drop cost ~150x the median
  // op. ~8x the fault-free p99 keeps spurious retries at zero while
  // bounding recovery near the timeout.
  cfg.armci.retry_timeout = sim::us(150.0);
  cfg.armci.retry_backoff_cap = sim::us(1200.0);
  if (rate > 0.0) {
    cfg.faults = sim::FaultPlan::random(
        /*seed=*/40 + static_cast<std::uint64_t>(rate * 100),
        cfg.num_nodes, /*outages=*/1, /*crashes=*/1, /*drop_rate=*/rate,
        /*dup_rate=*/rate / 5.0, /*delay_rate=*/0.0, sim::ms(1.0));
  }
  armci::Runtime rt(eng, cfg);
  const auto off = rt.memory().alloc_all(8);
  const int ops = quick ? 12 : 40;

  sim::Series lat;
  sim::TimeNs last_done = 0;
  // vtopo-lint: allow(coro-ref) -- closure copied into Runtime::programs_; captured locals outlive run_all()
  rt.spawn_all([&, off, ops](armci::Proc& p) -> sim::Co<void> {
    for (int i = 0; i < ops; ++i) {
      const sim::TimeNs t0 = p.runtime().engine().now();
      co_await p.fetch_add(armci::GAddr{0, off}, 1);
      const sim::TimeNs t1 = p.runtime().engine().now();
      lat.add(sim::to_us(t1 - t0));
      if (t1 > last_done) last_done = t1;
    }
  });
  rt.run_all();

  RatePoint pt;
  pt.rate = rate;
  const std::int64_t expected = rt.num_procs() * ops;
  pt.exactly_once =
      rt.memory().read_i64(armci::GAddr{0, off}) == expected;
  pt.goodput_ops_per_sec =
      static_cast<double>(expected) / sim::to_sec(last_done);
  pt.median_us = lat.median();
  pt.p99_us = lat.percentile(99);
  bench::Percentiles pct;
  pct.add_all(lat.samples());
  pt.p999_us = pct.p999();
  pt.max_us = lat.max();
  pt.retries = rt.stats().retries;
  pt.dropped = rt.stats().msgs_dropped;
  pt.heals = rt.stats().heals;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path = args.get_string("--out", "BENCH_fault.json");

  bench::print_header("fault_bench",
                      "goodput retained and recovery latency under "
                      "injected link faults");

  const double rates[] = {0.0, 0.01, 0.05, 0.10};
  std::vector<RatePoint> points;
  for (const double r : rates) points.push_back(run_rate(r, quick));
  const double baseline = points[0].goodput_ops_per_sec;
  for (RatePoint& pt : points) {
    pt.retained = pt.goodput_ops_per_sec / baseline;
  }

  std::printf("%-8s %14s %9s %10s %10s %10s %10s %8s %8s %6s\n", "rate",
              "goodput_op_s", "retained", "median_us", "p99_us", "p999_us",
              "max_us", "retries", "dropped", "heals");
  bool all_exactly_once = true;
  for (const RatePoint& pt : points) {
    std::printf("%-8.2f %14.0f %9.3f %10.1f %10.1f %10.1f %10.1f %8llu "
                "%8llu %6llu%s\n",
                pt.rate, pt.goodput_ops_per_sec, pt.retained, pt.median_us,
                pt.p99_us, pt.p999_us, pt.max_us,
                static_cast<unsigned long long>(pt.retries),
                static_cast<unsigned long long>(pt.dropped),
                static_cast<unsigned long long>(pt.heals),
                pt.exactly_once ? "" : "  LOST-OPS");
    all_exactly_once = all_exactly_once && pt.exactly_once;
  }
  std::printf("exactly_once_all_rates %s\n", all_exactly_once ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"fetchadd_storm_mfcg\",\n"
                  "  \"rates\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RatePoint& pt = points[i];
    std::fprintf(f,
                 "    {\"rate\": %.2f, \"goodput_ops_per_sec\": %.1f, "
                 "\"retained\": %.4f, \"median_us\": %.2f, "
                 "\"p99_us\": %.2f, \"p999_us\": %.2f, \"max_us\": %.2f, "
                 "\"retries\": %llu, "
                 "\"dropped\": %llu, \"heals\": %llu, "
                 "\"exactly_once\": %s}%s\n",
                 pt.rate, pt.goodput_ops_per_sec, pt.retained, pt.median_us,
                 pt.p99_us, pt.p999_us, pt.max_us,
                 static_cast<unsigned long long>(pt.retries),
                 static_cast<unsigned long long>(pt.dropped),
                 static_cast<unsigned long long>(pt.heals),
                 pt.exactly_once ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"exactly_once_all_rates\": %s\n}\n",
               all_exactly_once ? "true" : "false");
  std::fclose(f);
  std::printf("# wrote %s\n", out_path.c_str());
  return all_exactly_once ? 0 : 1;
}
