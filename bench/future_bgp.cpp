// Future-work experiment (paper Sec. VIII): do virtual topologies still
// pay off on a platform without the SeaStar stream-table cliff, i.e. a
// BlueGene/P-class machine? Runs the Fig.-7 hot-spot experiment under
// both machine profiles.
//
// Expected: on BG/P the FCG collapse is milder (pure queueing at a
// slower NIC, no BEER penalty), so MFCG's win shrinks — virtual
// topologies remain most valuable where per-connection hardware state
// is scarce, exactly the paper's XT5 motivation.
#include <cstdio>

#include "bench_util.hpp"
#include "net/profiles.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

namespace {

double median_at(const work::ClusterConfig& cluster, int stride,
                 int iters) {
  work::ContentionConfig cfg;
  cfg.op = work::ContentionConfig::Op::kFetchAdd;
  cfg.iterations = iters;
  cfg.contender_stride = stride;
  const auto res = work::run_contention(cluster, cfg);
  sim::Series s;
  for (const double t : res.op_time_us) {
    if (t >= 0) s.add(t);
  }
  return s.median();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Future work", "XT5 vs. BlueGene/P machine profiles");
  std::printf("# fetch-&-add, 256 nodes x 4 procs, median us per op\n");
  std::printf("%-8s %-10s %12s %12s %12s\n", "machine", "topology",
              "none", "11%", "20%");

  struct Machine {
    const char* name;
    net::NetworkParams params;
  };
  const Machine machines[] = {{"XT5", net::xt5_params()},
                              {"BG/P", net::bgp_params()}};
  for (const auto& m : machines) {
    for (const auto kind :
         {core::TopologyKind::kFcg, core::TopologyKind::kMfcg}) {
      work::ClusterConfig cluster;
      cluster.num_nodes = 256;
      cluster.procs_per_node = 4;
      cluster.topology = kind;
      cluster.net = m.params;
      std::printf("%-8s %-10s %12.1f %12.1f %12.1f\n", m.name,
                  core::to_string(kind), median_at(cluster, 0, iters),
                  median_at(cluster, 9, iters),
                  median_at(cluster, 5, iters));
    }
  }
  bench::print_rule();
  std::printf("# Without a hardware stream limit (BG/P) the FCG hot-spot "
              "degrades by\n# queueing only; MFCG's advantage shrinks "
              "accordingly. Virtual topologies\n# matter most where "
              "per-connection NIC state is scarce — the XT5 story.\n");
  return 0;
}
