// Figure 8: NAS LU proxy execution time on 192..1536 processes under
// all four virtual topologies. Expected shape: all topologies within a
// few percent (neighbor-dominated traffic), strong scaling downward.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/nas_lu.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  work::LuConfig lu;
  lu.iterations =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 4 : 8));

  bench::print_header("Figure 8", "NAS LU proxy execution time");
  std::printf("# %d SSOR sweeps, %dx%d global grid, 12 procs/node\n",
              lu.iterations, lu.nx_global, lu.nx_global);
  std::printf("%10s %12s %12s %12s %12s   %s\n", "processes", "FCG_s",
              "MFCG_s", "CFCG_s", "Hypercube_s", "checksum");

  for (const std::int64_t nodes : {16, 32, 64, 128}) {
    work::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.procs_per_node = 12;
    std::printf("%10lld", static_cast<long long>(cluster.num_procs()));
    double checksum = 0.0;
    for (const auto kind : core::all_topology_kinds()) {
      cluster.topology = kind;
      const auto res = work::run_nas_lu(cluster, lu);
      std::printf(" %12.4f", res.exec_time_sec);
      checksum = res.checksum;
    }
    std::printf("   %.6g\n", checksum);
  }
  bench::print_rule();
  std::printf("# Paper result: virtual topologies perform better than or "
              "similar to FCG;\n"
              "# LU is neighbor-dominated, so forwarding neither helps nor "
              "hurts much.\n");
  return 0;
}
