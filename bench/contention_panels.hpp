// Shared driver for Figures 6 and 7: per-rank operation time against
// Rank 0 under 0% / 11% / 20% hot-spot contention, per topology.
//
// Panel layout follows the paper:
//   (a) FCG & MFCG, no contention       (d) CFCG & Hypercube, none
//   (b) FCG & MFCG, 11% contention      (e) CFCG, 11%
//   (c) FCG & MFCG, 20% contention      (f) CFCG, 20%
// Hypercube is excluded from contended panels, as in the paper ("it
// takes too long to get a complete set of numbers").
#pragma once

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

namespace vtopo::bench {

struct PanelSpec {
  core::TopologyKind kind;
  int stride;  // 0 = none, 9 = 11%, 5 = 20%
};

inline const char* contention_name(int stride) {
  switch (stride) {
    case 0:
      return "none";
    case 9:
      return "11%";
    case 5:
      return "20%";
    default:
      return "?";
  }
}

inline void run_contention_figure(const char* figure,
                                  work::ContentionConfig::Op op,
                                  const Args& args) {
  work::ClusterConfig cluster;
  cluster.num_nodes = args.get_int("--nodes", 256);
  cluster.procs_per_node =
      static_cast<int>(args.get_int("--ppn", 4));

  work::ContentionConfig cfg;
  cfg.op = op;
  cfg.iterations =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 5 : 20));

  const std::vector<PanelSpec> panels = {
      {core::TopologyKind::kFcg, 0},  {core::TopologyKind::kMfcg, 0},
      {core::TopologyKind::kCfcg, 0}, {core::TopologyKind::kHypercube, 0},
      {core::TopologyKind::kFcg, 9},  {core::TopologyKind::kMfcg, 9},
      {core::TopologyKind::kCfcg, 9}, {core::TopologyKind::kFcg, 5},
      {core::TopologyKind::kMfcg, 5}, {core::TopologyKind::kCfcg, 5},
  };

  print_header(figure, "per-rank op time vs. Rank 0 under contention");
  std::printf("# %lld procs (%lld nodes x %d), %d iterations averaged\n",
              static_cast<long long>(cluster.num_procs()),
              static_cast<long long>(cluster.num_nodes),
              cluster.procs_per_node, cfg.iterations);

  struct Summary {
    PanelSpec spec;
    double min, med, p95, max;
  };
  std::vector<Summary> summaries;

  for (const PanelSpec& panel : panels) {
    cluster.topology = panel.kind;
    cfg.contender_stride = panel.stride;
    const auto res = work::run_contention(cluster, cfg);

    std::printf("\n# series topology=%s contention=%s\n",
                core::to_string(panel.kind),
                contention_name(panel.stride));
    std::printf("# rank time_us\n");
    sim::Series series;
    for (std::size_t rank = 0; rank < res.op_time_us.size(); ++rank) {
      const double t = res.op_time_us[rank];
      if (t < 0) continue;  // ranks sharing Rank 0's node are unmeasured
      std::printf("%zu %.2f\n", rank, t);
      series.add(t);
    }
    summaries.push_back(Summary{panel, series.min(), series.median(),
                                series.percentile(95), series.max()});
  }

  print_rule();
  std::printf("# summary (us): topology contention min median p95 max\n");
  for (const auto& s : summaries) {
    std::printf("# %-9s %-5s %10.1f %10.1f %10.1f %10.1f\n",
                core::to_string(s.spec.kind),
                contention_name(s.spec.stride), s.min, s.med, s.p95,
                s.max);
  }
}

}  // namespace vtopo::bench
