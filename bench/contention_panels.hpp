// Shared driver for Figures 6 and 7: per-rank operation time against
// Rank 0 under 0% / 11% / 20% hot-spot contention, per topology.
//
// Panel layout follows the paper:
//   (a) FCG & MFCG, no contention       (d) CFCG & Hypercube, none
//   (b) FCG & MFCG, 11% contention      (e) CFCG, 11%
//   (c) FCG & MFCG, 20% contention      (f) CFCG, 20%
// Hypercube is excluded from contended panels, as in the paper ("it
// takes too long to get a complete set of numbers").
//
// Each panel is an independent simulation, so panels run on the sweep
// harness's thread pool (--jobs N, default hardware_concurrency); the
// printed output is byte-identical to a serial run (--jobs 1).
#pragma once

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "sweep.hpp"
#include "workloads/contention.hpp"

namespace vtopo::bench {

struct PanelSpec {
  core::TopologyKind kind;
  int stride;  // 0 = none, 9 = 11%, 5 = 20%
};

inline const char* contention_name(int stride) {
  switch (stride) {
    case 0:
      return "none";
    case 9:
      return "11%";
    case 5:
      return "20%";
    default:
      return "?";
  }
}

inline void run_contention_figure(const char* figure,
                                  work::ContentionConfig::Op op,
                                  const Args& args) {
  work::ClusterConfig cluster;
  cluster.num_nodes = args.get_int("--nodes", 256);
  cluster.procs_per_node =
      static_cast<int>(args.get_int("--ppn", 4));
  cluster.shards = static_cast<int>(args.get_int("--shards", default_shards()));

  work::ContentionConfig cfg;
  cfg.op = op;
  cfg.iterations =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 5 : 20));

  // --qos: rerun the figure with the criticality-aware request path on
  // (class-weighted CHT dequeue + reserved credit lane + congestion
  // windows) and report per-class tail latency. A distinct golden
  // family — the default output stays byte-identical.
  const bool qos = args.has("--qos");
  if (qos) {
    cluster.armci.qos.enabled = true;
    cfg.trace_classes = true;
  }

  const auto jobs = static_cast<unsigned>(
      args.get_int("--jobs", default_jobs()));

  const std::vector<PanelSpec> panels = {
      {core::TopologyKind::kFcg, 0},  {core::TopologyKind::kMfcg, 0},
      {core::TopologyKind::kCfcg, 0}, {core::TopologyKind::kHypercube, 0},
      {core::TopologyKind::kFcg, 9},  {core::TopologyKind::kMfcg, 9},
      {core::TopologyKind::kCfcg, 9}, {core::TopologyKind::kFcg, 5},
      {core::TopologyKind::kMfcg, 5}, {core::TopologyKind::kCfcg, 5},
  };

  print_header(figure, "per-rank op time vs. Rank 0 under contention");
  std::printf("# %lld procs (%lld nodes x %d), %d iterations averaged\n",
              static_cast<long long>(cluster.num_procs()),
              static_cast<long long>(cluster.num_nodes),
              cluster.procs_per_node, cfg.iterations);
  if (cluster.shards > 0) {
    // Sharded runs are their own golden family; stamp the shard count
    // so outputs from the two engines can never diff equal by accident.
    std::printf("# engine sharded (--shards %d)\n", cluster.shards);
  }
  if (qos) std::printf("# qos enabled\n");

  struct PanelResult {
    std::string text;
    double min = 0, med = 0, p95 = 0, max = 0;
  };

  const auto results = run_sweep(
      panels.size(), jobs, [&](std::size_t i) -> PanelResult {
        const PanelSpec& panel = panels[i];
        work::ClusterConfig cl = cluster;
        cl.topology = panel.kind;
        work::ContentionConfig cc = cfg;
        cc.contender_stride = panel.stride;
        const auto res = work::run_contention(cl, cc);

        PanelResult out;
        append_format(out.text, "\n# series topology=%s contention=%s\n",
                      core::to_string(panel.kind),
                      contention_name(panel.stride));
        append_format(out.text, "# rank time_us\n");
        sim::Series series;
        for (std::size_t rank = 0; rank < res.op_time_us.size(); ++rank) {
          const double t = res.op_time_us[rank];
          if (t < 0) continue;  // ranks sharing Rank 0's node are unmeasured
          append_format(out.text, "%zu %.2f\n", rank, t);
          series.add(t);
        }
        out.min = series.min();
        out.med = series.median();
        out.p95 = series.percentile(95);
        out.max = series.max();
        if (qos) {
          static const char* kClsName[] = {"bulk", "normal", "critical"};
          append_format(out.text,
                        "# class n p50_us p99_us p999_us (op latency)\n");
          for (std::size_t c = 0; c < armci::kNumPriorities; ++c) {
            Percentiles pct;
            pct.add_all(res.class_lat_us[c]);
            if (pct.count() == 0) continue;
            append_format(out.text, "# %-8s %zu %.2f %.2f %.2f\n",
                          kClsName[c], pct.count(), pct.p50(), pct.p99(),
                          pct.p999());
          }
        }
        return out;
      });

  for (const auto& r : results) {
    std::fputs(r.text.c_str(), stdout);
  }

  print_rule();
  std::printf("# summary (us): topology contention min median p95 max\n");
  for (std::size_t i = 0; i < panels.size(); ++i) {
    std::printf("# %-9s %-5s %10.1f %10.1f %10.1f %10.1f\n",
                core::to_string(panels[i].kind),
                contention_name(panels[i].stride), results[i].min,
                results[i].med, results[i].p95, results[i].max);
  }
}

}  // namespace vtopo::bench
