// Ablation C: request buffers per process (M). The paper fixes M=4;
// this sweep shows the trade-off M controls: CHT memory grows linearly
// with M while too few buffers throttle concurrent senders through
// credit back-pressure.
#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_model.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation C", "buffers per process (M) trade-off");
  std::printf("# MFCG, 256 nodes x 4 procs, vectored put at 20%% "
              "contention\n");
  std::printf("%4s %14s %16s %16s\n", "M", "cht_buf_MB",
              "median_us@20%", "blocked_sec");

  for (const int m : {1, 2, 4, 8}) {
    work::ClusterConfig cluster;
    cluster.num_nodes = 256;
    cluster.procs_per_node = 4;
    cluster.topology = core::TopologyKind::kMfcg;
    cluster.armci.buffers_per_process = m;
    work::ContentionConfig cfg;
    cfg.iterations = iters;
    cfg.contender_stride = 5;
    const auto res = work::run_contention(cluster, cfg);
    sim::Series series;
    for (const double t : res.op_time_us) {
      if (t >= 0) series.add(t);
    }

    core::MemoryParams mp;
    mp.procs_per_node = 4;
    mp.buffers_per_process = m;
    const auto topo =
        core::VirtualTopology::make(core::TopologyKind::kMfcg, 256);
    std::printf("%4d %14.1f %16.1f %16.3f\n", m,
                static_cast<double>(core::cht_buffer_bytes(topo, 0, mp)) /
                    (1024.0 * 1024.0),
                series.median(),
                static_cast<double>(res.stats.credit_blocked_ns) / 1e9);
  }
  bench::print_rule();
  std::printf("# M=4 (the paper's choice) sits at the knee: more buffers "
              "buy little time\n# but double the memory Fig. 5 is trying "
              "to save.\n");
  return 0;
}
