// Figure 9: NWChem proxies.
//   (a) DFT SiOSi3: dynamic load balancing off one global counter plus
//       distributed get/accumulate — rank 0 is a hot spot. Expected:
//       MFCG/CFCG clearly beat FCG (up to ~48% at the largest scale).
//   (b) CCSD(T) water: large, evenly-spread strided transfers, no hot
//       spot. Expected: FCG generally at least as fast as MFCG.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/nwchem_ccsd.hpp"
#include "workloads/nwchem_dft.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const bool quick = args.has("--quick");

  bench::print_header("Figure 9(a)", "NWChem DFT SiOSi3 proxy");
  work::DftConfig dft;
  if (quick) dft.total_tasks /= 4;
  std::printf("# %lld tasks (fixed problem), %d SCF iterations, "
              "12 procs/node\n",
              static_cast<long long>(dft.total_tasks),
              dft.scf_iterations);
  std::printf("%10s %12s %12s %12s %12s\n", "cores", "FCG_s", "MFCG_s",
              "CFCG_s", "Hypercube_s");
  double fcg_big = 0;
  double mfcg_big = 0;
  for (const std::int64_t nodes : {64, 128, 256, 512, 1024}) {
    work::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.procs_per_node = 12;
    std::printf("%10lld", static_cast<long long>(cluster.num_procs()));
    for (const auto kind : core::all_topology_kinds()) {
      cluster.topology = kind;
      const auto res = work::run_nwchem_dft(cluster, dft);
      std::printf(" %12.4f", res.exec_time_sec);
      if (nodes == 1024 && kind == core::TopologyKind::kFcg) {
        fcg_big = res.exec_time_sec;
      }
      if (nodes == 1024 && kind == core::TopologyKind::kMfcg) {
        mfcg_big = res.exec_time_sec;
      }
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("# MFCG reduction over FCG at 12288 cores: %.1f%% "
              "(paper: up to 48%%)\n",
              100.0 * (1.0 - mfcg_big / fcg_big));

  std::printf("\n");
  bench::print_header("Figure 9(b)", "NWChem CCSD(T) water proxy");
  work::CcsdConfig ccsd;
  if (quick) ccsd.total_tiles /= 4;
  std::printf("# %lld tiles (fixed problem), %d sweeps, 12 procs/node\n",
              static_cast<long long>(ccsd.total_tiles), ccsd.sweeps);
  std::printf("%10s %12s %12s\n", "cores", "FCG_s", "MFCG_s");
  for (const std::int64_t nodes : {170, 428, 856, 1282, 1708}) {
    work::ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.procs_per_node = 12;
    std::printf("%10lld", static_cast<long long>(cluster.num_procs()));
    for (const auto kind :
         {core::TopologyKind::kFcg, core::TopologyKind::kMfcg}) {
      cluster.topology = kind;
      const auto res = work::run_nwchem_ccsd(cluster, ccsd);
      std::printf(" %12.4f", res.exec_time_sec);
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("# Paper result: FCG generally performs better than MFCG for "
              "CCSD(T);\n"
              "# MFCG's benefit here is the runtime memory it frees "
              "(Fig. 5), not time.\n");
  return 0;
}
