// Ablation G: the dimensionality continuum. The paper asks "one may
// wonder if a virtual topology of even higher dimension could be a
// worthy solution" (Sec. III-C) and answers with three points (k=1, 2,
// 3) plus the hypercube extreme. Custom shapes let us trace the whole
// curve at fixed N: buffer memory falls like k*N^(1/k) while the
// hot-spot op time pays one more forwarding hop per dimension.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_model.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"

using namespace vtopo;

namespace {

/// Near-uniform k-dimensional shape with capacity >= n, lowest
/// dimensions largest (full), highest partial.
core::Shape k_dim_shape(std::int64_t n, int k) {
  std::vector<std::int32_t> dims(static_cast<std::size_t>(k));
  // Extent per dimension: ceil(n^(1/k)), trimmed greedily from the top.
  const auto root = static_cast<std::int32_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 / k) - 1e-9));
  for (auto& d : dims) d = root;
  // Shrink the highest dimensions while capacity still covers n.
  for (int i = k - 1; i >= 0; --i) {
    while (dims[static_cast<std::size_t>(i)] > 1) {
      std::int64_t cap = 1;
      for (int j = 0; j < k; ++j) {
        cap *= (j == i) ? dims[static_cast<std::size_t>(j)] - 1
                        : dims[static_cast<std::size_t>(j)];
      }
      if (cap < n) break;
      --dims[static_cast<std::size_t>(i)];
    }
  }
  return core::Shape(dims);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t nodes = args.get_int("--nodes", 256);
  const int iters =
      static_cast<int>(args.get_int("--iters", args.has("--quick") ? 3 : 8));

  bench::print_header("Ablation G", "the k-dimensional continuum");
  std::printf("# %lld nodes x 4 procs, fetch-&-add at 20%% contention\n",
              static_cast<long long>(nodes));
  std::printf("%3s %-14s %7s %8s %12s %14s %14s\n", "k", "shape", "edges",
              "max_fwd", "cht_buf_MB", "median_us@0%", "median_us@20%");

  core::MemoryParams mp;
  mp.procs_per_node = 4;
  for (int k = 1; k <= 6; ++k) {
    const core::Shape shape = k_dim_shape(nodes, k);
    const auto kind = k == 1   ? core::TopologyKind::kFcg
                      : k == 2 ? core::TopologyKind::kMfcg
                               : core::TopologyKind::kCfcg;
    const auto topo = core::VirtualTopology::custom(kind, shape, nodes);

    auto median_at = [&](int stride) {
      work::ClusterConfig cluster;
      cluster.num_nodes = nodes;
      cluster.procs_per_node = 4;
      cluster.topology = kind;
      cluster.custom_shape = shape;
      work::ContentionConfig cfg;
      cfg.op = work::ContentionConfig::Op::kFetchAdd;
      cfg.iterations = iters;
      cfg.contender_stride = stride;
      const auto res = work::run_contention(cluster, cfg);
      sim::Series s;
      for (const double t : res.op_time_us) {
        if (t >= 0) s.add(t);
      }
      return s.median();
    };

    std::printf("%3d %-14s %7lld %8d %12.1f %14.1f %14.1f\n", k,
                shape.to_string().c_str(),
                static_cast<long long>(topo.degree(0)),
                topo.max_forwards(),
                static_cast<double>(core::cht_buffer_bytes(topo, 0, mp)) /
                    (1024.0 * 1024.0),
                median_at(0), median_at(5));
  }
  bench::print_rule();
  std::printf("# Memory keeps falling with k, but each extra dimension "
              "adds a forwarding\n# hop to the uncontended path while "
              "the contended gain flattens once the\n# hot node's "
              "in-degree drops below the NIC stream table — k=2 (MFCG) "
              "is the\n# knee, which is the paper's conclusion.\n");
  return 0;
}
