// Parallel deterministic sweep harness.
//
// Every figure is produced by sweeping the simulator over independent
// configuration points (process counts, topologies, contention levels),
// and each point builds its own Engine with its own seed — so points
// can run on a thread pool with zero shared state. Workers format their
// output into per-point buffers; the harness returns results indexed by
// sweep point, so printing them in order yields byte-identical output
// regardless of the job count.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace vtopo::bench {

/// Default parallelism for --jobs: one worker per hardware thread.
inline unsigned default_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Default for --shards, the second parallelism axis: --jobs runs sweep
/// points concurrently, --shards parallelizes *within* one point by
/// running its simulation on sim::ShardedEngine with N spatial shards.
/// 0 selects the legacy single-threaded engine, byte-compatible with
/// the original goldens; N >= 1 is the sharded golden family, itself
/// byte-identical across every N. The axes compose — keep jobs x shards
/// near the host's core count.
inline int default_shards() { return 0; }

/// Run `count` independent sweep points and return their results in
/// sweep order. `point(i)` must depend only on `i` (no shared mutable
/// state), which makes the result — and therefore any output printed
/// from it — independent of `jobs`. With jobs <= 1 the sweep runs
/// serially on the calling thread.
template <class Fn>
auto run_sweep(std::size_t count, unsigned jobs, Fn&& point)
    -> std::vector<decltype(point(std::size_t{0}))> {
  using Result = decltype(point(std::size_t{0}));
  std::vector<Result> results(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = point(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      jobs < count ? static_cast<std::size_t>(jobs) : count;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        results[i] = point(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace vtopo::bench
