// Figure 5: master-process memory consumption vs. process count for
// FCG / MFCG / CFCG / Hypercube (12 processes per node, 16 KB buffers,
// 4 buffers per remote process, 612 MB base footprint).
//
// Prints the four curves the paper plots plus the headline reduction
// factors of Sec. V-A.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/memory_model.hpp"
#include "core/topology.hpp"
#include "sweep.hpp"

using namespace vtopo;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::int64_t max_procs = args.get_int("--max-procs", 12288);
  const auto jobs = static_cast<unsigned>(
      args.get_int("--jobs", bench::default_jobs()));

  core::MemoryParams mp;
  bench::print_header("Figure 5", "memory scalability of virtual topologies");
  std::printf("# procs_per_node=%lld buffer=%lldB buffers/proc=%lld "
              "base=%.0fMB\n",
              static_cast<long long>(mp.procs_per_node),
              static_cast<long long>(mp.buffer_bytes),
              static_cast<long long>(mp.buffers_per_process), mp.base_mb);
  std::printf("%10s %12s %12s %12s %12s\n", "processes", "FCG_MB",
              "MFCG_MB", "CFCG_MB", "Hypercube_MB");

  std::vector<std::int64_t> proc_counts;
  for (std::int64_t procs = 768; procs <= max_procs; procs *= 2) {
    proc_counts.push_back(procs);
  }
  // Each row builds four topologies from scratch — independent work, so
  // rows run on the sweep pool and print in sweep order.
  const auto rows = bench::run_sweep(
      proc_counts.size(), jobs, [&](std::size_t i) {
        const std::int64_t procs = proc_counts[i];
        const std::int64_t nodes = procs / mp.procs_per_node;
        std::string row;
        bench::append_format(row, "%10lld", static_cast<long long>(procs));
        for (const auto kind : core::all_topology_kinds()) {
          const auto topo = core::VirtualTopology::make(kind, nodes);
          bench::append_format(row, " %12.1f",
                               core::master_process_rss_mb(topo, 0, mp));
        }
        bench::append_format(row, "\n");
        return row;
      });
  for (const auto& row : rows) std::fputs(row.c_str(), stdout);

  bench::print_rule();
  const std::int64_t nodes = max_procs / mp.procs_per_node;
  const auto fcg = core::VirtualTopology::make(core::TopologyKind::kFcg,
                                               nodes);
  const double fcg_inc = core::master_process_rss_mb(fcg, 0, mp) - mp.base_mb;
  std::printf("# At %lld processes (paper: FCG total 1424 MB, increment "
              "812 MB):\n",
              static_cast<long long>(max_procs));
  std::printf("#   FCG increment: %.1f MB\n", fcg_inc);
  std::printf("# Reduction factors over FCG (paper: MFCG 7.5x, CFCG "
              "16.6x, Hypercube 45x):\n");
  for (const auto kind : core::all_topology_kinds()) {
    if (kind == core::TopologyKind::kFcg) continue;
    const auto topo = core::VirtualTopology::make(kind, nodes);
    const double inc = core::master_process_rss_mb(topo, 0, mp) - mp.base_mb;
    std::printf("#   %-9s increment %7.1f MB  reduction %5.1fx\n",
                core::to_string(kind), inc, fcg_inc / inc);
  }
  return 0;
}
