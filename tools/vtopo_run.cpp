// vtopo_run — one-shot experiment driver.
//
// Runs any of the repository's workloads on any cluster/topology
// configuration from the command line, printing the timing, protocol
// counters, and (optionally) the per-op latency trace summary.
//
//   vtopo_run workload=contention topology=mfcg nodes=256 ppn=4
//             contention=20 iters=5 op=fetchadd   (one line)
//   vtopo_run workload=dft topology=fcg nodes=256 ppn=12
//   vtopo_run workload=lu nodes=64 ppn=12 topology=hypercube trace=1
//   vtopo_run workload=recommend nodes=1024 budget=256 hotspot=0.5
//   vtopo_run workload=ccsd topology=auto nodes=256        (recommender
//             picks the topology from the workload's profile)
//   vtopo_run workload=dft reconfigure=fcg reconfigure_at=2.5
//             (live-remap the topology mid-run, at 2.5 ms)
//   vtopo_run workload=phased adaptive=1 cycles=3          (controller
//             re-picks the topology at every phase boundary)
//   vtopo_run workload=dft faults="drop=0.05;crash=3@200+400"
//             (seeded fault plan, FaultPlan::parse syntax; see
//             docs/testing.md)
//   vtopo_run workload=ccsd fault_drop=0.05 fault_severs=1
//             fault_crashes=1 fault_seed=9   (random seeded plan)
//   vtopo_run service="dft:nodes=8,ppn=2;storm:nodes=8,at=100000"
//             slots=64 partition=compact     (multi-tenant cluster
//             service: job mix scheduled onto one shared torus; see
//             docs/service.md for the job-mix grammar)
//
// Unknown keys are rejected; every key has a sensible default.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include <fstream>
#include <sstream>

#include "core/recommend.hpp"
#include "net/profiles.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"
#include "svc/service.hpp"
#include "workloads/contention.hpp"
#include "workloads/nas_lu.hpp"
#include "workloads/nwchem_ccsd.hpp"
#include "workloads/nwchem_dft.hpp"
#include "workloads/phased.hpp"
#include "workloads/trace_replay.hpp"

using namespace vtopo;

namespace {

class KvArgs {
 public:
  KvArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad argument '%s' (expected key=value)\n",
                     arg.c_str());
        std::exit(2);
      }
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::string str(const std::string& key, const std::string& dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  std::int64_t num(const std::string& key, std::int64_t dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stoll(it->second);
  }
  double real(const std::string& key, double dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stod(it->second);
  }
  /// Call after all reads: any unread key is a typo.
  void reject_unknown() const {
    for (const auto& [k, v] : kv_) {
      if (used_.count(k) == 0) {
        std::fprintf(stderr, "unknown key '%s'\n", k.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

core::TopologyKind parse_topology(const std::string& s) {
  if (s == "fcg") return core::TopologyKind::kFcg;
  if (s == "mfcg") return core::TopologyKind::kMfcg;
  if (s == "cfcg") return core::TopologyKind::kCfcg;
  if (s == "hypercube" || s == "hc") return core::TopologyKind::kHypercube;
  std::fprintf(stderr, "unknown topology '%s'\n", s.c_str());
  std::exit(2);
}

core::ForwardingPolicy parse_policy(const std::string& s) {
  if (s == "ldf") return core::ForwardingPolicy::kLowestDimFirst;
  if (s == "hdf") return core::ForwardingPolicy::kHighestDimFirst;
  if (s == "scrambled") return core::ForwardingPolicy::kScrambled;
  std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
  std::exit(2);
}

void print_stats(const armci::RuntimeStats& st) {
  std::printf("requests=%llu forwards=%llu acks=%llu direct=%llu "
              "wakeups=%llu credit_blocked_ms=%.3f\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.forwards),
              static_cast<unsigned long long>(st.acks),
              static_cast<unsigned long long>(st.direct_ops),
              static_cast<unsigned long long>(st.cht_wakeups),
              static_cast<double>(st.credit_blocked_ns) / 1e6);
  if (st.reconfigurations > 0) {
    std::printf("reconfigurations=%llu quiesce_ms=%.3f remap_ms=%.3f\n",
                static_cast<unsigned long long>(st.reconfigurations),
                static_cast<double>(st.reconfig_quiesce_ns) / 1e6,
                static_cast<double>(st.reconfig_remap_ns) / 1e6);
  }
  if (st.msgs_dropped > 0 || st.retries > 0 || st.msgs_duplicated > 0 ||
      st.msgs_delayed > 0 || st.heals > 0) {
    std::printf("faults: dropped=%llu duplicated=%llu delayed=%llu "
                "retries=%llu dedup=%llu reclaimed=%llu heals=%llu "
                "reroutes=%llu\n",
                static_cast<unsigned long long>(st.msgs_dropped),
                static_cast<unsigned long long>(st.msgs_duplicated),
                static_cast<unsigned long long>(st.msgs_delayed),
                static_cast<unsigned long long>(st.retries),
                static_cast<unsigned long long>(st.dup_suppressed),
                static_cast<unsigned long long>(st.credits_reclaimed),
                static_cast<unsigned long long>(st.heals),
                static_cast<unsigned long long>(st.healed_reroutes));
  }
}

/// topology=auto: pick the topology from the workload's profile via the
/// paper's recommender, printing the reasoning chain.
void resolve_auto_topology(work::ClusterConfig& cl, double budget_mb,
                           double hotspot, double latency) {
  core::WorkloadProfile prof;
  prof.num_nodes = cl.num_nodes;
  prof.buffer_budget_mb = budget_mb;
  prof.hotspot_fraction = hotspot;
  prof.latency_sensitivity = latency;
  prof.mem.procs_per_node = cl.procs_per_node;
  prof.mem.buffer_bytes = cl.armci.buffer_bytes;
  prof.mem.buffers_per_process = cl.armci.buffers_per_process;
  const core::Recommendation rec = core::recommend_topology(prof);
  cl.topology = rec.kind;
  std::printf("topology=auto (hotspot=%.2f latency=%.2f budget=%gMB) "
              "-> %s\n",
              hotspot, latency, budget_mb, core::to_string(rec.kind));
  std::printf("rationale: %s\n", rec.rationale.c_str());
}

/// Job-mix grammar for service= mode: jobs separated by ';', each
/// `kind[:key=val[,key=val...]]` with keys nodes, ppn, prio, at (ns),
/// ops, topo, seed, name. Example:
///   "dft:nodes=8,ppn=2;storm:nodes=8,prio=1,at=100000"
std::vector<svc::JobSpec> parse_job_mix(const std::string& mix) {
  std::vector<svc::JobSpec> specs;
  std::stringstream jobs(mix);
  std::string job;
  while (std::getline(jobs, job, ';')) {
    if (job.empty()) continue;
    const auto colon = job.find(':');
    const std::string kind_str = job.substr(0, colon);
    const auto kind = svc::parse_job_kind(kind_str);
    if (!kind) {
      std::fprintf(stderr, "unknown job kind '%s'\n", kind_str.c_str());
      std::exit(2);
    }
    svc::JobSpec spec;
    spec.kind = *kind;
    spec.name = kind_str + std::to_string(specs.size());
    if (colon != std::string::npos) {
      std::stringstream kvs(job.substr(colon + 1));
      std::string kv;
      while (std::getline(kvs, kv, ',')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          std::fprintf(stderr, "bad job key '%s' (expected key=val)\n",
                       kv.c_str());
          std::exit(2);
        }
        const std::string k = kv.substr(0, eq);
        const std::string v = kv.substr(eq + 1);
        if (k == "nodes") {
          spec.nodes = std::stoll(v);
        } else if (k == "ppn") {
          spec.procs_per_node = static_cast<int>(std::stoll(v));
        } else if (k == "prio") {
          spec.priority = static_cast<int>(std::stoll(v));
        } else if (k == "at") {
          spec.submit_at = std::stoll(v);
        } else if (k == "ops") {
          spec.ops = std::stoll(v);
        } else if (k == "topo") {
          spec.topology = parse_topology(v);
        } else if (k == "seed") {
          spec.seed = static_cast<std::uint64_t>(std::stoll(v));
        } else if (k == "name") {
          spec.name = v;
        } else {
          std::fprintf(stderr, "unknown job key '%s'\n", k.c_str());
          std::exit(2);
        }
      }
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    std::fprintf(stderr, "service= job mix is empty\n");
    std::exit(2);
  }
  return specs;
}

int run_service(KvArgs& args, const std::string& mix) {
  svc::ServiceConfig sc;
  sc.machine_slots = args.num("slots", 64);
  const std::string pol = args.str("partition", "compact");
  const auto parsed = core::parse_partition_policy(pol);
  if (!parsed) {
    std::fprintf(stderr,
                 "unknown partition '%s' (compact|striped|bestfit)\n",
                 pol.c_str());
    return 2;
  }
  sc.policy = *parsed;
  sc.queue_capacity = static_cast<std::size_t>(args.num("queue", 256));
  sc.aging_quantum = args.num("aging_ns", 1000000);
  sc.shards = static_cast<int>(args.num("shards", 0));
  sc.host_jobs = static_cast<int>(args.num("jobs", 1));
  sc.link_census = args.num("census", 0) != 0;
  const bool canonical = args.num("canonical", 0) != 0;
  const auto specs = parse_job_mix(mix);
  args.reject_unknown();

  svc::ClusterService service(sc);
  const svc::ServiceReport rep = service.run(specs);
  if (canonical) {
    // The byte-diff surface: tests compare this render across --jobs /
    // --shards and against the single-tenant goldens.
    std::fputs(rep.canonical().c_str(), stdout);
    return 0;
  }
  std::printf("service %dx%dx%d partition=%s shards=%d: %lld jobs, "
              "%lld completed, %lld rejected, %.3f ms simulated\n",
              rep.machine_dims[0], rep.machine_dims[1],
              rep.machine_dims[2], core::to_string(sc.policy).c_str(),
              sc.shards, static_cast<long long>(rep.results.size()),
              static_cast<long long>(rep.completed),
              static_cast<long long>(rep.rejected),
              static_cast<double>(rep.total_sim_ns) / 1e6);
  for (const auto& r : rep.results) {
    if (r.rejected) {
      std::printf("  %-12s %-9s REJECTED (submit %.3f ms)\n",
                  r.name.c_str(), svc::to_string(r.kind).c_str(),
                  static_cast<double>(r.submit_time) / 1e6);
      continue;
    }
    std::printf("  %-12s %-9s wait %8.3f ms  ran %8.3f ms  "
                "checksum %.6g  req=%llu fwd=%llu\n",
                r.name.c_str(), svc::to_string(r.kind).c_str(),
                static_cast<double>(r.queue_wait()) / 1e6,
                static_cast<double>(r.finish_time - r.start_time) / 1e6,
                r.checksum,
                static_cast<unsigned long long>(r.stats.requests),
                static_cast<unsigned long long>(r.stats.forwards));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  KvArgs args(argc, argv);
  const std::string service_mix = args.str("service", "");
  if (!service_mix.empty()) return run_service(args, service_mix);
  const std::string workload = args.str("workload", "contention");

  if (workload == "recommend") {
    core::WorkloadProfile prof;
    prof.num_nodes = args.num("nodes", 1024);
    prof.buffer_budget_mb = args.real("budget", 256.0);
    prof.hotspot_fraction = args.real("hotspot", 0.0);
    prof.latency_sensitivity = args.real("latency", 0.5);
    args.reject_unknown();
    const auto rec = core::recommend_topology(prof);
    std::printf("recommendation: %s\n", core::to_string(rec.kind));
    std::printf("rationale: %s\n", rec.rationale.c_str());
    return 0;
  }

  work::ClusterConfig cl;
  cl.num_nodes = args.num("nodes", 64);
  cl.procs_per_node = static_cast<int>(args.num("ppn", 4));
  const std::string topo_str = args.str("topology", "mfcg");
  const bool auto_topology = topo_str == "auto";
  if (!auto_topology) cl.topology = parse_topology(topo_str);
  const double budget_mb = args.real("budget", 256.0);
  cl.policy = parse_policy(args.str("policy", "ldf"));
  cl.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  if (args.str("machine", "xt5") == "bgp") cl.net = net::bgp_params();
  cl.net.stream_table_size =
      static_cast<int>(args.num("table", cl.net.stream_table_size));
  cl.placement = args.str("placement", "linear") == "random"
                     ? net::Placement::kRandom
                     : net::Placement::kLinear;
  const auto iters = static_cast<int>(args.num("iters", 5));

  // backend=sim (default, deterministic) | threads (one std::thread per
  // node, wall-clock latency, real shared-memory copies).
  const std::string backend_str = args.str("backend", "sim");
  if (backend_str == "threads") {
    cl.backend = armci::Backend::kThreads;
  } else if (backend_str != "sim") {
    std::fprintf(stderr, "unknown backend '%s' (sim|threads)\n",
                 backend_str.c_str());
    return 2;
  }
  cl.shards = static_cast<int>(args.num("shards", cl.shards));
  if (cl.backend == armci::Backend::kThreads && workload != "dft" &&
      workload != "lu" && workload != "phased") {
    std::fprintf(stderr,
                 "backend=threads supports workload=dft|lu|phased only\n");
    return 2;
  }

  // Optional seeded fault plan, armed for every workload. `faults=` is
  // the full FaultPlan::parse syntax; the fault_* keys build a random
  // plan on top of it (or of an empty plan).
  {
    const std::string fspec = args.str("faults", "");
    sim::FaultPlan plan;
    if (!fspec.empty()) {
      std::string err;
      const auto parsed = sim::FaultPlan::parse(fspec, &err);
      if (!parsed) {
        std::fprintf(stderr, "bad faults= spec: %s\n", err.c_str());
        return 2;
      }
      plan = *parsed;
    }
    const double fdrop = args.real("fault_drop", 0.0);
    const double fdup = args.real("fault_dup", 0.0);
    const double fdelay = args.real("fault_delay", 0.0);
    const auto fsevers = static_cast<int>(args.num("fault_severs", 0));
    const auto fcrashes = static_cast<int>(args.num("fault_crashes", 0));
    const auto fseed =
        static_cast<std::uint64_t>(args.num("fault_seed", 1));
    const double fhorizon_ms = args.real("fault_horizon_ms", 2.0);
    if (fdrop > 0 || fdup > 0 || fdelay > 0 || fsevers > 0 ||
        fcrashes > 0) {
      sim::FaultPlan rnd = sim::FaultPlan::random(
          fseed, cl.num_nodes, fsevers, fcrashes, fdrop, fdup, fdelay,
          sim::ms(fhorizon_ms));
      plan.seed = rnd.seed;
      plan.drop_requests = std::max(plan.drop_requests, rnd.drop_requests);
      plan.drop_acks = std::max(plan.drop_acks, rnd.drop_acks);
      plan.drop_responses =
          std::max(plan.drop_responses, rnd.drop_responses);
      plan.duplicate_rate = std::max(plan.duplicate_rate, rnd.duplicate_rate);
      plan.delay_rate = std::max(plan.delay_rate, rnd.delay_rate);
      plan.events.insert(plan.events.end(), rnd.events.begin(),
                         rnd.events.end());
    }
    if (plan.armed()) {
      if (cl.backend == armci::Backend::kThreads) {
        std::fprintf(stderr,
                     "backend=threads does not support fault injection\n");
        return 2;
      }
      cl.faults = plan;
      std::printf("faults: %s\n", plan.describe().c_str());
    }
  }

  // Optional mid-run live reconfiguration, armed for every workload.
  const std::string reconf = args.str("reconfigure", "");
  const double reconf_at = args.real("reconfigure_at", 1.0);
  const std::string reconf_mode = args.str("reconfig_mode", "incremental");
  if (!reconf.empty()) {
    work::ReconfigSpec spec;
    spec.to = parse_topology(reconf);
    spec.at_ms = reconf_at;
    spec.mode = reconf_mode == "rebuild"
                    ? armci::ReconfigMode::kRebuild
                    : armci::ReconfigMode::kIncremental;
    cl.reconfigure = spec;
  }

  if (workload == "contention") {
    work::ContentionConfig cc;
    cc.iterations = iters;
    const std::string op = args.str("op", "vput");
    cc.op = op == "fetchadd" ? work::ContentionConfig::Op::kFetchAdd
            : op == "vget"   ? work::ContentionConfig::Op::kVectorGet
                             : work::ContentionConfig::Op::kVectorPut;
    const std::int64_t pct = args.num("contention", 0);
    cc.contender_stride = pct == 0 ? 0 : pct >= 20 ? 5 : 9;
    args.reject_unknown();
    if (auto_topology) {
      // Hot-spot skew is the contender fraction; single fetch-&-adds
      // are the most latency-critical op in the suite.
      resolve_auto_topology(cl, budget_mb,
                            static_cast<double>(pct) / 100.0,
                            op == "fetchadd" ? 0.9 : 0.5);
    }
    const auto res = work::run_contention(cl, cc);
    sim::Series s;
    for (const double t : res.op_time_us) {
      if (t >= 0) s.add(t);
    }
    std::printf("%s %s contention=%lld%%: median=%.1fus p95=%.1fus "
                "max=%.1fus (simulated %.3fs)\n",
                core::to_string(cl.topology), op.c_str(),
                static_cast<long long>(pct), s.median(),
                s.percentile(95), s.max(), res.total_sim_sec);
    print_stats(res.stats);
    return 0;
  }

  if (workload == "trace") {
    const std::string path = args.str("file", "");
    args.reject_unknown();
    if (path.empty()) {
      std::fprintf(stderr, "workload=trace requires file=<path>\n");
      return 2;
    }
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open trace '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto ops = work::parse_trace(text.str(), cl.num_procs());
    if (auto_topology) {
      // Arbitrary replayed mixes: assume spread traffic, middling
      // latency sensitivity.
      resolve_auto_topology(cl, budget_mb, 0.0, 0.5);
    }
    const auto res = work::replay_trace(cl, ops);
    std::printf("trace %s: %lld ops in %.6f s on %s\n", path.c_str(),
                static_cast<long long>(res.ops_executed),
                res.exec_time_sec, core::to_string(cl.topology));
    print_stats(res.stats);
    return 0;
  }

  if (workload == "phased") {
    work::PhasedConfig pc;
    pc.cycles = static_cast<int>(args.num("cycles", 2));
    pc.hot_ops_per_proc = args.num("hot_ops", pc.hot_ops_per_proc);
    pc.bw_tiles_per_proc = args.num("bw_tiles", pc.bw_tiles_per_proc);
    pc.adaptive = args.num("adaptive", 0) != 0;
    pc.adaptive_cfg.buffer_budget_mb = budget_mb;
    args.reject_unknown();
    if (auto_topology) {
      // The opening phase is the hot-counter one; with adaptive=1 the
      // controller re-picks at every later boundary anyway.
      resolve_auto_topology(cl, budget_mb, 0.4, 0.7);
    }
    const auto res = work::run_phased(cl, pc);
    std::printf("phased %s on %lld procs: %.4f s (checksum %.6g)\n",
                pc.adaptive ? "adaptive" : core::to_string(cl.topology),
                static_cast<long long>(cl.num_procs()),
                res.app.exec_time_sec, res.app.checksum);
    for (std::size_t i = 0; i < res.phase_sec.size(); ++i) {
      std::printf("  phase %zu (%s, %s): %.4f s\n", i,
                  i % 2 == 0 ? "hot" : "bandwidth",
                  i < res.phase_topology.size()
                      ? res.phase_topology[i].c_str()
                      : "?",
                  res.phase_sec[i]);
    }
    for (const std::string& d : res.decisions) {
      std::printf("  controller: %s\n", d.c_str());
    }
    print_stats(res.app.stats);
    return 0;
  }

  work::AppResult res;
  if (workload == "lu") {
    work::LuConfig lu;
    lu.iterations = iters;
    lu.nx_global = static_cast<int>(args.num("nx", 408));
    args.reject_unknown();
    if (auto_topology) {
      // Wavefront neighbor exchanges: spread traffic, overlapped.
      resolve_auto_topology(cl, budget_mb, 0.0, 0.4);
    }
    res = work::run_nas_lu(cl, lu);
  } else if (workload == "dft") {
    work::DftConfig dft;
    dft.total_tasks = args.num("tasks", 24576);
    dft.compute_us_per_task = args.real("task_us", 70000.0);
    args.reject_unknown();
    if (auto_topology) {
      // NXTVAL counter on rank 0 gives DFT its hot-spot signature.
      resolve_auto_topology(cl, budget_mb, 0.4, 0.6);
    }
    res = work::run_nwchem_dft(cl, dft);
  } else if (workload == "ccsd") {
    work::CcsdConfig cc;
    cc.total_tiles = args.num("tiles", 196608);
    cc.compute_us_per_tile = args.real("tile_us", 300.0);
    args.reject_unknown();
    if (auto_topology) {
      // Uniform tile traffic with blocking gets on the critical path.
      resolve_auto_topology(cl, budget_mb, 0.0, 0.7);
    }
    res = work::run_nwchem_ccsd(cl, cc);
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (contention|lu|dft|ccsd|"
                 "trace|phased|recommend)\n",
                 workload.c_str());
    return 2;
  }

  std::printf("%s %s on %lld procs: %.4f s (checksum %.6g)\n",
              workload.c_str(), core::to_string(cl.topology),
              static_cast<long long>(cl.num_procs()), res.exec_time_sec,
              res.checksum);
  print_stats(res.stats);
  return 0;
}
