// vtopo_run — one-shot experiment driver.
//
// Runs any of the repository's workloads on any cluster/topology
// configuration from the command line, printing the timing, protocol
// counters, and (optionally) the per-op latency trace summary.
//
//   vtopo_run workload=contention topology=mfcg nodes=256 ppn=4
//             contention=20 iters=5 op=fetchadd   (one line)
//   vtopo_run workload=dft topology=fcg nodes=256 ppn=12
//   vtopo_run workload=lu nodes=64 ppn=12 topology=hypercube trace=1
//   vtopo_run workload=recommend nodes=1024 budget=256 hotspot=0.5
//
// Unknown keys are rejected; every key has a sensible default.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include <fstream>
#include <sstream>

#include "core/recommend.hpp"
#include "net/profiles.hpp"
#include "sim/stats.hpp"
#include "workloads/contention.hpp"
#include "workloads/nas_lu.hpp"
#include "workloads/nwchem_ccsd.hpp"
#include "workloads/nwchem_dft.hpp"
#include "workloads/trace_replay.hpp"

using namespace vtopo;

namespace {

class KvArgs {
 public:
  KvArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad argument '%s' (expected key=value)\n",
                     arg.c_str());
        std::exit(2);
      }
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::string str(const std::string& key, const std::string& dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  std::int64_t num(const std::string& key, std::int64_t dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stoll(it->second);
  }
  double real(const std::string& key, double dflt) {
    used_.insert(key);
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stod(it->second);
  }
  /// Call after all reads: any unread key is a typo.
  void reject_unknown() const {
    for (const auto& [k, v] : kv_) {
      if (used_.count(k) == 0) {
        std::fprintf(stderr, "unknown key '%s'\n", k.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

core::TopologyKind parse_topology(const std::string& s) {
  if (s == "fcg") return core::TopologyKind::kFcg;
  if (s == "mfcg") return core::TopologyKind::kMfcg;
  if (s == "cfcg") return core::TopologyKind::kCfcg;
  if (s == "hypercube" || s == "hc") return core::TopologyKind::kHypercube;
  std::fprintf(stderr, "unknown topology '%s'\n", s.c_str());
  std::exit(2);
}

core::ForwardingPolicy parse_policy(const std::string& s) {
  if (s == "ldf") return core::ForwardingPolicy::kLowestDimFirst;
  if (s == "hdf") return core::ForwardingPolicy::kHighestDimFirst;
  if (s == "scrambled") return core::ForwardingPolicy::kScrambled;
  std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
  std::exit(2);
}

void print_stats(const armci::RuntimeStats& st) {
  std::printf("requests=%llu forwards=%llu acks=%llu direct=%llu "
              "wakeups=%llu credit_blocked_ms=%.3f\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.forwards),
              static_cast<unsigned long long>(st.acks),
              static_cast<unsigned long long>(st.direct_ops),
              static_cast<unsigned long long>(st.cht_wakeups),
              static_cast<double>(st.credit_blocked_ns) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  KvArgs args(argc, argv);
  const std::string workload = args.str("workload", "contention");

  if (workload == "recommend") {
    core::WorkloadProfile prof;
    prof.num_nodes = args.num("nodes", 1024);
    prof.buffer_budget_mb = args.real("budget", 256.0);
    prof.hotspot_fraction = args.real("hotspot", 0.0);
    prof.latency_sensitivity = args.real("latency", 0.5);
    args.reject_unknown();
    const auto rec = core::recommend_topology(prof);
    std::printf("recommendation: %s\n", core::to_string(rec.kind));
    std::printf("rationale: %s\n", rec.rationale.c_str());
    return 0;
  }

  work::ClusterConfig cl;
  cl.num_nodes = args.num("nodes", 64);
  cl.procs_per_node = static_cast<int>(args.num("ppn", 4));
  cl.topology = parse_topology(args.str("topology", "mfcg"));
  cl.policy = parse_policy(args.str("policy", "ldf"));
  cl.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  if (args.str("machine", "xt5") == "bgp") cl.net = net::bgp_params();
  cl.net.stream_table_size =
      static_cast<int>(args.num("table", cl.net.stream_table_size));
  cl.placement = args.str("placement", "linear") == "random"
                     ? net::Placement::kRandom
                     : net::Placement::kLinear;
  const auto iters = static_cast<int>(args.num("iters", 5));

  if (workload == "contention") {
    work::ContentionConfig cc;
    cc.iterations = iters;
    const std::string op = args.str("op", "vput");
    cc.op = op == "fetchadd" ? work::ContentionConfig::Op::kFetchAdd
            : op == "vget"   ? work::ContentionConfig::Op::kVectorGet
                             : work::ContentionConfig::Op::kVectorPut;
    const std::int64_t pct = args.num("contention", 0);
    cc.contender_stride = pct == 0 ? 0 : pct >= 20 ? 5 : 9;
    args.reject_unknown();
    const auto res = work::run_contention(cl, cc);
    sim::Series s;
    for (const double t : res.op_time_us) {
      if (t >= 0) s.add(t);
    }
    std::printf("%s %s contention=%lld%%: median=%.1fus p95=%.1fus "
                "max=%.1fus (simulated %.3fs)\n",
                core::to_string(cl.topology), op.c_str(),
                static_cast<long long>(pct), s.median(),
                s.percentile(95), s.max(), res.total_sim_sec);
    print_stats(res.stats);
    return 0;
  }

  if (workload == "trace") {
    const std::string path = args.str("file", "");
    args.reject_unknown();
    if (path.empty()) {
      std::fprintf(stderr, "workload=trace requires file=<path>\n");
      return 2;
    }
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open trace '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto ops = work::parse_trace(text.str(), cl.num_procs());
    const auto res = work::replay_trace(cl, ops);
    std::printf("trace %s: %lld ops in %.6f s on %s\n", path.c_str(),
                static_cast<long long>(res.ops_executed),
                res.exec_time_sec, core::to_string(cl.topology));
    print_stats(res.stats);
    return 0;
  }

  work::AppResult res;
  if (workload == "lu") {
    work::LuConfig lu;
    lu.iterations = iters;
    lu.nx_global = static_cast<int>(args.num("nx", 408));
    args.reject_unknown();
    res = work::run_nas_lu(cl, lu);
  } else if (workload == "dft") {
    work::DftConfig dft;
    dft.total_tasks = args.num("tasks", 24576);
    dft.compute_us_per_task = args.real("task_us", 70000.0);
    args.reject_unknown();
    res = work::run_nwchem_dft(cl, dft);
  } else if (workload == "ccsd") {
    work::CcsdConfig cc;
    cc.total_tiles = args.num("tiles", 196608);
    cc.compute_us_per_tile = args.real("tile_us", 300.0);
    args.reject_unknown();
    res = work::run_nwchem_ccsd(cl, cc);
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (contention|lu|dft|ccsd|"
                 "trace|recommend)\n",
                 workload.c_str());
    return 2;
  }

  std::printf("%s %s on %lld procs: %.4f s (checksum %.6g)\n",
              workload.c_str(), core::to_string(cl.topology),
              static_cast<long long>(cl.num_procs()), res.exec_time_sec,
              res.checksum);
  print_stats(res.stats);
  return 0;
}
