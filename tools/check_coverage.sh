#!/usr/bin/env bash
# Line-coverage gate for the fault-injection / self-healing request
# path and the multi-tenant cluster service (documented in
# docs/testing.md).
#
#   1. Build the `coverage` preset (Debug, --coverage -O0).
#   2. Run the sim/armci/integration/proptest/fault/svc test selection.
#   3. Aggregate gcov line coverage over src/armci + src/sim + src/svc
#      (gcovr is used when installed; otherwise plain gcov output is
#      parsed).
#   4. Gates: the fault/retry code (src/sim/fault.cpp plus the fault
#      sections compiled into src/armci) must be >= 80% covered, and so
#      must the service layer (src/svc).
#
# Usage: tools/check_coverage.sh [--skip-build]
set -euo pipefail

cd "$(dirname "$0")/.."
repo=$(pwd)
build=build-coverage
threshold=80

if [[ "${1:-}" != "--skip-build" ]]; then
  echo "== coverage build + tests =="
  cmake --preset coverage
  cmake --build --preset coverage -j "$(nproc)"
  ctest --preset coverage -j "$(nproc)"
fi

if command -v gcovr >/dev/null 2>&1; then
  echo "== gcovr (src/armci + src/sim) =="
  gcovr -r "$repo" --filter 'src/(armci|sim)/' "$build" \
    --fail-under-line "$threshold"
  echo "== gcovr (src/svc) =="
  gcovr -r "$repo" --filter 'src/svc/' "$build" \
    --fail-under-line "$threshold"
  exit 0
fi

echo "== gcov fallback (src/armci + src/sim + src/svc) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Run gcov once per instrumented object of the src/ libraries; stdout
# reports every source file (headers included) each TU touched.
find "$build/src" -name '*.gcda' | while read -r gcda; do
  (cd "$tmp" && gcov -n "$repo/$gcda" 2>/dev/null) || true
done >"$tmp/gcov.txt"

# Aggregate: keep the best-observed coverage per file (a header's lines
# count as covered if any TU executed them), then weight by line count.
awk -v repo="$repo/" -v threshold="$threshold" '
  /^File / {
    file = $2
    gsub(/\x27/, "", file)
    sub(repo, "", file)
    next
  }
  /^Lines executed:/ {
    if (file !~ /^src\/(armci|sim|svc)\//) { file = ""; next }
    split($0, m, /[:%]| of /)
    pct = m[2] + 0
    lines = $NF + 0
    if (pct > best[file]) { best[file] = pct; nlines[file] = lines }
    seen[file] = 1
    file = ""
  }
  END {
    total = 0; covered = 0
    fault_total = 0; fault_covered = 0
    svc_total = 0; svc_covered = 0
    for (f in seen) {
      total += nlines[f]
      covered += nlines[f] * best[f] / 100.0
      printf "%7.2f%%  %5d  %s\n", best[f], nlines[f], f
      if (f ~ /fault/) {
        fault_total += nlines[f]
        fault_covered += nlines[f] * best[f] / 100.0
      }
      if (f ~ /^src\/svc\//) {
        svc_total += nlines[f]
        svc_covered += nlines[f] * best[f] / 100.0
      }
    }
    if (total == 0) { print "no coverage data found" > "/dev/stderr"; exit 1 }
    printf "overall src/armci+src/sim+src/svc: %.2f%% of %d lines\n",
           100.0 * covered / total, total
    if (fault_total == 0) {
      print "no fault-path coverage data found" > "/dev/stderr"; exit 1
    }
    fault_pct = 100.0 * fault_covered / fault_total
    printf "fault/retry code:          %.2f%% of %d lines (gate >= %d%%)\n",
           fault_pct, fault_total, threshold
    if (fault_pct < threshold) {
      print "coverage gate FAILED" > "/dev/stderr"; exit 1
    }
    if (svc_total == 0) {
      print "no src/svc coverage data found" > "/dev/stderr"; exit 1
    }
    svc_pct = 100.0 * svc_covered / svc_total
    printf "service layer (src/svc):   %.2f%% of %d lines (gate >= %d%%)\n",
           svc_pct, svc_total, threshold
    if (svc_pct < threshold) {
      print "svc coverage gate FAILED" > "/dev/stderr"; exit 1
    }
  }
' "$tmp/gcov.txt"

echo "check_coverage: fault/retry and svc coverage gates passed"
