#include "lint/callgraph.hpp"

#include <deque>

namespace vtopo::lint {

namespace {

bool is_call_keyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "co_return" ||
         s == "co_await" || s == "co_yield" || s == "sizeof" ||
         s == "alignof" || s == "alignas" || s == "decltype" || s == "new" ||
         s == "delete" || s == "static_assert" || s == "defined" ||
         s == "noexcept" || s == "throw" || s == "assert";
}

}  // namespace

void CallGraph::add_file(const std::vector<Token>& toks,
                         const std::vector<FunctionInfo>& fns) {
  for (const auto& fn : fns) {
    nodes_[fn.name].name = fn.name;
    PendingBody body;
    body.name = fn.name;
    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::kIdent || !is(toks[i + 1], "(")) continue;
      if (is_call_keyword(toks[i].text)) continue;
      body.candidates.emplace_back(toks[i].text);
    }
    pending_.push_back(std::move(body));
  }
}

void CallGraph::finalize() {
  for (auto& body : pending_) {
    auto& node = nodes_[body.name];
    for (auto& cand : body.candidates) {
      if (cand != body.name && nodes_.count(cand) != 0) {
        node.callees.insert(cand);
      } else if (cand == body.name) {
        node.callees.insert(cand);  // direct recursion is a real edge
      }
    }
  }
  pending_.clear();
  finalized_ = true;
}

const std::set<std::string>& CallGraph::callees(const std::string& name) const {
  static const std::set<std::string> kEmpty;
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? kEmpty : it->second.callees;
}

std::set<std::string> CallGraph::propagate_callers_of(
    const std::set<std::string>& seed) const {
  std::set<std::string> closed = seed;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, node] : nodes_) {
      if (closed.count(name) != 0) continue;
      for (const auto& callee : node.callees) {
        if (closed.count(callee) != 0) {
          closed.insert(name);
          changed = true;
          break;
        }
      }
    }
  }
  return closed;
}

std::set<std::string> CallGraph::reachable_from(const std::string& name) const {
  std::set<std::string> seen;
  if (nodes_.count(name) == 0) return seen;
  std::deque<std::string> work{name};
  seen.insert(name);
  while (!work.empty()) {
    const std::string cur = std::move(work.front());
    work.pop_front();
    for (const auto& callee : callees(cur)) {
      if (seen.insert(callee).second) work.push_back(callee);
    }
  }
  return seen;
}

}  // namespace vtopo::lint
