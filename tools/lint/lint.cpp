#include "lint/lint.hpp"

#include "lint/cfg.hpp"
#include "lint/flow_rules.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

namespace vtopo::lint {

void Sink::report(std::string_view rule_id, int line, int col,
                  std::string message, std::vector<TraceStep> trace) {
  const std::string_view name = annotation_name(rule_id);
  for (const auto& fa : ann_->file_allows) {
    if (fa == name) return;
  }
  for (const auto& [aline, arule] : ann_->line_allows) {
    if (arule == name && (aline == line || aline == line - 1)) return;
  }
  out_->push_back(Diagnostic{std::string(rule_id), path_, line, col,
                             std::move(message), std::move(trace)});
}

namespace {

// ---------------------------------------------------------------------
// Rule engine plumbing.
// ---------------------------------------------------------------------

struct FileCtx {
  std::string path;
  std::string blanked;   ///< comment/literal-stripped source (owns the
                         ///< storage every legacy Token::text views into)
  std::string stripped;  ///< blanked + preprocessor lines removed (owns
                         ///< the storage the CFG tokens view into)
  std::vector<Token> toks;      ///< legacy stream (macros visible)
  std::vector<Token> cfg_toks;  ///< structural stream (pp-stripped)
  std::vector<FunctionInfo> functions;
  Annotations ann;
  bool rng_exempt = false;  ///< path matches src/sim/rng.* (rule D1)
  bool sharded_exempt = false;  ///< path matches sim/sharded_engine.* (S1)
  bool cht_exempt = false;  ///< path matches armci/cht.* or
                            ///< armci/qos_queue.* (rule Q1)
  bool backend_exempt = false;  ///< path under src/sim/ or matches the
                                ///< transport/backend seam files (B1)
};

// ---------------------------------------------------------------------
// Rule D1: nondeterminism sources outside sim/rng.
// ---------------------------------------------------------------------

void rule_d1(const FileCtx& f, Sink& sink) {
  if (f.rng_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string_view id = t[i].text;
    const bool call_next = i + 1 < t.size() && is(t[i + 1], "(");
    if (id == "random_device" || id == "system_clock" ||
        id == "steady_clock" || id == "high_resolution_clock") {
      sink.report("D1", t[i].line, t[i].col,
                  "nondeterminism source '" + std::string(id) +
                      "' outside sim/rng (use sim::Rng / simulated time)");
      continue;
    }
    if (call_next && (id == "rand" || id == "srand" || id == "drand48" ||
                      id == "getenv" || id == "secure_getenv")) {
      sink.report("D1", t[i].line, t[i].col,
                  "nondeterministic call '" + std::string(id) +
                      "()' outside sim/rng (seed via explicit config, "
                      "not environment or libc rand)");
      continue;
    }
    // time(nullptr) / time(0) / time(NULL): wall clock.
    if (call_next && id == "time" && i + 3 < t.size() &&
        (is(t[i + 2], "nullptr") || is(t[i + 2], "0") ||
         is(t[i + 2], "NULL")) &&
        is(t[i + 3], ")")) {
      sink.report("D1", t[i].line, t[i].col,
                  "wall-clock read 'time(...)' outside sim/rng");
    }
  }
}

// ---------------------------------------------------------------------
// Rule D2: iteration over unordered containers.
// ---------------------------------------------------------------------

bool is_unordered_type_name(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

/// Collect names declared with unordered container types in one file:
/// both variables/members ("std::unordered_map<K, V> name") and type
/// aliases ("using Name = std::unordered_map<...>"), whose own declared
/// variables are picked up transitively within the same pass set.
void collect_unordered_names(const std::vector<Token>& t,
                             std::set<std::string, std::less<>>& names,
                             std::set<std::string, std::less<>>& types) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool unordered_here =
        is_unordered_type_name(t[i].text) || types.count(t[i].text) != 0;
    if (!unordered_here) continue;
    // "using Alias = [std::]unordered_map<...>" — look behind, skipping
    // namespace qualification.
    std::size_t b = i;
    while (b >= 2 && is(t[b - 1], "::") && t[b - 2].kind == Token::kIdent) {
      b -= 2;
    }
    if (b >= 3 && is(t[b - 1], "=") && t[b - 2].kind == Token::kIdent &&
        is(t[b - 3], "using")) {
      types.insert(std::string(t[b - 2].text));
    }
    std::size_t j = i + 1;
    if (j < t.size() && is(t[j], "<")) {
      j = skip_angles(t, j);
      if (j == knpos) continue;
    } else if (is_unordered_type_name(t[i].text)) {
      continue;  // bare mention (e.g. inside a comment-ish context)
    }
    // Skip declarator decorations, then expect the declared name.
    while (j < t.size() && (is(t[j], "*") || is(t[j], "&") ||
                            is(t[j], "&&") || is(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent &&
        t[j].text != "operator") {
      // Only count declarations, not e.g. "unordered_map<K,V>{}" temps.
      names.insert(std::string(t[j].text));
    }
  }
}

void rule_d2(const FileCtx& f,
             const std::set<std::string, std::less<>>& unordered_names,
             Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered name:
    //   for ( decl : expr )
    if (is(t[i], "for") && i + 1 < t.size() && is(t[i + 1], "(")) {
      const std::size_t close = skip_parens(t, i + 1);
      if (close == knpos) continue;
      // Find the range-for ':' at paren depth 1 (merged "::" is a
      // distinct token, so a bare ":" is unambiguous).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (is(t[k], "(")) ++depth;
        if (is(t[k], ")")) --depth;
        if (depth == 1 && is(t[k], ":")) {
          colon = k;
          break;
        }
      }
      if (colon == 0) continue;
      for (std::size_t k = colon + 1; k + 1 < close; ++k) {
        if (t[k].kind == Token::kIdent &&
            unordered_names.count(t[k].text) != 0) {
          sink.report(
              "D2", t[k].line, t[k].col,
              "range-for over unordered container '" +
                  std::string(t[k].text) +
                  "': iteration order is not deterministic across "
                  "libraries/runs; iterate a sorted or dense structure");
          break;
        }
      }
      continue;
    }
    // name.begin() / name->cbegin() etc.
    if (t[i].kind == Token::kIdent && unordered_names.count(t[i].text) != 0 &&
        i + 3 < t.size() && (is(t[i + 1], ".") || is(t[i + 1], "->")) &&
        (is(t[i + 2], "begin") || is(t[i + 2], "cbegin") ||
         is(t[i + 2], "rbegin") || is(t[i + 2], "crbegin")) &&
        is(t[i + 3], "(")) {
      sink.report("D2", t[i].line, t[i].col,
                  "iterator walk over unordered container '" +
                      std::string(t[i].text) +
                      "': iteration order is not deterministic");
    }
  }
}

// ---------------------------------------------------------------------
// Rule D3: ordering by pointer value.
// ---------------------------------------------------------------------

void rule_d3(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !is(t[i + 1], "<")) continue;
    const std::string_view id = t[i].text;
    const bool comparator = id == "less" || id == "greater";
    const bool ordered_container = id == "set" || id == "map" ||
                                   id == "multiset" || id == "multimap";
    if (!comparator && !ordered_container) continue;
    // Heuristic guard: require std:: (or absl:: etc.) qualification so a
    // project template named set<...> is not miscounted.
    if (i < 1 || !is(t[i - 1], "::")) continue;
    const std::size_t end = skip_angles(t, i + 1);
    if (end == knpos) continue;
    // First template argument: tokens until ',' or the final '>' at
    // depth 1.
    int depth = 0;
    std::size_t last = 0;
    bool key_is_pointer = false;
    for (std::size_t k = i + 1; k < end; ++k) {
      if ((depth == 1 && is(t[k], ",")) || k == end - 1) {
        key_is_pointer = last != 0 && is(t[last], "*");
        break;
      }
      if (is(t[k], "<") || is(t[k], "(")) {
        ++depth;
      } else if (is(t[k], ">") || is(t[k], ")")) {
        --depth;
      } else {
        last = k;
      }
    }
    if (key_is_pointer) {
      sink.report(
          "D3", t[i].line, t[i].col,
          "'" + std::string(id) +
              "' keyed on a pointer type orders by address, which varies "
              "run to run; key on a stable id instead");
    }
  }
}

// ---------------------------------------------------------------------
// Rule C1: coroutine-frame lifetime hazards.
// ---------------------------------------------------------------------

/// True when tokens [begin, end) — one function parameter — declare a
/// const-lvalue-ref or rvalue-ref parameter at top level.
bool param_is_hazardous_ref(const std::vector<Token>& t, std::size_t begin,
                            std::size_t end) {
  int depth = 0;
  bool saw_const = false;
  for (std::size_t k = begin; k < end; ++k) {
    if (is(t[k], "<") || is(t[k], "(") || is(t[k], "[")) ++depth;
    if (is(t[k], ">") || is(t[k], ")") || is(t[k], "]")) --depth;
    if (depth != 0) continue;
    if (is(t[k], "const")) saw_const = true;
    if (is(t[k], "&&")) return true;
    if (is(t[k], "&") && saw_const) return true;
  }
  return false;
}

/// Is t[i] the start of a coroutine return type? Matches "Co <" with an
/// optional "sim ::" prefix, and "Detached". Returns the index just past
/// the full type (past the closing '>' for Co<T>), or knpos.
std::size_t match_coro_return_type(const std::vector<Token>& t,
                                   std::size_t i) {
  if (t[i].kind != Token::kIdent) return knpos;
  if (t[i].text == "Detached") return i + 1;
  if (t[i].text != "Co") return knpos;
  if (i + 1 >= t.size() || !is(t[i + 1], "<")) return knpos;
  return skip_angles(t, i + 1);
}

void rule_c1_functions(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::size_t after_type = match_coro_return_type(t, i);
    if (after_type == knpos) continue;
    // Expect: [ClassName ::]* name ( params )
    std::size_t j = after_type;
    while (j + 1 < t.size() && t[j].kind == Token::kIdent &&
           is(t[j + 1], "::")) {
      j += 2;
    }
    if (j + 1 >= t.size() || t[j].kind != Token::kIdent ||
        !is(t[j + 1], "(")) {
      continue;  // variable of type Co<T>, return statement, etc.
    }
    const std::string fn_name(t[j].text);
    const std::size_t open = j + 1;
    const std::size_t close = skip_parens(t, open);
    if (close == knpos) continue;
    // Split parameters at top-level commas and test each.
    int depth = 0;
    std::size_t param_start = open + 1;
    for (std::size_t k = open; k < close; ++k) {
      if (is(t[k], "<") || is(t[k], "(") || is(t[k], "[")) ++depth;
      if (is(t[k], ">") || is(t[k], ")") || is(t[k], "]")) --depth;
      const bool at_split = (depth == 1 && is(t[k], ",")) || k == close - 1;
      if (!at_split) continue;
      if (param_is_hazardous_ref(t, param_start, k)) {
        sink.report(
            "C1", t[param_start].line, t[param_start].col,
            "coroutine '" + fn_name +
                "' takes a const-ref/rvalue-ref parameter: a temporary "
                "bound to it dies while the frame may still be alive; "
                "pass by value (or a mutable lvalue ref to an object "
                "that outlives the run)");
      }
      param_start = k + 1;
    }
  }
}

void rule_c1_lambdas(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is(t[i], "[")) continue;
    // Lambda-introducer heuristic: '[' not preceded by a value-ish token
    // (identifier, ')', ']', number) — those are subscripts.
    if (i > 0 && (t[i - 1].kind == Token::kIdent ||
                  t[i - 1].kind == Token::kNumber || is(t[i - 1], ")") ||
                  is(t[i - 1], "]"))) {
      continue;
    }
    // Capture list: scan to matching ']'.
    std::size_t close = knpos;
    int depth = 0;
    for (std::size_t k = i; k < t.size(); ++k) {
      if (is(t[k], "[")) ++depth;
      if (is(t[k], "]")) {
        if (--depth == 0) {
          close = k;
          break;
        }
      }
      if (is(t[k], ";") || is(t[k], "{")) break;
    }
    if (close == knpos) continue;
    bool by_ref_capture = false;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is(t[k], "&") &&
          (k + 1 == close || t[k + 1].kind == Token::kIdent ||
           is(t[k + 1], ","))) {
        by_ref_capture = true;
        break;
      }
    }
    if (!by_ref_capture) continue;
    // Must look like a lambda: followed by '(' params, '{' body, or
    // specifiers/trailing-return.
    std::size_t j = close + 1;
    if (j >= t.size() ||
        !(is(t[j], "(") || is(t[j], "{") || is(t[j], "->") ||
          is(t[j], "mutable") || is(t[j], "noexcept"))) {
      continue;
    }
    // Find the body '{', remembering a trailing return type if present.
    bool trailing_coro = false;
    if (j < t.size() && is(t[j], "(")) j = skip_parens(t, j);
    if (j == knpos) continue;
    while (j < t.size() && !is(t[j], "{")) {
      if (match_coro_return_type(t, j) != knpos) {
        trailing_coro = true;
      }
      if (is(t[j], ";") || is(t[j], ")")) break;  // not a lambda body
      ++j;
    }
    if (j >= t.size() || !is(t[j], "{")) continue;
    const std::size_t body_end = skip_braces(t, j);
    if (body_end == knpos) continue;
    bool body_coro = false;
    for (std::size_t k = j; k < body_end; ++k) {
      if (t[k].kind == Token::kIdent &&
          (t[k].text == "co_await" || t[k].text == "co_return" ||
           t[k].text == "co_yield")) {
        body_coro = true;
        break;
      }
    }
    if (trailing_coro || body_coro) {
      sink.report(
          "C1", t[i].line, t[i].col,
          "coroutine lambda captures by reference: captures live in the "
          "closure object, not the frame — if the closure dies before "
          "the coroutine finishes every by-ref capture dangles; capture "
          "by value or use a named coroutine with value parameters");
    }
  }
}

// ---------------------------------------------------------------------
// Rule S1: cross-shard mutation outside the mailbox API.
// ---------------------------------------------------------------------

bool is_shard_facade_accessor(std::string_view id) {
  // Accessors on ShardedEngine that hand back a per-shard sim::Engine.
  // Scheduling directly on one of those from another shard's context
  // bypasses the mailbox/window clamp that makes output shard-count
  // invariant.
  return id == "shard_engine" || id == "engine_for_node" ||
         id == "global_engine" || id == "context_engine";
}

void rule_s1(const FileCtx& f, Sink& sink) {
  if (f.sharded_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !is_shard_facade_accessor(t[i].text)) {
      continue;
    }
    if (!is(t[i + 1], "(")) continue;
    const std::size_t after = skip_parens(t, i + 1);
    if (after == knpos || after + 2 >= t.size()) continue;
    // shard_engine(s).schedule_at(...) — the facade is returned by
    // reference, so the chain is always '.'.
    if (!is(t[after], ".")) continue;
    const std::string_view method = t[after + 1].text;
    if (t[after + 1].kind != Token::kIdent ||
        (method != "schedule_at" && method != "schedule_after")) {
      continue;
    }
    if (!is(t[after + 2], "(")) continue;
    sink.report(
        "S1", t[i].line, t[i].col,
        "'" + std::string(t[i].text) + "(...)." + std::string(method) +
            "(...)' schedules directly on a shard facade, bypassing the "
            "mailbox/window clamp that keeps output shard-count "
            "invariant; use ShardedEngine::schedule_on_node / "
            "post_serial / schedule_global_at");
  }
}

// ---------------------------------------------------------------------
// Rule B1: direct engine construction outside the backend seam.
// ---------------------------------------------------------------------

void rule_b1(const FileCtx& f, Sink& sink) {
  if (f.backend_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "Engine" && t[i].text != "ShardedEngine")) {
      continue;
    }
    if (!is(t[i - 1], "::") || !is(t[i - 2], "sim")) continue;
    const std::string_view type = t[i].text;
    bool constructs = false;
    // new sim::Engine(...)
    if (i >= 3 && is(t[i - 3], "new")) constructs = true;
    // make_unique<sim::Engine>(...) / make_shared<...>
    if (!constructs && i >= 4 && is(t[i - 3], "<") &&
        t[i - 4].kind == Token::kIdent &&
        (t[i - 4].text == "make_unique" || t[i - 4].text == "make_shared")) {
      constructs = true;
    }
    // Declaration with automatic/member storage: "sim::Engine name" —
    // a following '&', '*' or '>' is a reference/pointer/template
    // argument, not a construction.
    if (!constructs && i + 1 < t.size() && t[i + 1].kind == Token::kIdent) {
      constructs = true;
    }
    if (!constructs) continue;
    sink.report(
        "B1", t[i].line, t[i].col,
        "direct construction of 'sim::" + std::string(type) +
            "' outside the backend seam: engines are an implementation "
            "detail of the sim backend — construct an armci::Runtime "
            "with Config::backend (or go through armci::Transport) so "
            "the code stays backend-agnostic");
  }
}

// ---------------------------------------------------------------------
// Rule Q1: direct pushes into the CHT's class-aware request queue.
// ---------------------------------------------------------------------

/// Collect names declared with the CHT queue type ("QosQueue name",
/// optionally namespace-qualified or behind a "using Alias = QosQueue"),
/// project-wide: the member lives in cht.hpp, pushes could appear in any
/// .cpp.
void collect_qos_queue_names(const std::vector<Token>& t,
                             std::set<std::string, std::less<>>& names,
                             std::set<std::string, std::less<>>& types) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool queue_here =
        t[i].text == "QosQueue" || types.count(t[i].text) != 0;
    if (!queue_here) continue;
    // "using Alias = [armci::]QosQueue" — look behind, skipping
    // namespace qualification.
    std::size_t b = i;
    while (b >= 2 && is(t[b - 1], "::") && t[b - 2].kind == Token::kIdent) {
      b -= 2;
    }
    if (b >= 3 && is(t[b - 1], "=") && t[b - 2].kind == Token::kIdent &&
        is(t[b - 3], "using")) {
      types.insert(std::string(t[b - 2].text));
    }
    // Skip declarator decorations, then expect the declared name (a
    // following '(' is a constructor/temporary, not a declaration).
    std::size_t j = i + 1;
    while (j < t.size() && (is(t[j], "*") || is(t[j], "&") ||
                            is(t[j], "&&") || is(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent &&
        t[j].text != "operator") {
      names.insert(std::string(t[j].text));
    }
  }
}

void rule_q1(const FileCtx& f,
             const std::set<std::string, std::less<>>& qos_queue_names,
             Sink& sink) {
  if (f.cht_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        qos_queue_names.count(t[i].text) == 0) {
      continue;
    }
    if (!is(t[i + 1], ".") && !is(t[i + 1], "->")) continue;
    const std::string_view method = t[i + 2].text;
    if (t[i + 2].kind != Token::kIdent ||
        (method != "push" && method != "enqueue")) {
      continue;
    }
    if (!is(t[i + 3], "(")) continue;
    sink.report(
        "Q1", t[i].line, t[i].col,
        "'" + std::string(t[i].text) + "." + std::string(method) +
            "(...)' pushes into a CHT request queue directly, bypassing "
            "the class-aware submit path (priority stamping, backlog "
            "accounting, congestion feedback); route the request through "
            "Cht::submit");
  }
}

}  // namespace

void Linter::add_file(std::string path, std::string content) {
  files_.push_back(File{std::move(path), std::move(content)});
}

std::vector<Diagnostic> Linter::run() {
  // Lexing per file: the legacy token stream keeps macro bodies visible
  // for the token-shape rules; the structural stream strips preprocessor
  // lines so the CFG parser sees balanced braces.
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files_.size());
  for (const auto& f : files_) {
    FileCtx ctx;
    ctx.path = f.path;
    ctx.blanked = blank_noncode(f.content, ctx.ann);
    ctx.stripped = strip_preprocessor(ctx.blanked);
    ctx.rng_exempt = f.path.find("sim/rng.") != std::string::npos;
    ctx.sharded_exempt =
        f.path.find("sim/sharded_engine.") != std::string::npos;
    ctx.cht_exempt = f.path.find("armci/cht.") != std::string::npos ||
                     f.path.find("armci/qos_queue.") != std::string::npos;
    ctx.backend_exempt =
        f.path.find("src/sim/") != std::string::npos ||
        f.path.compare(0, 4, "sim/") == 0 ||
        f.path.find("armci/transport.") != std::string::npos ||
        f.path.find("armci/backend_") != std::string::npos;
    ctxs.push_back(std::move(ctx));
    // Tokenize after the move so Token::text views into storage that
    // lives as long as the context itself.
    ctxs.back().toks = tokenize(ctxs.back().blanked);
    ctxs.back().cfg_toks = tokenize(ctxs.back().stripped);
    ctxs.back().functions = extract_functions(ctxs.back().cfg_toks);
  }

  // Pass A: project-wide unordered names (declaration may live in a
  // header, iteration in a .cpp).
  std::set<std::string, std::less<>> unordered_names;
  std::set<std::string, std::less<>> unordered_types;
  std::set<std::string, std::less<>> qos_queue_names;
  std::set<std::string, std::less<>> qos_queue_types;
  for (int round = 0; round < 2; ++round) {  // 2 rounds: aliases settle
    for (const auto& ctx : ctxs) {
      collect_unordered_names(ctx.toks, unordered_names, unordered_types);
      collect_qos_queue_names(ctx.toks, qos_queue_names, qos_queue_types);
    }
  }

  // Pass B: token-shape rules.
  std::vector<Diagnostic> diags;
  for (const auto& ctx : ctxs) {
    Sink sink(ctx.path, ctx.ann, diags);
    for (const auto& m : ctx.ann.malformed) {
      diags.push_back(Diagnostic{"A0", ctx.path, m.line, m.col, m.message, {}});
    }
    rule_d1(ctx, sink);
    rule_d2(ctx, unordered_names, sink);
    rule_d3(ctx, sink);
    rule_c1_functions(ctx, sink);
    rule_c1_lambdas(ctx, sink);
    rule_s1(ctx, sink);
    rule_b1(ctx, sink);
    rule_q1(ctx, qos_queue_names, sink);
  }

  // Pass C: flow rules (CFG + call graph) — R1, C2, L1.
  FlowAnalysis flow;
  for (const auto& ctx : ctxs) {
    flow.add_file(ctx.path, &ctx.cfg_toks, &ctx.functions, &ctx.ann);
  }
  flow.run(diags);

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.col < b.col;
            });
  return diags;
}

std::string format_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.file + ":" + std::to_string(d.line);
    if (d.col > 0) out += ":" + std::to_string(d.col);
    out += ": [" + d.rule + "] " + d.message;
    if (d.rule != "A0") {
      out += "  (suppress: // vtopo-lint: allow(" +
             std::string(annotation_name(d.rule)) + ") -- <reason>)";
    }
    out += "\n";
    for (const auto& step : d.trace) {
      out += "    " + step.file + ":" + std::to_string(step.line) + ":" +
             std::to_string(step.col) + ": " + step.note + "\n";
    }
  }
  return out;
}

namespace {
void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}
}  // namespace

std::string format_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    out += "  {\"rule\": \"" + d.rule + "\", \"file\": \"";
    json_escape_into(out, d.file);
    out += "\", \"line\": " + std::to_string(d.line) +
           ", \"col\": " + std::to_string(d.col) + ", \"message\": \"";
    json_escape_into(out, d.message);
    out += "\", \"trace\": [";
    for (std::size_t k = 0; k < d.trace.size(); ++k) {
      const auto& step = d.trace[k];
      if (k > 0) out += ", ";
      out += "{\"file\": \"";
      json_escape_into(out, step.file);
      out += "\", \"line\": " + std::to_string(step.line) +
             ", \"col\": " + std::to_string(step.col) + ", \"note\": \"";
      json_escape_into(out, step.note);
      out += "\"}";
    }
    out += "]}";
    if (i + 1 < diags.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string format_sarif(const std::vector<Diagnostic>& diags) {
  // Minimal but valid SARIF 2.1.0: one run, one result per diagnostic,
  // the CFG witness path as a codeFlow.
  std::set<std::string> rule_ids;
  for (const auto& d : diags) rule_ids.insert(d.rule);
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"vtopo-lint\", "
      "\"rules\": [";
  bool first = true;
  for (const auto& id : rule_ids) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": \"" + id + "\", \"name\": \"" +
           std::string(annotation_name(id)) + "\"}";
  }
  out += "]}},\n    \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    out += "      {\"ruleId\": \"" + d.rule +
           "\", \"level\": \"error\", \"message\": {\"text\": \"";
    json_escape_into(out, d.message);
    out +=
        "\"}, \"locations\": [{\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"";
    json_escape_into(out, d.file);
    out += "\"}, \"region\": {\"startLine\": " + std::to_string(d.line) +
           ", \"startColumn\": " + std::to_string(d.col > 0 ? d.col : 1) +
           "}}}]";
    if (!d.trace.empty()) {
      out += ", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [";
      for (std::size_t k = 0; k < d.trace.size(); ++k) {
        const auto& step = d.trace[k];
        if (k > 0) out += ", ";
        out +=
            "{\"location\": {\"physicalLocation\": {\"artifactLocation\": "
            "{\"uri\": \"";
        json_escape_into(out, step.file);
        out += "\"}, \"region\": {\"startLine\": " +
               std::to_string(step.line) +
               ", \"startColumn\": " + std::to_string(step.col > 0 ? step.col : 1) +
               "}}, \"message\": {\"text\": \"";
        json_escape_into(out, step.note);
        out += "\"}}}";
      }
      out += "]}]}]";
    }
    out += "}";
    if (i + 1 < diags.size()) out += ",";
    out += "\n";
  }
  out += "    ]\n  }]\n}\n";
  return out;
}

}  // namespace vtopo::lint
