#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

namespace vtopo::lint {

namespace {

// ---------------------------------------------------------------------
// Annotation names.
// ---------------------------------------------------------------------

constexpr std::pair<std::string_view, std::string_view> kRuleNames[] = {
    {"D1", "nondeterminism"},
    {"D2", "unordered-iter"},
    {"D3", "pointer-order"},
    {"C1", "coro-ref"},
    {"S1", "cross-shard"},
    {"Q1", "qos-submit"},
};

// ---------------------------------------------------------------------
// Phase 1: strip comments and literals, harvest annotations.
// ---------------------------------------------------------------------

struct Annotations {
  /// allow(<rule>) annotations: (line, rule-name). An annotation covers
  /// its own line and the line that follows it.
  std::vector<std::pair<int, std::string>> line_allows;
  /// allow-file(<rule>) annotations: rule names, whole-file scope.
  std::vector<std::string> file_allows;
  /// Malformed annotations (A0 diagnostics): (line, message).
  std::vector<std::pair<int, std::string>> malformed;
};

bool is_known_rule_name(std::string_view name) {
  for (const auto& [id, nm] : kRuleNames) {
    if (nm == name) return true;
  }
  return false;
}

/// Parse "vtopo-lint:" directives out of one comment's text.
void parse_annotations(std::string_view comment, int line, Annotations& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("vtopo-lint:", pos)) != std::string_view::npos) {
    std::size_t p = pos + std::string_view("vtopo-lint:").size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    const bool file_scope =
        comment.compare(p, 11, "allow-file(") == 0;
    const bool line_scope = !file_scope && comment.compare(p, 6, "allow(") == 0;
    if (!file_scope && !line_scope) {
      out.malformed.emplace_back(
          line, "vtopo-lint directive is not allow(...) or allow-file(...)");
      pos = p;
      continue;
    }
    p += file_scope ? 11 : 6;
    const std::size_t close = comment.find(')', p);
    if (close == std::string_view::npos) {
      out.malformed.emplace_back(line, "unterminated vtopo-lint allow(");
      return;
    }
    const std::string rule(comment.substr(p, close - p));
    if (!is_known_rule_name(rule)) {
      out.malformed.emplace_back(
          line, "unknown vtopo-lint rule name '" + rule +
                    "' (want nondeterminism, unordered-iter, pointer-order, "
                    "coro-ref, cross-shard or qos-submit)");
      pos = close;
      continue;
    }
    // Require a justification: "-- <reason>".
    std::size_t after = close + 1;
    while (after < comment.size() && comment[after] == ' ') ++after;
    const bool has_reason =
        comment.compare(after, 2, "--") == 0 &&
        comment.find_first_not_of(" -", after) != std::string_view::npos;
    if (!has_reason) {
      out.malformed.emplace_back(
          line, "vtopo-lint allow(" + rule +
                    ") needs a justification: \"-- <reason>\"");
      pos = close;
      continue;
    }
    if (file_scope) {
      out.file_allows.push_back(rule);
    } else {
      out.line_allows.emplace_back(line, rule);
    }
    pos = close;
  }
}

bool ident_char_raw(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Copy `src` with comments, string literals and char literals replaced
/// by spaces (newlines preserved), collecting annotations from comments.
std::string blank_noncode(const std::string& src, Annotations& ann) {
  std::string out(src.size(), ' ');
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto copy_nl = [&](std::size_t at) {
    if (src[at] == '\n') {
      out[at] = '\n';
      ++line;
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      copy_nl(i);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {  // line comment
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      parse_annotations(std::string_view(src).substr(start, i - start), line,
                        ann);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {  // block comment
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        copy_nl(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      parse_annotations(std::string_view(src).substr(start, i - start),
                        start_line, ann);
      continue;
    }
    if (c == '\'' && i > 0 && ident_char_raw(src[i - 1])) {
      // Digit separator (8'000'000) or a ud-literal suffix context, not
      // a character literal.
      out[i] = c;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {  // string / char literal
      // Raw string literal? R"delim( ... )delim"
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        std::size_t d = i + 1;
        while (d < n && src[d] != '(') ++d;
        const std::string delim =
            ")" + src.substr(i + 1, d - i - 1) + "\"";
        const std::size_t end = src.find(delim, d);
        const std::size_t stop =
            end == std::string::npos ? n : end + delim.size();
        for (; i < stop; ++i) copy_nl(i);
        continue;
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        copy_nl(i);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------
// Phase 2: tokenize the blanked code.
// ---------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string_view text;  ///< view into the blanked buffer
  int line;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  toks.reserve(code.size() / 4);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(code[i])) ++i;
      toks.push_back({Token::kIdent,
                      std::string_view(code).substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < n && (ident_char(code[i]) || code[i] == '\'' ||
                       ((code[i] == '+' || code[i] == '-') &&
                        (code[i - 1] == 'e' || code[i - 1] == 'E')))) {
        ++i;
      }
      toks.push_back({Token::kNumber,
                      std::string_view(code).substr(start, i - start), line});
      continue;
    }
    // Merge "::" and "->" so scope/member chains are easy to walk;
    // everything else stays single-char (so ">>" closes two templates).
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line});
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < n && code[i + 1] == '&') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line});
      i += 2;
      continue;
    }
    toks.push_back({Token::kPunct, std::string_view(code).substr(i, 1),
                    line});
    ++i;
  }
  return toks;
}

bool is(const Token& t, std::string_view s) { return t.text == s; }

/// Token index just past a balanced <...> starting at `open` (which must
/// be '<'); npos when unbalanced. Walks nested <> only — good enough for
/// template argument lists, which is the only place it is used.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "<")) ++depth;
    if (is(t[i], ">")) {
      if (--depth == 0) return i + 1;
    }
    // A ';' or '{' inside what we thought was a template argument list
    // means it was a comparison after all; bail out.
    if (is(t[i], ";") || is(t[i], "{")) return std::string_view::npos;
  }
  return std::string_view::npos;
}

std::size_t skip_parens(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "(")) ++depth;
    if (is(t[i], ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

std::size_t skip_braces(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "{")) ++depth;
    if (is(t[i], "}")) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------
// Rule engine plumbing.
// ---------------------------------------------------------------------

struct FileCtx {
  std::string path;
  std::string blanked;      ///< comment/literal-stripped source (owns the
                            ///< storage every Token::text views into)
  std::vector<Token> toks;
  Annotations ann;
  bool rng_exempt = false;  ///< path matches src/sim/rng.* (rule D1)
  bool sharded_exempt = false;  ///< path matches sim/sharded_engine.* (S1)
  bool cht_exempt = false;  ///< path matches armci/cht.* or
                            ///< armci/qos_queue.* (rule Q1)
};

class Sink {
 public:
  Sink(const FileCtx& ctx, std::vector<Diagnostic>& out)
      : ctx_(&ctx), out_(&out) {}

  void report(std::string_view rule_id, int line, std::string message) {
    const std::string_view name = annotation_name(rule_id);
    for (const auto& fa : ctx_->ann.file_allows) {
      if (fa == name) return;
    }
    for (const auto& [aline, arule] : ctx_->ann.line_allows) {
      if (arule == name && (aline == line || aline == line - 1)) return;
    }
    out_->push_back(Diagnostic{std::string(rule_id), ctx_->path, line,
                               std::move(message)});
  }

 private:
  const FileCtx* ctx_;
  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------
// Rule D1: nondeterminism sources outside sim/rng.
// ---------------------------------------------------------------------

void rule_d1(const FileCtx& f, Sink& sink) {
  if (f.rng_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string_view id = t[i].text;
    const bool call_next = i + 1 < t.size() && is(t[i + 1], "(");
    if (id == "random_device" || id == "system_clock" ||
        id == "steady_clock" || id == "high_resolution_clock") {
      sink.report("D1", t[i].line,
                  "nondeterminism source '" + std::string(id) +
                      "' outside sim/rng (use sim::Rng / simulated time)");
      continue;
    }
    if (call_next && (id == "rand" || id == "srand" || id == "drand48" ||
                      id == "getenv" || id == "secure_getenv")) {
      sink.report("D1", t[i].line,
                  "nondeterministic call '" + std::string(id) +
                      "()' outside sim/rng (seed via explicit config, "
                      "not environment or libc rand)");
      continue;
    }
    // time(nullptr) / time(0) / time(NULL): wall clock.
    if (call_next && id == "time" && i + 3 < t.size() &&
        (is(t[i + 2], "nullptr") || is(t[i + 2], "0") ||
         is(t[i + 2], "NULL")) &&
        is(t[i + 3], ")")) {
      sink.report("D1", t[i].line,
                  "wall-clock read 'time(...)' outside sim/rng");
    }
  }
}

// ---------------------------------------------------------------------
// Rule D2: iteration over unordered containers.
// ---------------------------------------------------------------------

bool is_unordered_type_name(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

/// Collect names declared with unordered container types in one file:
/// both variables/members ("std::unordered_map<K, V> name") and type
/// aliases ("using Name = std::unordered_map<...>"), whose own declared
/// variables are picked up transitively within the same pass set.
void collect_unordered_names(const std::vector<Token>& t,
                             std::set<std::string, std::less<>>& names,
                             std::set<std::string, std::less<>>& types) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool unordered_here =
        is_unordered_type_name(t[i].text) ||
        types.count(t[i].text) != 0;
    if (!unordered_here) continue;
    // "using Alias = [std::]unordered_map<...>" — look behind, skipping
    // namespace qualification.
    std::size_t b = i;
    while (b >= 2 && is(t[b - 1], "::") && t[b - 2].kind == Token::kIdent) {
      b -= 2;
    }
    if (b >= 3 && is(t[b - 1], "=") && t[b - 2].kind == Token::kIdent &&
        is(t[b - 3], "using")) {
      types.insert(std::string(t[b - 2].text));
    }
    std::size_t j = i + 1;
    if (j < t.size() && is(t[j], "<")) {
      j = skip_angles(t, j);
      if (j == std::string_view::npos) continue;
    } else if (is_unordered_type_name(t[i].text)) {
      continue;  // bare mention (e.g. inside a comment-ish context)
    }
    // Skip declarator decorations, then expect the declared name.
    while (j < t.size() && (is(t[j], "*") || is(t[j], "&") ||
                            is(t[j], "&&") || is(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent &&
        t[j].text != "operator") {
      // Only count declarations, not e.g. "unordered_map<K,V>{}" temps.
      names.insert(std::string(t[j].text));
    }
  }
}

void rule_d2(const FileCtx& f,
             const std::set<std::string, std::less<>>& unordered_names,
             Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered name:
    //   for ( decl : expr )
    if (is(t[i], "for") && i + 1 < t.size() && is(t[i + 1], "(")) {
      const std::size_t close = skip_parens(t, i + 1);
      if (close == std::string_view::npos) continue;
      // Find the range-for ':' at paren depth 1 (merged "::" is a
      // distinct token, so a bare ":" is unambiguous).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (is(t[k], "(")) ++depth;
        if (is(t[k], ")")) --depth;
        if (depth == 1 && is(t[k], ":")) {
          colon = k;
          break;
        }
      }
      if (colon == 0) continue;
      for (std::size_t k = colon + 1; k + 1 < close; ++k) {
        if (t[k].kind == Token::kIdent &&
            unordered_names.count(t[k].text) != 0) {
          sink.report(
              "D2", t[k].line,
              "range-for over unordered container '" +
                  std::string(t[k].text) +
                  "': iteration order is not deterministic across "
                  "libraries/runs; iterate a sorted or dense structure");
          break;
        }
      }
      continue;
    }
    // name.begin() / name->cbegin() etc.
    if (t[i].kind == Token::kIdent && unordered_names.count(t[i].text) != 0 &&
        i + 3 < t.size() && (is(t[i + 1], ".") || is(t[i + 1], "->")) &&
        (is(t[i + 2], "begin") || is(t[i + 2], "cbegin") ||
         is(t[i + 2], "rbegin") || is(t[i + 2], "crbegin")) &&
        is(t[i + 3], "(")) {
      sink.report("D2", t[i].line,
                  "iterator walk over unordered container '" +
                      std::string(t[i].text) +
                      "': iteration order is not deterministic");
    }
  }
}

// ---------------------------------------------------------------------
// Rule D3: ordering by pointer value.
// ---------------------------------------------------------------------

void rule_d3(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !is(t[i + 1], "<")) continue;
    const std::string_view id = t[i].text;
    const bool comparator = id == "less" || id == "greater";
    const bool ordered_container = id == "set" || id == "map" ||
                                   id == "multiset" || id == "multimap";
    if (!comparator && !ordered_container) continue;
    // Heuristic guard: require std:: (or absl:: etc.) qualification so a
    // project template named set<...> is not miscounted.
    if (i < 1 || !is(t[i - 1], "::")) continue;
    const std::size_t end = skip_angles(t, i + 1);
    if (end == std::string_view::npos) continue;
    // First template argument: tokens until ',' or the final '>' at
    // depth 1.
    int depth = 0;
    std::size_t last = 0;
    bool key_is_pointer = false;
    for (std::size_t k = i + 1; k < end; ++k) {
      if ((depth == 1 && is(t[k], ",")) || k == end - 1) {
        key_is_pointer = last != 0 && is(t[last], "*");
        break;
      }
      if (is(t[k], "<") || is(t[k], "(")) {
        ++depth;
      } else if (is(t[k], ">") || is(t[k], ")")) {
        --depth;
      } else {
        last = k;
      }
    }
    if (key_is_pointer) {
      sink.report(
          "D3", t[i].line,
          "'" + std::string(id) +
              "' keyed on a pointer type orders by address, which varies "
              "run to run; key on a stable id instead");
    }
  }
}

// ---------------------------------------------------------------------
// Rule C1: coroutine-frame lifetime hazards.
// ---------------------------------------------------------------------

/// True when tokens [begin, end) — one function parameter — declare a
/// const-lvalue-ref or rvalue-ref parameter at top level.
bool param_is_hazardous_ref(const std::vector<Token>& t, std::size_t begin,
                            std::size_t end) {
  int depth = 0;
  bool saw_const = false;
  for (std::size_t k = begin; k < end; ++k) {
    if (is(t[k], "<") || is(t[k], "(") || is(t[k], "[")) ++depth;
    if (is(t[k], ">") || is(t[k], ")") || is(t[k], "]")) --depth;
    if (depth != 0) continue;
    if (is(t[k], "const")) saw_const = true;
    if (is(t[k], "&&")) return true;
    if (is(t[k], "&") && saw_const) return true;
  }
  return false;
}

/// Is t[i] the start of a coroutine return type? Matches "Co <" with an
/// optional "sim ::" prefix, and "Detached". Returns the index just past
/// the full type (past the closing '>' for Co<T>), or npos.
std::size_t match_coro_return_type(const std::vector<Token>& t,
                                   std::size_t i) {
  if (t[i].kind != Token::kIdent) return std::string_view::npos;
  if (t[i].text == "Detached") return i + 1;
  if (t[i].text != "Co") return std::string_view::npos;
  if (i + 1 >= t.size() || !is(t[i + 1], "<")) return std::string_view::npos;
  return skip_angles(t, i + 1);
}

void rule_c1_functions(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::size_t after_type = match_coro_return_type(t, i);
    if (after_type == std::string_view::npos) continue;
    // Expect: [ClassName ::]* name ( params )
    std::size_t j = after_type;
    while (j + 1 < t.size() && t[j].kind == Token::kIdent &&
           is(t[j + 1], "::")) {
      j += 2;
    }
    if (j + 1 >= t.size() || t[j].kind != Token::kIdent ||
        !is(t[j + 1], "(")) {
      continue;  // variable of type Co<T>, return statement, etc.
    }
    const std::string fn_name(t[j].text);
    const std::size_t open = j + 1;
    const std::size_t close = skip_parens(t, open);
    if (close == std::string_view::npos) continue;
    // Split parameters at top-level commas and test each.
    int depth = 0;
    std::size_t param_start = open + 1;
    for (std::size_t k = open; k < close; ++k) {
      if (is(t[k], "<") || is(t[k], "(") || is(t[k], "[")) ++depth;
      if (is(t[k], ">") || is(t[k], ")") || is(t[k], "]")) --depth;
      const bool at_split =
          (depth == 1 && is(t[k], ",")) || k == close - 1;
      if (!at_split) continue;
      if (param_is_hazardous_ref(t, param_start, k)) {
        sink.report(
            "C1", t[param_start].line,
            "coroutine '" + fn_name +
                "' takes a const-ref/rvalue-ref parameter: a temporary "
                "bound to it dies while the frame may still be alive; "
                "pass by value (or a mutable lvalue ref to an object "
                "that outlives the run)");
      }
      param_start = k + 1;
    }
  }
}

void rule_c1_lambdas(const FileCtx& f, Sink& sink) {
  const auto& t = f.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is(t[i], "[")) continue;
    // Lambda-introducer heuristic: '[' not preceded by a value-ish token
    // (identifier, ')', ']', number) — those are subscripts.
    if (i > 0 && (t[i - 1].kind == Token::kIdent ||
                  t[i - 1].kind == Token::kNumber || is(t[i - 1], ")") ||
                  is(t[i - 1], "]"))) {
      continue;
    }
    // Capture list: scan to matching ']'.
    std::size_t close = std::string_view::npos;
    int depth = 0;
    for (std::size_t k = i; k < t.size(); ++k) {
      if (is(t[k], "[")) ++depth;
      if (is(t[k], "]")) {
        if (--depth == 0) {
          close = k;
          break;
        }
      }
      if (is(t[k], ";") || is(t[k], "{")) break;
    }
    if (close == std::string_view::npos) continue;
    bool by_ref_capture = false;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is(t[k], "&") &&
          (k + 1 == close || t[k + 1].kind == Token::kIdent ||
           is(t[k + 1], ","))) {
        by_ref_capture = true;
        break;
      }
    }
    if (!by_ref_capture) continue;
    // Must look like a lambda: followed by '(' params, '{' body, or
    // specifiers/trailing-return.
    std::size_t j = close + 1;
    if (j >= t.size() ||
        !(is(t[j], "(") || is(t[j], "{") || is(t[j], "->") ||
          is(t[j], "mutable") || is(t[j], "noexcept"))) {
      continue;
    }
    // Find the body '{', remembering a trailing return type if present.
    bool trailing_coro = false;
    if (j < t.size() && is(t[j], "(")) j = skip_parens(t, j);
    if (j == std::string_view::npos) continue;
    while (j < t.size() && !is(t[j], "{")) {
      if (match_coro_return_type(t, j) != std::string_view::npos) {
        trailing_coro = true;
      }
      if (is(t[j], ";") || is(t[j], ")")) break;  // not a lambda body
      ++j;
    }
    if (j >= t.size() || !is(t[j], "{")) continue;
    const std::size_t body_end = skip_braces(t, j);
    if (body_end == std::string_view::npos) continue;
    bool body_coro = false;
    for (std::size_t k = j; k < body_end; ++k) {
      if (t[k].kind == Token::kIdent &&
          (t[k].text == "co_await" || t[k].text == "co_return" ||
           t[k].text == "co_yield")) {
        body_coro = true;
        break;
      }
    }
    if (trailing_coro || body_coro) {
      sink.report(
          "C1", t[i].line,
          "coroutine lambda captures by reference: captures live in the "
          "closure object, not the frame — if the closure dies before "
          "the coroutine finishes every by-ref capture dangles; capture "
          "by value or use a named coroutine with value parameters");
    }
  }
}

// ---------------------------------------------------------------------
// Rule S1: cross-shard mutation outside the mailbox API.
// ---------------------------------------------------------------------

bool is_shard_facade_accessor(std::string_view id) {
  // Accessors on ShardedEngine that hand back a per-shard sim::Engine.
  // Scheduling directly on one of those from another shard's context
  // bypasses the mailbox/window clamp that makes output shard-count
  // invariant.
  return id == "shard_engine" || id == "engine_for_node" ||
         id == "global_engine" || id == "context_engine";
}

void rule_s1(const FileCtx& f, Sink& sink) {
  if (f.sharded_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !is_shard_facade_accessor(t[i].text)) {
      continue;
    }
    if (!is(t[i + 1], "(")) continue;
    const std::size_t after = skip_parens(t, i + 1);
    if (after == std::string_view::npos || after + 2 >= t.size()) continue;
    // shard_engine(s).schedule_at(...) — the facade is returned by
    // reference, so the chain is always '.'.
    if (!is(t[after], ".")) continue;
    const std::string_view method = t[after + 1].text;
    if (t[after + 1].kind != Token::kIdent ||
        (method != "schedule_at" && method != "schedule_after")) {
      continue;
    }
    if (!is(t[after + 2], "(")) continue;
    sink.report(
        "S1", t[i].line,
        "'" + std::string(t[i].text) + "(...)." + std::string(method) +
            "(...)' schedules directly on a shard facade, bypassing the "
            "mailbox/window clamp that keeps output shard-count "
            "invariant; use ShardedEngine::schedule_on_node / "
            "post_serial / schedule_global_at");
  }
}

// ---------------------------------------------------------------------
// Rule Q1: direct pushes into the CHT's class-aware request queue.
// ---------------------------------------------------------------------

/// Collect names declared with the CHT queue type ("QosQueue name",
/// optionally namespace-qualified or behind a "using Alias = QosQueue"),
/// project-wide: the member lives in cht.hpp, pushes could appear in any
/// .cpp.
void collect_qos_queue_names(const std::vector<Token>& t,
                             std::set<std::string, std::less<>>& names,
                             std::set<std::string, std::less<>>& types) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool queue_here =
        t[i].text == "QosQueue" || types.count(t[i].text) != 0;
    if (!queue_here) continue;
    // "using Alias = [armci::]QosQueue" — look behind, skipping
    // namespace qualification.
    std::size_t b = i;
    while (b >= 2 && is(t[b - 1], "::") && t[b - 2].kind == Token::kIdent) {
      b -= 2;
    }
    if (b >= 3 && is(t[b - 1], "=") && t[b - 2].kind == Token::kIdent &&
        is(t[b - 3], "using")) {
      types.insert(std::string(t[b - 2].text));
    }
    // Skip declarator decorations, then expect the declared name (a
    // following '(' is a constructor/temporary, not a declaration).
    std::size_t j = i + 1;
    while (j < t.size() && (is(t[j], "*") || is(t[j], "&") ||
                            is(t[j], "&&") || is(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent &&
        t[j].text != "operator") {
      names.insert(std::string(t[j].text));
    }
  }
}

void rule_q1(const FileCtx& f,
             const std::set<std::string, std::less<>>& qos_queue_names,
             Sink& sink) {
  if (f.cht_exempt) return;
  const auto& t = f.toks;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        qos_queue_names.count(t[i].text) == 0) {
      continue;
    }
    if (!is(t[i + 1], ".") && !is(t[i + 1], "->")) continue;
    const std::string_view method = t[i + 2].text;
    if (t[i + 2].kind != Token::kIdent ||
        (method != "push" && method != "enqueue")) {
      continue;
    }
    if (!is(t[i + 3], "(")) continue;
    sink.report(
        "Q1", t[i].line,
        "'" + std::string(t[i].text) + "." + std::string(method) +
            "(...)' pushes into a CHT request queue directly, bypassing "
            "the class-aware submit path (priority stamping, backlog "
            "accounting, congestion feedback); route the request through "
            "Cht::submit");
  }
}

}  // namespace

std::string_view annotation_name(std::string_view rule_id) {
  for (const auto& [id, name] : kRuleNames) {
    if (id == rule_id) return name;
  }
  return "annotation";
}

void Linter::add_file(std::string path, std::string content) {
  files_.push_back(File{std::move(path), std::move(content)});
}

std::vector<Diagnostic> Linter::run() {
  // Phase 1+2 per file.
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files_.size());
  for (const auto& f : files_) {
    FileCtx ctx;
    ctx.path = f.path;
    ctx.blanked = blank_noncode(f.content, ctx.ann);
    ctx.rng_exempt = f.path.find("sim/rng.") != std::string::npos;
    ctx.sharded_exempt =
        f.path.find("sim/sharded_engine.") != std::string::npos;
    ctx.cht_exempt =
        f.path.find("armci/cht.") != std::string::npos ||
        f.path.find("armci/qos_queue.") != std::string::npos;
    ctxs.push_back(std::move(ctx));
    // Tokenize after the move so Token::text views into storage that
    // lives as long as the context itself.
    ctxs.back().toks = tokenize(ctxs.back().blanked);
  }

  // Pass A: project-wide unordered names (declaration may live in a
  // header, iteration in a .cpp).
  std::set<std::string, std::less<>> unordered_names;
  std::set<std::string, std::less<>> unordered_types;
  std::set<std::string, std::less<>> qos_queue_names;
  std::set<std::string, std::less<>> qos_queue_types;
  for (int round = 0; round < 2; ++round) {  // 2 rounds: aliases settle
    for (const auto& ctx : ctxs) {
      collect_unordered_names(ctx.toks, unordered_names, unordered_types);
      collect_qos_queue_names(ctx.toks, qos_queue_names, qos_queue_types);
    }
  }

  // Pass B: rules.
  std::vector<Diagnostic> diags;
  for (const auto& ctx : ctxs) {
    Sink sink(ctx, diags);
    for (const auto& [line, msg] : ctx.ann.malformed) {
      diags.push_back(Diagnostic{"A0", ctx.path, line, msg});
    }
    rule_d1(ctx, sink);
    rule_d2(ctx, unordered_names, sink);
    rule_d3(ctx, sink);
    rule_c1_functions(ctx, sink);
    rule_c1_lambdas(ctx, sink);
    rule_s1(ctx, sink);
    rule_q1(ctx, qos_queue_names, sink);
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diags;
}

std::string format_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message;
    if (d.rule != "A0") {
      out += "  (suppress: // vtopo-lint: allow(" +
             std::string(annotation_name(d.rule)) + ") -- <reason>)";
    }
    out += "\n";
  }
  return out;
}

namespace {
void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}
}  // namespace

std::string format_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    out += "  {\"rule\": \"" + d.rule + "\", \"file\": \"";
    json_escape_into(out, d.file);
    out += "\", \"line\": " + std::to_string(d.line) + ", \"message\": \"";
    json_escape_into(out, d.message);
    out += "\"}";
    if (i + 1 < diags.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

}  // namespace vtopo::lint
