// Cross-TU call graph over extracted functions.
//
// Nodes are keyed by bare function name (lint-grade: no overload or
// namespace resolution — the project style keeps method names unique
// enough that this is precise in practice, and a false merge only makes
// the flow rules more conservative, never less sound). Edges are found
// by scanning each function body for `name (` call shapes against the
// set of known function names. propagate() runs a fixpoint over the
// graph so summaries (e.g. "transitively releases a credit lease",
// "transitively acquires lock X") survive recursion and arbitrary call
// depth.
#pragma once

#include "lint/cfg.hpp"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vtopo::lint {

struct CallGraphNode {
  std::string name;            ///< bare function name
  std::set<std::string> callees;  ///< bare names of known functions called
};

class CallGraph {
 public:
  /// Register every function of one parsed file. Call once per file,
  /// then finalize() once all files are in.
  void add_file(const std::vector<Token>& toks,
                const std::vector<FunctionInfo>& fns);

  /// Resolve call edges: scans recorded bodies for `name (` shapes
  /// where `name` is a known function. Must be called after the last
  /// add_file() and before queries.
  void finalize();

  [[nodiscard]] bool known(const std::string& name) const {
    return nodes_.count(name) != 0;
  }
  [[nodiscard]] const std::set<std::string>& callees(
      const std::string& name) const;

  /// Generic summary fixpoint: starting from `seed` (names with the
  /// property intrinsically), repeatedly add any function that calls a
  /// member of the set, until stable. Handles recursion (cycles just
  /// stop growing). Returns the closed set.
  [[nodiscard]] std::set<std::string> propagate_callers_of(
      const std::set<std::string>& seed) const;

  /// Forward closure: everything reachable from `name` via call edges,
  /// including `name` itself. Empty set for unknown names.
  [[nodiscard]] std::set<std::string> reachable_from(
      const std::string& name) const;

 private:
  struct PendingBody {
    std::string name;
    // Call-shape candidates harvested at add time: identifiers followed
    // by '(' in the body (excluding keywords), so finalize() does not
    // need to keep token streams alive.
    std::vector<std::string> candidates;
  };
  std::map<std::string, CallGraphNode> nodes_;
  std::vector<PendingBody> pending_;
  bool finalized_ = false;
};

}  // namespace vtopo::lint
