// Incremental whole-tree cache for vtopo-lint.
//
// Cross-file rules (D2/Q1 name collection, the call graph, L1's global
// lock graph) make per-file diagnostic reuse unsound: an edit to one
// header can change diagnostics in an untouched .cpp. So the cache is
// honest about the unit of reuse — the whole tree. It stores a key per
// file (size + mtime fast path, FNV-1a content hash slow path) plus the
// full serialized diagnostic set; a re-lint where every key matches
// replays the stored diagnostics without analyzing anything, and any
// mismatch (content, file added/removed) falls back to a full run that
// rewrites the cache. That is exactly the CI hot path: the tree rarely
// changes between the lint gate and the test gates.
#pragma once

#include "lint/lint.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace vtopo::lint {

struct CacheFileKey {
  std::string path;
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;  ///< 0 when unknown (in-memory runs)
  std::uint64_t hash = 0;     ///< FNV-1a of the file content
};

struct CacheData {
  std::vector<CacheFileKey> files;  ///< sorted by path
  std::vector<Diagnostic> diags;
};

[[nodiscard]] std::uint64_t fnv1a(std::string_view data);

/// Tab-separated, backslash-escaped text format; versioned first line.
[[nodiscard]] std::string serialize_cache(const CacheData& data);

/// Parse a serialized cache. Returns false (and leaves `out` empty) on
/// any malformed or version-mismatched input — a stale cache must never
/// turn into wrong diagnostics.
[[nodiscard]] bool parse_cache(const std::string& text, CacheData& out);

}  // namespace vtopo::lint
