// Flow-sensitive rule families built on the CFG + call-graph engine:
//
//   R1 credit-lease-pairing — path-sensitive acquire/release matching.
//       Every `bank.acquire(...)` on a CreditBank must reach, on every
//       CFG path to function exit, either a release (directly, or via a
//       call to a function that transitively releases — the call graph
//       supplies that summary), or an explicit ownership transfer
//       (`hop_credit_taken = true`, or a
//       `// vtopo-lint: transfer(credit-lease-pairing)` annotation).
//       RequestPool / PayloadArena handles are RAII, so for those the
//       rule only flags an acquire whose handle is dropped on the spot.
//       Diagnostics carry a witness path: acquire site -> branches ->
//       the early return (or end of function) that leaks.
//
//   C2 suspension-lifetime — element references (`auto& x = v[i]`-style
//       binds whose initializer subscripts a container) used after a
//       `co_await`, and by-ref-capturing lambdas that escape into a
//       call before the enclosing coroutine suspends. Both are frame/
//       storage lifetime hazards the signature-only C1 cannot see.
//
//   L1 lock-order — a global lock-acquisition-order graph. Nodes are
//       lock identities (std::mutex-family variables, and simulated
//       LockTable keys from `co_await x.lock(key, ...)`); an edge A->B
//       is recorded whenever B is acquired while A is held, including
//       through calls (callee lock summaries propagate over the call
//       graph). Any cycle is reported once, with the witness edge list.
//
// FlowAnalysis owns the cross-file state: call once per file with that
// file's (preprocessor-stripped) tokens, functions and annotations, then
// run() against the shared diagnostic vector.
#pragma once

#include "lint/callgraph.hpp"
#include "lint/cfg.hpp"
#include "lint/lint.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vtopo::lint {

class FlowAnalysis {
 public:
  /// Register one parsed file. The pointed-to containers must outlive
  /// the FlowAnalysis (the Linter keeps them in its per-file contexts).
  void add_file(std::string path, const std::vector<Token>* toks,
                const std::vector<FunctionInfo>* fns, const Annotations* ann);

  /// Run R1 + C2 + L1 over every registered file, appending to `out`
  /// (suppression via each file's annotations, like the token rules).
  void run(std::vector<Diagnostic>& out);

  // Introspection for tests.
  [[nodiscard]] const CallGraph& graph() const { return graph_; }
  [[nodiscard]] const std::set<std::string>& releasers() const {
    return releasers_;
  }
  [[nodiscard]] const std::set<std::string>& credit_names() const {
    return credit_names_;
  }

 private:
  struct FileRef {
    std::string path;
    const std::vector<Token>* toks;
    const std::vector<FunctionInfo>* fns;
    const Annotations* ann;
  };

  void collect_names();
  void build_releasers();
  void build_lock_summaries();
  void rule_r1(const FileRef& f, const FunctionInfo& fn, Sink& sink) const;
  void rule_c2(const FileRef& f, const FunctionInfo& fn, Sink& sink) const;
  void rule_l1_scan(const FileRef& f, const FunctionInfo& fn);
  void rule_l1_report(std::vector<Diagnostic>& out) const;

  std::vector<FileRef> files_;
  CallGraph graph_;
  std::set<std::string> credit_names_;  ///< CreditBank-typed variables
  std::set<std::string> pool_names_;    ///< RequestPool-typed variables
  std::set<std::string> arena_names_;   ///< PayloadArena-typed variables
  std::set<std::string> mutex_names_;   ///< std::mutex-family variables
  std::set<std::string> releasers_;     ///< transitively-releasing functions
  /// Direct lock acquisitions per function (bare name) for the L1
  /// interprocedural summaries.
  std::map<std::string, std::set<std::string>> direct_locks_;
  /// Transitive closure of direct_locks_ over the call graph.
  std::map<std::string, std::set<std::string>> lock_closure_;

  struct LockEdge {
    std::string held;      ///< lock already held
    std::string acquired;  ///< lock taken while holding `held`
    std::string file;
    int line = 0;
    int col = 0;
    std::string note;  ///< e.g. "via call to f" for summary edges
  };
  /// First witness per (held, acquired) pair; deterministic because
  /// files and tokens are scanned in order.
  std::map<std::pair<std::string, std::string>, LockEdge> lock_edges_;
};

}  // namespace vtopo::lint
