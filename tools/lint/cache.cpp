#include "lint/cache.hpp"

#include <sstream>

namespace vtopo::lint {

namespace {

constexpr std::string_view kMagic = "vtopo-lint-cache v2";

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  std::uint64_t mag = 0;
  if (!s.empty() && s[0] == '-') {
    if (!parse_u64(s.substr(1), mag)) return false;
    out = -static_cast<std::int64_t>(mag);
    return true;
  }
  if (!parse_u64(s, mag)) return false;
  out = static_cast<std::int64_t>(mag);
  return true;
}

}  // namespace

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string serialize_cache(const CacheData& data) {
  std::string out(kMagic);
  out += "\n";
  for (const auto& f : data.files) {
    out += "F\t";
    escape_into(out, f.path);
    out += "\t" + std::to_string(f.size) + "\t" + std::to_string(f.mtime_ns) +
           "\t" + std::to_string(f.hash) + "\n";
  }
  for (const auto& d : data.diags) {
    out += "D\t" + d.rule + "\t";
    escape_into(out, d.file);
    out += "\t" + std::to_string(d.line) + "\t" + std::to_string(d.col) + "\t";
    escape_into(out, d.message);
    out += "\n";
    for (const auto& s : d.trace) {
      out += "T\t";
      escape_into(out, s.file);
      out += "\t" + std::to_string(s.line) + "\t" + std::to_string(s.col) +
             "\t";
      escape_into(out, s.note);
      out += "\n";
    }
  }
  return out;
}

bool parse_cache(const std::string& text, CacheData& out) {
  out = CacheData{};
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cols = split_tabs(line);
    if (cols[0] == "F") {
      if (cols.size() != 5) return false;
      CacheFileKey key;
      key.path = unescape(cols[1]);
      std::uint64_t size = 0;
      std::int64_t mtime = 0;
      std::uint64_t hash = 0;
      if (!parse_u64(cols[2], size) || !parse_i64(cols[3], mtime) ||
          !parse_u64(cols[4], hash)) {
        return false;
      }
      key.size = size;
      key.mtime_ns = mtime;
      key.hash = hash;
      out.files.push_back(std::move(key));
    } else if (cols[0] == "D") {
      if (cols.size() != 6) return false;
      Diagnostic d;
      d.rule = cols[1];
      d.file = unescape(cols[2]);
      std::int64_t ln = 0;
      std::int64_t col = 0;
      if (!parse_i64(cols[3], ln) || !parse_i64(cols[4], col)) return false;
      d.line = static_cast<int>(ln);
      d.col = static_cast<int>(col);
      d.message = unescape(cols[5]);
      out.diags.push_back(std::move(d));
    } else if (cols[0] == "T") {
      if (cols.size() != 5 || out.diags.empty()) return false;
      TraceStep s;
      s.file = unescape(cols[1]);
      std::int64_t ln = 0;
      std::int64_t col = 0;
      if (!parse_i64(cols[2], ln) || !parse_i64(cols[3], col)) return false;
      s.line = static_cast<int>(ln);
      s.col = static_cast<int>(col);
      s.note = unescape(cols[4]);
      out.diags.back().trace.push_back(std::move(s));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace vtopo::lint
