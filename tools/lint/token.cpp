#include "lint/token.hpp"

#include <cctype>

namespace vtopo::lint {

namespace {

constexpr std::pair<std::string_view, std::string_view> kRuleNames[] = {
    {"D1", "nondeterminism"},
    {"D2", "unordered-iter"},
    {"D3", "pointer-order"},
    {"C1", "coro-ref"},
    {"C2", "suspension-lifetime"},
    {"S1", "cross-shard"},
    {"Q1", "qos-submit"},
    {"B1", "backend-seam"},
    {"R1", "credit-lease-pairing"},
    {"L1", "lock-order"},
};

constexpr std::string_view kRuleNameList =
    "nondeterminism, unordered-iter, pointer-order, coro-ref, "
    "suspension-lifetime, cross-shard, qos-submit, backend-seam, "
    "credit-lease-pairing or lock-order";

/// Parse "vtopo-lint:" directives out of one comment's text. `col0` is
/// the 1-based column of the comment's first character (exact for line
/// comments; for block comments later lines are attributed to the
/// comment's starting line/column).
void parse_annotations(std::string_view comment, int line, int col0,
                       Annotations& out) {
  std::size_t pos = 0;
  auto col_at = [&](std::size_t p) {
    return col0 + static_cast<int>(p);
  };
  while ((pos = comment.find("vtopo-lint:", pos)) != std::string_view::npos) {
    std::size_t p = pos + std::string_view("vtopo-lint:").size();
    while (p < comment.size() && comment[p] == ' ') ++p;
    const bool file_scope = comment.compare(p, 11, "allow-file(") == 0;
    const bool line_scope =
        !file_scope && comment.compare(p, 6, "allow(") == 0;
    const bool transfer_scope =
        !file_scope && !line_scope && comment.compare(p, 9, "transfer(") == 0;
    if (!file_scope && !line_scope && !transfer_scope) {
      out.malformed.push_back(
          {line, col_at(pos),
           "vtopo-lint directive is not allow(...), allow-file(...) or "
           "transfer(...)"});
      pos = p;
      continue;
    }
    p += file_scope ? 11 : (transfer_scope ? 9 : 6);
    const std::size_t close = comment.find(')', p);
    if (close == std::string_view::npos) {
      out.malformed.push_back(
          {line, col_at(pos), "unterminated vtopo-lint directive '('"});
      return;
    }
    const std::string rule(comment.substr(p, close - p));
    if (!is_known_rule_name(rule)) {
      out.malformed.push_back(
          {line, col_at(p),
           "unknown vtopo-lint rule name '" + rule + "' (want " +
               std::string(kRuleNameList) + ")"});
      pos = close;
      continue;
    }
    if (transfer_scope && rule != "credit-lease-pairing") {
      out.malformed.push_back(
          {line, col_at(p),
           "vtopo-lint transfer('" + rule +
               "') is not an ownership-transferring rule; transfer() "
               "applies to credit-lease-pairing only"});
      pos = close;
      continue;
    }
    // Require a justification: "-- <reason>".
    std::size_t after = close + 1;
    while (after < comment.size() && comment[after] == ' ') ++after;
    const bool has_reason =
        comment.compare(after, 2, "--") == 0 &&
        comment.find_first_not_of(" -", after) != std::string_view::npos;
    if (!has_reason) {
      out.malformed.push_back(
          {line, col_at(pos),
           "vtopo-lint " +
               std::string(file_scope
                               ? "allow-file("
                               : (transfer_scope ? "transfer(" : "allow(")) +
               rule + ") needs a justification: \"-- <reason>\""});
      pos = close;
      continue;
    }
    if (file_scope) {
      out.file_allows.push_back(rule);
    } else if (transfer_scope) {
      out.line_transfers.push_back(line);
    } else {
      out.line_allows.emplace_back(line, rule);
    }
    pos = close;
  }
}

bool ident_char_raw(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::string_view annotation_name(std::string_view rule_id) {
  for (const auto& [id, name] : kRuleNames) {
    if (id == rule_id) return name;
  }
  return "annotation";
}

bool is_known_rule_name(std::string_view name) {
  for (const auto& [id, nm] : kRuleNames) {
    if (nm == name) return true;
  }
  return false;
}

std::string blank_noncode(const std::string& src, Annotations& ann) {
  std::string out(src.size(), ' ');
  int line = 1;
  std::size_t line_start = 0;  ///< offset of the current line's first byte
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto copy_nl = [&](std::size_t at) {
    if (src[at] == '\n') {
      out[at] = '\n';
      ++line;
      line_start = at + 1;
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      copy_nl(i);
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {  // line comment
      const std::size_t start = i;
      const int col0 = static_cast<int>(start - line_start) + 1;
      while (i < n && src[i] != '\n') ++i;
      parse_annotations(std::string_view(src).substr(start, i - start), line,
                        col0, ann);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {  // block comment
      const std::size_t start = i;
      const int start_line = line;
      const int col0 = static_cast<int>(start - line_start) + 1;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        copy_nl(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      parse_annotations(std::string_view(src).substr(start, i - start),
                        start_line, col0, ann);
      continue;
    }
    if (c == '\'' && i > 0 && ident_char_raw(src[i - 1])) {
      // Digit separator (8'000'000) or a ud-literal suffix context, not
      // a character literal.
      out[i] = c;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {  // string / char literal
      // Raw string literal? R"delim( ... )delim"
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        std::size_t d = i + 1;
        while (d < n && src[d] != '(') ++d;
        const std::string delim = ")" + src.substr(i + 1, d - i - 1) + "\"";
        const std::size_t end = src.find(delim, d);
        const std::size_t stop =
            end == std::string::npos ? n : end + delim.size();
        for (; i < stop; ++i) copy_nl(i);
        continue;
      }
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        copy_nl(i);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      continue;
    }
    out[i] = c;
    ++i;
  }
  return out;
}

std::string strip_preprocessor(const std::string& blanked) {
  std::string out = blanked;
  const std::size_t n = out.size();
  std::size_t i = 0;
  while (i < n) {
    // At start of a line: skip whitespace, look for '#'.
    std::size_t j = i;
    while (j < n && (out[j] == ' ' || out[j] == '\t')) ++j;
    if (j < n && out[j] == '#') {
      // Blank to end of line, following backslash continuations.
      bool cont = true;
      while (cont && j < n) {
        cont = false;
        while (j < n && out[j] != '\n') {
          if (out[j] == '\\') {
            // Continuation if the backslash is the last non-space
            // character on the line.
            std::size_t k = j + 1;
            while (k < n && (out[k] == ' ' || out[k] == '\t')) ++k;
            if (k < n && out[k] == '\n') cont = true;
          }
          out[j] = ' ';
          ++j;
        }
        if (cont && j < n) ++j;  // step over the newline, keep blanking
      }
      i = j;
      continue;
    }
    while (i < n && out[i] != '\n') ++i;
    if (i < n) ++i;
  }
  return out;
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  toks.reserve(code.size() / 4);
  int line = 1;
  std::size_t line_start = 0;
  std::size_t i = 0;
  const std::size_t n = code.size();
  auto col = [&](std::size_t at) {
    return static_cast<int>(at - line_start) + 1;
  };
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(code[i])) ++i;
      toks.push_back({Token::kIdent,
                      std::string_view(code).substr(start, i - start), line,
                      col(start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < n && (ident_char(code[i]) || code[i] == '\'' ||
                       ((code[i] == '+' || code[i] == '-') &&
                        (code[i - 1] == 'e' || code[i - 1] == 'E')))) {
        ++i;
      }
      toks.push_back({Token::kNumber,
                      std::string_view(code).substr(start, i - start), line,
                      col(start)});
      continue;
    }
    // Merge "::" and "->" so scope/member chains are easy to walk;
    // everything else stays single-char (so ">>" closes two templates).
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line, col(i)});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line, col(i)});
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < n && code[i + 1] == '&') {
      toks.push_back({Token::kPunct, std::string_view(code).substr(i, 2),
                      line, col(i)});
      i += 2;
      continue;
    }
    toks.push_back({Token::kPunct, std::string_view(code).substr(i, 1), line,
                    col(i)});
    ++i;
  }
  return toks;
}

std::size_t skip_angles(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "<")) ++depth;
    if (is(t[i], ">")) {
      if (--depth == 0) return i + 1;
    }
    // A ';' or '{' inside what we thought was a template argument list
    // means it was a comparison after all; bail out.
    if (is(t[i], ";") || is(t[i], "{")) return knpos;
  }
  return knpos;
}

std::size_t skip_parens(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "(")) ++depth;
    if (is(t[i], ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return knpos;
}

std::size_t skip_braces(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is(t[i], "{")) ++depth;
    if (is(t[i], "}")) {
      if (--depth == 0) return i + 1;
    }
  }
  return knpos;
}

}  // namespace vtopo::lint
