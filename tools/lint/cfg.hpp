// Per-function control-flow graphs over the vtopo-lint token stream.
//
// extract_functions() finds function definitions in a (preprocessor-
// stripped) token stream — free functions, member functions defined
// inline or out-of-line, constructors — and builds a statement-level
// CFG for each body: branches (if/else, switch, ternaries stay inside
// their statement node), loops with back edges (for/while/do), early
// exits (return/co_return -> the synthetic exit node), break/continue,
// and try/catch as alternative successors. Lambdas are treated as
// opaque atoms inside their enclosing statement (their control flow is
// not the enclosing function's) but are recorded with capture info so
// rules can reason about them.
//
// The graph is deliberately lint-grade: token shapes, not semantics.
// Anything the parser cannot shape-match degrades to a linear node or
// is skipped, never a crash — every delimiter walk is bounds-checked.
#pragma once

#include "lint/token.hpp"

#include <string>
#include <vector>

namespace vtopo::lint {

struct CfgNode {
  enum Kind {
    kEntry,   ///< synthetic function entry
    kStmt,    ///< one statement (or loop/switch header)
    kBranch,  ///< an if/loop/switch header with >1 successor
    kExit,    ///< a return / co_return statement
    kEnd,     ///< synthetic function exit (all paths converge here)
  };
  Kind kind = kStmt;
  std::size_t tok_begin = 0;  ///< [tok_begin, tok_end) into the file tokens
  std::size_t tok_end = 0;
  int line = 0;
  int col = 0;
  std::vector<int> succs;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;
  int exit = -1;  ///< the unique kEnd node
};

struct LambdaInfo {
  std::size_t intro = 0;       ///< token index of '['
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< one past the matching '}'
  bool by_ref_capture = false; ///< capture list contains '&' captures
  bool escapes_to_call = false;///< introducer sits in a call argument list
  int line = 0;
  int col = 0;
};

struct FunctionInfo {
  std::string name;  ///< bare name ("forward" for Cht::forward)
  std::string qual;  ///< qualifier ("Cht"), empty for free functions
  int line = 0;
  int col = 0;
  std::size_t params_begin = 0;  ///< token index of '('
  std::size_t params_end = 0;    ///< one past the matching ')'
  std::size_t body_begin = 0;    ///< token index of the body '{'
  std::size_t body_end = 0;      ///< one past the matching '}'
  bool is_coroutine = false;     ///< body contains co_await/co_return/co_yield
                                 ///< outside lambda bodies
  std::vector<LambdaInfo> lambdas;  ///< lambdas inside the body, in order
  Cfg cfg;
};

/// True when token index `i` lies inside any lambda body of `fn`.
[[nodiscard]] bool in_lambda(const FunctionInfo& fn, std::size_t i);

/// Extract function definitions (with CFGs) from a preprocessor-
/// stripped token stream.
[[nodiscard]] std::vector<FunctionInfo> extract_functions(
    const std::vector<Token>& toks);

/// Convenience for tests and callers that start from raw source:
/// blank -> strip preprocessor -> tokenize -> extract. The returned
/// struct owns the storage every Token views into.
struct ParsedSource {
  std::string blanked;
  std::vector<Token> toks;
  std::vector<FunctionInfo> functions;
};
[[nodiscard]] ParsedSource parse_source(const std::string& src);

}  // namespace vtopo::lint
