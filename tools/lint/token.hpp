// Shared lexing layer for vtopo-lint: comment/literal blanking,
// annotation harvesting, tokenization, and balanced-delimiter walking.
//
// Every analysis in the linter — the token-shape rules (D1..Q1), the
// control-flow engine (cfg.hpp) and the flow rules built on it
// (flow_rules.hpp) — consumes the same Token stream, so line/column
// attribution is consistent across rule families. The blanked buffer
// preserves byte offsets exactly (comments and literals become spaces),
// which is what makes column numbers exact.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vtopo::lint {

inline constexpr std::size_t knpos = static_cast<std::size_t>(-1);

struct Token {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string_view text;  ///< view into the blanked buffer
  int line;
  int col;                ///< 1-based column of the first character
};

/// Annotations harvested from comments while blanking.
struct Annotations {
  /// allow(<rule>): (line, rule-name). Covers its own line and the
  /// line that follows it.
  std::vector<std::pair<int, std::string>> line_allows;
  /// allow-file(<rule>): rule names, whole-file scope.
  std::vector<std::string> file_allows;
  /// transfer(credit-lease-pairing): ownership-transfer points for
  /// rule R1 — (line). Covers its own line and the line that follows.
  std::vector<int> line_transfers;
  /// Malformed annotations (A0 diagnostics).
  struct Malformed {
    int line = 0;
    int col = 1;
    std::string message;
  };
  std::vector<Malformed> malformed;
};

/// Stable rule-id -> annotation-name mapping ("D2" -> "unordered-iter").
[[nodiscard]] std::string_view annotation_name(std::string_view rule_id);
[[nodiscard]] bool is_known_rule_name(std::string_view name);

/// Copy `src` with comments, string literals and char literals replaced
/// by spaces (newlines and byte offsets preserved), collecting
/// annotations from comments.
[[nodiscard]] std::string blank_noncode(const std::string& src,
                                        Annotations& ann);

/// Copy `blanked` with preprocessor lines (leading '#', including
/// backslash continuations) replaced by spaces. The structural parser
/// in cfg.cpp needs brace/paren balance, which `#if`/`#define` lines
/// would wreck; the token-shape rules keep scanning the unstripped
/// stream so macro bodies stay visible to them.
[[nodiscard]] std::string strip_preprocessor(const std::string& blanked);

[[nodiscard]] std::vector<Token> tokenize(const std::string& code);

[[nodiscard]] inline bool is(const Token& t, std::string_view s) {
  return t.text == s;
}

/// Token index just past a balanced <...> starting at `open` (which must
/// be '<'); knpos when unbalanced. Walks nested <> only — good enough
/// for template argument lists, which is the only place it is used.
[[nodiscard]] std::size_t skip_angles(const std::vector<Token>& t,
                                      std::size_t open);
[[nodiscard]] std::size_t skip_parens(const std::vector<Token>& t,
                                      std::size_t open);
[[nodiscard]] std::size_t skip_braces(const std::vector<Token>& t,
                                      std::size_t open);

}  // namespace vtopo::lint
