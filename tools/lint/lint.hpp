// vtopo-lint: project-specific determinism, resource-pairing and
// coroutine-safety checks.
//
// The reproduction's headline guarantee is bit-identical determinism:
// figs 5/6/7 are locked behind FNV goldens and the --jobs sweep must be
// byte-identical to a serial run. Nothing in the compiler stops a future
// change from iterating an unordered_map into the event stream, leaking
// a CreditBank lease on an early-return path, or holding a reference
// across a suspension point — so this analyzer does. It is a
// tokenizer/AST-lite checker (no libclang): it blanks comments and
// literals, tokenizes, pattern-matches token shapes, and — for the flow
// rules — builds per-function control-flow graphs and a cross-TU call
// graph (see cfg.hpp / callgraph.hpp / flow_rules.hpp).
//
// Rules (see docs/static_analysis.md for the full catalogue):
//   D1 nondeterminism       — wall clocks, rand(), random_device, getenv
//                             outside src/sim/rng.*
//   D2 unordered-iter       — iteration over unordered_{map,set}
//   D3 pointer-order        — ordering containers/comparators keyed on
//                             pointer values
//   C1 coro-ref             — coroutine signatures that can bind dead
//                             temporaries; by-ref captures in coroutine
//                             lambdas
//   C2 suspension-lifetime  — element references and escaping by-ref
//                             closures that live across a co_await
//                             (flow-sensitive)
//   S1 cross-shard          — scheduling directly on a shard facade
//   Q1 qos-submit           — direct pushes into a QosQueue outside the
//                             class-aware Cht::submit path
//   B1 backend-seam         — direct sim::Engine / sim::ShardedEngine
//                             construction outside src/sim and the
//                             armci transport/backend files
//   R1 credit-lease-pairing — path-sensitive acquire/release matching
//                             for CreditBank leases and RequestPool/
//                             PayloadArena handles (static twin of the
//                             VTOPO_VALIDATE conservation checks)
//   L1 lock-order           — global lock-acquisition-order graph with
//                             cycle detection and a witness cycle
//   A0 annotation           — malformed vtopo-lint annotation
//
// Escape hatch, same line or the line directly above the violation:
//   // vtopo-lint: allow(<rule>) -- <reason>
// or once per file (anywhere in the file):
//   // vtopo-lint: allow-file(<rule>) -- <reason>
// R1 additionally understands an ownership-transfer annotation:
//   // vtopo-lint: transfer(credit-lease-pairing) -- <reason>
// which marks the covered line as a point where lease ownership moves
// to another holder (so the acquire is not a leak past that point).
#pragma once

#include "lint/token.hpp"

#include <string>
#include <string_view>
#include <vector>

namespace vtopo::lint {

/// One step of a CFG witness path attached to a diagnostic.
struct TraceStep {
  std::string file;
  int line = 0;
  int col = 0;
  std::string note;
};

struct Diagnostic {
  std::string rule;  ///< "D1".."Q1", "R1", "C2", "L1", "A0"
  std::string file;
  int line = 0;
  int col = 0;  ///< 1-based; 0 when unknown
  std::string message;
  std::vector<TraceStep> trace;  ///< empty for the token-shape rules
};

/// Per-file diagnostic sink: applies allow()/allow-file() suppression
/// (annotation on the violation line or the line directly above) before
/// recording. Shared by the token-shape rules and the flow rules.
class Sink {
 public:
  Sink(std::string path, const Annotations& ann, std::vector<Diagnostic>& out)
      : path_(std::move(path)), ann_(&ann), out_(&out) {}

  void report(std::string_view rule_id, int line, int col,
              std::string message, std::vector<TraceStep> trace = {});

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  const Annotations* ann_;
  std::vector<Diagnostic>* out_;
};

class Linter {
 public:
  /// Queue a file for analysis. `path` is used for diagnostics and for
  /// the D1 exemption (paths containing "sim/rng." may use any source
  /// of randomness — that is where determinism is implemented).
  void add_file(std::string path, std::string content);

  /// Run all rules over every added file. The token-shape rules get a
  /// 2-round project-wide name collection (declaration in a header,
  /// use in a .cpp); the flow rules additionally get per-function CFGs
  /// and a cross-TU call graph. Diagnostics are sorted by (file, line,
  /// rule) and therefore deterministic.
  [[nodiscard]] std::vector<Diagnostic> run();

 private:
  struct File {
    std::string path;
    std::string content;
  };
  std::vector<File> files_;
};

/// Render diagnostics as compiler-style text lines
/// ("file:line:col: [Dn] …" plus indented trace lines).
[[nodiscard]] std::string format_text(const std::vector<Diagnostic>& diags);

/// Render diagnostics as a JSON array (machine-readable --json mode):
/// rule/file/line/col/message plus a "trace" array of steps.
[[nodiscard]] std::string format_json(const std::vector<Diagnostic>& diags);

/// Render diagnostics as a SARIF 2.1.0 log (one run, one result per
/// diagnostic, trace steps as codeFlows) for CI upload.
[[nodiscard]] std::string format_sarif(const std::vector<Diagnostic>& diags);

}  // namespace vtopo::lint
