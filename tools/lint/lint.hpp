// vtopo-lint: project-specific determinism & coroutine-safety checks.
//
// The reproduction's headline guarantee is bit-identical determinism:
// figs 5/6/7 are locked behind FNV goldens and the --jobs sweep must be
// byte-identical to a serial run. Nothing in the compiler stops a future
// change from iterating an unordered_map into the event stream or
// reading a wall clock inside the simulator — so this little analyzer
// does. It is a tokenizer/AST-lite checker (no libclang): it blanks
// comments and literals, tokenizes, and pattern-matches rule-specific
// token shapes. That makes it fast, dependency-free, and deterministic,
// at the cost of name-based (not type-based) resolution for rule D2 —
// the annotation escape hatch covers the rare false positive.
//
// Rules (see docs/static_analysis.md for the full catalogue):
//   D1 nondeterminism  — wall clocks, rand(), random_device, getenv
//                        outside src/sim/rng.*
//   D2 unordered-iter  — iteration over unordered_{map,set} (range-for
//                        or .begin() family) anywhere in src/ or bench/
//   D3 pointer-order   — ordering containers/comparators keyed on
//                        pointer values (std::less<T*>, std::set<T*>, …)
//   C1 coro-ref        — coroutine-frame lifetime hazards: Co<T>/
//                        Detached functions with const-ref or rvalue-ref
//                        parameters (can bind dead temporaries), and
//                        coroutine lambdas capturing by reference
//   Q1 qos-submit      — direct .push()/.enqueue() into a QosQueue-typed
//                        name outside armci/cht.* / armci/qos_queue.*:
//                        bypasses the class-aware Cht::submit path
//                        (priority stamping, backlog accounting,
//                        congestion feedback)
//   A0 annotation      — malformed vtopo-lint annotation (missing
//                        "-- reason", unknown rule name)
//
// Escape hatch, same line or the line directly above the violation:
//   // vtopo-lint: allow(<rule>) -- <reason>
// or once per file (anywhere in the file):
//   // vtopo-lint: allow-file(<rule>) -- <reason>
// where <rule> is one of: nondeterminism, unordered-iter, pointer-order,
// coro-ref, cross-shard, qos-submit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vtopo::lint {

struct Diagnostic {
  std::string rule;     ///< "D1", "D2", "D3", "C1", "S1", "Q1", "A0"
  std::string file;
  int line = 0;
  std::string message;
};

/// Stable rule-id -> annotation-name mapping ("D2" -> "unordered-iter").
[[nodiscard]] std::string_view annotation_name(std::string_view rule_id);

class Linter {
 public:
  /// Queue a file for analysis. `path` is used for diagnostics and for
  /// the D1 exemption (paths containing "sim/rng." may use any source
  /// of randomness — that is where determinism is implemented).
  void add_file(std::string path, std::string content);

  /// Run all rules over every added file. Two passes: the first collects
  /// the names of variables/members declared with unordered container
  /// types across *all* files (declaration in a header, iteration in a
  /// .cpp), the second pattern-matches the rules. Diagnostics are sorted
  /// by (file, line) and therefore deterministic.
  [[nodiscard]] std::vector<Diagnostic> run();

 private:
  struct File {
    std::string path;
    std::string content;
  };
  std::vector<File> files_;
};

/// Render diagnostics as compiler-style text lines ("file:line: [Dn] …").
[[nodiscard]] std::string format_text(const std::vector<Diagnostic>& diags);

/// Render diagnostics as a JSON array (machine-readable --json mode).
[[nodiscard]] std::string format_json(const std::vector<Diagnostic>& diags);

}  // namespace vtopo::lint
